#!/usr/bin/env bash
# Reproduce the full study: build, run the test suite, regenerate every
# table/figure into results/, and print the headline-claims verdict.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for b in build/bench/*; do
    name="$(basename "$b")"
    echo "== $name"
    "$b" | tee "results/$name.txt" >/dev/null
done

echo
echo "Headline claims:"
tail -n 2 results/claims_headline.txt
echo "Outputs in results/"
