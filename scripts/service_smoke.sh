#!/usr/bin/env bash
# End-to-end smoke test of the resident what-if server (campaign_server):
# start on an ephemeral loopback port, probe /healthz, ask the same
# what-if twice (the second answer must be a byte-identical cache hit),
# check the cache counters and alert gauges on /metrics, exercise the
# request-observability surface (echoed request ids, /v1/status
# fields, a well-formed JSON-lines access log with slow-request phase
# spans), then shut down gracefully and require a clean exit. A second
# phase starts the server with --cache-dir, kills it with SIGKILL,
# restarts it on the same directory, and requires the warm answer from
# disk plus an incremental resume from the spilled checkpoint.
#
# Usage: scripts/service_smoke.sh [path/to/campaign_server]
# (defaults to build/examples/campaign_server). CI runs this against
# both the regular and the TSan build, and uploads the access log
# (copied to $ACCESS_LOG_ARTIFACT, default service-access.log) as a
# build artifact.
set -euo pipefail

SERVER=${1:-build/examples/campaign_server}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"; [ -n "${SERVER_PID:-}" ] && kill "$SERVER_PID" 2>/dev/null || true' EXIT

fail() { echo "service_smoke: FAIL: $*" >&2; exit 1; }

[ -x "$SERVER" ] || fail "no server binary at $SERVER"

# Wait for the listener (the port file is written once bound).
wait_for_port() {
    for _ in $(seq 1 100); do
        [ -s "$WORK/port" ] && break
        kill -0 "$SERVER_PID" 2>/dev/null \
            || fail "server died during startup"
        sleep 0.1
    done
    [ -s "$WORK/port" ] || fail "port file never appeared"
    PORT=$(cat "$WORK/port")
    BASE="http://127.0.0.1:$PORT"
}

# --slow-ms 0 marks every request slow, so each access-log line also
# carries its full phase spans (the most detailed log shape).
"$SERVER" --port 0 --port-file "$WORK/port" --cache-entries 32 \
    --access-log "$WORK/access.log" --slow-ms 0 &
SERVER_PID=$!
wait_for_port
echo "service_smoke: server up on port $PORT (pid $SERVER_PID)"

# Liveness.
curl -sSf "$BASE/healthz" | grep -q '"status":"ok"' \
    || fail "healthz not ok"

# The same what-if twice: first a miss, then a byte-identical hit.
BODY='{"config":"LargeEUPS","trials":40,"seed":2014,
       "technique":{"kind":"throttle_sleep","pstate":5,
                    "serve_for_min":10.0,"low_power":true}}'
curl -sSf -D "$WORK/h1" -o "$WORK/r1" -XPOST "$BASE/v1/whatif" -d "$BODY"
curl -sSf -D "$WORK/h2" -o "$WORK/r2" -XPOST "$BASE/v1/whatif" -d "$BODY"
grep -qi '^x-bpsim-cache: miss' "$WORK/h1" || fail "first query not a miss"
grep -qi '^x-bpsim-cache: hit' "$WORK/h2" || fail "second query not a hit"
cmp -s "$WORK/r1" "$WORK/r2" || fail "cached reply differs from computed"
grep -q '"downtime_min"' "$WORK/r1" || fail "campaign summary missing"
echo "service_smoke: repeat query served from cache, bodies identical"

# A malformed body must 400, not crash.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -XPOST "$BASE/v1/whatif" \
       -d '{nope')
[ "$CODE" = 400 ] || fail "malformed body gave $CODE, want 400"

# Alert rules report on both surfaces.
curl -sSf "$BASE/v1/alerts" | grep -q '"rule":"ups_charge_low"' \
    || fail "alerts JSON missing rule book"
curl -sSf "$BASE/metrics" > "$WORK/metrics"
grep -q '^bpsim_service_cache_hits_total{[^}]*} 1$' "$WORK/metrics" \
    || fail "metrics missing the cache hit"
grep -q '^bpsim_alert_ups_charge_low_state' "$WORK/metrics" \
    || fail "metrics missing alert gauges"
grep -q '^# EOF' "$WORK/metrics" || fail "metrics not OpenMetrics-terminated"
echo "service_smoke: metrics expose cache counters and alert gauges"

# Request observability: every response carries a request id, and a
# client-supplied id is echoed back verbatim.
grep -qi '^x-bpsim-request-id:' "$WORK/h1" \
    || fail "what-if response missing X-Bpsim-Request-Id"
ECHOED=$(curl -sSf -D - -o /dev/null -H 'X-Bpsim-Request-Id: smoke-42' \
         "$BASE/healthz" | tr -d '\r' \
         | awk 'tolower($1) == "x-bpsim-request-id:" {print $2}')
[ "$ECHOED" = smoke-42 ] \
    || fail "client request id not echoed (got \"$ECHOED\")"

# The request latency histograms ride /metrics with label sets.
grep -q '^bpsim_service_request_seconds_bucket{endpoint="whatif"' \
    "$WORK/metrics" || fail "metrics missing request latency histogram"

# /v1/status: liveness plus build, uptime, flight table and caches.
curl -sSf "$BASE/v1/status" > "$WORK/status"
grep -q '"status":"ok"' "$WORK/status" || fail "status not ok"
grep -q '"buildId":"' "$WORK/status" || fail "status missing buildId"
grep -q '"uptime_seconds":' "$WORK/status" \
    || fail "status missing uptime"
grep -q '"flight_depth":0' "$WORK/status" \
    || fail "status shows stuck in-flight work"
grep -q '"results":{"entries":1' "$WORK/status" \
    || fail "status missing the cached result"
grep -q '"observed":' "$WORK/status" \
    || fail "status missing request totals"
echo "service_smoke: /v1/status reports build, caches and flight table"
grep -q '"history":{"enabled":true' "$WORK/status" \
    || fail "status missing the history block"

# Metrics history: the sampler ticks every second by default, so by
# now /v1/series must know the core series and answer a named query
# with the tier list and a points array.
sleep 1.2
curl -sSf "$BASE/v1/series" > "$WORK/series"
grep -q '"enabled":true' "$WORK/series" || fail "series not enabled"
grep -q '"tiers":\[{"tier":0' "$WORK/series" \
    || fail "series missing tier metadata"
grep -q '"service.cache.results.entries"' "$WORK/series" \
    || fail "series names missing cache depth gauge"
curl -sSf "$BASE/v1/series?name=service.cache.results.entries&tier=0" \
    > "$WORK/series1"
grep -q '"found":true' "$WORK/series1" \
    || fail "named series query found nothing"
grep -q '"points":\[\[' "$WORK/series1" \
    || fail "named series query returned no points"
curl -sSf "$BASE/v1/alerts/history" | grep -q '"events":\[' \
    || fail "alert history endpoint malformed"
echo "service_smoke: /v1/series serves sampled history"

# The dashboard must be non-empty, self-contained HTML: no external
# links, scripts, styles or images — it has to render air-gapped.
curl -sSf -D "$WORK/hdash" "$BASE/dashboard" > "$WORK/dashboard.html"
[ -s "$WORK/dashboard.html" ] || fail "dashboard empty"
grep -q '<!DOCTYPE html>' "$WORK/dashboard.html" \
    || fail "dashboard is not HTML"
grep -qi '^content-type: text/html; charset=utf-8' "$WORK/hdash" \
    || fail "dashboard content type wrong"
if grep -qE 'https?://|src=|href=|@import' "$WORK/dashboard.html"; then
    fail "dashboard references external resources"
fi
grep -qi '^cache-control: no-store' "$WORK/hdash" \
    || fail "dashboard response missing Cache-Control: no-store"
grep -qi '^cache-control: no-store' "$WORK/h1" \
    || fail "what-if response missing Cache-Control: no-store"
cp "$WORK/dashboard.html" "${DASHBOARD_ARTIFACT:-service-dashboard.html}"
echo "service_smoke: dashboard self-contained" \
     "(kept as ${DASHBOARD_ARTIFACT:-service-dashboard.html})"

# The access log: one JSON object per line, every line well-formed,
# what-if hit + miss both present, and the slow shape carries spans.
[ -s "$WORK/access.log" ] || fail "access log empty or missing"
if command -v python3 > /dev/null 2>&1; then
    python3 - "$WORK/access.log" <<'PYEOF' || fail "access log malformed"
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "empty access log"
for l in lines:
    rec = json.loads(l)
    for k in ("ts_us", "id", "endpoint", "status", "total_us",
              "phases"):
        assert k in rec, "missing %s in: %s" % (k, l)
print("service_smoke: %d access-log records well-formed" % len(lines))
PYEOF
fi
grep -q '"endpoint":"whatif"' "$WORK/access.log" \
    || fail "access log missing the what-if requests"
grep -q '"cache":"hit"' "$WORK/access.log" \
    || fail "access log missing the cache hit"
grep -q '"cache":"miss"' "$WORK/access.log" \
    || fail "access log missing the cache miss"
grep -q '"slow":true' "$WORK/access.log" \
    || fail "access log has no slow record despite --slow-ms 0"
grep -q '"spans":\[{"phase":' "$WORK/access.log" \
    || fail "slow access-log record carries no phase spans"
cp "$WORK/access.log" "${ACCESS_LOG_ARTIFACT:-service-access.log}"
echo "service_smoke: access log validated" \
     "(kept as ${ACCESS_LOG_ARTIFACT:-service-access.log})"

# Graceful shutdown: POST, then the process must exit 0 on its own.
curl -sSf -XPOST "$BASE/v1/shutdown" | grep -q 'shutting down' \
    || fail "shutdown endpoint"
RC=0
wait "$SERVER_PID" || RC=$?
SERVER_PID=
[ "$RC" = 0 ] || fail "server exited $RC after shutdown"
echo "service_smoke: graceful shutdown clean"

# --- Phase 2: kill-and-restart warm-cache round trip -----------------
# The persistent cache must survive an unclean death: SIGKILL the
# server mid-life, restart it on the same --cache-dir, and the same
# question must come back byte-identical from disk without a campaign.
rm -f "$WORK/port"
"$SERVER" --port 0 --port-file "$WORK/port" --cache-dir "$WORK/cache" &
SERVER_PID=$!
wait_for_port
curl -sSf -D "$WORK/h3" -o "$WORK/r3" -XPOST "$BASE/v1/whatif" -d "$BODY"
grep -qi '^x-bpsim-cache: miss' "$WORK/h3" \
    || fail "cold persistent query not a miss"
kill -9 "$SERVER_PID" 2>/dev/null
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=
echo "service_smoke: server killed (SIGKILL), restarting on same cache dir"

rm -f "$WORK/port"
"$SERVER" --port 0 --port-file "$WORK/port" --cache-dir "$WORK/cache" &
SERVER_PID=$!
wait_for_port
curl -sSf -D "$WORK/h4" -o "$WORK/r4" -XPOST "$BASE/v1/whatif" -d "$BODY"
grep -qi '^x-bpsim-cache: hit' "$WORK/h4" \
    || fail "warm restart query not a hit"
grep -qi '^x-bpsim-cache-tier: disk' "$WORK/h4" \
    || fail "warm restart hit not served from disk"
cmp -s "$WORK/r3" "$WORK/r4" \
    || fail "disk-served reply differs from pre-kill reply"
echo "service_smoke: warm restart served the pre-kill answer from disk"

# Incremental reuse across the restart: a larger budget for the same
# scenario resumes from the spilled 40-trial checkpoint.
BIG_BODY=${BODY/\"trials\":40/\"trials\":80}
curl -sSf -D "$WORK/h5" -o "$WORK/r5" -XPOST "$BASE/v1/whatif" \
    -d "$BIG_BODY"
grep -qi '^x-bpsim-cache: miss' "$WORK/h5" \
    || fail "bigger budget unexpectedly cached"
grep -qi '^x-bpsim-resumed-from: 40' "$WORK/h5" \
    || fail "bigger budget did not resume from the spilled checkpoint"
echo "service_smoke: larger budget resumed from trial 40 after restart"

# The dashboard also serves from the restarted process (second
# artifact: proves the page carries no first-boot-only state).
curl -sSf "$BASE/dashboard" > "$WORK/dashboard2.html"
grep -q '<!DOCTYPE html>' "$WORK/dashboard2.html" \
    || fail "restarted dashboard is not HTML"
cp "$WORK/dashboard2.html" \
    "${DASHBOARD_RESTART_ARTIFACT:-service-dashboard-restart.html}"

curl -sSf -XPOST "$BASE/v1/shutdown" > /dev/null \
    || fail "second shutdown endpoint"
RC=0
wait "$SERVER_PID" || RC=$?
SERVER_PID=
[ "$RC" = 0 ] || fail "restarted server exited $RC after shutdown"
echo "service_smoke: PASS"
