#!/usr/bin/env bash
# End-to-end smoke test of the resident what-if server (campaign_server):
# start on an ephemeral loopback port, probe /healthz, ask the same
# what-if twice (the second answer must be a byte-identical cache hit),
# check the cache counters and alert gauges on /metrics, then shut
# down gracefully and require a clean exit.
#
# Usage: scripts/service_smoke.sh [path/to/campaign_server]
# (defaults to build/examples/campaign_server). CI runs this against
# both the regular and the TSan build.
set -euo pipefail

SERVER=${1:-build/examples/campaign_server}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"; [ -n "${SERVER_PID:-}" ] && kill "$SERVER_PID" 2>/dev/null || true' EXIT

fail() { echo "service_smoke: FAIL: $*" >&2; exit 1; }

[ -x "$SERVER" ] || fail "no server binary at $SERVER"

"$SERVER" --port 0 --port-file "$WORK/port" --cache-entries 32 &
SERVER_PID=$!

# Wait for the listener (the port file is written once bound).
for _ in $(seq 1 100); do
    [ -s "$WORK/port" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server died during startup"
    sleep 0.1
done
[ -s "$WORK/port" ] || fail "port file never appeared"
PORT=$(cat "$WORK/port")
BASE="http://127.0.0.1:$PORT"
echo "service_smoke: server up on port $PORT (pid $SERVER_PID)"

# Liveness.
curl -sSf "$BASE/healthz" | grep -q '"status":"ok"' \
    || fail "healthz not ok"

# The same what-if twice: first a miss, then a byte-identical hit.
BODY='{"config":"LargeEUPS","trials":40,"seed":2014,
       "technique":{"kind":"throttle_sleep","pstate":5,
                    "serve_for_min":10.0,"low_power":true}}'
curl -sSf -D "$WORK/h1" -o "$WORK/r1" -XPOST "$BASE/v1/whatif" -d "$BODY"
curl -sSf -D "$WORK/h2" -o "$WORK/r2" -XPOST "$BASE/v1/whatif" -d "$BODY"
grep -qi '^x-bpsim-cache: miss' "$WORK/h1" || fail "first query not a miss"
grep -qi '^x-bpsim-cache: hit' "$WORK/h2" || fail "second query not a hit"
cmp -s "$WORK/r1" "$WORK/r2" || fail "cached reply differs from computed"
grep -q '"downtime_min"' "$WORK/r1" || fail "campaign summary missing"
echo "service_smoke: repeat query served from cache, bodies identical"

# A malformed body must 400, not crash.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -XPOST "$BASE/v1/whatif" \
       -d '{nope')
[ "$CODE" = 400 ] || fail "malformed body gave $CODE, want 400"

# Alert rules report on both surfaces.
curl -sSf "$BASE/v1/alerts" | grep -q '"rule":"ups_charge_low"' \
    || fail "alerts JSON missing rule book"
curl -sSf "$BASE/metrics" > "$WORK/metrics"
grep -q '^bpsim_service_cache_hits_total{[^}]*} 1$' "$WORK/metrics" \
    || fail "metrics missing the cache hit"
grep -q '^bpsim_alert_ups_charge_low_state' "$WORK/metrics" \
    || fail "metrics missing alert gauges"
grep -q '^# EOF' "$WORK/metrics" || fail "metrics not OpenMetrics-terminated"
echo "service_smoke: metrics expose cache counters and alert gauges"

# Graceful shutdown: POST, then the process must exit 0 on its own.
curl -sSf -XPOST "$BASE/v1/shutdown" | grep -q 'shutting down' \
    || fail "shutdown endpoint"
RC=0
wait "$SERVER_PID" || RC=$?
SERVER_PID=
[ "$RC" = 0 ] || fail "server exited $RC after shutdown"
echo "service_smoke: PASS"
