file(REMOVE_RECURSE
  "../bench/abl_geo_failover"
  "../bench/abl_geo_failover.pdb"
  "CMakeFiles/abl_geo_failover.dir/abl_geo_failover.cpp.o"
  "CMakeFiles/abl_geo_failover.dir/abl_geo_failover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_geo_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
