# Empty dependencies file for abl_geo_failover.
# This may be replaced when dependencies are built.
