# Empty compiler generated dependencies file for tab03_configurations.
# This may be replaced when dependencies are built.
