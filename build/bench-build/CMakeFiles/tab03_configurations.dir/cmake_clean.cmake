file(REMOVE_RECURSE
  "../bench/tab03_configurations"
  "../bench/tab03_configurations.pdb"
  "CMakeFiles/tab03_configurations.dir/tab03_configurations.cpp.o"
  "CMakeFiles/tab03_configurations.dir/tab03_configurations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_configurations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
