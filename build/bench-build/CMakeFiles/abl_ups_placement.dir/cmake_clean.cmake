file(REMOVE_RECURSE
  "../bench/abl_ups_placement"
  "../bench/abl_ups_placement.pdb"
  "CMakeFiles/abl_ups_placement.dir/abl_ups_placement.cpp.o"
  "CMakeFiles/abl_ups_placement.dir/abl_ups_placement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ups_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
