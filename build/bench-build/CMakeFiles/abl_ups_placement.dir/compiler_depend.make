# Empty compiler generated dependencies file for abl_ups_placement.
# This may be replaced when dependencies are built.
