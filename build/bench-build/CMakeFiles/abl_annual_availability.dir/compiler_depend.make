# Empty compiler generated dependencies file for abl_annual_availability.
# This may be replaced when dependencies are built.
