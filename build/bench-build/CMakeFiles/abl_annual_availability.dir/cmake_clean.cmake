file(REMOVE_RECURSE
  "../bench/abl_annual_availability"
  "../bench/abl_annual_availability.pdb"
  "CMakeFiles/abl_annual_availability.dir/abl_annual_availability.cpp.o"
  "CMakeFiles/abl_annual_availability.dir/abl_annual_availability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_annual_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
