# Empty dependencies file for fig01_outage_distribution.
# This may be replaced when dependencies are built.
