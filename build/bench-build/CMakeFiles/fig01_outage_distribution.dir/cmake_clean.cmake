file(REMOVE_RECURSE
  "../bench/fig01_outage_distribution"
  "../bench/fig01_outage_distribution.pdb"
  "CMakeFiles/fig01_outage_distribution.dir/fig01_outage_distribution.cpp.o"
  "CMakeFiles/fig01_outage_distribution.dir/fig01_outage_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_outage_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
