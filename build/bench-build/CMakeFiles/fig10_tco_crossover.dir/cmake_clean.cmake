file(REMOVE_RECURSE
  "../bench/fig10_tco_crossover"
  "../bench/fig10_tco_crossover.pdb"
  "CMakeFiles/fig10_tco_crossover.dir/fig10_tco_crossover.cpp.o"
  "CMakeFiles/fig10_tco_crossover.dir/fig10_tco_crossover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tco_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
