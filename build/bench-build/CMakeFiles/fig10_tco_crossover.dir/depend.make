# Empty dependencies file for fig10_tco_crossover.
# This may be replaced when dependencies are built.
