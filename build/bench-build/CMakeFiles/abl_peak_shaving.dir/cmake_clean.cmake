file(REMOVE_RECURSE
  "../bench/abl_peak_shaving"
  "../bench/abl_peak_shaving.pdb"
  "CMakeFiles/abl_peak_shaving.dir/abl_peak_shaving.cpp.o"
  "CMakeFiles/abl_peak_shaving.dir/abl_peak_shaving.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_peak_shaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
