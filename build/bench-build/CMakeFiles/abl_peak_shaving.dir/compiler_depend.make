# Empty compiler generated dependencies file for abl_peak_shaving.
# This may be replaced when dependencies are built.
