# Empty compiler generated dependencies file for tab08_save_resume.
# This may be replaced when dependencies are built.
