file(REMOVE_RECURSE
  "../bench/tab08_save_resume"
  "../bench/tab08_save_resume.pdb"
  "CMakeFiles/tab08_save_resume.dir/tab08_save_resume.cpp.o"
  "CMakeFiles/tab08_save_resume.dir/tab08_save_resume.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab08_save_resume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
