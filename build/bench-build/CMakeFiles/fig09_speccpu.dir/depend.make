# Empty dependencies file for fig09_speccpu.
# This may be replaced when dependencies are built.
