file(REMOVE_RECURSE
  "../bench/fig09_speccpu"
  "../bench/fig09_speccpu.pdb"
  "CMakeFiles/fig09_speccpu.dir/fig09_speccpu.cpp.o"
  "CMakeFiles/fig09_speccpu.dir/fig09_speccpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_speccpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
