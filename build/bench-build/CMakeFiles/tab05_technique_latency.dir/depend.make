# Empty dependencies file for tab05_technique_latency.
# This may be replaced when dependencies are built.
