file(REMOVE_RECURSE
  "../bench/tab05_technique_latency"
  "../bench/tab05_technique_latency.pdb"
  "CMakeFiles/tab05_technique_latency.dir/tab05_technique_latency.cpp.o"
  "CMakeFiles/tab05_technique_latency.dir/tab05_technique_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_technique_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
