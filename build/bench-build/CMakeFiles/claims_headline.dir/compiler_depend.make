# Empty compiler generated dependencies file for claims_headline.
# This may be replaced when dependencies are built.
