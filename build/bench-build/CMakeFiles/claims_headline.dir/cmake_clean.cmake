file(REMOVE_RECURSE
  "../bench/claims_headline"
  "../bench/claims_headline.pdb"
  "CMakeFiles/claims_headline.dir/claims_headline.cpp.o"
  "CMakeFiles/claims_headline.dir/claims_headline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claims_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
