# Empty dependencies file for fig06_specjbb_techniques.
# This may be replaced when dependencies are built.
