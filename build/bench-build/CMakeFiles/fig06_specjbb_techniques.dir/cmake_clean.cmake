file(REMOVE_RECURSE
  "../bench/fig06_specjbb_techniques"
  "../bench/fig06_specjbb_techniques.pdb"
  "CMakeFiles/fig06_specjbb_techniques.dir/fig06_specjbb_techniques.cpp.o"
  "CMakeFiles/fig06_specjbb_techniques.dir/fig06_specjbb_techniques.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_specjbb_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
