file(REMOVE_RECURSE
  "../bench/fig05_specjbb_configs"
  "../bench/fig05_specjbb_configs.pdb"
  "CMakeFiles/fig05_specjbb_configs.dir/fig05_specjbb_configs.cpp.o"
  "CMakeFiles/fig05_specjbb_configs.dir/fig05_specjbb_configs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_specjbb_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
