# Empty dependencies file for fig05_specjbb_configs.
# This may be replaced when dependencies are built.
