file(REMOVE_RECURSE
  "../bench/abl_free_runtime"
  "../bench/abl_free_runtime.pdb"
  "CMakeFiles/abl_free_runtime.dir/abl_free_runtime.cpp.o"
  "CMakeFiles/abl_free_runtime.dir/abl_free_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_free_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
