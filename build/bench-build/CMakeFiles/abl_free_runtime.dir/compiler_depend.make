# Empty compiler generated dependencies file for abl_free_runtime.
# This may be replaced when dependencies are built.
