file(REMOVE_RECURSE
  "../bench/fig07_memcached"
  "../bench/fig07_memcached.pdb"
  "CMakeFiles/fig07_memcached.dir/fig07_memcached.cpp.o"
  "CMakeFiles/fig07_memcached.dir/fig07_memcached.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_memcached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
