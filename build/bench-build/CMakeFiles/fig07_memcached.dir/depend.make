# Empty dependencies file for fig07_memcached.
# This may be replaced when dependencies are built.
