file(REMOVE_RECURSE
  "../bench/fig08_websearch"
  "../bench/fig08_websearch.pdb"
  "CMakeFiles/fig08_websearch.dir/fig08_websearch.cpp.o"
  "CMakeFiles/fig08_websearch.dir/fig08_websearch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_websearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
