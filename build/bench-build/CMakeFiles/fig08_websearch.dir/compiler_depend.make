# Empty compiler generated dependencies file for fig08_websearch.
# This may be replaced when dependencies are built.
