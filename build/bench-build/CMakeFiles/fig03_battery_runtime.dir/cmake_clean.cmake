file(REMOVE_RECURSE
  "../bench/fig03_battery_runtime"
  "../bench/fig03_battery_runtime.pdb"
  "CMakeFiles/fig03_battery_runtime.dir/fig03_battery_runtime.cpp.o"
  "CMakeFiles/fig03_battery_runtime.dir/fig03_battery_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_battery_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
