file(REMOVE_RECURSE
  "../bench/abl_adaptive"
  "../bench/abl_adaptive.pdb"
  "CMakeFiles/abl_adaptive.dir/abl_adaptive.cpp.o"
  "CMakeFiles/abl_adaptive.dir/abl_adaptive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
