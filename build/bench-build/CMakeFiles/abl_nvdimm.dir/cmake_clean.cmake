file(REMOVE_RECURSE
  "../bench/abl_nvdimm"
  "../bench/abl_nvdimm.pdb"
  "CMakeFiles/abl_nvdimm.dir/abl_nvdimm.cpp.o"
  "CMakeFiles/abl_nvdimm.dir/abl_nvdimm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_nvdimm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
