# Empty dependencies file for abl_nvdimm.
# This may be replaced when dependencies are built.
