file(REMOVE_RECURSE
  "../bench/abl_battery_tech"
  "../bench/abl_battery_tech.pdb"
  "CMakeFiles/abl_battery_tech.dir/abl_battery_tech.cpp.o"
  "CMakeFiles/abl_battery_tech.dir/abl_battery_tech.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_battery_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
