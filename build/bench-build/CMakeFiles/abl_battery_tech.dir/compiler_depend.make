# Empty compiler generated dependencies file for abl_battery_tech.
# This may be replaced when dependencies are built.
