# Empty compiler generated dependencies file for tab02_backup_cost.
# This may be replaced when dependencies are built.
