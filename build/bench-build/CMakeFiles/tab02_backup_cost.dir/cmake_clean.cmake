file(REMOVE_RECURSE
  "../bench/tab02_backup_cost"
  "../bench/tab02_backup_cost.pdb"
  "CMakeFiles/tab02_backup_cost.dir/tab02_backup_cost.cpp.o"
  "CMakeFiles/tab02_backup_cost.dir/tab02_backup_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_backup_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
