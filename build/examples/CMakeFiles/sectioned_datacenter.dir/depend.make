# Empty dependencies file for sectioned_datacenter.
# This may be replaced when dependencies are built.
