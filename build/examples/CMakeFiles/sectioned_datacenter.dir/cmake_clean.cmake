file(REMOVE_RECURSE
  "CMakeFiles/sectioned_datacenter.dir/sectioned_datacenter.cpp.o"
  "CMakeFiles/sectioned_datacenter.dir/sectioned_datacenter.cpp.o.d"
  "sectioned_datacenter"
  "sectioned_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sectioned_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
