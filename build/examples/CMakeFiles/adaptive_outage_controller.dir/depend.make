# Empty dependencies file for adaptive_outage_controller.
# This may be replaced when dependencies are built.
