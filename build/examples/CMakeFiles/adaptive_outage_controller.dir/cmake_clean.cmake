file(REMOVE_RECURSE
  "CMakeFiles/adaptive_outage_controller.dir/adaptive_outage_controller.cpp.o"
  "CMakeFiles/adaptive_outage_controller.dir/adaptive_outage_controller.cpp.o.d"
  "adaptive_outage_controller"
  "adaptive_outage_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_outage_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
