add_test([=[Umbrella.EverythingIsReachable]=]  /root/repo/build/tests/umbrella_test [==[--gtest_filter=Umbrella.EverythingIsReachable]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Umbrella.EverythingIsReachable]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  umbrella_test_TESTS Umbrella.EverythingIsReachable)
