
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/analyzer_test.cc" "tests/CMakeFiles/core_test.dir/core/analyzer_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/analyzer_test.cc.o.d"
  "/root/repo/tests/core/annual_test.cc" "tests/CMakeFiles/core_test.dir/core/annual_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/annual_test.cc.o.d"
  "/root/repo/tests/core/backup_config_test.cc" "tests/CMakeFiles/core_test.dir/core/backup_config_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/backup_config_test.cc.o.d"
  "/root/repo/tests/core/battery_tech_test.cc" "tests/CMakeFiles/core_test.dir/core/battery_tech_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/battery_tech_test.cc.o.d"
  "/root/repo/tests/core/cost_model_test.cc" "tests/CMakeFiles/core_test.dir/core/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/cost_model_test.cc.o.d"
  "/root/repo/tests/core/datacenter_test.cc" "tests/CMakeFiles/core_test.dir/core/datacenter_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/datacenter_test.cc.o.d"
  "/root/repo/tests/core/paper_claims_test.cc" "tests/CMakeFiles/core_test.dir/core/paper_claims_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/paper_claims_test.cc.o.d"
  "/root/repo/tests/core/selector_test.cc" "tests/CMakeFiles/core_test.dir/core/selector_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/selector_test.cc.o.d"
  "/root/repo/tests/core/tco_test.cc" "tests/CMakeFiles/core_test.dir/core/tco_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/tco_test.cc.o.d"
  "/root/repo/tests/core/workload_sweep_test.cc" "tests/CMakeFiles/core_test.dir/core/workload_sweep_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/workload_sweep_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bpsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/technique/CMakeFiles/bpsim_technique.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bpsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/bpsim_server.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/bpsim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/outage/CMakeFiles/bpsim_outage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bpsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
