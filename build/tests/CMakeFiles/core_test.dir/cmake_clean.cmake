file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/analyzer_test.cc.o"
  "CMakeFiles/core_test.dir/core/analyzer_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/annual_test.cc.o"
  "CMakeFiles/core_test.dir/core/annual_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/backup_config_test.cc.o"
  "CMakeFiles/core_test.dir/core/backup_config_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/battery_tech_test.cc.o"
  "CMakeFiles/core_test.dir/core/battery_tech_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/cost_model_test.cc.o"
  "CMakeFiles/core_test.dir/core/cost_model_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/datacenter_test.cc.o"
  "CMakeFiles/core_test.dir/core/datacenter_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/paper_claims_test.cc.o"
  "CMakeFiles/core_test.dir/core/paper_claims_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/selector_test.cc.o"
  "CMakeFiles/core_test.dir/core/selector_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/tco_test.cc.o"
  "CMakeFiles/core_test.dir/core/tco_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/workload_sweep_test.cc.o"
  "CMakeFiles/core_test.dir/core/workload_sweep_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
