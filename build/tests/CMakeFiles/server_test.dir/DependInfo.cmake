
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/server/dirty_pages_test.cc" "tests/CMakeFiles/server_test.dir/server/dirty_pages_test.cc.o" "gcc" "tests/CMakeFiles/server_test.dir/server/dirty_pages_test.cc.o.d"
  "/root/repo/tests/server/server_model_test.cc" "tests/CMakeFiles/server_test.dir/server/server_model_test.cc.o" "gcc" "tests/CMakeFiles/server_test.dir/server/server_model_test.cc.o.d"
  "/root/repo/tests/server/server_test.cc" "tests/CMakeFiles/server_test.dir/server/server_test.cc.o" "gcc" "tests/CMakeFiles/server_test.dir/server/server_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bpsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/technique/CMakeFiles/bpsim_technique.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bpsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/bpsim_server.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/bpsim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/outage/CMakeFiles/bpsim_outage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bpsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
