file(REMOVE_RECURSE
  "CMakeFiles/workload_test.dir/workload/application_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/application_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/cluster_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/cluster_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/heterogeneous_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/heterogeneous_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/load_profile_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/load_profile_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/nvdimm_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/nvdimm_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/profile_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/profile_test.cc.o.d"
  "workload_test"
  "workload_test.pdb"
  "workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
