
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/technique/adaptive_test.cc" "tests/CMakeFiles/technique_test.dir/technique/adaptive_test.cc.o" "gcc" "tests/CMakeFiles/technique_test.dir/technique/adaptive_test.cc.o.d"
  "/root/repo/tests/technique/catalog_test.cc" "tests/CMakeFiles/technique_test.dir/technique/catalog_test.cc.o" "gcc" "tests/CMakeFiles/technique_test.dir/technique/catalog_test.cc.o.d"
  "/root/repo/tests/technique/dg_aware_test.cc" "tests/CMakeFiles/technique_test.dir/technique/dg_aware_test.cc.o" "gcc" "tests/CMakeFiles/technique_test.dir/technique/dg_aware_test.cc.o.d"
  "/root/repo/tests/technique/double_outage_test.cc" "tests/CMakeFiles/technique_test.dir/technique/double_outage_test.cc.o" "gcc" "tests/CMakeFiles/technique_test.dir/technique/double_outage_test.cc.o.d"
  "/root/repo/tests/technique/geo_failover_test.cc" "tests/CMakeFiles/technique_test.dir/technique/geo_failover_test.cc.o" "gcc" "tests/CMakeFiles/technique_test.dir/technique/geo_failover_test.cc.o.d"
  "/root/repo/tests/technique/hybrid_test.cc" "tests/CMakeFiles/technique_test.dir/technique/hybrid_test.cc.o" "gcc" "tests/CMakeFiles/technique_test.dir/technique/hybrid_test.cc.o.d"
  "/root/repo/tests/technique/migration_test.cc" "tests/CMakeFiles/technique_test.dir/technique/migration_test.cc.o" "gcc" "tests/CMakeFiles/technique_test.dir/technique/migration_test.cc.o.d"
  "/root/repo/tests/technique/save_state_test.cc" "tests/CMakeFiles/technique_test.dir/technique/save_state_test.cc.o" "gcc" "tests/CMakeFiles/technique_test.dir/technique/save_state_test.cc.o.d"
  "/root/repo/tests/technique/table4_phases_test.cc" "tests/CMakeFiles/technique_test.dir/technique/table4_phases_test.cc.o" "gcc" "tests/CMakeFiles/technique_test.dir/technique/table4_phases_test.cc.o.d"
  "/root/repo/tests/technique/throttling_test.cc" "tests/CMakeFiles/technique_test.dir/technique/throttling_test.cc.o" "gcc" "tests/CMakeFiles/technique_test.dir/technique/throttling_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bpsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/technique/CMakeFiles/bpsim_technique.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bpsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/bpsim_server.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/bpsim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/outage/CMakeFiles/bpsim_outage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bpsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
