file(REMOVE_RECURSE
  "CMakeFiles/technique_test.dir/technique/adaptive_test.cc.o"
  "CMakeFiles/technique_test.dir/technique/adaptive_test.cc.o.d"
  "CMakeFiles/technique_test.dir/technique/catalog_test.cc.o"
  "CMakeFiles/technique_test.dir/technique/catalog_test.cc.o.d"
  "CMakeFiles/technique_test.dir/technique/dg_aware_test.cc.o"
  "CMakeFiles/technique_test.dir/technique/dg_aware_test.cc.o.d"
  "CMakeFiles/technique_test.dir/technique/double_outage_test.cc.o"
  "CMakeFiles/technique_test.dir/technique/double_outage_test.cc.o.d"
  "CMakeFiles/technique_test.dir/technique/geo_failover_test.cc.o"
  "CMakeFiles/technique_test.dir/technique/geo_failover_test.cc.o.d"
  "CMakeFiles/technique_test.dir/technique/hybrid_test.cc.o"
  "CMakeFiles/technique_test.dir/technique/hybrid_test.cc.o.d"
  "CMakeFiles/technique_test.dir/technique/migration_test.cc.o"
  "CMakeFiles/technique_test.dir/technique/migration_test.cc.o.d"
  "CMakeFiles/technique_test.dir/technique/save_state_test.cc.o"
  "CMakeFiles/technique_test.dir/technique/save_state_test.cc.o.d"
  "CMakeFiles/technique_test.dir/technique/table4_phases_test.cc.o"
  "CMakeFiles/technique_test.dir/technique/table4_phases_test.cc.o.d"
  "CMakeFiles/technique_test.dir/technique/throttling_test.cc.o"
  "CMakeFiles/technique_test.dir/technique/throttling_test.cc.o.d"
  "technique_test"
  "technique_test.pdb"
  "technique_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/technique_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
