# Empty dependencies file for bpsim_technique.
# This may be replaced when dependencies are built.
