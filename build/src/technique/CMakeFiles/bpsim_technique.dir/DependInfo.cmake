
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/technique/adaptive.cc" "src/technique/CMakeFiles/bpsim_technique.dir/adaptive.cc.o" "gcc" "src/technique/CMakeFiles/bpsim_technique.dir/adaptive.cc.o.d"
  "/root/repo/src/technique/catalog.cc" "src/technique/CMakeFiles/bpsim_technique.dir/catalog.cc.o" "gcc" "src/technique/CMakeFiles/bpsim_technique.dir/catalog.cc.o.d"
  "/root/repo/src/technique/geo_failover.cc" "src/technique/CMakeFiles/bpsim_technique.dir/geo_failover.cc.o" "gcc" "src/technique/CMakeFiles/bpsim_technique.dir/geo_failover.cc.o.d"
  "/root/repo/src/technique/hibernate.cc" "src/technique/CMakeFiles/bpsim_technique.dir/hibernate.cc.o" "gcc" "src/technique/CMakeFiles/bpsim_technique.dir/hibernate.cc.o.d"
  "/root/repo/src/technique/hybrid.cc" "src/technique/CMakeFiles/bpsim_technique.dir/hybrid.cc.o" "gcc" "src/technique/CMakeFiles/bpsim_technique.dir/hybrid.cc.o.d"
  "/root/repo/src/technique/migration.cc" "src/technique/CMakeFiles/bpsim_technique.dir/migration.cc.o" "gcc" "src/technique/CMakeFiles/bpsim_technique.dir/migration.cc.o.d"
  "/root/repo/src/technique/sleep.cc" "src/technique/CMakeFiles/bpsim_technique.dir/sleep.cc.o" "gcc" "src/technique/CMakeFiles/bpsim_technique.dir/sleep.cc.o.d"
  "/root/repo/src/technique/technique.cc" "src/technique/CMakeFiles/bpsim_technique.dir/technique.cc.o" "gcc" "src/technique/CMakeFiles/bpsim_technique.dir/technique.cc.o.d"
  "/root/repo/src/technique/throttling.cc" "src/technique/CMakeFiles/bpsim_technique.dir/throttling.cc.o" "gcc" "src/technique/CMakeFiles/bpsim_technique.dir/throttling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/bpsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/outage/CMakeFiles/bpsim_outage.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/bpsim_server.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/bpsim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bpsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
