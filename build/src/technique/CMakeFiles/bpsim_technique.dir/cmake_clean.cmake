file(REMOVE_RECURSE
  "CMakeFiles/bpsim_technique.dir/adaptive.cc.o"
  "CMakeFiles/bpsim_technique.dir/adaptive.cc.o.d"
  "CMakeFiles/bpsim_technique.dir/catalog.cc.o"
  "CMakeFiles/bpsim_technique.dir/catalog.cc.o.d"
  "CMakeFiles/bpsim_technique.dir/geo_failover.cc.o"
  "CMakeFiles/bpsim_technique.dir/geo_failover.cc.o.d"
  "CMakeFiles/bpsim_technique.dir/hibernate.cc.o"
  "CMakeFiles/bpsim_technique.dir/hibernate.cc.o.d"
  "CMakeFiles/bpsim_technique.dir/hybrid.cc.o"
  "CMakeFiles/bpsim_technique.dir/hybrid.cc.o.d"
  "CMakeFiles/bpsim_technique.dir/migration.cc.o"
  "CMakeFiles/bpsim_technique.dir/migration.cc.o.d"
  "CMakeFiles/bpsim_technique.dir/sleep.cc.o"
  "CMakeFiles/bpsim_technique.dir/sleep.cc.o.d"
  "CMakeFiles/bpsim_technique.dir/technique.cc.o"
  "CMakeFiles/bpsim_technique.dir/technique.cc.o.d"
  "CMakeFiles/bpsim_technique.dir/throttling.cc.o"
  "CMakeFiles/bpsim_technique.dir/throttling.cc.o.d"
  "libbpsim_technique.a"
  "libbpsim_technique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_technique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
