file(REMOVE_RECURSE
  "libbpsim_technique.a"
)
