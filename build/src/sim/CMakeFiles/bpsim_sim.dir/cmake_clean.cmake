file(REMOVE_RECURSE
  "CMakeFiles/bpsim_sim.dir/csv.cc.o"
  "CMakeFiles/bpsim_sim.dir/csv.cc.o.d"
  "CMakeFiles/bpsim_sim.dir/event.cc.o"
  "CMakeFiles/bpsim_sim.dir/event.cc.o.d"
  "CMakeFiles/bpsim_sim.dir/logging.cc.o"
  "CMakeFiles/bpsim_sim.dir/logging.cc.o.d"
  "CMakeFiles/bpsim_sim.dir/random.cc.o"
  "CMakeFiles/bpsim_sim.dir/random.cc.o.d"
  "CMakeFiles/bpsim_sim.dir/simulator.cc.o"
  "CMakeFiles/bpsim_sim.dir/simulator.cc.o.d"
  "CMakeFiles/bpsim_sim.dir/stats.cc.o"
  "CMakeFiles/bpsim_sim.dir/stats.cc.o.d"
  "CMakeFiles/bpsim_sim.dir/timeline.cc.o"
  "CMakeFiles/bpsim_sim.dir/timeline.cc.o.d"
  "libbpsim_sim.a"
  "libbpsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
