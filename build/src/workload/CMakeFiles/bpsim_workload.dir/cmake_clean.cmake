file(REMOVE_RECURSE
  "CMakeFiles/bpsim_workload.dir/application.cc.o"
  "CMakeFiles/bpsim_workload.dir/application.cc.o.d"
  "CMakeFiles/bpsim_workload.dir/cluster.cc.o"
  "CMakeFiles/bpsim_workload.dir/cluster.cc.o.d"
  "CMakeFiles/bpsim_workload.dir/load_profile.cc.o"
  "CMakeFiles/bpsim_workload.dir/load_profile.cc.o.d"
  "CMakeFiles/bpsim_workload.dir/profile.cc.o"
  "CMakeFiles/bpsim_workload.dir/profile.cc.o.d"
  "libbpsim_workload.a"
  "libbpsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
