
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/application.cc" "src/workload/CMakeFiles/bpsim_workload.dir/application.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/application.cc.o.d"
  "/root/repo/src/workload/cluster.cc" "src/workload/CMakeFiles/bpsim_workload.dir/cluster.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/cluster.cc.o.d"
  "/root/repo/src/workload/load_profile.cc" "src/workload/CMakeFiles/bpsim_workload.dir/load_profile.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/load_profile.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/workload/CMakeFiles/bpsim_workload.dir/profile.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/server/CMakeFiles/bpsim_server.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/bpsim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bpsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
