# Empty compiler generated dependencies file for bpsim_outage.
# This may be replaced when dependencies are built.
