
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/outage/distribution.cc" "src/outage/CMakeFiles/bpsim_outage.dir/distribution.cc.o" "gcc" "src/outage/CMakeFiles/bpsim_outage.dir/distribution.cc.o.d"
  "/root/repo/src/outage/predictor.cc" "src/outage/CMakeFiles/bpsim_outage.dir/predictor.cc.o" "gcc" "src/outage/CMakeFiles/bpsim_outage.dir/predictor.cc.o.d"
  "/root/repo/src/outage/trace.cc" "src/outage/CMakeFiles/bpsim_outage.dir/trace.cc.o" "gcc" "src/outage/CMakeFiles/bpsim_outage.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bpsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
