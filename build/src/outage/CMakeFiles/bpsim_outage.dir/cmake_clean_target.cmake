file(REMOVE_RECURSE
  "libbpsim_outage.a"
)
