file(REMOVE_RECURSE
  "CMakeFiles/bpsim_outage.dir/distribution.cc.o"
  "CMakeFiles/bpsim_outage.dir/distribution.cc.o.d"
  "CMakeFiles/bpsim_outage.dir/predictor.cc.o"
  "CMakeFiles/bpsim_outage.dir/predictor.cc.o.d"
  "CMakeFiles/bpsim_outage.dir/trace.cc.o"
  "CMakeFiles/bpsim_outage.dir/trace.cc.o.d"
  "libbpsim_outage.a"
  "libbpsim_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
