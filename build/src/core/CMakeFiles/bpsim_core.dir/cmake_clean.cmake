file(REMOVE_RECURSE
  "CMakeFiles/bpsim_core.dir/analyzer.cc.o"
  "CMakeFiles/bpsim_core.dir/analyzer.cc.o.d"
  "CMakeFiles/bpsim_core.dir/annual.cc.o"
  "CMakeFiles/bpsim_core.dir/annual.cc.o.d"
  "CMakeFiles/bpsim_core.dir/backup_config.cc.o"
  "CMakeFiles/bpsim_core.dir/backup_config.cc.o.d"
  "CMakeFiles/bpsim_core.dir/cost_model.cc.o"
  "CMakeFiles/bpsim_core.dir/cost_model.cc.o.d"
  "CMakeFiles/bpsim_core.dir/datacenter.cc.o"
  "CMakeFiles/bpsim_core.dir/datacenter.cc.o.d"
  "CMakeFiles/bpsim_core.dir/selector.cc.o"
  "CMakeFiles/bpsim_core.dir/selector.cc.o.d"
  "libbpsim_core.a"
  "libbpsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
