
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/ats.cc" "src/power/CMakeFiles/bpsim_power.dir/ats.cc.o" "gcc" "src/power/CMakeFiles/bpsim_power.dir/ats.cc.o.d"
  "/root/repo/src/power/battery.cc" "src/power/CMakeFiles/bpsim_power.dir/battery.cc.o" "gcc" "src/power/CMakeFiles/bpsim_power.dir/battery.cc.o.d"
  "/root/repo/src/power/diesel_generator.cc" "src/power/CMakeFiles/bpsim_power.dir/diesel_generator.cc.o" "gcc" "src/power/CMakeFiles/bpsim_power.dir/diesel_generator.cc.o.d"
  "/root/repo/src/power/power_hierarchy.cc" "src/power/CMakeFiles/bpsim_power.dir/power_hierarchy.cc.o" "gcc" "src/power/CMakeFiles/bpsim_power.dir/power_hierarchy.cc.o.d"
  "/root/repo/src/power/ups.cc" "src/power/CMakeFiles/bpsim_power.dir/ups.cc.o" "gcc" "src/power/CMakeFiles/bpsim_power.dir/ups.cc.o.d"
  "/root/repo/src/power/utility.cc" "src/power/CMakeFiles/bpsim_power.dir/utility.cc.o" "gcc" "src/power/CMakeFiles/bpsim_power.dir/utility.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bpsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
