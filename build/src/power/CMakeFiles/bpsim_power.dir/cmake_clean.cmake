file(REMOVE_RECURSE
  "CMakeFiles/bpsim_power.dir/ats.cc.o"
  "CMakeFiles/bpsim_power.dir/ats.cc.o.d"
  "CMakeFiles/bpsim_power.dir/battery.cc.o"
  "CMakeFiles/bpsim_power.dir/battery.cc.o.d"
  "CMakeFiles/bpsim_power.dir/diesel_generator.cc.o"
  "CMakeFiles/bpsim_power.dir/diesel_generator.cc.o.d"
  "CMakeFiles/bpsim_power.dir/power_hierarchy.cc.o"
  "CMakeFiles/bpsim_power.dir/power_hierarchy.cc.o.d"
  "CMakeFiles/bpsim_power.dir/ups.cc.o"
  "CMakeFiles/bpsim_power.dir/ups.cc.o.d"
  "CMakeFiles/bpsim_power.dir/utility.cc.o"
  "CMakeFiles/bpsim_power.dir/utility.cc.o.d"
  "libbpsim_power.a"
  "libbpsim_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
