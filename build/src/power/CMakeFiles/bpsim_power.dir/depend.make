# Empty dependencies file for bpsim_power.
# This may be replaced when dependencies are built.
