file(REMOVE_RECURSE
  "libbpsim_power.a"
)
