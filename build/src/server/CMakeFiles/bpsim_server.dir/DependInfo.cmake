
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/dirty_pages.cc" "src/server/CMakeFiles/bpsim_server.dir/dirty_pages.cc.o" "gcc" "src/server/CMakeFiles/bpsim_server.dir/dirty_pages.cc.o.d"
  "/root/repo/src/server/server.cc" "src/server/CMakeFiles/bpsim_server.dir/server.cc.o" "gcc" "src/server/CMakeFiles/bpsim_server.dir/server.cc.o.d"
  "/root/repo/src/server/server_model.cc" "src/server/CMakeFiles/bpsim_server.dir/server_model.cc.o" "gcc" "src/server/CMakeFiles/bpsim_server.dir/server_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bpsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
