file(REMOVE_RECURSE
  "libbpsim_server.a"
)
