file(REMOVE_RECURSE
  "CMakeFiles/bpsim_server.dir/dirty_pages.cc.o"
  "CMakeFiles/bpsim_server.dir/dirty_pages.cc.o.d"
  "CMakeFiles/bpsim_server.dir/server.cc.o"
  "CMakeFiles/bpsim_server.dir/server.cc.o.d"
  "CMakeFiles/bpsim_server.dir/server_model.cc.o"
  "CMakeFiles/bpsim_server.dir/server_model.cc.o.d"
  "libbpsim_server.a"
  "libbpsim_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
