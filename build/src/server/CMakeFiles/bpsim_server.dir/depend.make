# Empty dependencies file for bpsim_server.
# This may be replaced when dependencies are built.
