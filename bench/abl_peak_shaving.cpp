/**
 * @file
 * Ablation: dual-use batteries — peak shaving vs outage readiness.
 *
 * Section 2 contrasts backup under-provisioning with *normal* power
 * under-provisioning, where batteries shave daily peaks (Govindan'12,
 * Kontorinis'12) and are therefore called on constantly. This bench
 * quantifies the conflict: a string that spends its day shaving the
 * diurnal peak may meet an outage partially drained.
 */

#include <cstdio>

#include "power/utility.hh"
#include "sim/logging.hh"
#include "technique/catalog.hh"
#include "workload/load_profile.hh"

using namespace bpsim;

namespace
{

struct DayResult
{
    double shavedKwh;      // energy the battery supplied for shaving
    double socAtPeakHour;  // state of charge at 14:00
    bool outageSurvived;   // 10-minute outage at peak hour
    double lifePerYearPct; // cycle life consumed, extrapolated to a year
};

DayResult
runDay(double shave_threshold_frac, double runtime_min,
       bool outage_at_peak)
{
    Simulator sim;
    Utility utility(sim);
    PowerHierarchy::Config cfg;
    cfg.hasDg = false;
    cfg.hasUps = true;
    cfg.ups.powerCapacityW = 8 * 250.0;
    cfg.ups.runtimeAtRatedSec = runtime_min * 60.0;
    if (shave_threshold_frac > 0.0)
        cfg.peakShaveThresholdW = shave_threshold_frac * 8 * 250.0;
    PowerHierarchy hierarchy(sim, utility, cfg);
    Cluster cluster(sim, hierarchy, ServerModel{}, memcachedProfile(), 8);
    auto technique =
        makeTechnique({TechniqueKind::Throttle, 5, 0, 0, false});
    technique->attach(sim, cluster, hierarchy);
    cluster.primeSteadyState();

    DiurnalLoadDriver::Params lp;
    lp.minUtil = 0.35;
    lp.maxUtil = 1.0;
    DiurnalLoadDriver diurnal(sim, cluster, lp);
    diurnal.start();

    if (outage_at_peak)
        utility.scheduleOutage(14 * kHour, 10 * kMinute);

    sim.runUntil(13 * kHour + 59 * kMinute);
    DayResult r;
    r.socAtPeakHour = hierarchy.ups()->battery().soc();
    sim.runUntil(24 * kHour);
    r.shavedKwh = joulesToKwh(hierarchy.meter().batteryEnergyJ(
                      0, 14 * kHour)); // shaving only, pre-outage
    r.outageSurvived = hierarchy.powerLossCount() == 0;
    r.lifePerYearPct =
        hierarchy.ups()->battery().lifeFractionUsed() * 365.0 * 100.0;
    return r;
}

} // namespace

int
main()
{
    setQuietLogging(true);
    std::printf("=== Ablation: peak shaving vs outage readiness ===\n");
    std::printf("(8 x memcached, diurnal load 35-100%%, shaving "
                "threshold as a fraction of peak;\n outage: 10 minutes "
                "at the 14:00 load peak, defended by Throttle(p5))\n\n");

    std::printf("%-12s %-12s %14s %12s %10s %14s\n", "threshold",
                "battery", "shaved (kWh)", "SoC @14:00", "outage",
                "wear %/year");
    for (double runtime_min : {10.0, 30.0}) {
        for (double frac : {0.0, 0.95, 0.9, 0.8}) {
            const auto r = runDay(frac, runtime_min, true);
            // Wear is extrapolated from an *outage-free* day: outages
            // are rare (Figure 1), daily shaving is not.
            const auto quiet = runDay(frac, runtime_min, false);
            std::printf("%11.0f%% %9.0f min %14.2f %11.0f%% %10s %13.1f%%\n",
                        frac * 100.0, runtime_min, r.shavedKwh,
                        r.socAtPeakHour * 100.0,
                        r.outageSurvived ? "survived" : "CRASHED",
                        quiet.lifePerYearPct);
        }
        std::printf("\n");
    }

    std::printf("Reading: the deeper the shaving (lower threshold), "
                "the more distribution\n"
                "capacity the operator saves during normal operation — "
                "and the emptier the\n"
                "string when the outage lands at peak hour. Backup "
                "under-provisioning and\n"
                "normal under-provisioning compete for the same "
                "energy, exactly the tension\n"
                "the paper's Section 2 identifies; a larger string "
                "(right column) buys both.\n");
    return 0;
}
