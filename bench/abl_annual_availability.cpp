/**
 * @file
 * Ablation: year-scale availability. Instead of single-outage
 * experiments, whole years of Figure 1 utility behaviour (including
 * battery recharge between events) are simulated against each backup
 * configuration with a standing defense policy — what a capacity
 * planner ultimately buys.
 */

#include <cstdio>

#include <algorithm>
#include <cmath>

#include "core/annual.hh"
#include "power/battery.hh"
#include "sim/logging.hh"

using namespace bpsim;

int
main()
{
    setQuietLogging(true);
    constexpr int kYears = 40;
    std::printf("=== Annual availability: %d simulated years per "
                "configuration ===\n", kYears);
    std::printf("(workload: Specjbb x 8; defense: Throttle+Sleep-L "
                "hybrid where a UPS exists)\n\n");

    AnnualSimulator sim;
    std::printf("%-20s %7s %16s %14s %12s\n", "configuration", "cost",
                "E[down] min/yr", "p(loss-free)", "mean perf");

    const CostModel cost;
    for (const auto &config : table3Configs()) {
        // A standing policy: throttle, then sleep if the outage drags.
        // With a DG the serve window just has to cover its ~2.5 min
        // transition (the technique reacts to the DG takeover);
        // without one it is sized to the battery, accounting for the
        // Peukert stretch at the half-power throttle.
        TechniqueSpec defense;
        if (config.hasUps) {
            Time serve = fromMinutes(4.0);
            if (!config.hasDg) {
                const double load_frac =
                    (8.0 * 119.0) / (8.0 * 250.0 * config.upsPowerFrac);
                const double stretched =
                    config.upsRuntimeSec *
                    std::pow(std::min(1.0, load_frac),
                             -figure3PeukertExponent());
                serve = fromSeconds(
                    std::min(std::max(180.0, config.upsRuntimeSec * 0.5),
                             0.8 * stretched));
            }
            defense = {TechniqueKind::ThrottleSleep, 5, 0, serve, true};
        }
        const auto s = sim.runYears(specJbbProfile(), 8, defense, config,
                                    kYears, 1234);
        const auto cap = capacityOf(config, 8 * 250.0);
        std::printf("%-20s %7.2f %16.1f %13.0f%% %12.4f\n",
                    config.name.c_str(),
                    cost.normalizedCost(cap, 8 * 0.25), s.downtimeMin.mean(),
                    s.lossFreeYears * 100.0, s.meanPerf.mean());
    }

    std::printf("\nSame, with NVDIMM hardware and no backup at all:\n");
    {
        // Monte-Carlo by hand so the server params carry the NVDIMM flag.
        auto gen = OutageTraceGenerator::figure1();
        Rng rng(1234);
        SummaryStats down;
        int loss_free = 0;
        for (int y = 0; y < kYears; ++y) {
            Rng year_rng = rng.fork(static_cast<std::uint64_t>(y));
            const auto events =
                gen.generate(year_rng, 365LL * 24 * kHour);
            Simulator s;
            Utility utility(s);
            PowerHierarchy::Config cfg; // no backup
            cfg.hasDg = false;
            cfg.hasUps = false;
            PowerHierarchy hierarchy(s, utility, cfg);
            ServerModel::Params sp;
            sp.nvdimm = true;
            Cluster cluster(s, hierarchy, ServerModel{sp},
                            specJbbProfile(), 8);
            cluster.primeSteadyState();
            for (const auto &ev : events)
                utility.scheduleOutage(ev.start, ev.duration);
            s.runUntil(365LL * 24 * kHour);
            down.add((1.0 - cluster.availabilityTimeline().average(
                                0, 365LL * 24 * kHour)) *
                     365.0 * 24.0 * 60.0);
            if (cluster.app(0).stateLosses() == 0)
                ++loss_free;
        }
        std::printf("%-20s %7.2f %16.1f %13.0f%% \n", "MinCost+NVDIMM",
                    0.0, down.mean(),
                    100.0 * loss_free / kYears);
    }

    std::printf("\nReading: the long-runtime UPS configurations plus "
                "the hybrid defense are\n"
                "100%% loss-free at 0.38-0.55x cost, with the residual "
                "downtime concentrated\n"
                "in the rare multi-hour outages the paper assigns to "
                "geo-failover. The 2-minute\n"
                "batteries (NoDG/SmallPUPS) still lose state in some "
                "years: clustered outages\n"
                "catch them before the 4-hour recharge completes — an "
                "argument for state-of-\n"
                "charge-aware policies (see the adaptive controller "
                "example). NVDIMM achieves\n"
                "loss-free years at zero backup cost but cannot serve "
                "during the outage.\n");
    return 0;
}
