/**
 * @file
 * Ablation: year-scale availability. Instead of single-outage
 * experiments, whole years of Figure 1 utility behaviour (including
 * battery recharge between events) are simulated against each backup
 * configuration with a standing defense policy — what a capacity
 * planner ultimately buys.
 *
 * Re-platformed on the campaign engine: each configuration's years
 * fan out across every core via runAnnualCampaign(), which also
 * yields streaming P95/P99 downtime and a Wilson interval on the
 * loss-free fraction. Aggregates are bit-identical to a serial run.
 * Machine-readable results land in BENCH_abl_annual_availability.json.
 */

#include <cstdio>
#include <cstdlib>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/annual_campaign.hh"
#include "campaign/json.hh"
#include "power/battery.hh"
#include "sim/logging.hh"

using namespace bpsim;

namespace
{

std::uint64_t
trialBudget()
{
    // Default matches the historical 40-year sweep; override to run
    // deeper campaigns (the engine keeps results seed-stable).
    if (const char *env = std::getenv("BPSIM_CAMPAIGN_TRIALS"))
        return std::max(1L, std::atol(env));
    return 40;
}

/** The standing defense the sweep pairs with each configuration. */
TechniqueSpec
defenseFor(const BackupConfigSpec &config)
{
    // A standing policy: throttle, then sleep if the outage drags.
    // With a DG the serve window just has to cover its ~2.5 min
    // transition (the technique reacts to the DG takeover); without
    // one it is sized to the battery, accounting for the Peukert
    // stretch at the half-power throttle.
    TechniqueSpec defense;
    if (config.hasUps) {
        Time serve = fromMinutes(4.0);
        if (!config.hasDg) {
            const double load_frac =
                (8.0 * 119.0) / (8.0 * 250.0 * config.upsPowerFrac);
            const double stretched =
                config.upsRuntimeSec *
                std::pow(std::min(1.0, load_frac),
                         -figure3PeukertExponent());
            serve = fromSeconds(
                std::min(std::max(180.0, config.upsRuntimeSec * 0.5),
                         0.8 * stretched));
        }
        defense = {TechniqueKind::ThrottleSleep, 5, 0, serve, true};
    }
    return defense;
}

} // namespace

int
main()
{
    setQuietLogging(true);
    const std::uint64_t trials = trialBudget();
    std::printf("=== Annual availability: %llu simulated years per "
                "configuration ===\n",
                static_cast<unsigned long long>(trials));
    std::printf("(workload: Specjbb x 8; defense: Throttle+Sleep-L "
                "hybrid where a UPS exists;\n campaign engine on %d "
                "thread(s))\n\n",
                WorkStealingPool::hardwareThreads());

    std::printf("%-20s %7s %16s %10s %19s %12s\n", "configuration",
                "cost", "E[down] min/yr", "P95 down",
                "p(loss-free) [CI]", "mean perf");

    const CostModel cost;
    double total_wall = 0.0;
    std::uint64_t total_trials = 0;
    std::ostringstream rows; // JSON array body, built as we sweep

    {
        JsonWriter scratch(rows); // writes the per-config array only
        scratch.beginArray();
        for (const auto &config : table3Configs()) {
            AnnualCampaignSpec spec;
            spec.profile = specJbbProfile();
            spec.nServers = 8;
            spec.technique = defenseFor(config);
            spec.config = config;

            AnnualCampaignOptions opts;
            opts.maxTrials = trials;
            opts.seed = 1234;
            const auto s = runAnnualCampaign(spec, opts);
            total_wall += s.wallSeconds;
            total_trials += s.trials;

            const auto cap = capacityOf(config, 8 * 250.0);
            std::printf(
                "%-20s %7.2f %16.1f %10.1f %9.0f%% [%2.0f,%3.0f] %12.4f\n",
                config.name.c_str(),
                cost.normalizedCost(cap, 8 * 0.25),
                s.downtimeMin.summary().mean(), s.downtimeMin.p95(),
                s.lossFree.fraction * 100.0, s.lossFree.lo * 100.0,
                s.lossFree.hi * 100.0, s.meanPerf.summary().mean());

            scratch.beginObject();
            scratch.field("configuration", config.name);
            scratch.field("normalized_cost",
                          cost.normalizedCost(cap, 8 * 0.25));
            scratch.field("trials", s.trials);
            scratch.field("trials_per_sec", s.trialsPerSec);
            writeMetricJson(scratch, "downtime_min", s.downtimeMin);
            writeMetricJson(scratch, "mean_perf", s.meanPerf);
            writeMetricJson(scratch, "battery_kwh", s.batteryKwh);
            writeMetricJson(scratch, "worst_gap_min", s.worstGapMin);
            scratch.key("loss_free").beginObject();
            scratch.field("fraction", s.lossFree.fraction);
            scratch.field("ci_lo", s.lossFree.lo);
            scratch.field("ci_hi", s.lossFree.hi);
            scratch.endObject();
            scratch.endObject();
        }
        scratch.endArray();
    }

    std::printf("\nSame, with NVDIMM hardware and no backup at all:\n");
    AnnualCampaignSummary nv;
    {
        // Custom trial body so the server params carry the NVDIMM
        // flag; still one Simulator per trial, campaign-scheduled.
        const auto gen = OutageTraceGenerator::figure1();
        AnnualCampaignOptions opts;
        opts.maxTrials = trials;
        opts.seed = 1234;
        nv = runAnnualCampaign(
            [&gen](std::uint64_t, Rng &rng) {
                constexpr Time year = 365LL * 24 * kHour;
                const auto events = gen.generate(rng, year);
                Simulator s;
                Utility utility(s);
                PowerHierarchy::Config cfg; // no backup
                cfg.hasDg = false;
                cfg.hasUps = false;
                PowerHierarchy hierarchy(s, utility, cfg);
                ServerModel::Params sp;
                sp.nvdimm = true;
                Cluster cluster(s, hierarchy, ServerModel{sp},
                                specJbbProfile(), 8);
                cluster.primeSteadyState();
                for (const auto &ev : events)
                    utility.scheduleOutage(ev.start, ev.duration);
                s.runUntil(year);
                AnnualResult r;
                r.outages = static_cast<int>(events.size());
                r.downtimeMin =
                    (1.0 - cluster.availabilityTimeline().average(
                               0, year)) *
                    toMinutes(year);
                r.meanPerf = cluster.perfTimeline().average(0, year);
                r.losses = cluster.app(0).stateLosses();
                return r;
            },
            opts);
        total_wall += nv.wallSeconds;
        total_trials += nv.trials;
        std::printf("%-20s %7.2f %16.1f %10.1f %9.0f%% [%2.0f,%3.0f]\n",
                    "MinCost+NVDIMM", 0.0,
                    nv.downtimeMin.summary().mean(),
                    nv.downtimeMin.p95(), nv.lossFree.fraction * 100.0,
                    nv.lossFree.lo * 100.0, nv.lossFree.hi * 100.0);
    }

    const std::string json = writeBenchJsonFile(
        "abl_annual_availability", [&](JsonWriter &w) {
            w.field("seed", nv.seed);
            w.field("trials", total_trials);
            w.field("wall_seconds", total_wall);
            w.field("trials_per_sec",
                    total_wall > 0.0
                        ? static_cast<double>(total_trials) / total_wall
                        : 0.0);
            w.field("threads", WorkStealingPool::hardwareThreads());
            w.key("nvdimm").beginObject();
            w.field("mean_downtime_min", nv.downtimeMin.summary().mean());
            w.field("p95_downtime_min", nv.downtimeMin.p95());
            w.field("loss_free_fraction", nv.lossFree.fraction);
            w.endObject();
            w.key("configurations").raw(rows.str());
        });
    if (!json.empty())
        std::printf("\n[wrote %s]\n", json.c_str());

    std::printf("\nReading: the long-runtime UPS configurations plus "
                "the hybrid defense are\n"
                "100%% loss-free at 0.38-0.55x cost, with the residual "
                "downtime concentrated\n"
                "in the rare multi-hour outages the paper assigns to "
                "geo-failover. The 2-minute\n"
                "batteries (NoDG/SmallPUPS) still lose state in some "
                "years: clustered outages\n"
                "catch them before the 4-hour recharge completes — an "
                "argument for state-of-\n"
                "charge-aware policies (see the adaptive controller "
                "example). NVDIMM achieves\n"
                "loss-free years at zero backup cost but cannot serve "
                "during the outage.\n");
    return 0;
}
