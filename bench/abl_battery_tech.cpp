/**
 * @file
 * Ablation: battery technology (Section 7). Li-ion strings have a much
 * flatter load/runtime curve (Peukert exponent ~1.05 vs ~1.29) and a
 * different cost structure (cheap power, expensive energy). Both shift
 * the paper's trade-offs: the DG-free coverage window shrinks, and
 * energy-frugal save-state techniques gain on throttling.
 */

#include <cstdio>

#include "core/analyzer.hh"
#include "power/battery.hh"
#include "sim/logging.hh"

using namespace bpsim;

namespace
{

double
dgCrossoverMin(const CostModel &m)
{
    for (double t = 1.0; t < 180.0; t += 0.25) {
        if (m.upsCostPerYr(1.0, t * 60.0) >= m.dgCostPerYr(1.0))
            return t;
    }
    return 180.0;
}

} // namespace

int
main()
{
    setQuietLogging(true);
    std::printf("=== Ablation: lead-acid vs Li-ion batteries ===\n\n");

    const CostModel pb{leadAcidCostParams()};
    const CostModel li{liIonCostParams()};

    std::printf("Cost structure ($/year, per kW / per kWh):\n");
    std::printf("  lead-acid: power %.0f, energy %.0f, free runtime "
                "%.0f min\n",
                pb.params().upsPowerCostPerKwYr,
                pb.params().upsEnergyCostPerKwhYr,
                pb.params().freeRunTimeSec / 60.0);
    std::printf("  li-ion:    power %.0f, energy %.0f, free runtime "
                "%.0f min\n\n",
                li.params().upsPowerCostPerKwYr,
                li.params().upsEnergyCostPerKwhYr,
                li.params().freeRunTimeSec / 60.0);

    std::printf("Runtime stretch at partial load (rated 10 min):\n");
    std::printf("%-10s %12s %12s\n", "load", "lead-acid", "li-ion");
    for (double f : {1.0, 0.5, 0.25, 0.1}) {
        PeukertBattery::Params p;
        p.ratedPowerW = 1000.0;
        p.runtimeAtRatedSec = 600.0;
        PeukertBattery lead(p);
        p.peukertExponent = kLiIonPeukertExponent;
        PeukertBattery lith(p);
        std::printf("%8.0f%% %9.1f min %9.1f min\n", f * 100.0,
                    toMinutes(lead.runtimeAtLoad(1000.0 * f)),
                    toMinutes(lith.runtimeAtLoad(1000.0 * f)));
    }

    std::printf("\nDG-free coverage window (UPS energy cheaper than "
                "DG):\n");
    std::printf("  lead-acid: %.0f min   li-ion: %.0f min\n",
                dgCrossoverMin(pb), dgCrossoverMin(li));

    std::printf("\nTechnique economics, Specjbb, 30-minute outage "
                "(sized UPS-only backup):\n");
    std::printf("%-22s %14s %14s\n", "technique", "lead-acid $/yr",
                "li-ion $/yr");
    struct Cand
    {
        const char *name;
        TechniqueSpec spec;
    };
    const Cand cands[] = {
        {"Throttling(p6)", {TechniqueKind::Throttle, 6, 0, 0, false}},
        {"Sleep-L", {TechniqueKind::Sleep, 0, 0, 0, true}},
        {"ProactiveHibernate",
         {TechniqueKind::ProactiveHibernate, 0, 0, 0, false}},
        {"Throttle+Sleep-L(50%)",
         {TechniqueKind::ThrottleSleep, 5, 0, 15 * kMinute, true}},
    };
    Analyzer pb_an{pb}, li_an{li};
    for (const auto &c : cands) {
        Scenario sc;
        sc.profile = specJbbProfile();
        sc.nServers = 8;
        sc.outageDuration = fromMinutes(30.0);
        sc.technique = c.spec;
        const auto pb_ev = pb_an.sizeUpsOnly(sc);
        sc.upsPeukertExponent = kLiIonPeukertExponent;
        const auto li_ev = li_an.sizeUpsOnly(sc);
        std::printf("%-22s %14.0f %14.0f\n", c.name, pb_ev.costPerYr,
                    li_ev.costPerYr);
    }

    std::printf("\nReading: under Li-ion economics the gap between "
                "energy-hungry sustain\n"
                "techniques and energy-frugal save-state techniques "
                "widens, as Section 7\n"
                "predicts; and the '40 minutes without a DG' headline "
                "tightens.\n");
    return 0;
}
