/**
 * @file
 * Figure 5 reproduction: cost and performability trade-offs between
 * the Table 3 backup configurations for Specjbb, across outage
 * durations of 0.5, 5, 30, 60 and 120 minutes. For each configuration
 * the best outage-handling technique is selected, as in the paper
 * ("we choose the system technique that offers the highest performance
 * and lowest down time").
 */

#include <cstdio>

#include "core/selector.hh"
#include "sim/logging.hh"

using namespace bpsim;

int
main()
{
    setQuietLogging(true);
    std::printf("=== Figure 5: Configuration trade-offs for Specjbb "
                "===\n\n");

    const BackupConfigSpec configs[] = {
        maxPerfConfig(),   dgSmallPUpsConfig(),   largeEUpsConfig(),
        noDgConfig(),      smallPLargeEUpsConfig(), minCostConfig()};

    Scenario base;
    base.profile = specJbbProfile();
    base.nServers = 8;

    const CostModel cost;
    Analyzer analyzer(cost);
    TechniqueSelector selector(analyzer);

    std::printf("(a) Cost of configurations (normalized to MaxPerf)\n");
    for (const auto &cfg : configs) {
        const auto cap = capacityOf(cfg, analyzer.nominalPeakW(base));
        std::printf("  %-20s %.2f\n", cfg.name.c_str(),
                    cost.normalizedCost(
                        cap, analyzer.nominalPeakW(base) / 1000.0));
    }

    const double durations_min[] = {0.5, 5.0, 30.0, 60.0, 120.0};

    std::printf("\n(b) Performance during the outage\n");
    std::printf("%-20s", "configuration");
    for (double d : durations_min)
        std::printf(" %8.1fm", d);
    std::printf("\n");

    // Cache the choices so (c) reuses them.
    double perf[6][5], down[6][5];
    std::string chosen[6][5];
    for (int ci = 0; ci < 6; ++ci) {
        for (int di = 0; di < 5; ++di) {
            Scenario sc = base;
            sc.outageDuration = fromMinutes(durations_min[di]);
            const auto cands =
                allCandidates(ServerModel{sc.serverParams},
                              sc.outageDuration);
            const auto best =
                selector.bestForConfig(sc, configs[ci], cands);
            perf[ci][di] = best.eval.result.perfDuringOutage;
            down[ci][di] = best.eval.result.downtimeSec / 60.0;
            chosen[ci][di] = best.spec.label();
        }
    }

    for (int ci = 0; ci < 6; ++ci) {
        std::printf("%-20s", configs[ci].name.c_str());
        for (int di = 0; di < 5; ++di)
            std::printf(" %9.2f", perf[ci][di]);
        std::printf("\n");
    }

    std::printf("\n(c) Down time (minutes)\n");
    std::printf("%-20s", "configuration");
    for (double d : durations_min)
        std::printf(" %8.1fm", d);
    std::printf("\n");
    for (int ci = 0; ci < 6; ++ci) {
        std::printf("%-20s", configs[ci].name.c_str());
        for (int di = 0; di < 5; ++di)
            std::printf(" %9.1f", down[ci][di]);
        std::printf("\n");
    }

    std::printf("\nSelected technique per cell:\n");
    for (int ci = 0; ci < 6; ++ci) {
        std::printf("%-20s\n", configs[ci].name.c_str());
        for (int di = 0; di < 5; ++di) {
            std::printf("  %6.1f min: %s\n", durations_min[di],
                        chosen[ci][di].c_str());
        }
    }

    std::printf("\nShape checks vs the paper:\n");
    std::printf("  MaxPerf: perf 1.0 and zero downtime everywhere -> "
                "%s\n",
                (perf[0][0] > 0.99 && down[0][4] < 0.1) ? "OK" : "MISS");
    std::printf("  LargeEUPS holds full perf to 30 min -> %s "
                "(perf=%.2f)\n",
                perf[2][2] > 0.95 ? "OK" : "MISS", perf[2][2]);
    std::printf("  LargeEUPS degrades to ~0.6 at 60 min -> %s "
                "(perf=%.2f)\n",
                (perf[2][3] > 0.45 && perf[2][3] < 0.8) ? "OK" : "MISS",
                perf[2][3]);
    std::printf("  NoDG ~0.6 perf at 5 min -> %s (perf=%.2f)\n",
                (perf[3][1] > 0.45 && perf[3][1] < 0.75) ? "OK" : "MISS",
                perf[3][1]);
    std::printf("  SmallP-LargeEUPS beats NoDG at 30+ min -> %s\n",
                (perf[4][2] > perf[3][2] && perf[4][3] > perf[3][3])
                    ? "OK"
                    : "MISS");
    std::printf("  MinCost: no service, heavy downtime -> %s\n",
                (perf[5][1] < 0.05 && down[5][0] > 5.0) ? "OK" : "MISS");
    return 0;
}
