/**
 * @file
 * Ablation: UPS placement granularity — rack-level (pooled battery,
 * the paper's default, as at Facebook/Microsoft) vs server-level
 * (one string per machine, as in Google's on-board design; the
 * paper's technical report studies this axis).
 *
 * For uniform techniques (everyone throttles or sleeps identically)
 * the two are electrically equivalent, so the interesting divergence
 * is *asymmetric* load: consolidation doubles the host's draw while
 * the source's battery sits stranded. Server-level strings then pay
 * the Peukert penalty on the hosts and waste the sources' energy.
 *
 * Uniform cases are simulated (N independent single-server plants vs
 * one pooled plant); the consolidation case is computed from the
 * battery model directly.
 */

#include <cstdio>

#include "power/battery.hh"
#include "power/utility.hh"
#include "sim/logging.hh"
#include "technique/catalog.hh"

using namespace bpsim;

namespace
{

/** Outage survival time for one pooled rack plant. */
double
pooledSurvivalMin(const TechniqueSpec &spec, int n)
{
    Simulator sim;
    Utility utility(sim);
    PowerHierarchy::Config cfg;
    cfg.hasDg = false;
    cfg.hasUps = true;
    cfg.ups.powerCapacityW = n * 250.0;
    cfg.ups.runtimeAtRatedSec = 600.0;
    PowerHierarchy hierarchy(sim, utility, cfg);
    Cluster cluster(sim, hierarchy, ServerModel{}, specJbbProfile(), n);
    auto technique = makeTechnique(spec);
    technique->attach(sim, cluster, hierarchy);
    cluster.primeSteadyState();
    Time lost = kTimeNever;
    struct L : PowerHierarchy::Listener
    {
        Time *at;
        void powerLost(Time t) override { *at = t; }
    } listener;
    listener.at = &lost;
    hierarchy.addListener(&listener);
    utility.scheduleOutage(kMinute, 12 * kHour);
    sim.runUntil(13 * kHour);
    return lost == kTimeNever ? -1.0 : toMinutes(lost - kMinute);
}

/** Same, for one server with its own 1/n-sized string. */
double
perServerSurvivalMin(const TechniqueSpec &spec)
{
    Simulator sim;
    Utility utility(sim);
    PowerHierarchy::Config cfg;
    cfg.hasDg = false;
    cfg.hasUps = true;
    cfg.ups.powerCapacityW = 250.0;
    cfg.ups.runtimeAtRatedSec = 600.0;
    PowerHierarchy hierarchy(sim, utility, cfg);
    Cluster cluster(sim, hierarchy, ServerModel{}, specJbbProfile(), 1);
    auto technique = makeTechnique(spec);
    technique->attach(sim, cluster, hierarchy);
    cluster.primeSteadyState();
    Time lost = kTimeNever;
    struct L : PowerHierarchy::Listener
    {
        Time *at;
        void powerLost(Time t) override { *at = t; }
    } listener;
    listener.at = &lost;
    hierarchy.addListener(&listener);
    utility.scheduleOutage(kMinute, 12 * kHour);
    sim.runUntil(13 * kHour);
    return lost == kTimeNever ? -1.0 : toMinutes(lost - kMinute);
}

std::string
fmtMin(double m)
{
    if (m < 0.0)
        return ">720";
    return formatString("%.1f", m);
}

} // namespace

int
main()
{
    setQuietLogging(true);
    std::printf("=== Ablation: rack-level vs server-level UPS "
                "placement ===\n");
    std::printf("(same total battery: 10 minutes at rated power, "
                "Specjbb)\n\n");

    std::printf("Uniform techniques: survival time on battery\n");
    std::printf("%-22s %14s %14s\n", "technique", "rack pool",
                "per-server");
    struct Cand
    {
        const char *name;
        TechniqueSpec spec;
    };
    const Cand cands[] = {
        {"full speed", {TechniqueKind::None}},
        {"Throttle(p6)", {TechniqueKind::Throttle, 6, 0, 0, false}},
        {"Sleep-L", {TechniqueKind::Sleep, 0, 0, 0, true}},
    };
    for (const auto &c : cands) {
        std::printf("%-22s %11s min %11s min\n", c.name,
                    fmtMin(pooledSurvivalMin(c.spec, 8)).c_str(),
                    fmtMin(perServerSurvivalMin(c.spec)).c_str());
    }
    std::printf("  -> symmetric load: placement is electrically "
                "neutral, as expected.\n\n");

    // Consolidation: the host carries 2x its own load; under
    // server-level strings only its own battery backs that, while the
    // source's string is stranded.
    std::printf("Consolidation (hosts carry two guests each):\n");
    PeukertBattery::Params bp;
    bp.ratedPowerW = 250.0;
    bp.runtimeAtRatedSec = 600.0;
    const PeukertBattery server_string(bp);
    // Per-server string: host draws its rated power (the guest adds
    // utilization, not watts beyond peak), so its runtime is the rated
    // 10 minutes and the source's 10 minutes of energy are stranded.
    const double per_server_min =
        toMinutes(server_string.runtimeAtLoad(250.0));
    // Rack pool: the same total energy backs half the draw: the pool
    // sees load fraction 0.5 and stretches Peukert-style.
    PeukertBattery::Params rack;
    rack.ratedPowerW = 2000.0;
    rack.runtimeAtRatedSec = 600.0;
    const PeukertBattery pool(rack);
    const double pooled_min = toMinutes(pool.runtimeAtLoad(1000.0));
    std::printf("  per-server strings: hosts last %.1f min (sources' "
                "energy stranded)\n",
                per_server_min);
    std::printf("  rack pool:          cluster lasts %.1f min "
                "(Peukert stretch at half load)\n",
                pooled_min);
    std::printf("  -> pooling buys %.1fx the consolidated runtime "
                "from the same batteries.\n\n",
                pooled_min / per_server_min);

    std::printf("Reading: rack-level (pooled) placement — the paper's "
                "baseline — is strictly\n"
                "better for asymmetric defenses like consolidation; "
                "server-level strings\n"
                "strand the energy of every machine the technique "
                "turns off.\n");
    return 0;
}
