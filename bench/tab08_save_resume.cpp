/**
 * @file
 * Table 8 reproduction: time to save and resume Specjbb memory state
 * under the save-state techniques, with the save-phase peak power
 * (normalized to server peak).
 */

#include <cstdio>

#include "power/utility.hh"
#include "sim/logging.hh"
#include "technique/hibernate.hh"
#include "technique/sleep.hh"

using namespace bpsim;

int
main()
{
    setQuietLogging(true);

    Simulator sim;
    Utility utility(sim);
    PowerHierarchy::Config cfg;
    cfg.hasDg = false;
    cfg.ups.powerCapacityW = 250.0 * 1.01;
    cfg.ups.runtimeAtRatedSec = 24 * 3600.0;
    PowerHierarchy hierarchy(sim, utility, cfg);
    const ServerModel model;
    Cluster cluster(sim, hierarchy, model, specJbbProfile(), 1);

    const int p_half = pstateForPowerFraction(model, 0.5);
    const double half_power =
        model.activePowerW(p_half, 0, 1.0) / model.params().peakPowerW;

    std::printf("=== Table 8: Time to save and resume Specjbb memory "
                "state ===\n\n");
    std::printf("%-22s %-12s %-14s %-10s\n", "technique", "save time",
                "resume time", "peak power");

    auto print = [](const char *name, double save_s, double resume_s,
                    double power) {
        std::printf("%-22s %7.0f secs %9.0f secs %10.2f\n", name, save_s,
                    resume_s, power);
    };

    {
        SleepTechnique t(false);
        print("Sleep", toSeconds(t.saveTime(cluster)),
              toSeconds(t.resumeTime(cluster)), 1.0);
    }
    {
        HibernationTechnique t(false, false);
        print("Hibernate", toSeconds(t.saveTime(cluster)),
              toSeconds(t.resumeTime(cluster)), 1.0);
    }
    {
        HibernationTechnique t(false, true);
        print("Proactive Hibernate", toSeconds(t.saveTime(cluster)),
              toSeconds(t.resumeTime(cluster)), 1.0);
    }
    {
        SleepTechnique t(true);
        print("Sleep-L", toSeconds(t.saveTime(cluster)),
              toSeconds(t.resumeTime(cluster)), half_power);
    }
    {
        HibernationTechnique t(true, false);
        print("Hibernate-L", toSeconds(t.saveTime(cluster)),
              toSeconds(t.resumeTime(cluster)), half_power);
    }

    std::printf("\n(paper: Sleep 6/8 @1.0, Hibernate 230/157 @1.0, "
                "Proactive Hibernate 179/157 @1.0,\n Sleep-L 8/8 @0.5, "
                "Hibernate-L 385/175 @0.5)\n");
    return 0;
}
