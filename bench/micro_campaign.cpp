/**
 * @file
 * Google-benchmark microbenchmarks of the campaign aggregation
 * primitives: ExactSum accumulation (the cost of bit-stable merging),
 * t-digest add/quantile/merge, and the full MergingMetric update an
 * annual shard performs per trial. These sit on the per-trial hot
 * path of every sharded campaign, so regressions here scale with N.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "campaign/exact_sum.hh"
#include "campaign/shard.hh"
#include "campaign/tdigest.hh"
#include "core/annual.hh"
#include "core/backup_config.hh"
#include "obs/obs.hh"
#include "outage/trace.hh"
#include "sim/random.hh"
#include "workload/profile.hh"

using namespace bpsim;

namespace
{

std::vector<double>
mixedSample(int n)
{
    Rng rng(7);
    std::vector<double> xs(n);
    for (auto &x : xs)
        x = rng.exponential(90.0) - 30.0; // signed, heavy-tailed
    return xs;
}

void
BM_ExactSumAdd(benchmark::State &state)
{
    const auto xs = mixedSample(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        ExactSum s;
        for (const double x : xs)
            s.add(x);
        benchmark::DoNotOptimize(s.value());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExactSumAdd)->Arg(1000)->Arg(100000);

void
BM_ExactSumMerge(benchmark::State &state)
{
    const auto xs = mixedSample(10000);
    std::vector<ExactSum> parts(16);
    for (std::size_t i = 0; i < xs.size(); ++i)
        parts[i % parts.size()].add(xs[i]);
    for (auto _ : state) {
        ExactSum total;
        for (const auto &p : parts)
            total.merge(p);
        benchmark::DoNotOptimize(total.value());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int>(parts.size()));
}
BENCHMARK(BM_ExactSumMerge);

void
BM_TDigestAdd(benchmark::State &state)
{
    const auto xs = mixedSample(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        TDigest td;
        for (const double x : xs)
            td.add(x);
        benchmark::DoNotOptimize(td.quantile(0.99));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TDigestAdd)->Arg(1000)->Arg(100000);

void
BM_TDigestMerge(benchmark::State &state)
{
    const auto xs = mixedSample(160000);
    std::vector<TDigest> parts(16, TDigest{100.0});
    for (std::size_t i = 0; i < xs.size(); ++i)
        parts[i % parts.size()].add(xs[i]);
    for (auto &p : parts)
        benchmark::DoNotOptimize(p.centroids().size()); // pre-flush
    for (auto _ : state) {
        TDigest total;
        for (const auto &p : parts)
            total.merge(p);
        benchmark::DoNotOptimize(total.quantile(0.5));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int>(parts.size()));
}
BENCHMARK(BM_TDigestMerge);

void
BM_MergingMetricAdd(benchmark::State &state)
{
    // The per-trial aggregation cost of a sharded campaign metric:
    // two ExactSum folds + min/max + one t-digest insert.
    const auto xs = mixedSample(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        MergingMetric m;
        for (const double x : xs)
            m.add(x);
        benchmark::DoNotOptimize(m.meanCiHalfWidth());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MergingMetricAdd)->Arg(1000)->Arg(100000);

/**
 * One full annual trial — the unit of work every campaign repeats N
 * times. items_per_second IS the single-thread trials/sec figure the
 * observability acceptance gate tracks: with tracing disabled (the
 * default, BM_AnnualTrial) the obs hooks must cost < 2 % vs. the
 * pre-obs baseline; BM_AnnualTrialTraced measures the enabled cost of
 * recording + draining every power/technique event.
 */
void
annualTrialLoop(benchmark::State &state, bool traced)
{
    constexpr Time kYear = 365LL * 24 * kHour;
    AnnualCampaignSpec spec;
    spec.profile = specJbbProfile();
    spec.nServers = 4;
    spec.technique = {TechniqueKind::Throttle, 5, 0, 0, false};
    spec.config = noDgConfig();

    const auto gen = OutageTraceGenerator::figure1();
    const AnnualSimulator sim;
    obs::setEnabled(traced);
    std::uint64_t id = 0;
    for (auto _ : state) {
        Rng rng = Rng::stream(42, id++ % 64);
        const auto events = gen.generate(rng, kYear);
        const AnnualResult r = sim.runYear(spec.profile, spec.nServers,
                                           spec.technique, spec.config,
                                           events);
        benchmark::DoNotOptimize(r.downtimeMin);
        if (traced)
            benchmark::DoNotOptimize(
                obs::TraceSink::instance().drain().size());
    }
    obs::setEnabled(false);
    obs::TraceSink::instance().clear();
    state.SetItemsProcessed(state.iterations());
}

void
BM_AnnualTrial(benchmark::State &state)
{
    annualTrialLoop(state, false);
}
BENCHMARK(BM_AnnualTrial);

void
BM_AnnualTrialTraced(benchmark::State &state)
{
    annualTrialLoop(state, true);
}
BENCHMARK(BM_AnnualTrialTraced);

} // namespace

BENCHMARK_MAIN();
