/**
 * @file
 * Table 3 reproduction: the nine under-provisioned backup
 * configurations and their costs normalized to current practice
 * (MaxPerf).
 */

#include <cstdio>

#include "core/backup_config.hh"
#include "sim/logging.hh"

using namespace bpsim;

int
main()
{
    setQuietLogging(true);
    const CostModel cost;
    constexpr double peak_w = 1e6; // 1 MW reference

    std::printf("=== Table 3: Underprovisioning options for backup "
                "infrastructure ===\n\n");
    std::printf("%-20s %9s %10s %12s %8s\n", "configuration", "DG pwr",
                "UPS pwr", "UPS energy", "cost");
    for (const auto &spec : table3Configs()) {
        const auto cap = capacityOf(spec, peak_w);
        std::printf("%-20s %9.2f %10.2f %9.0f min %8.2f\n",
                    spec.name.c_str(), spec.hasDg ? spec.dgPowerFrac : 0.0,
                    spec.hasUps ? spec.upsPowerFrac : 0.0,
                    spec.upsRuntimeSec / 60.0,
                    cost.normalizedCost(cap, peak_w / 1000.0));
    }
    std::printf("\n(paper cost column: 1, 0, 0.38, 0.63, 0.81, 0.5, "
                "0.19, 0.55, 0.38)\n");

    std::printf("\nHeadline savings:\n");
    const auto norm = [&](const BackupConfigSpec &s) {
        return cost.normalizedCost(capacityOf(s, peak_w),
                                   peak_w / 1000.0);
    };
    std::printf("  eliminating the DG (NoDG):          %.0f%% saved\n",
                (1.0 - norm(noDgConfig())) * 100.0);
    std::printf("  removing the UPS (NoUPS):           %.0f%% saved\n",
                (1.0 - norm(noUpsConfig())) * 100.0);
    std::printf("  SmallPUPS (no DG, half UPS power):  %.0f%% saved\n",
                (1.0 - norm(smallPUpsConfig())) * 100.0);
    std::printf("  LargeEUPS (no DG, 30 min battery):  %.0f%% saved\n",
                (1.0 - norm(largeEUpsConfig())) * 100.0);
    return 0;
}
