/**
 * @file
 * Figure 8 reproduction: technique trade-offs for Web-search at short
 * (30 s), medium (30 min) and long (2 h) outages.
 */

#include "common.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main()
{
    setQuietLogging(true);
    std::printf("=== Figure 8: Tradeoffs for Web-search ===\n\n");
    Analyzer analyzer;
    const auto profile = webSearchProfile();
    printPanel(analyzer, profile, 8, 30 * kSecond);
    printPanel(analyzer, profile, 8, 30 * kMinute);
    printPanel(analyzer, profile, 8, 2 * kHour);

    std::printf("Shape checks vs the paper (Section 6.2):\n");
    Analyzer a;
    Scenario sc;
    sc.profile = profile;
    sc.nServers = 8;
    sc.outageDuration = 30 * kSecond;

    // Losing memory state is extremely harmful for Web-search: the
    // MinCost downtime (~600 s: restart + index pre-population +
    // warm-up below SLO) exceeds Hibernation's (~400 s).
    const auto min_cost = a.evaluateConfig(sc, minCostConfig());
    sc.technique = {TechniqueKind::Hibernate, 0, 0, 0, false};
    const auto hib = a.sizeUpsOnly(sc);
    std::printf("  MinCost downtime %.0f s (paper ~600 s) -> %s\n",
                min_cost.result.downtimeSec,
                std::abs(min_cost.result.downtimeSec - 600.0) < 90.0
                    ? "OK"
                    : "MISS");
    std::printf("  Hibernation downtime %.0f s < MinCost (paper ~400 s "
                "< 600 s) -> %s\n",
                hib.result.downtimeSec,
                (hib.result.downtimeSec < min_cost.result.downtimeSec &&
                 std::abs(hib.result.downtimeSec - 400.0) < 90.0)
                    ? "OK"
                    : "MISS");

    sc.technique = {TechniqueKind::ThrottleSleep, 5, 0, 15 * kMinute,
                    true};
    sc.outageDuration = 30 * kMinute;
    const auto hybrid = a.sizeUpsOnly(sc);
    std::printf("  sleep combined with throttling is effective "
                "(feasible at cost %.2f) -> %s\n",
                hybrid.normalizedCost,
                (hybrid.feasible && hybrid.normalizedCost < 0.4) ? "OK"
                                                                 : "MISS");
    return 0;
}
