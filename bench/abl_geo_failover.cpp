/**
 * @file
 * Ablation: geo-failover vs local backup for long outages (Section 7
 * and the paper's closing discussion). For outages beyond the UPS's
 * economic range, redirecting load to a geo-replica turns the backup
 * problem into a bridging problem: the battery only carries the drain
 * window.
 */

#include <cstdio>

#include "core/analyzer.hh"
#include "sim/logging.hh"

using namespace bpsim;

int
main()
{
    setQuietLogging(true);
    std::printf("=== Ablation: geo-failover vs local backup (Specjbb) "
                "===\n\n");

    Analyzer analyzer;
    std::printf("%-12s %-26s %8s %8s %12s\n", "outage", "strategy",
                "cost", "perf", "downtime");
    for (double hours : {0.5, 1.0, 2.0, 4.0, 8.0}) {
        Scenario sc;
        sc.profile = specJbbProfile();
        sc.nServers = 8;
        sc.outageDuration = fromHours(hours);
        sc.settleAfter = fromHours(2.0);

        struct Cand
        {
            const char *name;
            TechniqueSpec spec;
        };
        const int p_half = pstateForPowerFraction(ServerModel{}, 0.5);
        const Cand cands[] = {
            {"Throttle+Sleep-L(10m)",
             {TechniqueKind::ThrottleSleep, p_half, 0, 10 * kMinute,
              true}},
            {"Migration(th. hosts)",
             {TechniqueKind::Migration, p_half, 0, 0, false, p_half}},
            {"GeoFailover(0.7)",
             {TechniqueKind::GeoFailover, p_half, 0, 0, false, 0, 0.7}},
        };
        for (const auto &c : cands) {
            Scenario s = sc;
            s.technique = c.spec;
            const auto ev = analyzer.sizeUpsOnly(s);
            std::printf("%9.1f h  %-26s %8.3f %8.2f %9.1f min %s\n",
                        hours, c.name, ev.normalizedCost,
                        ev.result.perfDuringOutage,
                        ev.result.downtimeSec / 60.0,
                        ev.feasible ? "" : "(infeasible)");
        }
        std::printf("\n");
    }

    std::printf("Reading: past the point where batteries stop being "
                "economic (~1-2 h),\n"
                "geo-failover offers the best performance per backup "
                "dollar — the paper's\n"
                "recommendation for >4 h outages — provided the "
                "organization has a replica\n"
                "with spare capacity.\n");
    return 0;
}
