/**
 * @file
 * Figure 7 reproduction: technique trade-offs for Memcached at short
 * (30 s), medium (30 min) and long (2 h) outages.
 */

#include "common.hh"

#include "power/utility.hh"
#include "technique/migration.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main()
{
    setQuietLogging(true);
    std::printf("=== Figure 7: Tradeoffs for Memcached ===\n\n");
    Analyzer analyzer;
    const auto profile = memcachedProfile();
    printPanel(analyzer, profile, 8, 30 * kSecond);
    printPanel(analyzer, profile, 8, 30 * kMinute);
    printPanel(analyzer, profile, 8, 2 * kHour);

    std::printf("Shape checks vs the paper (Section 6.2):\n");
    Analyzer a;
    Scenario sc;
    sc.profile = profile;
    sc.nServers = 8;
    sc.outageDuration = 30 * kSecond;

    sc.technique = {TechniqueKind::Hibernate, 0, 0, 0, false};
    const auto hib = a.sizeUpsOnly(sc);
    Scenario crash_sc;
    crash_sc.profile = profile;
    crash_sc.nServers = 8;
    crash_sc.outageDuration = 30 * kSecond;
    const auto min_cost = a.evaluateConfig(crash_sc, minCostConfig());
    std::printf("  hibernation downtime (%.0f s) exceeds state-loss "
                "reload (%.0f s) -> %s\n",
                hib.result.downtimeSec, min_cost.result.downtimeSec,
                hib.result.downtimeSec > min_cost.result.downtimeSec
                    ? "OK"
                    : "MISS");

    sc.outageDuration = 30 * kMinute;
    sc.technique = {TechniqueKind::Throttle, 6, 0, 0, false};
    const auto thr = a.sizeUpsOnly(sc);
    std::printf("  deep throttling keeps %.2f of throughput "
                "(paper: much better than Specjbb's ~0.55) -> %s\n",
                thr.result.perfDuringOutage,
                thr.result.perfDuringOutage > 0.75 ? "OK" : "MISS");

    // Proactive migration's advantage for a read-mostly workload:
    // almost nothing is left to move after the failure. The copy
    // shrinks from ~20 GB / several minutes to a sub-second residual
    // (the paper measures "20 % more cost savings"; with our
    // power-dominated lead-acid sizing the saving shows up as battery
    // energy during the double-occupancy copy phase).
    sc.technique = {TechniqueKind::ProactiveMigration, 0, 0, 0, false};
    const auto pm = a.sizeUpsOnly(sc);
    sc.technique = {TechniqueKind::Migration, 0, 0, 0, false};
    const auto mig = a.sizeUpsOnly(sc);
    std::printf("  proactive migration needs less battery energy "
                "(%.2f vs %.2f kWh) -> %s\n",
                pm.capacity.upsEnergyKwh(), mig.capacity.upsEnergyKwh(),
                pm.capacity.upsEnergyKwh() <
                        mig.capacity.upsEnergyKwh() - 1e-6
                    ? "OK"
                    : "MISS");
    {
        MigrationTechnique full{MigrationTechnique::Options{}};
        MigrationTechnique::Options o;
        o.proactive = true;
        MigrationTechnique pro{o};
        Simulator s;
        Utility u(s);
        PowerHierarchy::Config cfg;
        cfg.hasDg = false;
        cfg.ups.powerCapacityW = 8 * 250.0 * 1.01;
        cfg.ups.runtimeAtRatedSec = 3600.0;
        PowerHierarchy h(s, u, cfg);
        Cluster cl(s, h, ServerModel{}, profile, 8);
        const auto plan_full = full.migrationPlan(cl);
        const auto plan_pro = pro.migrationPlan(cl);
        std::printf("  ...because the copy shrinks %.1f GB -> %.2f GB "
                    "(%.0f s -> %.1f s) -> %s\n",
                    plan_full.bytesMoved / 1e9, plan_pro.bytesMoved / 1e9,
                    toSeconds(plan_full.precopy + plan_full.blackout),
                    toSeconds(plan_pro.precopy + plan_pro.blackout),
                    plan_pro.bytesMoved < 0.2 * plan_full.bytesMoved
                        ? "OK"
                        : "MISS");
    }
    return 0;
}
