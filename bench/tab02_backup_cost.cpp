/**
 * @file
 * Tables 1 and 2 reproduction: the cost-model parameters and the
 * estimated amortized annual cap-ex of backup infrastructure for
 * different datacenter capacities.
 */

#include <cstdio>

#include "core/cost_model.hh"
#include "sim/logging.hh"

using namespace bpsim;

int
main()
{
    setQuietLogging(true);
    const CostModel m;

    std::printf("=== Table 1: DG and UPS cost estimation parameters "
                "===\n\n");
    std::printf("  DGPowerCost    $%.1f/KW/year\n",
                m.params().dgPowerCostPerKwYr);
    std::printf("  UPSPowerCost   $%.1f/KW/year\n",
                m.params().upsPowerCostPerKwYr);
    std::printf("  UPSEnergyCost  $%.1f/KWh/year\n",
                m.params().upsEnergyCostPerKwhYr);
    std::printf("  FreeRunTime    %.0f min\n",
                m.params().freeRunTimeSec / 60.0);

    std::printf("\n=== Table 2: Estimated amortized annual backup "
                "cap-ex ===\n\n");
    std::printf("%-12s %-14s %-12s %-12s %-12s\n", "peak (MW)",
                "UPS runtime", "DG cost", "UPS cost", "total");
    struct Row
    {
        double mw;
        double runtime_min;
    };
    const Row rows[] = {{1.0, 2.0}, {10.0, 2.0}, {10.0, 42.0}};
    for (const auto &r : rows) {
        const double kw = r.mw * 1000.0;
        const double dg = m.dgCostPerYr(kw);
        const double ups = m.upsCostPerYr(kw, r.runtime_min * 60.0);
        std::printf("%-12.0f %-11.0f min %5.2f M$ %8.2f M$ %8.2f M$\n",
                    r.mw, r.runtime_min, dg / 1e6, ups / 1e6,
                    (dg + ups) / 1e6);
    }
    std::printf("\n(paper: 0.08/0.05/0.13, 0.83/0.51/1.34, "
                "0.83/0.83/1.66 M$)\n");

    std::printf("\nObservations the paper draws:\n");
    const double base =
        m.totalCostPerYr(BackupCapacity{10000.0, 10000.0, 120.0});
    const double large =
        m.totalCostPerYr(BackupCapacity{10000.0, 10000.0, 2520.0});
    std::printf("  (ii) 20x UPS energy -> +%.0f%% total cost\n",
                (large / base - 1.0) * 100.0);
    double cross_min = 0.0;
    for (double t = 1.0; t < 120.0; t += 0.1) {
        if (m.upsCostPerYr(1.0, t * 60.0) >= m.dgCostPerYr(1.0)) {
            cross_min = t;
            break;
        }
    }
    std::printf("  (iii) UPS cheaper than DG below ~%.0f min of "
                "runtime\n", cross_min);
    return 0;
}
