/**
 * @file
 * Ablation: provisioning for heterogeneous applications (Section 7).
 *
 * Two effects are quantified on a mixed rack:
 *  (1) under one shared mechanism, the classes get very different
 *      performability (the §6.2 observation), and
 *  (2) sections with *differentiated SLOs* — interactive classes need
 *      degraded-but-live service, batch only needs its state kept —
 *      buy the same outcomes for less than one shared configuration
 *      sized for the strictest requirement ("multiple sections in a
 *      datacenter could have different backup configurations").
 */

#include <cstdio>

#include "core/selector.hh"
#include "sim/logging.hh"

using namespace bpsim;

namespace
{

/** Cheapest feasible choice meeting a perf floor (sized UPS-only). */
std::optional<TechniqueChoice>
cheapestMeeting(const TechniqueSelector &selector, const Scenario &base,
                const std::vector<TechniqueSpec> &cands, double min_perf)
{
    std::optional<TechniqueChoice> best;
    for (auto &choice : selector.sizeAll(base, cands)) {
        if (!choice.eval.feasible ||
            choice.eval.result.perfDuringOutage < min_perf) {
            continue;
        }
        if (!best || choice.eval.costPerYr < best->eval.costPerYr)
            best = choice;
    }
    return best;
}

} // namespace

int
main()
{
    setQuietLogging(true);
    std::printf("=== Ablation: heterogeneous rack provisioning ===\n");
    std::printf("(2 x specjbb + 2 x web-search + 2 x speccpu-mcf, "
                "30-minute outage)\n\n");

    Analyzer analyzer;
    TechniqueSelector selector(analyzer);
    const Time outage = 30 * kMinute;
    const auto cands = allCandidates(ServerModel{}, outage);

    // (1) One shared mechanism, per-class consequences.
    std::printf("(1) One shared deep throttle (p6) across the mixed "
                "rack: per-class perf\n");
    for (const auto &w : {specJbbProfile(), webSearchProfile(),
                          memcachedProfile(), specCpuMcfProfile()}) {
        std::printf("    %-14s %.2f\n", w.name.c_str(),
                    w.throttledPerf(ServerModel{}, 6, 0));
    }
    std::printf("    -> the same mechanism is a 45%% hit for specjbb "
                "and a 19%% hit for memcached.\n\n");

    // (2) Differentiated SLOs.
    // Interactive classes: perf >= 0.5 during the outage, no losses.
    // Batch class: state preserved is enough (perf floor 0).
    std::printf("(2) Differentiated SLOs at 30 minutes\n");
    const double interactive_floor = 0.5;

    Scenario jbb;
    jbb.profile = specJbbProfile();
    jbb.nServers = 2;
    jbb.outageDuration = outage;
    Scenario ws = jbb;
    ws.profile = webSearchProfile();
    Scenario mcf = jbb;
    mcf.profile = specCpuMcfProfile();

    const auto jbb_best =
        cheapestMeeting(selector, jbb, cands, interactive_floor);
    const auto ws_best =
        cheapestMeeting(selector, ws, cands, interactive_floor);
    const auto mcf_best = cheapestMeeting(selector, mcf, cands, 0.0);

    std::printf("  sectioned:\n");
    std::printf("    specjbb    -> %-34s cost %.3f perf %.2f\n",
                jbb_best->spec.label().c_str(),
                jbb_best->eval.normalizedCost,
                jbb_best->eval.result.perfDuringOutage);
    std::printf("    web-search -> %-34s cost %.3f perf %.2f\n",
                ws_best->spec.label().c_str(),
                ws_best->eval.normalizedCost,
                ws_best->eval.result.perfDuringOutage);
    std::printf("    mcf batch  -> %-34s cost %.3f (state kept, zero "
                "recompute)\n",
                mcf_best->spec.label().c_str(),
                mcf_best->eval.normalizedCost);
    const double sectioned = (jbb_best->eval.normalizedCost +
                              ws_best->eval.normalizedCost +
                              mcf_best->eval.normalizedCost) /
                             3.0;

    // Shared: the strictest class (specjbb's 0.5 floor) binds the
    // whole rack; evaluate that technique on the full mixed rack.
    Scenario mixed;
    mixed.mixedProfiles = {specJbbProfile(),   specJbbProfile(),
                           webSearchProfile(), webSearchProfile(),
                           specCpuMcfProfile(), specCpuMcfProfile()};
    mixed.outageDuration = outage;
    mixed.technique = jbb_best->spec;
    const auto shared = analyzer.sizeUpsOnly(mixed);

    std::printf("  shared (specjbb's SLO binds everyone):\n");
    std::printf("    all        -> %-34s cost %.3f perf %.2f\n",
                jbb_best->spec.label().c_str(), shared.normalizedCost,
                shared.result.perfDuringOutage);
    std::printf("\n  blended backup spend: sectioned %.3f vs shared "
                "%.3f  (%.0f%% saved)\n",
                sectioned, shared.normalizedCost,
                (1.0 - sectioned / shared.normalizedCost) * 100.0);

    std::printf("\nReading: the batch section does not pay for live "
                "service it does not need —\n"
                "a Sleep-class defense keeps its state at ~0.18x — "
                "while the interactive\n"
                "sections buy exactly the throttle depth their SLO "
                "requires. Heterogeneous\n"
                "backup provisioning turns workload diversity into "
                "capital savings.\n");
    return 0;
}
