/**
 * @file
 * Scalar vs batched annual-trial lanes, on the same scenario the
 * campaign micro benchmark tracks (specjbb x 4 servers, Throttle
 * defense, NoDG configuration — fast-path eligible). items_per_second
 * is the single-thread trials/sec figure in both lanes, so the
 * batched-kernel speedup is the ratio of the two: the acceptance gate
 * for campaign/batch_kernel is >= 5x on BM_BatchedAnnualTrials vs
 * BM_ScalarAnnualTrial (see bench/baselines/BENCH_micro_batch.json
 * for the committed reference run). BM_TraceGeneration isolates the
 * shared per-trial cost both lanes pay, bounding what any replay
 * optimization can recover.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "campaign/annual_campaign.hh"
#include "campaign/batch_kernel.hh"
#include "core/annual.hh"
#include "core/backup_config.hh"
#include "outage/trace.hh"
#include "sim/random.hh"
#include "workload/profile.hh"

using namespace bpsim;

namespace
{

constexpr Time kYear = 365LL * 24 * kHour;

AnnualCampaignSpec
benchSpec()
{
    AnnualCampaignSpec spec;
    spec.profile = specJbbProfile();
    spec.nServers = 4;
    spec.technique = {TechniqueKind::Throttle, 5, 0, 0, false};
    spec.config = noDgConfig();
    return spec;
}

/** The shared per-trial cost: stream setup + outage trace sampling. */
void
BM_TraceGeneration(benchmark::State &state)
{
    const auto gen = OutageTraceGenerator::figure1();
    std::uint64_t id = 0;
    for (auto _ : state) {
        Rng rng = Rng::stream(42, id++ % 64);
        const auto events = gen.generate(rng, kYear);
        benchmark::DoNotOptimize(events.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

/** The scalar reference lane: one event-driven simulated year. */
void
BM_ScalarAnnualTrial(benchmark::State &state)
{
    const auto spec = benchSpec();
    const auto gen = OutageTraceGenerator::figure1();
    const AnnualSimulator sim;
    std::uint64_t id = 0;
    for (auto _ : state) {
        Rng rng = Rng::stream(42, id++ % 64);
        const auto events = gen.generate(rng, kYear);
        const AnnualResult r = sim.runYear(spec.profile, spec.nServers,
                                           spec.technique, spec.config,
                                           events);
        benchmark::DoNotOptimize(r.downtimeMin);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScalarAnnualTrial);

/** The batched SoA lane, at the campaign drivers' chunk sizes. */
void
BM_BatchedAnnualTrials(benchmark::State &state)
{
    const auto spec = benchSpec();
    const BatchAnnualKernel kernel(spec.profile, spec.nServers,
                                   spec.technique, spec.config);
    if (!kernel.fastPathEligible()) {
        state.SkipWithError("bench scenario lost fast-path eligibility");
        return;
    }
    const auto batch = static_cast<std::uint64_t>(state.range(0));
    std::vector<AnnualResult> out(static_cast<std::size_t>(batch));
    std::uint64_t base = 0;
    for (auto _ : state) {
        kernel.runBatch(42, base, base + batch, out.data());
        benchmark::DoNotOptimize(out.front().downtimeMin);
        base = (base + batch) % 4096;
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_BatchedAnnualTrials)->Arg(8)->Arg(64)->Arg(256);

} // namespace

BENCHMARK_MAIN();
