/**
 * @file
 * Ablation: sensitivity to the FreeRunTime base battery capacity (the
 * paper's technical report studies this). The base runtime that comes
 * free with the UPS power rating determines how much of Table 3's
 * savings survive at other points on the Ragone curve, and how cheap
 * the "-L" save-state techniques can get.
 */

#include <cstdio>

#include "core/analyzer.hh"
#include "sim/logging.hh"

using namespace bpsim;

int
main()
{
    setQuietLogging(true);
    std::printf("=== Ablation: FreeRunTime (base battery capacity) "
                "===\n\n");

    std::printf("Normalized Table 3 costs as the free base runtime "
                "varies:\n");
    std::printf("%-20s", "configuration");
    const double free_minutes[] = {0.5, 1.0, 2.0, 4.0};
    for (double f : free_minutes)
        std::printf(" %8.1fm", f);
    std::printf("\n");
    for (const auto &spec : table3Configs()) {
        std::printf("%-20s", spec.name.c_str());
        for (double f : free_minutes) {
            CostParams p;
            p.freeRunTimeSec = f * 60.0;
            const CostModel m{p};
            const auto cap = capacityOf(spec, 1e6);
            std::printf(" %9.2f", m.normalizedCost(cap, 1000.0));
        }
        std::printf("\n");
    }

    std::printf("\nSized cost of Sleep-L (Specjbb, 1-hour outage) vs "
                "free runtime:\n");
    for (double f : free_minutes) {
        CostParams p;
        p.freeRunTimeSec = f * 60.0;
        Analyzer a{CostModel{p}};
        Scenario sc;
        sc.profile = specJbbProfile();
        sc.nServers = 8;
        sc.outageDuration = fromHours(1.0);
        sc.technique = {TechniqueKind::Sleep, 0, 0, 0, true};
        const auto ev = a.sizeUpsOnly(sc);
        std::printf("  free %.1f min -> cost %.3f of MaxPerf "
                    "(runtime %.1f min)\n",
                    f, ev.normalizedCost,
                    ev.capacity.upsRuntimeSec / 60.0);
    }

    std::printf("\nReading: LargeEUPS-style configurations are nearly "
                "insensitive (their\n"
                "energy is bought anyway), while the short-runtime "
                "configurations ride\n"
                "entirely on the free base — exactly the Ragone-plot "
                "argument of Section 3.\n");
    return 0;
}
