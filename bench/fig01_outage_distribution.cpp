/**
 * @file
 * Figure 1 reproduction: power-outage frequency and duration
 * distributions for US businesses, both the encoded survey data and a
 * large sampled validation drawn from the generators.
 */

#include <cstdio>

#include "outage/trace.hh"
#include "sim/logging.hh"

using namespace bpsim;

int
main()
{
    setQuietLogging(true);
    std::printf("=== Figure 1: Power outage distributions "
                "(US businesses) ===\n\n");

    std::printf("(a) Outage frequency per year\n");
    std::printf("%-12s %9s %14s\n", "outages/yr", "survey", "sampled");
    const auto freq = OutageFrequencyDistribution::figure1();
    Rng rng(42);
    const int n = 200000;
    std::vector<int> counts(13, 0);
    for (int i = 0; i < n; ++i)
        ++counts[freq.sample(rng)];
    const char *freq_labels[] = {"None", "1 to 2", "3 to 6", "7+"};
    int idx = 0;
    for (const auto &b : freq.buckets()) {
        int in_bucket = 0;
        for (int c = static_cast<int>(b.lo); c < static_cast<int>(b.hi);
             ++c) {
            in_bucket += counts[c];
        }
        std::printf("%-12s %8.0f%% %13.1f%%\n", freq_labels[idx++],
                    b.prob * 100.0, 100.0 * in_bucket / n);
    }

    std::printf("\n(b) Outage duration\n");
    std::printf("%-16s %9s %14s\n", "minutes", "survey", "sampled");
    const auto dur = OutageDurationDistribution::figure1();
    const char *dur_labels[] = {"< 1",      "1 to 5",    "5 to 30",
                                "30 to 120", "120 to 240", "> 240"};
    std::vector<int> dcounts(dur.buckets().size(), 0);
    for (int i = 0; i < n; ++i) {
        const double m = toMinutes(dur.sample(rng));
        for (std::size_t j = 0; j < dur.buckets().size(); ++j) {
            if (m >= dur.buckets()[j].lo && m < dur.buckets()[j].hi) {
                ++dcounts[j];
                break;
            }
        }
    }
    for (std::size_t j = 0; j < dur.buckets().size(); ++j) {
        std::printf("%-16s %8.0f%% %13.1f%%\n", dur_labels[j],
                    dur.buckets()[j].prob * 100.0,
                    100.0 * dcounts[j] / n);
    }

    std::printf("\nHeadline statistics the paper draws from this "
                "figure:\n");
    std::printf("  outages <= 5 min:   %4.0f%%  (paper: over 58%%)\n",
                dur.fractionWithin(fromMinutes(5.0)) * 100.0);
    std::printf("  outages <= 40 min:  %4.0f%%  (\"bulk of outages\")\n",
                dur.fractionWithin(fromMinutes(40.0)) * 100.0);
    std::printf("  <= 6 outages/year:  %4.0f%%  (paper: 87%%)\n",
                (0.17 + 0.40 + 0.30) * 100.0);
    std::printf("  mean outage:        %4.1f min\n",
                toMinutes(dur.mean()));

    std::printf("\nExample synthetic year (seed 7):\n");
    auto gen = OutageTraceGenerator::figure1();
    Rng year_rng(7);
    const auto events =
        gen.generate(year_rng, 365LL * 24 * kHour);
    for (const auto &ev : events) {
        std::printf("  day %5.1f: outage of %6.1f min\n",
                    toHours(ev.start) / 24.0, toMinutes(ev.duration));
    }
    return 0;
}
