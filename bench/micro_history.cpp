/**
 * @file
 * Google-benchmark microbenchmarks of the metrics-history layer: the
 * raw HistoryStore hot paths (record into all tiers, windowed query,
 * LTTB-downsampled query), one full sampler tick over a realistically
 * populated registry, and — the lane that guards the out-of-band
 * promise — the service's hot cache-hit path with history enabled vs
 * disabled. The committed baseline
 * (bench/baselines/BENCH_micro_history.json) gates all lanes in CI.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "obs/history.hh"
#include "obs/registry.hh"
#include "service/service.hh"

using namespace bpsim;
using namespace bpsim::service;

namespace
{

constexpr std::uint64_t kSec = 1000000000ull;

/** A store sized like the server default (600 buckets per tier). */
obs::HistoryConfig
defaultConfig()
{
    obs::HistoryConfig cfg;
    cfg.cadenceNs = kSec;
    cfg.retentionNs = 600 * kSec;
    return cfg;
}

/** One record() lands the sample in the raw ring and both rollups. */
void
BM_HistoryRecord(benchmark::State &state)
{
    obs::HistoryStore store(defaultConfig());
    std::uint64_t t = 0;
    for (auto _ : state) {
        store.record("bench.signal", t, 1.5);
        t += kSec;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistoryRecord);

/** Full-window query against a full raw ring (600 buckets copied). */
void
BM_HistoryQueryFullWindow(benchmark::State &state)
{
    obs::HistoryStore store(defaultConfig());
    for (std::uint64_t i = 0; i < 600; ++i)
        store.record("bench.signal", i * kSec, (i % 7) * 0.5);
    obs::HistoryStore::Query q;
    q.tier = 0;
    for (auto _ : state) {
        const auto r = store.query("bench.signal", q);
        benchmark::DoNotOptimize(r.points.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistoryQueryFullWindow);

/** Same query downsampled to a dashboard-sized point budget. */
void
BM_HistoryQueryLttb(benchmark::State &state)
{
    obs::HistoryStore store(defaultConfig());
    for (std::uint64_t i = 0; i < 600; ++i)
        store.record("bench.signal", i * kSec, (i % 7) * 0.5);
    obs::HistoryStore::Query q;
    q.tier = 0;
    q.maxPoints = 240;
    for (auto _ : state) {
        const auto r = store.query("bench.signal", q);
        benchmark::DoNotOptimize(r.points.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistoryQueryLttb);

/**
 * One sampler tick over a registry shaped like a busy server's: the
 * per-tick cost the background thread pays every cadence (registry
 * snapshots, counter-to-rate folding, histogram family merges, alert
 * gauge export, ~60 store records).
 */
void
BM_HistorySampleTick(benchmark::State &state)
{
    obs::Registry reg;
    for (int i = 0; i < 20; ++i) {
        reg.counter("bench.counter." + std::to_string(i)).add(100);
        reg.gauge("bench.gauge." + std::to_string(i)).set(i * 1.5);
    }
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.history.samplerThread = false;
    opts.history.registry = &reg;
    CampaignService service(opts);
    std::uint64_t n = 0;
    for (auto _ : state) {
        // Nudge a counter so every tick folds fresh rates.
        reg.counter("bench.counter.0").add(++n);
        service.sampleHistoryOnce();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistorySampleTick);

/** A tiny scenario so warming the cache costs milliseconds. */
const char *const kBody =
    "{\"config\":\"NoUPS\",\"trials\":2,\"seed\":11,"
    "\"technique\":{\"kind\":\"throttle_sleep\",\"pstate\":5,"
    "\"serve_for_min\":10.0,\"low_power\":true}}";

/**
 * The out-of-band guard: requests/sec through the hot cache-hit path
 * with the history layer on vs off. The two lanes must stay within
 * noise of each other — history's per-request cost is one relaxed
 * atomic load for the lag annotation.
 */
void
hotCacheLoop(benchmark::State &state, bool historyEnabled)
{
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.history.enabled = historyEnabled;
    opts.history.samplerThread = false;
    CampaignService service(opts);
    HttpRequest req;
    req.method = "POST";
    req.target = "/v1/whatif";
    req.body = kBody;
    if (service.handle(req).status != 200) { // warm the cache
        state.SkipWithError("warm-up what-if failed");
        return;
    }
    for (auto _ : state) {
        const HttpResponse resp = service.handle(req);
        benchmark::DoNotOptimize(resp.body.data());
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_ServiceHotCacheHitHistoryOn(benchmark::State &state)
{
    hotCacheLoop(state, /*historyEnabled=*/true);
}
BENCHMARK(BM_ServiceHotCacheHitHistoryOn);

void
BM_ServiceHotCacheHitHistoryOff(benchmark::State &state)
{
    hotCacheLoop(state, /*historyEnabled=*/false);
}
BENCHMARK(BM_ServiceHotCacheHitHistoryOff);

/** The /v1/series render cost for one named series, full window. */
void
BM_ServiceSeriesEndpoint(benchmark::State &state)
{
    obs::Registry reg;
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.history.samplerThread = false;
    opts.history.registry = &reg;
    CampaignService service(opts);
    for (int i = 0; i < 240; ++i) {
        reg.gauge("bench.gauge").set(i * 0.5);
        service.sampleHistoryOnce();
    }
    HttpRequest req;
    req.method = "GET";
    req.target = "/v1/series?name=bench.gauge&tier=0";
    for (auto _ : state) {
        const HttpResponse resp = service.handle(req);
        benchmark::DoNotOptimize(resp.body.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceSeriesEndpoint);

} // namespace

BENCHMARK_MAIN();
