/**
 * @file
 * CI perf gate: diff a fresh google-benchmark JSON file against a
 * committed baseline (bench/baselines/) and fail on regressions above
 * a noise threshold.
 *
 *   bench_compare BASELINE.json CURRENT.json
 *       [--warn-over FRAC]          default 0.10 (warn above +10%)
 *       [--fail-over FRAC]          default 0.25 (fail above +25%)
 *       [--inject-regression PCT]   CI self-test: pretend current is
 *                                   PCT percent slower
 *
 * Exit status: 0 when no benchmark regressed past --fail-over,
 * 1 when at least one did, 2 on usage or parse errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "campaign/benchdiff.hh"

using namespace bpsim;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s BASELINE.json CURRENT.json"
                 " [--warn-over FRAC] [--fail-over FRAC]"
                 " [--inject-regression PCT]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path, current_path;
    BenchCompareOptions opts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--warn-over") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.warnOver = std::atof(v);
        } else if (arg == "--fail-over") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.failOver = std::atof(v);
        } else if (arg == "--inject-regression") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.injectRegression = std::atof(v) / 100.0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else if (baseline_path.empty()) {
            baseline_path = arg;
        } else if (current_path.empty()) {
            current_path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (baseline_path.empty() || current_path.empty())
        return usage(argv[0]);

    std::string error;
    const auto baseline = readBenchmarkFile(baseline_path, &error);
    if (!baseline) {
        std::fprintf(stderr, "bench_compare: %s: %s\n",
                     baseline_path.c_str(), error.c_str());
        return 2;
    }
    const auto current = readBenchmarkFile(current_path, &error);
    if (!current) {
        std::fprintf(stderr, "bench_compare: %s: %s\n",
                     current_path.c_str(), error.c_str());
        return 2;
    }

    if (opts.injectRegression != 0.0)
        std::printf("note: injecting a synthetic %+.0f%% regression "
                    "(gate self-test)\n",
                    opts.injectRegression * 100.0);

    const BenchCompareReport report =
        compareBenchRuns(*baseline, *current, opts);
    writeBenchCompareReport(std::cout, report);

    if (report.anyFail) {
        std::printf("\nperf gate: FAIL (regression above %.0f%%)\n",
                    opts.failOver * 100.0);
        return 1;
    }
    if (report.anyWarn)
        std::printf("\nperf gate: ok with warnings (above %.0f%% or "
                    "missing benchmarks)\n",
                    opts.warnOver * 100.0);
    else
        std::printf("\nperf gate: ok\n");
    return 0;
}
