/**
 * @file
 * Shared plumbing for the table/figure reproduction benches: the
 * technique rows the paper plots (with (min,max) bands for the
 * parameterized ones), evaluation against minimally-sized UPS-only
 * backups (Figures 6-9 methodology), and column formatting.
 */

#ifndef BPSIM_BENCH_COMMON_HH
#define BPSIM_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "campaign/json.hh"
#include "core/selector.hh"
#include "sim/logging.hh"

namespace bpsim::bench
{

/**
 * One-line provenance header (build id, CPU model, core count) so a
 * pasted bench transcript is comparable across hosts. Prints once per
 * process, from the first panel.
 */
inline void
printProvenance()
{
    std::printf("build %s | host: %s (%u cores)\n", buildId(),
                hostCpuModel().c_str(), hostCoreCount());
}

/** A plotted technique: one label, one or more parameterizations. */
struct TechRow
{
    std::string name;
    std::vector<TechniqueSpec> variants;
};

/** Min/max band of one metric across a row's variants. */
struct Band
{
    double min = 0.0;
    double max = 0.0;

    std::string
    str(const char *fmt = "%.2f") const
    {
        if (std::abs(max - min) < 1e-6)
            return formatString(fmt, min);
        return formatString((std::string(fmt) + " / " + fmt).c_str(), min,
                            max);
    }
};

/** Evaluated row: bands over feasible variants. */
struct RowResult
{
    std::string name;
    Band cost;
    Band perf;
    Band downtimeMin;
    bool anyFeasible = false;
};

/**
 * The technique rows of Figures 6-9: the basic mechanisms plus the
 * hybrid grid, with throttling and the hybrids carrying (min,max)
 * bands across their P-state / serve-window parameterizations.
 */
inline std::vector<TechRow>
figureTechniqueRows(const ServerModel &model, Time duration)
{
    std::vector<TechRow> rows;
    const int p_half = pstateForPowerFraction(model, 0.5);
    const int p_min = model.params().pStates - 1;

    TechRow throttle{"Throttling", {}};
    for (int p = 0; p < model.params().pStates; ++p)
        throttle.variants.push_back({TechniqueKind::Throttle, p, 0, 0,
                                     false});
    throttle.variants.push_back(
        {TechniqueKind::Throttle, p_min, model.params().tStates - 1, 0,
         false});
    rows.push_back(throttle);

    rows.push_back({"Sleep", {{TechniqueKind::Sleep, 0, 0, 0, false}}});
    rows.push_back({"Sleep-L", {{TechniqueKind::Sleep, 0, 0, 0, true}}});
    rows.push_back(
        {"Hibernate", {{TechniqueKind::Hibernate, 0, 0, 0, false}}});
    rows.push_back(
        {"Hibernate-L", {{TechniqueKind::Hibernate, 0, 0, 0, true}}});
    rows.push_back({"ProactiveHibernate",
                    {{TechniqueKind::ProactiveHibernate, 0, 0, 0, false}}});
    rows.push_back(
        {"Migration", {{TechniqueKind::Migration, 0, 0, 0, false},
                       {TechniqueKind::Migration, p_half, 0, 0, false}}});
    rows.push_back({"ProactiveMigration",
                    {{TechniqueKind::ProactiveMigration, 0, 0, 0, false},
                     {TechniqueKind::ProactiveMigration, p_half, 0, 0,
                      false}}});
    rows.push_back({"Migration+Sleep-L",
                    {{TechniqueKind::MigrationSleep, 0, 0, 0, false}}});

    TechRow hyb_sleep{"Throttle+Sleep-L", {}};
    TechRow hyb_hib{"Throttle+Hibernate", {}};
    for (int p : {p_half, p_min}) {
        for (double frac : {0.25, 0.5, 0.75, 0.95}) {
            const Time serve =
                static_cast<Time>(static_cast<double>(duration) * frac);
            hyb_sleep.variants.push_back(
                {TechniqueKind::ThrottleSleep, p, 0, serve, true});
            hyb_hib.variants.push_back(
                {TechniqueKind::ThrottleHibernate, p, 0, serve, true});
        }
    }
    rows.push_back(hyb_sleep);
    rows.push_back(hyb_hib);
    return rows;
}

/** Evaluate one row with minimally-sized UPS-only backups. */
inline RowResult
evaluateRow(const Analyzer &analyzer, const Scenario &base,
            const TechRow &row)
{
    RowResult out;
    out.name = row.name;
    bool first = true;
    for (const auto &spec : row.variants) {
        Scenario sc = base;
        sc.technique = spec;
        const Evaluation ev = analyzer.sizeUpsOnly(sc);
        if (!ev.feasible)
            continue;
        out.anyFeasible = true;
        const double cost = ev.normalizedCost;
        const double perf = ev.result.perfDuringOutage;
        const double down = ev.result.downtimeSec / 60.0;
        if (first) {
            out.cost = {cost, cost};
            out.perf = {perf, perf};
            out.downtimeMin = {down, down};
            first = false;
        } else {
            out.cost.min = std::min(out.cost.min, cost);
            out.cost.max = std::max(out.cost.max, cost);
            out.perf.min = std::min(out.perf.min, perf);
            out.perf.max = std::max(out.perf.max, perf);
            out.downtimeMin.min = std::min(out.downtimeMin.min, down);
            out.downtimeMin.max = std::max(out.downtimeMin.max, down);
        }
    }
    return out;
}

/** Evaluate a fixed configuration (MaxPerf / MinCost baselines). */
inline RowResult
evaluateBaseline(const Analyzer &analyzer, const Scenario &base,
                 const BackupConfigSpec &config, const char *name)
{
    Scenario sc = base;
    sc.technique = {};
    const Evaluation ev = analyzer.evaluateConfig(sc, config);
    RowResult out;
    out.name = name;
    out.anyFeasible = ev.feasible;
    out.cost = {ev.normalizedCost, ev.normalizedCost};
    out.perf = {ev.result.perfDuringOutage, ev.result.perfDuringOutage};
    out.downtimeMin = {ev.result.downtimeSec / 60.0,
                       ev.result.downtimeSec / 60.0};
    // Baselines are always reportable.
    out.anyFeasible = true;
    return out;
}

/** Print one figure panel (all rows for one outage duration). */
inline void
printPanel(const Analyzer &analyzer, const WorkloadProfile &profile,
           int n_servers, Time duration)
{
    static const bool provenance_printed = [] {
        printProvenance();
        return true;
    }();
    (void)provenance_printed;

    Scenario base;
    base.profile = profile;
    base.nServers = n_servers;
    base.outageDuration = duration;

    std::printf("--- outage duration: %.1f min ---\n",
                toMinutes(duration));
    std::printf("%-22s %13s %13s %17s\n", "technique", "cost",
                "perf", "downtime (min)");

    const ServerModel model{base.serverParams};
    auto print_row = [](const RowResult &r) {
        if (!r.anyFeasible) {
            std::printf("%-22s %13s %13s %17s\n", r.name.c_str(),
                        "infeasible", "-", "-");
            return;
        }
        std::printf("%-22s %13s %13s %17s\n", r.name.c_str(),
                    r.cost.str().c_str(), r.perf.str().c_str(),
                    r.downtimeMin.str("%.1f").c_str());
    };

    print_row(evaluateBaseline(analyzer, base, maxPerfConfig(),
                               "MaxPerf"));
    print_row(evaluateBaseline(analyzer, base, minCostConfig(),
                               "MinCost"));
    for (const auto &row : figureTechniqueRows(model, duration))
        print_row(evaluateRow(analyzer, base, row));
    std::printf("\n");
}

} // namespace bpsim::bench

#endif // BPSIM_BENCH_COMMON_HH
