/**
 * @file
 * Figure 3 reproduction: runtime chart for a battery with max power of
 * 4 kW (APC unit), plus the delivered-energy column that motivates the
 * paper's "runtime is disproportionately higher at lower load"
 * observation.
 */

#include <cstdio>

#include "power/battery.hh"
#include "sim/logging.hh"

using namespace bpsim;

int
main()
{
    setQuietLogging(true);
    std::printf("=== Figure 3: Runtime for a battery with max power "
                "of 4 KW ===\n\n");
    PeukertBattery::Params p;
    p.ratedPowerW = 4000.0;
    p.runtimeAtRatedSec = 600.0;
    const PeukertBattery bat(p);

    std::printf("Peukert exponent fitted to the chart: k = %.4f\n\n",
                bat.params().peukertExponent);
    std::printf("%-10s %-10s %-14s %-16s\n", "load %", "load (W)",
                "runtime (min)", "energy (kWh)");
    for (int pct = 10; pct <= 100; pct += 5) {
        const Watts load = 4000.0 * pct / 100.0;
        const double runtime_min = toMinutes(bat.runtimeAtLoad(load));
        const double kwh = load * runtime_min * 60.0 / 3.6e6;
        std::printf("%-10d %-10.0f %-14.1f %-16.2f\n", pct, load,
                    runtime_min, kwh);
    }

    std::printf("\nPaper anchor points:\n");
    std::printf("  100%% load (4000 W): %.1f min, %.2f kWh "
                "(paper: 10 min, 0.66 kWh)\n",
                toMinutes(bat.runtimeAtLoad(4000.0)),
                4000.0 * toSeconds(bat.runtimeAtLoad(4000.0)) / 3.6e6);
    std::printf("   25%% load (1000 W): %.1f min, %.2f kWh "
                "(paper: 60 min, 1 kWh)\n",
                toMinutes(bat.runtimeAtLoad(1000.0)),
                1000.0 * toSeconds(bat.runtimeAtLoad(1000.0)) / 3.6e6);
    return 0;
}
