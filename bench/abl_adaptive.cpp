/**
 * @file
 * Ablation: online adaptive outage handling vs static policies under
 * *unknown* outage durations (Section 7). Every static technique is
 * tuned for some duration; the adaptive policy conditions on the
 * outage's elapsed time with the Figure 1 Markov predictor and the
 * battery's actual state of charge. Expected performability is
 * computed over the Figure 1 duration mixture.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/analyzer.hh"
#include "outage/distribution.hh"
#include "sim/logging.hh"

using namespace bpsim;

namespace
{

/** Fixed plant for every policy: full-power UPS, 10-minute battery. */
PowerHierarchy::Config
plant(int n)
{
    PowerHierarchy::Config c;
    c.hasDg = false;
    c.hasUps = true;
    c.ups.powerCapacityW = n * 250.0;
    c.ups.runtimeAtRatedSec = 10.0 * 60.0;
    return c;
}

struct Policy
{
    std::string name;
    /** Technique for a given (known or assumed) duration. */
    TechniqueSpec spec;
    /** Re-plan per duration (the oracle knows the real duration). */
    bool oracle = false;
};

} // namespace

int
main()
{
    setQuietLogging(true);
    std::printf("=== Ablation: adaptive vs static outage handling ===\n");
    std::printf("(8 x Specjbb, full-power UPS with a 10-minute battery; "
                "durations drawn from Figure 1)\n\n");

    const auto dist = OutageDurationDistribution::figure1();
    Analyzer analyzer;

    const int p_half = pstateForPowerFraction(ServerModel{}, 0.5);
    std::vector<Policy> policies = {
        {"Static full speed", {TechniqueKind::None}, false},
        {"Static Throttle(p5)",
         {TechniqueKind::Throttle, p_half, 0, 0, false},
         false},
        {"Static Sleep-L", {TechniqueKind::Sleep, 0, 0, 0, true}, false},
        {"Static Thr+Sleep(5min)",
         {TechniqueKind::ThrottleSleep, p_half, 0, 5 * kMinute, true},
         false},
        {"Adaptive(risk 0.4)", {}, false},
        {"Adaptive(risk 0.1)", {}, false},
        {"Oracle hybrid", {}, true},
    };
    policies[4].spec.kind = TechniqueKind::Adaptive;
    policies[4].spec.risk = 0.4;
    policies[5].spec.kind = TechniqueKind::Adaptive;
    policies[5].spec.risk = 0.1;

    std::printf("%-24s %10s %14s %10s\n", "policy", "E[perf]",
                "E[down] (min)", "crash-free");
    for (const auto &pol : policies) {
        double e_perf = 0.0, e_down = 0.0;
        bool crash_free = true;
        for (const auto &bucket : dist.buckets()) {
            const Time d = fromMinutes(0.5 * (bucket.lo + bucket.hi));
            Scenario sc;
            sc.profile = specJbbProfile();
            sc.nServers = 8;
            sc.outageDuration = d;
            if (pol.oracle) {
                // The oracle knows the duration: serve throttled for
                // as long as the battery allows, then sleep.
                sc.technique = {TechniqueKind::ThrottleSleep, p_half, 0,
                                std::min<Time>(d, 20 * kMinute), true};
            } else {
                sc.technique = pol.spec;
            }
            const auto r = analyzer.run(sc, plant(8));
            e_perf += bucket.prob * r.perfDuringOutage;
            e_down += bucket.prob * r.downtimeSec / 60.0;
            crash_free = crash_free && r.losses == 0;
        }
        std::printf("%-24s %10.3f %14.1f %10s\n", pol.name.c_str(),
                    e_perf, e_down, crash_free ? "yes" : "NO");
    }

    std::printf("\nReading: static full speed crashes whenever the "
                "outage outlasts the battery;\n"
                "static sleep never crashes but never serves. The "
                "adaptive policy tracks the\n"
                "oracle's expected performance closely without knowing "
                "any duration in advance,\n"
                "and its risk knob trades expected performance against "
                "early suspension.\n");
    return 0;
}
