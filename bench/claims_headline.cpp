/**
 * @file
 * Headline-claims harness: checks every quantitative claim from the
 * abstract and the two "Summary of Insights" lists (Sections 6.1-6.2)
 * against the simulator, printing PASS/MISS per claim.
 */

#include <cstdio>

#include "core/selector.hh"
#include "core/tco.hh"
#include "outage/distribution.hh"
#include "sim/logging.hh"

using namespace bpsim;

namespace
{

int failures = 0;

void
check(const char *claim, bool ok, const std::string &detail)
{
    std::printf("  [%s] %s\n         %s\n", ok ? "PASS" : "MISS", claim,
                detail.c_str());
    if (!ok)
        ++failures;
}

} // namespace

int
main()
{
    setQuietLogging(true);
    std::printf("=== Headline claims (abstract + Sections 6.1/6.2) "
                "===\n\n");

    Analyzer a;
    TechniqueSelector sel(a);
    const CostModel cost;

    Scenario base;
    base.profile = specJbbProfile();
    base.nServers = 8;

    {
        // "For outages up to 40 mins, DGs are not needed": a DG-free
        // UPS serving 40 min at full perf costs less than MaxPerf.
        Scenario sc = base;
        sc.outageDuration = fromMinutes(40.0);
        const auto sized = a.sizeUpsOnly(sc);
        check("no DG needed up to 40 min (full perf, cheaper than "
              "today)",
              sized.feasible && sized.result.perfDuringOutage > 0.99 &&
                  sized.normalizedCost < 1.0,
              formatString("cost %.2f of MaxPerf at perf %.2f",
                           sized.normalizedCost,
                           sized.result.perfDuringOutage));
    }
    {
        // "UPS can be the sole backup for outages up to 100 minutes to
        // offer similar performability at a similar cost as today".
        Scenario sc = base;
        sc.outageDuration = fromMinutes(100.0);
        const auto sized = a.sizeUpsOnly(sc);
        check("UPS-only matches today's cost up to ~100 min",
              sized.feasible && sized.normalizedCost < 1.05,
              formatString("cost %.2f at perf %.2f",
                           sized.normalizedCost,
                           sized.result.perfDuringOutage));
    }
    {
        // "40% performance degradation during such long power outages
        // -> 40% cost savings" (1-hour outage).
        Scenario sc = base;
        sc.outageDuration = fromHours(1.0);
        const auto best = sel.bestUnderBudget(
            sc, allCandidates(ServerModel{}, sc.outageDuration), 0.60);
        check("40% perf hit buys 40% savings at 1 h",
              best.has_value() &&
                  best->eval.result.perfDuringOutage >= 0.55,
              best ? formatString("perf %.2f at cost %.2f (%s)",
                                  best->eval.result.perfDuringOutage,
                                  best->eval.normalizedCost,
                                  best->spec.label().c_str())
                   : std::string("no feasible choice"));
    }
    {
        // "Accommodating longer runtimes on a UPS battery is more cost
        // and performability effective than using it for high power."
        TechniqueSelector s2(a);
        Scenario sc = base;
        sc.outageDuration = fromMinutes(60.0);
        const auto cands =
            allCandidates(ServerModel{}, sc.outageDuration);
        const auto high_p = s2.bestForConfig(sc, noDgConfig(), cands);
        const auto long_e =
            s2.bestForConfig(sc, smallPLargeEUpsConfig(), cands);
        check("long runtime beats high power at equal cost (60 min)",
              long_e.eval.result.perfDuringOutage >
                  high_p.eval.result.perfDuringOutage,
              formatString("SmallP-LargeEUPS perf %.2f vs NoDG %.2f",
                           long_e.eval.result.perfDuringOutage,
                           high_p.eval.result.perfDuringOutage));
    }
    {
        // "Different applications react differently": under a tight
        // budget the achievable performance ordering is
        // memcached > web-search > specjbb.
        std::vector<double> perfs;
        for (const auto &w :
             {memcachedProfile(), webSearchProfile(), specJbbProfile()}) {
            Scenario sc;
            sc.profile = w;
            sc.nServers = 8;
            sc.outageDuration = fromMinutes(5.0);
            const auto best = sel.bestUnderBudget(
                sc, allCandidates(ServerModel{}, sc.outageDuration),
                0.25);
            perfs.push_back(best ? best->eval.result.perfDuringOutage
                                 : 0.0);
        }
        check("applications react differently to the same budget",
              perfs[0] > perfs[1] && perfs[1] > perfs[2],
              formatString("memcached %.2f > web-search %.2f > "
                           "specjbb %.2f",
                           perfs[0], perfs[1], perfs[2]));
    }
    {
        // "Active power state modulation is better for short outages,
        // sleep/hibernation + modulation for medium, migration and
        // consolidation for long."
        auto best_kind = [&](Time dur, double budget) {
            Scenario sc = base;
            sc.outageDuration = dur;
            const auto best = sel.bestUnderBudget(
                sc, allCandidates(ServerModel{}, dur), budget);
            return best ? best->spec : TechniqueSpec{};
        };
        // A tight 0.25 budget forces the trade-off the paper
        // describes; looser budgets let pure throttling stretch into
        // the medium range.
        const auto short_pick = best_kind(fromMinutes(2.0), 0.25);
        const auto med_pick = best_kind(fromMinutes(45.0), 0.25);
        const auto long_pick = best_kind(fromHours(3.0), 0.4);
        const bool short_ok =
            short_pick.kind == TechniqueKind::Throttle;
        const bool med_ok =
            med_pick.kind == TechniqueKind::ThrottleSleep ||
            med_pick.kind == TechniqueKind::ThrottleHibernate ||
            med_pick.kind == TechniqueKind::Sleep;
        const bool long_ok =
            long_pick.kind == TechniqueKind::Migration ||
            long_pick.kind == TechniqueKind::ProactiveMigration ||
            long_pick.kind == TechniqueKind::MigrationSleep ||
            long_pick.kind == TechniqueKind::ThrottleSleep;
        check("technique preference shifts with outage duration",
              short_ok && med_ok && long_ok,
              formatString("2 min: %s; 45 min: %s; 3 h: %s",
                           short_pick.label().c_str(),
                           med_pick.label().c_str(),
                           long_pick.label().c_str()));
    }
    {
        const TcoModel tco;
        check("TCO crossover ~5 h/year (Google 2011)",
              std::abs(tco.crossoverMinutesPerYr() / 60.0 - 5.0) < 0.4,
              formatString("%.1f hours", tco.crossoverMinutesPerYr() /
                                             60.0));
    }
    {
        const auto d = OutageDurationDistribution::figure1();
        check("over 58% of outages last <= 5 minutes",
              d.fractionWithin(fromMinutes(5.0)) >= 0.58 - 1e-9,
              formatString("%.0f%%",
                           d.fractionWithin(fromMinutes(5.0)) * 100.0));
    }

    std::printf("\n%s (%d claim(s) missed)\n",
                failures == 0 ? "ALL HEADLINE CLAIMS REPRODUCED"
                              : "SOME CLAIMS MISSED",
                failures);
    return failures == 0 ? 0 : 1;
}
