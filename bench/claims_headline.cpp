/**
 * @file
 * Headline-claims harness: checks every quantitative claim from the
 * abstract and the two "Summary of Insights" lists (Sections 6.1-6.2)
 * against the simulator, printing PASS/MISS per claim. The final,
 * year-scale claim runs as a Monte Carlo campaign on the parallel
 * engine; per-claim verdicts land in BENCH_claims_headline.json.
 */

#include <cstdio>

#include <vector>

#include "campaign/annual_campaign.hh"
#include "campaign/json.hh"
#include "core/selector.hh"
#include "core/tco.hh"
#include "outage/distribution.hh"
#include "sim/logging.hh"

using namespace bpsim;

namespace
{

int failures = 0;

struct ClaimRecord
{
    std::string claim;
    bool ok;
    std::string detail;
};
std::vector<ClaimRecord> records;

void
check(const char *claim, bool ok, const std::string &detail)
{
    std::printf("  [%s] %s\n         %s\n", ok ? "PASS" : "MISS", claim,
                detail.c_str());
    records.push_back({claim, ok, detail});
    if (!ok)
        ++failures;
}

} // namespace

int
main()
{
    setQuietLogging(true);
    std::printf("=== Headline claims (abstract + Sections 6.1/6.2) "
                "===\n\n");

    Analyzer a;
    TechniqueSelector sel(a);
    const CostModel cost;

    Scenario base;
    base.profile = specJbbProfile();
    base.nServers = 8;

    {
        // "For outages up to 40 mins, DGs are not needed": a DG-free
        // UPS serving 40 min at full perf costs less than MaxPerf.
        Scenario sc = base;
        sc.outageDuration = fromMinutes(40.0);
        const auto sized = a.sizeUpsOnly(sc);
        check("no DG needed up to 40 min (full perf, cheaper than "
              "today)",
              sized.feasible && sized.result.perfDuringOutage > 0.99 &&
                  sized.normalizedCost < 1.0,
              formatString("cost %.2f of MaxPerf at perf %.2f",
                           sized.normalizedCost,
                           sized.result.perfDuringOutage));
    }
    {
        // "UPS can be the sole backup for outages up to 100 minutes to
        // offer similar performability at a similar cost as today".
        Scenario sc = base;
        sc.outageDuration = fromMinutes(100.0);
        const auto sized = a.sizeUpsOnly(sc);
        check("UPS-only matches today's cost up to ~100 min",
              sized.feasible && sized.normalizedCost < 1.05,
              formatString("cost %.2f at perf %.2f",
                           sized.normalizedCost,
                           sized.result.perfDuringOutage));
    }
    {
        // "40% performance degradation during such long power outages
        // -> 40% cost savings" (1-hour outage).
        Scenario sc = base;
        sc.outageDuration = fromHours(1.0);
        const auto best = sel.bestUnderBudget(
            sc, allCandidates(ServerModel{}, sc.outageDuration), 0.60);
        check("40% perf hit buys 40% savings at 1 h",
              best.has_value() &&
                  best->eval.result.perfDuringOutage >= 0.55,
              best ? formatString("perf %.2f at cost %.2f (%s)",
                                  best->eval.result.perfDuringOutage,
                                  best->eval.normalizedCost,
                                  best->spec.label().c_str())
                   : std::string("no feasible choice"));
    }
    {
        // "Accommodating longer runtimes on a UPS battery is more cost
        // and performability effective than using it for high power."
        TechniqueSelector s2(a);
        Scenario sc = base;
        sc.outageDuration = fromMinutes(60.0);
        const auto cands =
            allCandidates(ServerModel{}, sc.outageDuration);
        const auto high_p = s2.bestForConfig(sc, noDgConfig(), cands);
        const auto long_e =
            s2.bestForConfig(sc, smallPLargeEUpsConfig(), cands);
        check("long runtime beats high power at equal cost (60 min)",
              long_e.eval.result.perfDuringOutage >
                  high_p.eval.result.perfDuringOutage,
              formatString("SmallP-LargeEUPS perf %.2f vs NoDG %.2f",
                           long_e.eval.result.perfDuringOutage,
                           high_p.eval.result.perfDuringOutage));
    }
    {
        // "Different applications react differently": under a tight
        // budget the achievable performance ordering is
        // memcached > web-search > specjbb.
        std::vector<double> perfs;
        for (const auto &w :
             {memcachedProfile(), webSearchProfile(), specJbbProfile()}) {
            Scenario sc;
            sc.profile = w;
            sc.nServers = 8;
            sc.outageDuration = fromMinutes(5.0);
            const auto best = sel.bestUnderBudget(
                sc, allCandidates(ServerModel{}, sc.outageDuration),
                0.25);
            perfs.push_back(best ? best->eval.result.perfDuringOutage
                                 : 0.0);
        }
        check("applications react differently to the same budget",
              perfs[0] > perfs[1] && perfs[1] > perfs[2],
              formatString("memcached %.2f > web-search %.2f > "
                           "specjbb %.2f",
                           perfs[0], perfs[1], perfs[2]));
    }
    {
        // "Active power state modulation is better for short outages,
        // sleep/hibernation + modulation for medium, migration and
        // consolidation for long."
        auto best_kind = [&](Time dur, double budget) {
            Scenario sc = base;
            sc.outageDuration = dur;
            const auto best = sel.bestUnderBudget(
                sc, allCandidates(ServerModel{}, dur), budget);
            return best ? best->spec : TechniqueSpec{};
        };
        // A tight 0.25 budget forces the trade-off the paper
        // describes; looser budgets let pure throttling stretch into
        // the medium range.
        const auto short_pick = best_kind(fromMinutes(2.0), 0.25);
        const auto med_pick = best_kind(fromMinutes(45.0), 0.25);
        const auto long_pick = best_kind(fromHours(3.0), 0.4);
        const bool short_ok =
            short_pick.kind == TechniqueKind::Throttle;
        const bool med_ok =
            med_pick.kind == TechniqueKind::ThrottleSleep ||
            med_pick.kind == TechniqueKind::ThrottleHibernate ||
            med_pick.kind == TechniqueKind::Sleep;
        const bool long_ok =
            long_pick.kind == TechniqueKind::Migration ||
            long_pick.kind == TechniqueKind::ProactiveMigration ||
            long_pick.kind == TechniqueKind::MigrationSleep ||
            long_pick.kind == TechniqueKind::ThrottleSleep;
        check("technique preference shifts with outage duration",
              short_ok && med_ok && long_ok,
              formatString("2 min: %s; 45 min: %s; 3 h: %s",
                           short_pick.label().c_str(),
                           med_pick.label().c_str(),
                           long_pick.label().c_str()));
    }
    {
        const TcoModel tco;
        check("TCO crossover ~5 h/year (Google 2011)",
              std::abs(tco.crossoverMinutesPerYr() / 60.0 - 5.0) < 0.4,
              formatString("%.1f hours", tco.crossoverMinutesPerYr() /
                                             60.0));
    }
    {
        const auto d = OutageDurationDistribution::figure1();
        check("over 58% of outages last <= 5 minutes",
              d.fractionWithin(fromMinutes(5.0)) >= 0.58 - 1e-9,
              formatString("%.0f%%",
                           d.fractionWithin(fromMinutes(5.0)) * 100.0));
    }
    AnnualCampaignSummary mc;
    {
        // Year-scale synthesis of the whole thesis, as a Monte Carlo
        // campaign: a DG-free LargeEUPS datacenter with a standing
        // Throttle+Sleep defense rides out sampled Figure 1 years with
        // annual downtime safely below the ~5 h TCO crossover, and
        // never loses state. This is the end-to-end "underprovisioning
        // is profitable" claim the paper builds toward.
        const TcoModel tco;
        AnnualCampaignSpec spec;
        spec.profile = specJbbProfile();
        spec.nServers = 8;
        spec.technique = {TechniqueKind::ThrottleSleep, 5, 0,
                          fromMinutes(10.0), true};
        spec.config = largeEUpsConfig();
        AnnualCampaignOptions opts;
        opts.maxTrials = 200;
        opts.seed = 2011; // the Google financials' year
        mc = runAnnualCampaign(spec, opts);
        const double mean_down = mc.downtimeMin.summary().mean();
        check("DG-free LargeEUPS + defense stays below the TCO "
              "crossover (200-year campaign)",
              mean_down < tco.crossoverMinutesPerYr() &&
                  mc.lossFree.lo > 0.95,
              formatString("E[down] %.0f min/yr (P95 %.0f) vs crossover "
                           "%.0f; loss-free %.0f%% [%.0f,%.0f]",
                           mean_down, mc.downtimeMin.p95(),
                           tco.crossoverMinutesPerYr(),
                           mc.lossFree.fraction * 100.0,
                           mc.lossFree.lo * 100.0,
                           mc.lossFree.hi * 100.0));
    }

    std::printf("\n%s (%d claim(s) missed)\n",
                failures == 0 ? "ALL HEADLINE CLAIMS REPRODUCED"
                              : "SOME CLAIMS MISSED",
                failures);

    const std::string json =
        writeBenchJsonFile("claims_headline", [&](JsonWriter &w) {
            w.field("claims",
                    static_cast<std::uint64_t>(records.size()));
            w.field("missed", failures);
            w.field("seed", mc.seed);
            w.field("trials", mc.trials);
            w.field("wall_seconds", mc.wallSeconds);
            w.field("trials_per_sec", mc.trialsPerSec);
            w.field("threads", WorkStealingPool::hardwareThreads());
            writeMetricJson(w, "campaign_downtime_min", mc.downtimeMin);
            w.key("verdicts").beginArray();
            for (const auto &r : records) {
                w.beginObject();
                w.field("claim", r.claim);
                w.field("ok", r.ok);
                w.field("detail", r.detail);
                w.endObject();
            }
            w.endArray();
        });
    if (!json.empty())
        std::printf("[wrote %s]\n", json.c_str());
    return failures == 0 ? 0 : 1;
}
