/**
 * @file
 * Figure 9 reproduction: technique trade-offs for SpecCPU (mcf x 8) at
 * short (30 s), medium (30 min) and long (2 h) outages. MinCost's
 * downtime is reported as a (min,max) band over the recompute penalty,
 * which depends on where in the batch run the outage lands.
 */

#include "common.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main()
{
    setQuietLogging(true);
    std::printf("=== Figure 9: Tradeoffs for SpecCPU (mcf*8) ===\n\n");
    Analyzer analyzer;
    const auto profile = specCpuMcfProfile();
    printPanel(analyzer, profile, 8, 30 * kSecond);
    printPanel(analyzer, profile, 8, 30 * kMinute);
    printPanel(analyzer, profile, 8, 2 * kHour);

    std::printf("MinCost downtime band over the recompute penalty "
                "(30 s outage):\n");
    Scenario sc;
    sc.profile = profile;
    sc.nServers = 8;
    sc.outageDuration = 30 * kSecond;
    double lo = 0.0, hi = 0.0;
    for (double frac : {0.0, 1.0}) {
        Scenario s = sc;
        s.recomputeFraction = frac;
        const auto ev = analyzer.evaluateConfig(s, minCostConfig());
        (frac == 0.0 ? lo : hi) = ev.result.downtimeSec / 60.0;
    }
    std::printf("  MinCost downtime: %.1f .. %.1f min (paper: a wide "
                "band) -> %s\n",
                lo, hi, (hi > 3.0 * lo) ? "OK" : "MISS");

    std::printf("\nShape checks vs the paper:\n");
    sc.outageDuration = 30 * kMinute;
    sc.technique = {TechniqueKind::Sleep, 0, 0, 0, true};
    const auto slp = analyzer.sizeUpsOnly(sc);
    std::printf("  save-state avoids any recompute (downtime %.1f min "
                "~= outage + resume) -> %s\n",
                slp.result.downtimeSec / 60.0,
                std::abs(slp.result.downtimeSec - (30.0 * 60.0 + 8.0)) <
                        30.0
                    ? "OK"
                    : "MISS");

    // The paper's parenthetical ("one can alleviate the performance
    // impact by checkpointing partial results"): sweep the checkpoint
    // interval for the crash-recovery (MinCost) case.
    std::printf("\nCheckpoint-interval sweep (MinCost, worst-case "
                "outage timing, 30 s outage):\n");
    for (double interval_min : {0.0, 60.0, 15.0, 5.0}) {
        Scenario s;
        s.profile = specCpuMcfProfile();
        s.profile.checkpointIntervalSec = interval_min * 60.0;
        s.nServers = 8;
        s.outageDuration = 30 * kSecond;
        s.recomputeFraction = 1.0;
        const auto ev = analyzer.evaluateConfig(s, minCostConfig());
        std::printf("  checkpoint every %5.0f min -> downtime %6.1f "
                    "min\n",
                    interval_min == 0.0 ? 999.0 : interval_min,
                    ev.result.downtimeSec / 60.0);
    }
    std::printf("  (999 = no checkpointing: the whole run since start "
                "is lost)\n");
    return 0;
}
