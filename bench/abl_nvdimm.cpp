/**
 * @file
 * Ablation: NVDIMM (Section 7). With super-capacitor-backed DIMMs the
 * volatile state persists through an abrupt power cut with *zero*
 * external backup power — so a MinCost datacenter keeps only the
 * outage itself (plus a fast flash restore) as downtime. This bench
 * quantifies how much backup infrastructure NVDIMM displaces.
 */

#include <cstdio>

#include "core/analyzer.hh"
#include "sim/logging.hh"

using namespace bpsim;

int
main()
{
    setQuietLogging(true);
    std::printf("=== Ablation: NVDIMM vs conventional DRAM ===\n\n");

    Analyzer analyzer;
    std::printf("%-12s %-14s %-22s %8s %12s\n", "workload", "outage",
                "configuration", "cost", "downtime");
    for (const auto &profile :
         {specJbbProfile(), webSearchProfile(), memcachedProfile()}) {
        for (double minutes : {0.5, 5.0, 30.0, 120.0}) {
            Scenario sc;
            sc.profile = profile;
            sc.nServers = 8;
            sc.outageDuration = fromMinutes(minutes);

            // Conventional DRAM, MinCost: crash and recover.
            const auto plain =
                analyzer.evaluateConfig(sc, minCostConfig());
            // NVDIMM, MinCost: persist through the loss for free.
            Scenario nv = sc;
            nv.serverParams.nvdimm = true;
            const auto nvdimm =
                analyzer.evaluateConfig(nv, minCostConfig());
            // Conventional + the cheapest save-state defense.
            Scenario sl = sc;
            sl.technique = {TechniqueKind::Sleep, 0, 0, 0, true};
            const auto sleep_l = analyzer.sizeUpsOnly(sl);

            std::printf("%-12s %10.1f min %-22s %8.2f %9.1f min\n",
                        profile.name.c_str(), minutes,
                        "MinCost (DRAM)", plain.normalizedCost,
                        plain.result.downtimeSec / 60.0);
            std::printf("%-12s %10.1f min %-22s %8.2f %9.1f min\n",
                        profile.name.c_str(), minutes,
                        "MinCost (NVDIMM)", nvdimm.normalizedCost,
                        nvdimm.result.downtimeSec / 60.0);
            std::printf("%-12s %10.1f min %-22s %8.2f %9.1f min\n",
                        profile.name.c_str(), minutes,
                        "Sleep-L (sized UPS)", sleep_l.normalizedCost,
                        sleep_l.result.downtimeSec / 60.0);
        }
        std::printf("\n");
    }

    std::printf("Reading: NVDIMM turns the zero-cost configuration "
                "into (almost) the Sleep-L\n"
                "availability profile — the flash restore replaces "
                "both the UPS energy and the\n"
                "cold recovery, which is exactly the displacement "
                "argument of Section 7.\n");
    return 0;
}
