/**
 * @file
 * Google-benchmark microbenchmarks of the simulation engine itself:
 * event throughput, battery integration, timeline queries, and the
 * cost of a full end-to-end outage scenario. These guard the harness's
 * own performance (the figure benches run hundreds of scenarios).
 */

#include <benchmark/benchmark.h>

#include "core/analyzer.hh"
#include "power/battery.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "sim/timeline.hh"

using namespace bpsim;

namespace
{

void
BM_EventScheduleExecute(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator sim;
        const int n = static_cast<int>(state.range(0));
        for (int i = 0; i < n; ++i)
            sim.schedule(i * kMillisecond, [] {});
        sim.run();
        benchmark::DoNotOptimize(sim.executedEvents());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventScheduleExecute)->Arg(1000)->Arg(10000)->Arg(100000);

void
BM_EventCascade(benchmark::State &state)
{
    // Self-rescheduling event chain: the simulator hot path.
    for (auto _ : state) {
        Simulator sim;
        const int n = static_cast<int>(state.range(0));
        int count = 0;
        std::function<void()> chain = [&] {
            if (++count < n)
                sim.schedule(kMillisecond, chain);
        };
        sim.schedule(kMillisecond, chain);
        sim.run();
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventCascade)->Arg(10000);

void
BM_BatteryDischarge(benchmark::State &state)
{
    PeukertBattery::Params p;
    p.ratedPowerW = 4000.0;
    p.runtimeAtRatedSec = 1e9;
    PeukertBattery bat(p);
    for (auto _ : state) {
        bat.discharge(2000.0 + (state.iterations() % 100), kSecond);
        benchmark::DoNotOptimize(bat.soc());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BatteryDischarge);

void
BM_TimelineIntegrate(benchmark::State &state)
{
    Timeline tl(0.0);
    for (int i = 0; i < 10000; ++i)
        tl.record(i * kSecond, (i % 7) * 100.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tl.integrate(100 * kSecond, 9000 * kSecond));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimelineIntegrate);

void
BM_FullScenario(benchmark::State &state)
{
    setQuietLogging(true);
    Analyzer a;
    Scenario sc;
    sc.profile = specJbbProfile();
    sc.nServers = static_cast<int>(state.range(0));
    sc.outageDuration = fromMinutes(30.0);
    sc.technique = {TechniqueKind::ThrottleSleep, 5, 0, 10 * kMinute,
                    true};
    for (auto _ : state) {
        const auto ev = a.evaluateConfig(sc, largeEUpsConfig());
        benchmark::DoNotOptimize(ev.result.downtimeSec);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullScenario)->Arg(8)->Arg(32)->Arg(128);

void
BM_SizingPass(benchmark::State &state)
{
    setQuietLogging(true);
    Analyzer a;
    Scenario sc;
    sc.profile = memcachedProfile();
    sc.nServers = 8;
    sc.outageDuration = fromMinutes(30.0);
    sc.technique = {TechniqueKind::Throttle, 5, 0, 0, false};
    for (auto _ : state) {
        const auto ev = a.sizeUpsOnly(sc);
        benchmark::DoNotOptimize(ev.costPerYr);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SizingPass);

} // namespace

BENCHMARK_MAIN();
