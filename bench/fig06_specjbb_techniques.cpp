/**
 * @file
 * Figure 6 reproduction: impact of outage duration (30 s to 2 h) on
 * the cost / downtime / performance of every outage-handling technique
 * for Specjbb, each backed by its minimum-cost UPS-only configuration.
 * Parameterized techniques (throttling P-states, hybrid serve windows)
 * report (min,max) bands, as in the paper's bars.
 */

#include "common.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main()
{
    setQuietLogging(true);
    std::printf("=== Figure 6: Outage-duration impact on techniques "
                "(Specjbb) ===\n");
    std::printf("(cost normalized to MaxPerf; bands are min/max across "
                "P-states or serve windows)\n\n");
    Analyzer analyzer;
    const auto profile = specJbbProfile();
    for (double minutes : {0.5, 5.0, 30.0, 60.0, 120.0})
        printPanel(analyzer, profile, 8, fromMinutes(minutes));

    std::printf("Shape checks vs the paper (Section 6.2):\n");
    // Throttling matches MaxPerf perf at <40%% cost for short outages.
    Scenario sc;
    sc.profile = profile;
    sc.nServers = 8;
    sc.outageDuration = fromMinutes(5.0);
    sc.technique = {TechniqueKind::Throttle, 0, 0, 0, false};
    const auto full_throttle = analyzer.sizeUpsOnly(sc);
    std::printf("  full-speed 'throttle' @5min costs %.2f "
                "(paper: <0.4 at full perf) -> %s\n",
                full_throttle.normalizedCost,
                full_throttle.normalizedCost < 0.45 ? "OK" : "MISS");

    sc.outageDuration = fromHours(2.0);
    sc.technique = {TechniqueKind::ThrottleSleep, 5, 0, 10 * kMinute,
                    true};
    const auto hybrid = analyzer.sizeUpsOnly(sc);
    std::printf("  Throttle+Sleep-L @2h costs %.2f "
                "(paper: as low as 0.20) -> %s\n",
                hybrid.normalizedCost,
                hybrid.normalizedCost < 0.25 ? "OK" : "MISS");

    sc.technique = {TechniqueKind::Sleep, 0, 0, 0, true};
    sc.outageDuration = 30 * kSecond;
    const auto sleep_l = analyzer.sizeUpsOnly(sc);
    std::printf("  Sleep-L @30s: downtime %.0f s at cost %.2f "
                "(paper: ~38 s at ~0.2) -> %s\n",
                sleep_l.result.downtimeSec, sleep_l.normalizedCost,
                (sleep_l.result.downtimeSec < 60.0 &&
                 sleep_l.normalizedCost < 0.25)
                    ? "OK"
                    : "MISS");
    return 0;
}
