/**
 * @file
 * Figure 10 reproduction: revenue loss + server depreciation versus
 * the savings from not provisioning diesel generators, for Google's
 * 2011 financials. The crossover (~5 hours of yearly outage) marks the
 * region where backup under-provisioning is profitable.
 *
 * The analytic table is followed by a Monte Carlo cross-check on the
 * campaign engine: whole years of Figure 1 outage traces, yielding the
 * distribution of yearly exposure and a Wilson interval on the
 * fraction of years where skipping the DG is profitable. Results are
 * exported to BENCH_fig10_tco_crossover.json.
 */

#include <cstdio>
#include <cstdlib>

#include <algorithm>

#include "campaign/annual_campaign.hh"
#include "campaign/json.hh"
#include "core/tco.hh"
#include "outage/distribution.hh"
#include "sim/logging.hh"

using namespace bpsim;

int
main()
{
    setQuietLogging(true);
    const TcoModel tco;

    std::printf("=== Figure 10: Revenue loss vs backup savings "
                "(Google 2011) ===\n\n");
    std::printf("  revenue/KW/min:            $%.3f\n",
                tco.params().revenuePerKwMin);
    std::printf("  server depreciation/KW/min: $%.3f\n",
                tco.params().serverDepreciationPerKwMin);
    std::printf("  DG savings:                $%.1f/KW/year\n\n",
                tco.dgSavingsPerKwYr());

    std::printf("%-26s %-22s %-14s %s\n", "yearly outage (min)",
                "loss ($/KW/yr)", "DG cost", "verdict");
    for (int minutes = 0; minutes <= 500; minutes += 50) {
        const double loss = tco.outageCostPerKwYr(minutes);
        std::printf("%-26d %-22.1f %-14.1f %s\n", minutes, loss,
                    tco.dgSavingsPerKwYr(),
                    tco.profitableWithoutDg(minutes)
                        ? "profitable without DG"
                        : "DG pays off");
    }

    std::printf("\nCrossover: %.0f minutes/year (~%.1f hours; "
                "paper: ~5 hours)\n",
                tco.crossoverMinutesPerYr(),
                tco.crossoverMinutesPerYr() / 60.0);

    // Tie the crossover back to the outage statistics: what yearly
    // outage exposure does Figure 1 actually imply?
    const auto dur = OutageDurationDistribution::figure1();
    const auto freq = OutageFrequencyDistribution::figure1();
    const double expected_min_per_yr =
        toMinutes(dur.mean()) * freq.mean();
    std::printf("\nExpected outage exposure from Figure 1: "
                "%.0f min/year (%.1f h)\n",
                expected_min_per_yr, expected_min_per_yr / 60.0);
    std::printf("  -> under-provisioning is %s for the *average* US "
                "business site\n",
                tco.profitableWithoutDg(expected_min_per_yr)
                    ? "profitable"
                    : "not profitable");
    std::printf("  (and most sites see far less than the mean: the "
                "duration tail is heavy)\n");

    // Monte Carlo cross-check: sample whole years of Figure 1 traces
    // on the campaign engine. The mean only tells half the story —
    // the heavy duration tail means the *typical* year is far below
    // the crossover even when a rare year blows past it.
    std::uint64_t years = 2000;
    if (const char *env = std::getenv("BPSIM_CAMPAIGN_TRIALS"))
        years = static_cast<std::uint64_t>(std::max(1L, std::atol(env)));
    const auto gen = OutageTraceGenerator::figure1();
    AnnualCampaignOptions opts;
    opts.maxTrials = years;
    opts.seed = 10;
    // Custom trial: downtimeMin carries the year's outage exposure in
    // minutes, meanPerf its TCO loss in $/KW/yr, and `losses` flags a
    // year where keeping the DG would have been the right call.
    const auto mc = runAnnualCampaign(
        [&gen, &tco](std::uint64_t, Rng &rng) {
            constexpr Time year = 365LL * 24 * kHour;
            const auto events = gen.generate(rng, year);
            double minutes = 0.0;
            for (const auto &ev : events)
                minutes += toMinutes(ev.duration);
            AnnualResult r;
            r.outages = static_cast<int>(events.size());
            r.downtimeMin = minutes;
            r.meanPerf = tco.outageCostPerKwYr(minutes);
            r.losses = tco.profitableWithoutDg(minutes) ? 0 : 1;
            return r;
        },
        opts);

    std::printf("\nMonte Carlo over %llu sampled years (campaign "
                "engine, %d thread(s)):\n",
                static_cast<unsigned long long>(mc.trials),
                WorkStealingPool::hardwareThreads());
    std::printf("  exposure min/yr: mean %.0f, P50 %.0f, P95 %.0f, "
                "P99 %.0f\n",
                mc.downtimeMin.summary().mean(), mc.downtimeMin.p50(),
                mc.downtimeMin.p95(), mc.downtimeMin.p99());
    std::printf("  TCO loss $/KW/yr: mean %.1f vs DG savings %.1f\n",
                mc.meanPerf.summary().mean(), tco.dgSavingsPerKwYr());
    std::printf("  years profitable without DG: %.1f%% "
                "[%.1f%%, %.1f%%] (Wilson 95%%)\n",
                mc.lossFree.fraction * 100.0, mc.lossFree.lo * 100.0,
                mc.lossFree.hi * 100.0);

    const std::string json =
        writeBenchJsonFile("fig10_tco_crossover", [&](JsonWriter &w) {
            w.field("seed", mc.seed);
            w.field("trials", mc.trials);
            w.field("wall_seconds", mc.wallSeconds);
            w.field("trials_per_sec", mc.trialsPerSec);
            w.field("threads", WorkStealingPool::hardwareThreads());
            w.field("crossover_min_per_yr", tco.crossoverMinutesPerYr());
            w.field("dg_savings_per_kw_yr", tco.dgSavingsPerKwYr());
            w.field("expected_exposure_min_per_yr", expected_min_per_yr);
            writeMetricJson(w, "exposure_min_per_yr", mc.downtimeMin);
            writeMetricJson(w, "tco_loss_per_kw_yr", mc.meanPerf);
            w.key("profitable_without_dg").beginObject();
            w.field("fraction", mc.lossFree.fraction);
            w.field("ci_lo", mc.lossFree.lo);
            w.field("ci_hi", mc.lossFree.hi);
            w.endObject();
        });
    if (!json.empty())
        std::printf("\n[wrote %s]\n", json.c_str());
    return 0;
}
