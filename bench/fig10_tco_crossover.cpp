/**
 * @file
 * Figure 10 reproduction: revenue loss + server depreciation versus
 * the savings from not provisioning diesel generators, for Google's
 * 2011 financials. The crossover (~5 hours of yearly outage) marks the
 * region where backup under-provisioning is profitable.
 */

#include <cstdio>

#include "core/tco.hh"
#include "outage/distribution.hh"
#include "sim/logging.hh"

using namespace bpsim;

int
main()
{
    setQuietLogging(true);
    const TcoModel tco;

    std::printf("=== Figure 10: Revenue loss vs backup savings "
                "(Google 2011) ===\n\n");
    std::printf("  revenue/KW/min:            $%.3f\n",
                tco.params().revenuePerKwMin);
    std::printf("  server depreciation/KW/min: $%.3f\n",
                tco.params().serverDepreciationPerKwMin);
    std::printf("  DG savings:                $%.1f/KW/year\n\n",
                tco.dgSavingsPerKwYr());

    std::printf("%-26s %-22s %-14s %s\n", "yearly outage (min)",
                "loss ($/KW/yr)", "DG cost", "verdict");
    for (int minutes = 0; minutes <= 500; minutes += 50) {
        const double loss = tco.outageCostPerKwYr(minutes);
        std::printf("%-26d %-22.1f %-14.1f %s\n", minutes, loss,
                    tco.dgSavingsPerKwYr(),
                    tco.profitableWithoutDg(minutes)
                        ? "profitable without DG"
                        : "DG pays off");
    }

    std::printf("\nCrossover: %.0f minutes/year (~%.1f hours; "
                "paper: ~5 hours)\n",
                tco.crossoverMinutesPerYr(),
                tco.crossoverMinutesPerYr() / 60.0);

    // Tie the crossover back to the outage statistics: what yearly
    // outage exposure does Figure 1 actually imply?
    const auto dur = OutageDurationDistribution::figure1();
    const auto freq = OutageFrequencyDistribution::figure1();
    const double expected_min_per_yr =
        toMinutes(dur.mean()) * freq.mean();
    std::printf("\nExpected outage exposure from Figure 1: "
                "%.0f min/year (%.1f h)\n",
                expected_min_per_yr, expected_min_per_yr / 60.0);
    std::printf("  -> under-provisioning is %s for the *average* US "
                "business site\n",
                tco.profitableWithoutDg(expected_min_per_yr)
                    ? "profitable"
                    : "not profitable");
    std::printf("  (and most sites see far less than the mean: the "
                "duration tail is heavy)\n");
    return 0;
}
