/**
 * @file
 * Table 5 reproduction: time for each system technique to take effect
 * after a power failure, and the power state it leaves the cluster in.
 * Timings are workload-dependent (they involve moving that workload's
 * state), so the table is printed for each of the paper's workloads.
 */

#include <cstdio>

#include "power/utility.hh"
#include "sim/logging.hh"
#include "technique/catalog.hh"

using namespace bpsim;

namespace
{

std::string
humanTime(Time t)
{
    if (t < kMillisecond)
        return formatString("%lld usec", static_cast<long long>(t));
    if (t < kSecond)
        return formatString("%.0f msec", toSeconds(t) * 1e3);
    if (t < 2 * kMinute)
        return formatString("%.0f secs", toSeconds(t));
    return formatString("%.1f mins", toMinutes(t));
}

} // namespace

int
main()
{
    setQuietLogging(true);
    std::printf("=== Table 5: Impact of system techniques on backup "
                "capacity ===\n");
    std::printf("(paper: throttling tens of usecs; migration few mins; "
                "proactive migration\n 100ms-few secs of residual copy "
                "savings; sleep ~10 secs; hibernation few mins)\n\n");

    for (const auto &profile : allPaperWorkloads()) {
        Simulator sim;
        Utility utility(sim);
        PowerHierarchy::Config cfg;
        cfg.hasDg = false;
        cfg.ups.powerCapacityW = 8 * 250.0 * 1.01;
        cfg.ups.runtimeAtRatedSec = 24 * 3600.0;
        PowerHierarchy hierarchy(sim, utility, cfg);
        Cluster cluster(sim, hierarchy, ServerModel{}, profile, 8);

        std::printf("--- workload: %s ---\n", profile.name.c_str());
        std::printf("%-24s %-16s %s\n", "technique", "time to effect",
                    "power after activation");
        for (const auto &row : table5(cluster)) {
            std::printf("%-24s %-16s %s\n", row.technique.c_str(),
                        humanTime(row.timeToTakeEffect).c_str(),
                        row.powerAfterActivation.c_str());
        }
        std::printf("\n");
    }
    return 0;
}
