/**
 * @file
 * Google-benchmark microbenchmarks of the resident service's
 * per-request cost on the hot (memory-cache-hit) path, with the
 * request-observability layer enabled vs disabled. The layer promises
 * out-of-band timing only; these lanes put a number on its overhead
 * and the committed baseline (bench/baselines/BENCH_micro_service.json)
 * gates it in CI. items_per_second is requests/sec through
 * CampaignService::handle() with the answer already cached, i.e. the
 * ceiling a single connection can see.
 */

#include <benchmark/benchmark.h>

#include <sstream>
#include <string>

#include "service/service.hh"

using namespace bpsim;
using namespace bpsim::service;

namespace
{

/** A tiny scenario so warming the cache costs milliseconds. */
const char *const kBody =
    "{\"config\":\"NoUPS\",\"trials\":2,\"seed\":11,"
    "\"technique\":{\"kind\":\"throttle_sleep\",\"pstate\":5,"
    "\"serve_for_min\":10.0,\"low_power\":true}}";

HttpRequest
whatIfRequest()
{
    HttpRequest req;
    req.method = "POST";
    req.target = "/v1/whatif";
    req.body = kBody;
    return req;
}

/**
 * Serve the same what-if from the memory cache over and over.
 * @p obsEnabled arms span timing + histograms; @p logging addition-
 * ally writes every request's access-log line (slowMs 0 exercises
 * the slow-span writer, the most expensive log shape).
 */
void
hotCacheLoop(benchmark::State &state, bool obsEnabled, bool logging)
{
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.reqobs.enabled = obsEnabled;
    std::ostringstream log;
    if (logging) {
        opts.reqobs.accessLogStream = &log;
        opts.reqobs.slowMs = 0;
    }
    CampaignService service(opts);
    const HttpRequest req = whatIfRequest();
    if (service.handle(req).status != 200) { // warm the cache
        state.SkipWithError("warm-up what-if failed");
        return;
    }
    for (auto _ : state) {
        const HttpResponse resp = service.handle(req);
        benchmark::DoNotOptimize(resp.body.data());
        if (logging)
            log.str(std::string()); // keep the stream bounded
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_ServiceHotCacheHit(benchmark::State &state)
{
    hotCacheLoop(state, /*obsEnabled=*/true, /*logging=*/false);
}
BENCHMARK(BM_ServiceHotCacheHit);

void
BM_ServiceHotCacheHitObsOff(benchmark::State &state)
{
    hotCacheLoop(state, /*obsEnabled=*/false, /*logging=*/false);
}
BENCHMARK(BM_ServiceHotCacheHitObsOff);

void
BM_ServiceHotCacheHitLogged(benchmark::State &state)
{
    hotCacheLoop(state, /*obsEnabled=*/true, /*logging=*/true);
}
BENCHMARK(BM_ServiceHotCacheHitLogged);

/** The /v1/status render cost (empty in-flight table, warm cache). */
void
BM_ServiceStatus(benchmark::State &state)
{
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    CampaignService service(opts);
    service.handle(whatIfRequest());
    HttpRequest req;
    req.method = "GET";
    req.target = "/v1/status";
    for (auto _ : state) {
        const HttpResponse resp = service.handle(req);
        benchmark::DoNotOptimize(resp.body.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceStatus);

} // namespace

BENCHMARK_MAIN();
