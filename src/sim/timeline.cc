#include "sim/timeline.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bpsim
{

void
Timeline::record(Time at, double value)
{
    if (!steps.empty()) {
        BPSIM_ASSERT(at >= steps.back().at,
                     "timeline sample at %lld precedes last sample at %lld",
                     static_cast<long long>(at),
                     static_cast<long long>(steps.back().at));
        if (at == steps.back().at) {
            steps.back().value = value;
            return;
        }
        if (steps.back().value == value)
            return;
    } else if (value == initial_) {
        return;
    }
    steps.push_back({at, value});
}

double
Timeline::valueAt(Time t) const
{
    // First step strictly after t; the value comes from its predecessor.
    auto it = std::upper_bound(
        steps.begin(), steps.end(), t,
        [](Time lhs, const Sample &s) { return lhs < s.at; });
    if (it == steps.begin())
        return initial_;
    return std::prev(it)->value;
}

double
Timeline::lastValue() const
{
    return steps.empty() ? initial_ : steps.back().value;
}

template <typename Fn>
void
Timeline::forEachSegment(Time from, Time to, Fn &&fn) const
{
    BPSIM_ASSERT(from <= to, "inverted window [%lld, %lld)",
                 static_cast<long long>(from), static_cast<long long>(to));
    if (from == to)
        return;
    Time cursor = from;
    double value = valueAt(from);
    auto it = std::upper_bound(
        steps.begin(), steps.end(), from,
        [](Time lhs, const Sample &s) { return lhs < s.at; });
    for (; it != steps.end() && it->at < to; ++it) {
        if (it->at > cursor)
            fn(cursor, it->at, value);
        cursor = it->at;
        value = it->value;
    }
    if (cursor < to)
        fn(cursor, to, value);
}

double
Timeline::integrate(Time from, Time to) const
{
    double total = 0.0;
    forEachSegment(from, to, [&](Time a, Time b, double v) {
        total += v * toSeconds(b - a);
    });
    return total;
}

double
Timeline::average(Time from, Time to) const
{
    if (from == to)
        return valueAt(from);
    return integrate(from, to) / toSeconds(to - from);
}

double
Timeline::minOver(Time from, Time to) const
{
    double best = valueAt(from);
    forEachSegment(from, to,
                   [&](Time, Time, double v) { best = std::min(best, v); });
    return best;
}

double
Timeline::maxOver(Time from, Time to) const
{
    double best = valueAt(from);
    forEachSegment(from, to,
                   [&](Time, Time, double v) { best = std::max(best, v); });
    return best;
}

Time
Timeline::timeBelow(Time from, Time to, double threshold) const
{
    Time below = 0;
    forEachSegment(from, to, [&](Time a, Time b, double v) {
        if (v < threshold)
            below += b - a;
    });
    return below;
}

} // namespace bpsim
