/**
 * @file
 * Struct-of-arrays state for batched trial kernels.
 *
 * A lane is one Monte Carlo trial; a TrialLanes holds the mutable
 * state of a whole batch as parallel contiguous arrays, so a kernel
 * pass walks flat vectors instead of chasing per-trial object graphs.
 * The piecewise-constant series accumulator (stepRecord/stepFinish)
 * mirrors Timeline exactly: it drops equal-value and zero-length
 * updates the same way Timeline::record()/integrate() do, so a lane
 * that replays the scalar simulator's settled values in the same order
 * produces a bit-identical integral.
 */

#ifndef BPSIM_SIM_SOA_HH
#define BPSIM_SIM_SOA_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace bpsim
{

/**
 * Advance one piecewise-constant series to value @p v at time @p at.
 * Equivalent to Timeline::record(at, v) followed eventually by
 * integrate(): equal values are skipped (Timeline collapses them) and
 * zero-length segments contribute nothing (Timeline's segment walk
 * skips them), so the accumulated integral matches bit for bit.
 */
inline void
stepRecord(double &integral, double &value, Time &since, Time at, double v)
{
    if (v == value)
        return;
    if (at > since)
        integral += value * toSeconds(at - since);
    value = v;
    since = at;
}

/** Close a series at @p end and return its completed integral. */
inline double
stepFinish(double integral, double value, Time since, Time end)
{
    if (end > since)
        integral += value * toSeconds(end - since);
    return integral;
}

/**
 * Mutable per-trial state of a lane batch, one array element per lane.
 * Series fields come in (integral, value, since) triples consumed by
 * stepRecord()/stepFinish().
 */
struct TrialLanes
{
    /** @name Battery string */
    ///@{
    /** State of charge in [0, 1]. */
    std::vector<double> soc;
    /** Energy sourced from the string so far (joules). */
    std::vector<double> batteryJ;
    ///@}

    /** @name Aggregate performance series (Timeline mirror) */
    ///@{
    std::vector<double> perfIntegral;
    std::vector<double> perfValue;
    std::vector<Time> perfSince;
    ///@}

    /** @name Availability series (Timeline mirror) */
    ///@{
    std::vector<double> availIntegral;
    std::vector<double> availValue;
    std::vector<Time> availSince;
    ///@}

    /** Per-application recompute debt (seconds; HPC profiles). */
    std::vector<double> appExtraSec;
    /** Longest fully-dark stretch so far. */
    std::vector<Time> worstGap;
    /** Abrupt power-loss events. */
    std::vector<std::int32_t> losses;

    /** Size and reset every lane to primed steady state at t = 0. */
    void
    assign(std::size_t n, double perf0, double avail0)
    {
        soc.assign(n, 1.0);
        batteryJ.assign(n, 0.0);
        perfIntegral.assign(n, 0.0);
        perfValue.assign(n, perf0);
        perfSince.assign(n, 0);
        availIntegral.assign(n, 0.0);
        availValue.assign(n, avail0);
        availSince.assign(n, 0);
        appExtraSec.assign(n, 0.0);
        worstGap.assign(n, 0);
        losses.assign(n, 0);
    }

    std::size_t size() const { return soc.size(); }
};

} // namespace bpsim

#endif // BPSIM_SIM_SOA_HH
