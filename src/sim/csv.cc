#include "sim/csv.hh"

#include <algorithm>
#include <set>

#include "sim/logging.hh"

namespace bpsim
{

namespace
{

void
writeHeader(std::ostream &os, const std::vector<CsvSeries> &series)
{
    os << "time_s";
    for (const auto &s : series)
        os << ',' << s.name;
    os << '\n';
}

void
writeRow(std::ostream &os, const std::vector<CsvSeries> &series, Time t)
{
    os << toSeconds(t);
    for (const auto &s : series)
        os << ',' << s.timeline->valueAt(t);
    os << '\n';
}

void
checkArgs(const std::vector<CsvSeries> &series, Time from, Time to)
{
    BPSIM_ASSERT(!series.empty(), "no series to export");
    for (const auto &s : series)
        BPSIM_ASSERT(s.timeline != nullptr, "null timeline for '%s'",
                     s.name.c_str());
    BPSIM_ASSERT(from <= to, "inverted export window");
}

} // namespace

void
writeTimelinesCsv(std::ostream &os, const std::vector<CsvSeries> &series,
                  Time from, Time to)
{
    checkArgs(series, from, to);
    std::set<Time> instants;
    instants.insert(from);
    for (const auto &s : series) {
        for (const auto &sample : s.timeline->samples()) {
            if (sample.at >= from && sample.at <= to)
                instants.insert(sample.at);
        }
    }
    instants.insert(to);
    writeHeader(os, series);
    for (Time t : instants)
        writeRow(os, series, t);
}

void
writeSampledCsv(std::ostream &os, const std::vector<CsvSeries> &series,
                Time from, Time to, Time period)
{
    checkArgs(series, from, to);
    BPSIM_ASSERT(period > 0, "non-positive sampling period");
    writeHeader(os, series);
    for (Time t = from; t < to; t += period)
        writeRow(os, series, t);
    writeRow(os, series, to);
}

} // namespace bpsim
