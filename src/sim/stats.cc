#include "sim/stats.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace bpsim
{

void
SummaryStats::add(double x)
{
    ++n;
    sum_ += x;
    if (n == 1) {
        mean_ = min_ = max_ = x;
        m2 = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n);
    m2 += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
SummaryStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n);
}

double
SummaryStats::stddev() const
{
    return std::sqrt(variance());
}

SummaryStats
SummaryStats::restore(std::size_t count, double mean, double m2,
                      double min, double max, double sum)
{
    SummaryStats s;
    s.n = count;
    s.mean_ = mean;
    s.m2 = m2;
    s.min_ = min;
    s.max_ = max;
    s.sum_ = sum;
    return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts(bins, 0)
{
    BPSIM_ASSERT(hi > lo, "histogram range [%g, %g) is empty", lo, hi);
    BPSIM_ASSERT(bins > 0, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++under;
        return;
    }
    if (x >= hi_) {
        ++over;
        return;
    }
    const double width = (hi_ - lo_) / static_cast<double>(counts.size());
    auto idx = static_cast<std::size_t>((x - lo_) / width);
    idx = std::min(idx, counts.size() - 1);
    ++counts[idx];
}

double
Histogram::binLo(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts.size());
    return lo_ + width * static_cast<double>(i);
}

double
Histogram::binHi(std::size_t i) const
{
    return binLo(i + 1);
}

double
Histogram::binFraction(std::size_t i) const
{
    const std::uint64_t in_range = total_ - under - over;
    if (in_range == 0)
        return 0.0;
    return static_cast<double>(counts.at(i)) /
           static_cast<double>(in_range);
}

void
TimeWeightedMean::add(Time duration, double value)
{
    BPSIM_ASSERT(duration >= 0, "negative duration");
    total += duration;
    weighted += value * toSeconds(duration);
}

double
TimeWeightedMean::mean() const
{
    if (total == 0)
        return 0.0;
    return weighted / toSeconds(total);
}

} // namespace bpsim
