/**
 * @file
 * Lightweight statistics collectors used throughout the models and the
 * benchmark harnesses: streaming summary statistics (Welford), fixed-bin
 * histograms, and a time-weighted mean accumulator.
 */

#ifndef BPSIM_SIM_STATS_HH
#define BPSIM_SIM_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace bpsim
{

/**
 * Streaming count/mean/variance/min/max via Welford's algorithm.
 *
 * Empty-state contract: every accessor of an empty collector returns
 * exactly 0 (never NaN or a sentinel), so zero-sample windows and
 * zero-trial shards serialize and merge without special-casing.
 */
class SummaryStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations. */
    std::size_t count() const { return n; }
    /** Arithmetic mean (0 when empty). */
    double mean() const { return n ? mean_ : 0.0; }
    /** Population variance (0 for fewer than 2 samples). */
    double variance() const;
    /** Population standard deviation. */
    double stddev() const;
    /** Smallest observation (0 when empty). */
    double min() const { return n ? min_ : 0.0; }
    /** Largest observation (0 when empty). */
    double max() const { return n ? max_ : 0.0; }
    /** Sum of all observations. */
    double sum() const { return sum_; }

    /**
     * @name Checkpoint state access
     * The exact internal state, for campaign checkpoints that must
     * resume a stream bit-identically (see campaign/checkpoint.hh):
     * the raw Welford accumulators, not the empty-state-masked
     * readouts above.
     */
    ///@{
    /** Σ(x - mean)² accumulator (the Welford M2 term). */
    double m2Raw() const { return m2; }
    /** Raw min/max slots (0 until the first add, like the state). */
    double minRaw() const { return min_; }
    double maxRaw() const { return max_; }
    /** Rebuild a collector mid-stream from checkpointed state. */
    static SummaryStats restore(std::size_t count, double mean, double m2,
                                double min, double max, double sum);
    ///@}

  private:
    std::size_t n = 0;
    double mean_ = 0.0;
    double m2 = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Histogram with uniform bins over [lo, hi); out-of-range samples land
 * in saturating underflow/overflow buckets.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one observation. */
    void add(double x);

    /** Count in bin @p i. */
    std::uint64_t binCount(std::size_t i) const { return counts.at(i); }
    /** Inclusive lower edge of bin @p i. */
    double binLo(std::size_t i) const;
    /** Exclusive upper edge of bin @p i. */
    double binHi(std::size_t i) const;
    /** Number of regular bins. */
    std::size_t bins() const { return counts.size(); }
    /** Samples below the range. */
    std::uint64_t underflow() const { return under; }
    /** Samples at or above the range end. */
    std::uint64_t overflow() const { return over; }
    /** Total samples added, including out-of-range ones. */
    std::uint64_t total() const { return total_; }
    /** Fraction of in-range samples in bin @p i (0 when empty). */
    double binFraction(std::size_t i) const;

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> counts;
    std::uint64_t under = 0, over = 0, total_ = 0;
};

/**
 * Time-weighted mean of a piecewise-constant signal fed as explicit
 * (duration, value) contributions; cheaper than a full Timeline when
 * only the mean is needed.
 */
class TimeWeightedMean
{
  public:
    /** Accumulate @p value held for @p duration. */
    void add(Time duration, double value);

    /** Total accumulated duration. */
    Time duration() const { return total; }
    /** Time-weighted mean (0 when no time accumulated). */
    double mean() const;

  private:
    Time total = 0;
    double weighted = 0.0;
};

} // namespace bpsim

#endif // BPSIM_SIM_STATS_HH
