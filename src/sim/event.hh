/**
 * @file
 * Discrete-event primitives: events, handles and the pending-event queue.
 *
 * Events carry an arbitrary callback and are ordered by (time, priority,
 * insertion sequence) so that simultaneous events execute in a
 * deterministic, reproducible order. Cancellation is supported through
 * shared handles; cancelled events stay in the queue but are skipped when
 * they reach the front (lazy deletion).
 */

#ifndef BPSIM_SIM_EVENT_HH
#define BPSIM_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace bpsim
{

/** Scheduling priority for events that share a timestamp. */
enum class EventPriority : int
{
    /** Power-delivery bookkeeping runs before consumers react. */
    Power = 0,
    /** Default priority for model events. */
    Normal = 10,
    /** Metric sampling runs after the state at this instant settles. */
    Stats = 20,
};

/** A single scheduled callback. Managed via shared_ptr by the queue. */
class Event
{
  public:
    Event(Time when, EventPriority prio, std::uint64_t seq,
          std::function<void()> fn, std::string name)
        : when_(when), prio_(prio), seq_(seq), fn_(std::move(fn)),
          name_(std::move(name))
    {}

    /** Scheduled execution time. */
    Time when() const { return when_; }
    /** Priority within the timestamp. */
    EventPriority priority() const { return prio_; }
    /** Monotonic insertion sequence number (tie-breaker). */
    std::uint64_t sequence() const { return seq_; }
    /** Diagnostic name. */
    const std::string &name() const { return name_; }
    /** True until executed or cancelled. */
    bool pending() const { return pending_; }

    /** Mark the event as no longer runnable. */
    void cancel() { pending_ = false; }

    /** Run the callback (once) if still pending. */
    void
    execute()
    {
        if (pending_) {
            pending_ = false;
            fn_();
        }
    }

  private:
    Time when_;
    EventPriority prio_;
    std::uint64_t seq_;
    std::function<void()> fn_;
    std::string name_;
    bool pending_ = true;
};

/**
 * Cancelable reference to a scheduled event. Default-constructed handles
 * refer to nothing and are safely no-ops.
 */
class EventHandle
{
  public:
    EventHandle() = default;
    explicit EventHandle(std::shared_ptr<Event> ev) : ev_(std::move(ev)) {}

    /** True if the referenced event is still waiting to run. */
    bool
    pending() const
    {
        return ev_ && ev_->pending();
    }

    /** Cancel the referenced event if it has not yet run. */
    void
    cancel()
    {
        if (ev_)
            ev_->cancel();
    }

    /** Scheduled time, or kTimeNever when empty/executed. */
    Time
    when() const
    {
        return pending() ? ev_->when() : kTimeNever;
    }

  private:
    std::shared_ptr<Event> ev_;
};

/**
 * Min-queue of pending events ordered by (time, priority, sequence).
 */
class EventQueue
{
  public:
    /** Insert an event; returns a cancelable handle. */
    EventHandle push(Time when, EventPriority prio,
                     std::function<void()> fn, std::string name);

    /** True when no runnable event remains. */
    bool empty();

    /** Timestamp of the next runnable event; kTimeNever when empty. */
    Time nextTime();

    /**
     * Pop and return the next runnable event. The queue must not be
     * empty().
     */
    std::shared_ptr<Event> pop();

    /** Number of events held, including lazily-cancelled ones. */
    std::size_t rawSize() const { return heap.size(); }

  private:
    struct Entry
    {
        std::shared_ptr<Event> ev;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.ev->when() != b.ev->when())
                return a.ev->when() > b.ev->when();
            if (a.ev->priority() != b.ev->priority())
                return a.ev->priority() > b.ev->priority();
            return a.ev->sequence() > b.ev->sequence();
        }
    };

    /** Drop cancelled events from the front. */
    void skipCancelled();

    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    std::uint64_t nextSeq = 0;
};

} // namespace bpsim

#endif // BPSIM_SIM_EVENT_HH
