#include "sim/simulator.hh"

#include "obs/obs.hh"
#include "sim/logging.hh"

namespace bpsim
{

EventHandle
Simulator::schedule(Time delay, std::function<void()> fn, std::string name,
                    EventPriority prio)
{
    BPSIM_ASSERT(delay >= 0, "negative delay %lld for event '%s'",
                 static_cast<long long>(delay), name.c_str());
    return queue.push(now_ + delay, prio, std::move(fn), std::move(name));
}

EventHandle
Simulator::at(Time when, std::function<void()> fn, std::string name,
              EventPriority prio)
{
    BPSIM_ASSERT(when >= now_,
                 "event '%s' scheduled in the past (%lld < %lld)",
                 name.c_str(), static_cast<long long>(when),
                 static_cast<long long>(now_));
    return queue.push(when, prio, std::move(fn), std::move(name));
}

void
Simulator::run()
{
    runUntil(kTimeNever);
}

void
Simulator::runUntil(Time limit)
{
    BPSIM_ASSERT(!running, "re-entrant Simulator::run()");
    running = true;
    stopping = false;
    const std::uint64_t executed_before = executed;
    while (!stopping && !queue.empty()) {
        Time next = queue.nextTime();
        if (next > limit)
            break;
        auto ev = queue.pop();
        BPSIM_ASSERT(ev->when() >= now_, "time went backwards to %lld",
                     static_cast<long long>(ev->when()));
        now_ = ev->when();
        ev->execute();
        ++executed;
    }
    if (limit != kTimeNever && now_ < limit && !stopping)
        now_ = limit;
    running = false;
    BPSIM_OBS_COUNTER_ADD("sim.events_processed", executed - executed_before);
}

} // namespace bpsim
