/**
 * @file
 * Error-reporting and status-message helpers, patterned after gem5's
 * logging conventions.
 *
 * panic()  - an internal invariant was violated; the simulator itself is
 *            broken. Aborts so a core dump / debugger can be used.
 * fatal()  - the simulation cannot continue because of a user error such
 *            as an inconsistent configuration. Exits with status 1.
 * warn()   - something is suspicious but the simulation can proceed.
 * inform() - purely informational status output.
 */

#ifndef BPSIM_SIM_LOGGING_HH
#define BPSIM_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace bpsim
{

/** Printf-style formatting into a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal simulator bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user/configuration error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit a non-fatal warning to stderr. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit an informational message to stderr. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() output (used by tests and benches). */
void setQuietLogging(bool quiet);

/**
 * Assert a simulator invariant; calls panic() with location details on
 * failure. Active in all build types, unlike the C assert macro, because
 * model invariants guard result validity rather than debug-only checks.
 */
#define BPSIM_ASSERT(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::bpsim::panic("assertion '%s' failed at %s:%d: %s", #cond,     \
                           __FILE__, __LINE__,                              \
                           ::bpsim::formatString(__VA_ARGS__).c_str());     \
        }                                                                   \
    } while (0)

} // namespace bpsim

#endif // BPSIM_SIM_LOGGING_HH
