#include "sim/event.hh"

#include "sim/logging.hh"

namespace bpsim
{

EventHandle
EventQueue::push(Time when, EventPriority prio, std::function<void()> fn,
                 std::string name)
{
    auto ev = std::make_shared<Event>(when, prio, nextSeq++, std::move(fn),
                                      std::move(name));
    heap.push(Entry{ev});
    return EventHandle(ev);
}

void
EventQueue::skipCancelled()
{
    while (!heap.empty() && !heap.top().ev->pending())
        heap.pop();
}

bool
EventQueue::empty()
{
    skipCancelled();
    return heap.empty();
}

Time
EventQueue::nextTime()
{
    skipCancelled();
    return heap.empty() ? kTimeNever : heap.top().ev->when();
}

std::shared_ptr<Event>
EventQueue::pop()
{
    skipCancelled();
    BPSIM_ASSERT(!heap.empty(), "pop() from an empty event queue");
    auto ev = heap.top().ev;
    heap.pop();
    return ev;
}

} // namespace bpsim
