/**
 * @file
 * CSV export for piecewise-constant timelines.
 *
 * Turns a set of named Timelines (power trace, performance,
 * availability, ...) into a step-aligned CSV for external plotting:
 * one row per instant at which any signal changes, every signal
 * column carrying its value from that instant on. An optional uniform
 * resampling mode emits fixed-period rows instead, which some plotting
 * tools prefer.
 */

#ifndef BPSIM_SIM_CSV_HH
#define BPSIM_SIM_CSV_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/timeline.hh"

namespace bpsim
{

/** One named signal column. */
struct CsvSeries
{
    std::string name;
    const Timeline *timeline;
};

/**
 * Write a step-change CSV: header `time_s,<names...>`, one row per
 * distinct change time across all series within [from, to], plus a
 * closing row at @p to.
 */
void writeTimelinesCsv(std::ostream &os,
                       const std::vector<CsvSeries> &series, Time from,
                       Time to);

/**
 * Write a uniformly sampled CSV with rows every @p period within
 * [from, to] (inclusive of both ends).
 */
void writeSampledCsv(std::ostream &os,
                     const std::vector<CsvSeries> &series, Time from,
                     Time to, Time period);

} // namespace bpsim

#endif // BPSIM_SIM_CSV_HH
