/**
 * @file
 * Fundamental simulation types and unit helpers.
 *
 * All simulated time is kept as a signed 64-bit count of microseconds so
 * that simulations are exactly reproducible across platforms. Electrical
 * quantities use doubles with explicit unit suffixes in names (watts,
 * joules, kilowatt-hours) to keep the cost model, the power substrate and
 * the analyzers consistent.
 */

#ifndef BPSIM_SIM_TYPES_HH
#define BPSIM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace bpsim
{

/** Simulated time in microseconds since the start of the simulation. */
using Time = std::int64_t;

/** Electrical power in watts. */
using Watts = double;

/** Electrical energy in joules (watt-seconds). */
using Joules = double;

/** Sentinel for "no scheduled time" / "never". */
constexpr Time kTimeNever = std::numeric_limits<Time>::max();

/** One microsecond expressed in Time units. */
constexpr Time kMicrosecond = 1;
/** One millisecond expressed in Time units. */
constexpr Time kMillisecond = 1000 * kMicrosecond;
/** One second expressed in Time units. */
constexpr Time kSecond = 1000 * kMillisecond;
/** One minute expressed in Time units. */
constexpr Time kMinute = 60 * kSecond;
/** One hour expressed in Time units. */
constexpr Time kHour = 60 * kMinute;

/** Convert a floating-point second count to simulated Time. */
constexpr Time
fromSeconds(double s)
{
    return static_cast<Time>(s * static_cast<double>(kSecond));
}

/** Convert a floating-point minute count to simulated Time. */
constexpr Time
fromMinutes(double m)
{
    return fromSeconds(m * 60.0);
}

/** Convert a floating-point hour count to simulated Time. */
constexpr Time
fromHours(double h)
{
    return fromSeconds(h * 3600.0);
}

/** Convert simulated Time to floating-point seconds. */
constexpr double
toSeconds(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/** Convert simulated Time to floating-point minutes. */
constexpr double
toMinutes(Time t)
{
    return toSeconds(t) / 60.0;
}

/** Convert simulated Time to floating-point hours. */
constexpr double
toHours(Time t)
{
    return toSeconds(t) / 3600.0;
}

/** Convert joules to kilowatt-hours. */
constexpr double
joulesToKwh(Joules j)
{
    return j / 3.6e6;
}

/** Convert kilowatt-hours to joules. */
constexpr Joules
kwhToJoules(double kwh)
{
    return kwh * 3.6e6;
}

/** Energy (joules) of a constant power draw over a simulated interval. */
constexpr Joules
energyOver(Watts p, Time dt)
{
    return p * toSeconds(dt);
}

} // namespace bpsim

#endif // BPSIM_SIM_TYPES_HH
