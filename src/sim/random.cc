#include "sim/random.hh"

#include <cmath>

#include "sim/logging.hh"

namespace bpsim
{

namespace
{

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
SplitMix64::next()
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &word : s)
        word = sm.next();
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::nextDouble()
{
    // 53 high-quality mantissa bits -> [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    BPSIM_ASSERT(bound > 0, "bound must be positive");
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = nextU64();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::uniform(double lo, double hi)
{
    BPSIM_ASSERT(lo <= hi, "uniform bounds inverted: [%g, %g)", lo, hi);
    return lo + (hi - lo) * nextDouble();
}

double
Rng::exponential(double mean)
{
    BPSIM_ASSERT(mean > 0, "exponential mean must be positive, got %g", mean);
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::gaussian(double mean, double stddev)
{
    BPSIM_ASSERT(stddev >= 0, "negative stddev %g", stddev);
    double u1;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    const double u2 = nextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

std::size_t
Rng::discrete(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        BPSIM_ASSERT(w >= 0.0, "negative weight %g", w);
        total += w;
    }
    BPSIM_ASSERT(total > 0.0, "discrete() needs a positive total weight");
    double x = nextDouble() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        if (x < weights[i])
            return i;
        x -= weights[i];
    }
    // Floating-point accumulation may land exactly on the boundary; the
    // last positively-weighted bucket owns it.
    for (std::size_t i = weights.size(); i-- > 0;) {
        if (weights[i] > 0.0)
            return i;
    }
    panic("discrete(): unreachable");
}

Rng
Rng::fork(std::uint64_t stream_id)
{
    // Mix the child id into a fresh seed drawn from this stream so that
    // forked streams are decorrelated from the parent and each other.
    SplitMix64 sm(nextU64() ^ (stream_id * 0x9e3779b97f4a7c15ull));
    return Rng(sm.next());
}

Rng
Rng::stream(std::uint64_t seed, std::uint64_t stream_id)
{
    Rng root(seed);
    return root.fork(stream_id);
}

} // namespace bpsim
