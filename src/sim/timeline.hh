/**
 * @file
 * Piecewise-constant time series.
 *
 * A Timeline records step changes of a scalar signal (power draw,
 * normalized performance, ...) and answers integral / average / range
 * queries over arbitrary windows. It is the common currency between the
 * power substrate (load traces), the workload layer (performance traces)
 * and the analyzers (energy, downtime and performance accounting).
 */

#ifndef BPSIM_SIM_TIMELINE_HH
#define BPSIM_SIM_TIMELINE_HH

#include <cstddef>
#include <vector>

#include "sim/types.hh"

namespace bpsim
{

/** Step-change record of a scalar signal over simulated time. */
class Timeline
{
  public:
    /** A single step: the signal holds @c value from @c at onwards. */
    struct Sample
    {
        Time at;
        double value;
    };

    /** @param initial Signal value before the first recorded sample. */
    explicit Timeline(double initial = 0.0) : initial_(initial) {}

    /**
     * Record the signal taking a new value at @p at. Times must be
     * non-decreasing; re-recording at the same timestamp overwrites.
     * Recording the current value is a no-op (the series stays minimal).
     */
    void record(Time at, double value);

    /** Signal value at time @p t (last step at or before t). */
    double valueAt(Time t) const;

    /** Most recently recorded value (or the initial value). */
    double lastValue() const;

    /** Integral of the signal over [from, to) in value * seconds. */
    double integrate(Time from, Time to) const;

    /** Time-average of the signal over [from, to). */
    double average(Time from, Time to) const;

    /** Minimum signal value attained within [from, to). */
    double minOver(Time from, Time to) const;

    /** Maximum signal value attained within [from, to). */
    double maxOver(Time from, Time to) const;

    /**
     * Total time within [from, to) during which the signal is strictly
     * below @p threshold. Used for downtime accounting ("time with
     * normalized performance below x counts as down").
     */
    Time timeBelow(Time from, Time to, double threshold) const;

    /** All recorded steps, in time order. */
    const std::vector<Sample> &samples() const { return steps; }

    /** Number of recorded steps. */
    std::size_t size() const { return steps.size(); }

  private:
    /**
     * Visit each constant segment overlapping [from, to) as
     * fn(seg_from, seg_to, value).
     */
    template <typename Fn>
    void forEachSegment(Time from, Time to, Fn &&fn) const;

    double initial_;
    std::vector<Sample> steps;
};

} // namespace bpsim

#endif // BPSIM_SIM_TIMELINE_HH
