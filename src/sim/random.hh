/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * The standard library engines are avoided for anything that influences
 * results because their distributions are implementation-defined; the
 * xoshiro256** generator plus hand-rolled distributions below give
 * bit-identical streams on every platform for a given seed.
 */

#ifndef BPSIM_SIM_RANDOM_HH
#define BPSIM_SIM_RANDOM_HH

#include <cstdint>
#include <vector>

namespace bpsim
{

/**
 * SplitMix64 generator; used to seed Xoshiro256 from a single 64-bit
 * value and usable stand-alone for cheap hashing-style randomness.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next 64 random bits. */
    std::uint64_t next();

  private:
    std::uint64_t state;
};

/**
 * xoshiro256** by Blackman & Vigna: fast, high-quality, and fully
 * deterministic across platforms.
 */
class Rng
{
  public:
    /** Construct from a single seed via SplitMix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next 64 random bits. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [0, bound) with rejection to avoid bias. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Exponentially distributed double with the given mean. */
    double exponential(double mean);

    /** Standard normal via Box-Muller (deterministic variant). */
    double gaussian(double mean, double stddev);

    /**
     * Sample an index from a discrete distribution given by
     * non-negative weights. At least one weight must be positive.
     */
    std::size_t discrete(const std::vector<double> &weights);

    /**
     * Fork an independent child stream; children of the same parent
     * state are decorrelated by the fork index.
     */
    Rng fork(std::uint64_t stream_id);

    /**
     * The canonical per-trial stream for Monte Carlo campaigns:
     * equivalent to `Rng(seed).fork(stream_id)`. Unlike repeated
     * fork() calls on one parent, the result depends only on
     * (seed, stream_id) — not on how many streams were derived
     * before — so trials can be scheduled in any order on any number
     * of threads and still draw bit-identical randomness.
     */
    static Rng stream(std::uint64_t seed, std::uint64_t stream_id);

  private:
    std::uint64_t s[4];
};

} // namespace bpsim

#endif // BPSIM_SIM_RANDOM_HH
