#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace bpsim
{

namespace
{

// Atomic so campaign worker threads may consult the flag while
// another thread toggles it, without a data race under TSan.
std::atomic<bool> quietLogging{false};

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(len));
}

} // namespace

std::string
formatString(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietLogging.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietLogging.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

void
setQuietLogging(bool quiet)
{
    quietLogging.store(quiet, std::memory_order_relaxed);
}

} // namespace bpsim
