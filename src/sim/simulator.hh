/**
 * @file
 * The simulation kernel: a clock plus the event loop.
 *
 * Models schedule callbacks with schedule()/at(); run() drains the queue
 * in timestamp order, advancing the clock. Time never moves backwards,
 * and a given Simulator instance is single-threaded by design.
 */

#ifndef BPSIM_SIM_SIMULATOR_HH
#define BPSIM_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <string>

#include "sim/event.hh"
#include "sim/types.hh"

namespace bpsim
{

/** Event-driven simulation kernel. */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule a callback after a non-negative delay from now.
     *
     * @param delay   Offset from the current time; must be >= 0.
     * @param fn      Callback to run.
     * @param name    Diagnostic label used in panic messages.
     * @param prio    Ordering class among same-timestamp events.
     * @return        Handle that can cancel the event.
     */
    EventHandle schedule(Time delay, std::function<void()> fn,
                         std::string name = "event",
                         EventPriority prio = EventPriority::Normal);

    /** Schedule a callback at an absolute time >= now. */
    EventHandle at(Time when, std::function<void()> fn,
                   std::string name = "event",
                   EventPriority prio = EventPriority::Normal);

    /** Run until the queue drains or stop() is called. */
    void run();

    /**
     * Run until the queue drains, stop() is called, or simulated time
     * would pass @p limit. The clock is left at min(limit, drain time).
     */
    void runUntil(Time limit);

    /** Request the run loop to stop after the current event. */
    void stop() { stopping = true; }

    /** Number of events executed so far (for tests and micro-benches). */
    std::uint64_t executedEvents() const { return executed; }

    /** Pending (scheduled, not yet cancelled-and-compacted) events —
     *  the obs time-series "queue_depth" signal. */
    std::size_t queueDepth() const { return queue.rawSize(); }

  private:
    EventQueue queue;
    Time now_ = 0;
    bool stopping = false;
    bool running = false;
    std::uint64_t executed = 0;
};

} // namespace bpsim

#endif // BPSIM_SIM_SIMULATOR_HH
