/**
 * @file
 * Benchmark regression comparison: parse google-benchmark
 * `--benchmark_out` JSON files and diff a fresh run against a
 * committed baseline with a noise threshold, producing per-benchmark
 * verdicts a CI perf gate can act on.
 *
 * Comparison is on cpu_time (wall time is too noisy on shared CI
 * runners). When a file carries repetition aggregates, the `median`
 * row is preferred, then `mean`; otherwise iteration rows are
 * averaged. Benchmarks present on only one side get a `Missing`
 * verdict, which warns rather than fails — renames should not brick
 * the gate, they should prompt a baseline refresh.
 */

#ifndef BPSIM_CAMPAIGN_BENCHDIFF_HH
#define BPSIM_CAMPAIGN_BENCHDIFF_HH

#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "campaign/json.hh"

namespace bpsim
{

/** One benchmark's representative timings, normalized to ns. */
struct BenchRun
{
    std::string name;
    double cpuTimeNs = 0.0;
    double realTimeNs = 0.0;
    /** 0 when the benchmark does not report a throughput counter. */
    double itemsPerSec = 0.0;
};

/**
 * Extract one BenchRun per benchmark from a parsed google-benchmark
 * JSON document (keyed by run_name). Returns nullopt (with a reason
 * in @p error) when the document lacks a "benchmarks" array.
 */
std::optional<std::map<std::string, BenchRun>>
readBenchmarkJson(const JsonValue &doc, std::string *error = nullptr);

/** readBenchmarkJson over the contents of @p path. */
std::optional<std::map<std::string, BenchRun>>
readBenchmarkFile(const std::string &path, std::string *error = nullptr);

/** Thresholds of the perf gate (fractions, not percent). */
struct BenchCompareOptions
{
    /** Regressions above this warn (default 10%). */
    double warnOver = 0.10;
    /** Regressions above this fail the gate (default 25%). */
    double failOver = 0.25;
    /**
     * Synthetic slowdown injected into every current cpu_time before
     * comparing (0.5 = +50%). CI uses this to prove the gate actually
     * fails on a regression; never set it in a real comparison.
     */
    double injectRegression = 0.0;
};

enum class BenchVerdict { Ok, Warn, Fail, Missing };

const char *benchVerdictName(BenchVerdict v);

/** One benchmark's comparison outcome. */
struct BenchDelta
{
    std::string name;
    /** cpu_time in ns; 0 on the side the benchmark is missing from. */
    double baselineNs = 0.0;
    double currentNs = 0.0;
    /** current/baseline - 1 (positive = regression); 0 when Missing. */
    double change = 0.0;
    BenchVerdict verdict = BenchVerdict::Ok;
};

/** Gate outcome over all benchmarks (union of both sides' names). */
struct BenchCompareReport
{
    std::vector<BenchDelta> deltas;
    bool anyWarn = false;
    bool anyFail = false;
};

BenchCompareReport
compareBenchRuns(const std::map<std::string, BenchRun> &baseline,
                 const std::map<std::string, BenchRun> &current,
                 const BenchCompareOptions &opts = {});

/** Human-readable table of a comparison (one line per benchmark). */
void writeBenchCompareReport(std::ostream &os,
                             const BenchCompareReport &report);

} // namespace bpsim

#endif // BPSIM_CAMPAIGN_BENCHDIFF_HH
