#include "campaign/benchdiff.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace bpsim
{

namespace
{

/** google-benchmark time_unit -> ns multiplier. */
double
unitToNs(const std::string &unit)
{
    if (unit == "ns")
        return 1.0;
    if (unit == "us")
        return 1e3;
    if (unit == "ms")
        return 1e6;
    if (unit == "s")
        return 1e9;
    return 1.0;
}

double
numberOr(const JsonValue &obj, const char *key, double fallback)
{
    const JsonValue *v = obj.find(key);
    return v && v->kind() == JsonValue::Kind::Number ? v->asDouble()
                                                     : fallback;
}

std::string
stringOr(const JsonValue &obj, const char *key, const std::string &fallback)
{
    const JsonValue *v = obj.find(key);
    return v && v->kind() == JsonValue::Kind::String ? v->asString()
                                                     : fallback;
}

/**
 * Source priority of one benchmark entry: aggregate median beats
 * aggregate mean beats plain iteration rows; other aggregates
 * (stddev, cv, ...) are not timings and are skipped.
 */
int
entryPriority(const JsonValue &entry)
{
    const std::string run_type = stringOr(entry, "run_type", "iteration");
    if (run_type != "aggregate")
        return 0;
    const std::string agg = stringOr(entry, "aggregate_name", "");
    if (agg == "median")
        return 2;
    if (agg == "mean")
        return 1;
    return -1;
}

/** Accumulates iteration rows so repetitions average cleanly. */
struct RunAccum
{
    int priority = -1;
    double cpuSum = 0.0, realSum = 0.0, itemsSum = 0.0;
    std::uint64_t n = 0;

    BenchRun
    finish(const std::string &name) const
    {
        BenchRun r;
        r.name = name;
        if (n) {
            const double inv = 1.0 / static_cast<double>(n);
            r.cpuTimeNs = cpuSum * inv;
            r.realTimeNs = realSum * inv;
            r.itemsPerSec = itemsSum * inv;
        }
        return r;
    }
};

} // namespace

std::optional<std::map<std::string, BenchRun>>
readBenchmarkJson(const JsonValue &doc, std::string *error)
{
    const JsonValue *benches =
        doc.kind() == JsonValue::Kind::Object ? doc.find("benchmarks")
                                              : nullptr;
    if (!benches || benches->kind() != JsonValue::Kind::Array) {
        if (error)
            *error = "not a google-benchmark file: no \"benchmarks\" array";
        return std::nullopt;
    }

    std::map<std::string, RunAccum> accums;
    for (std::size_t i = 0; i < benches->size(); ++i) {
        const JsonValue &entry = benches->item(i);
        if (entry.kind() != JsonValue::Kind::Object)
            continue;
        const int prio = entryPriority(entry);
        if (prio < 0)
            continue;
        const std::string name =
            stringOr(entry, "run_name", stringOr(entry, "name", ""));
        if (name.empty())
            continue;
        const double to_ns = unitToNs(stringOr(entry, "time_unit", "ns"));
        RunAccum &acc = accums[name];
        if (prio > acc.priority) {
            // A better source supersedes everything seen so far.
            acc = RunAccum{};
            acc.priority = prio;
        } else if (prio < acc.priority) {
            continue;
        }
        acc.cpuSum += numberOr(entry, "cpu_time", 0.0) * to_ns;
        acc.realSum += numberOr(entry, "real_time", 0.0) * to_ns;
        acc.itemsSum += numberOr(entry, "items_per_second", 0.0);
        ++acc.n;
    }

    std::map<std::string, BenchRun> out;
    for (const auto &[name, acc] : accums)
        out.emplace(name, acc.finish(name));
    return out;
}

std::optional<std::map<std::string, BenchRun>>
readBenchmarkFile(const std::string &path, std::string *error)
{
    const auto doc = parseJsonFile(path, error);
    if (!doc)
        return std::nullopt;
    return readBenchmarkJson(*doc, error);
}

const char *
benchVerdictName(BenchVerdict v)
{
    switch (v) {
    case BenchVerdict::Ok:
        return "ok";
    case BenchVerdict::Warn:
        return "warn";
    case BenchVerdict::Fail:
        return "FAIL";
    case BenchVerdict::Missing:
        return "missing";
    }
    return "?";
}

BenchCompareReport
compareBenchRuns(const std::map<std::string, BenchRun> &baseline,
                 const std::map<std::string, BenchRun> &current,
                 const BenchCompareOptions &opts)
{
    BenchCompareReport report;

    // Union of names, baseline order first (std::map keeps both
    // sorted, so the report order is deterministic).
    std::vector<std::string> names;
    for (const auto &[name, run] : baseline)
        names.push_back(name);
    for (const auto &[name, run] : current)
        if (!baseline.count(name))
            names.push_back(name);

    for (const std::string &name : names) {
        const auto b = baseline.find(name);
        const auto c = current.find(name);
        BenchDelta d;
        d.name = name;
        if (b == baseline.end() || c == current.end()) {
            d.verdict = BenchVerdict::Missing;
            if (b != baseline.end())
                d.baselineNs = b->second.cpuTimeNs;
            if (c != current.end())
                d.currentNs = c->second.cpuTimeNs;
            report.anyWarn = true;
            report.deltas.push_back(d);
            continue;
        }
        d.baselineNs = b->second.cpuTimeNs;
        d.currentNs =
            c->second.cpuTimeNs * (1.0 + opts.injectRegression);
        if (d.baselineNs > 0.0)
            d.change = d.currentNs / d.baselineNs - 1.0;
        if (d.change > opts.failOver) {
            d.verdict = BenchVerdict::Fail;
            report.anyFail = true;
        } else if (d.change > opts.warnOver) {
            d.verdict = BenchVerdict::Warn;
            report.anyWarn = true;
        }
        report.deltas.push_back(d);
    }
    return report;
}

void
writeBenchCompareReport(std::ostream &os, const BenchCompareReport &report)
{
    char line[256];
    std::snprintf(line, sizeof(line), "%-40s %14s %14s %9s %8s\n",
                  "benchmark", "baseline (ns)", "current (ns)", "change",
                  "verdict");
    os << line;
    for (const BenchDelta &d : report.deltas) {
        if (d.verdict == BenchVerdict::Missing) {
            std::snprintf(line, sizeof(line),
                          "%-40s %14.0f %14.0f %9s %8s\n", d.name.c_str(),
                          d.baselineNs, d.currentNs, "-",
                          benchVerdictName(d.verdict));
        } else {
            std::snprintf(line, sizeof(line),
                          "%-40s %14.0f %14.0f %+8.1f%% %8s\n",
                          d.name.c_str(), d.baselineNs, d.currentNs,
                          d.change * 100.0, benchVerdictName(d.verdict));
        }
        os << line;
    }
}

} // namespace bpsim
