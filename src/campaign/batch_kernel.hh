/**
 * @file
 * Batched annual-trial kernel.
 *
 * The scalar AnnualSimulator spins up a full discrete-event world per
 * trial (~2k events/year); under a campaign that is the hot path. For
 * the common campaign shapes — no diesel generator, None/Throttle
 * standing technique, offline UPS, observability disabled — a simulated
 * year reduces to a short closed-form episode replay per outage:
 * ride-through gap, Peukert discharge, recharge split at the recovery
 * milestones, and piecewise-constant perf/availability series. The
 * kernel replays exactly the floating-point operations the event-driven
 * path performs, in the same order (sharing the battery state math via
 * PeukertBattery's pure static helpers and Timeline's skip rules via
 * sim/soa.hh), so its AnnualResults are bit-identical — which makes
 * every downstream aggregate, shard file, and service response
 * byte-identical too.
 *
 * Anything outside the fast path's envelope — DG configs, other
 * techniques, online UPS placement, obs enabled, or a trace whose
 * outages overlap a recovery window — falls back to the scalar
 * simulator lane by lane, preserving bit-exactness trivially. The
 * scalar path stays the reference; the kernel is an optimization that
 * must prove itself against it (tests/campaign/batch_equivalence_test).
 */

#ifndef BPSIM_CAMPAIGN_BATCH_KERNEL_HH
#define BPSIM_CAMPAIGN_BATCH_KERNEL_HH

#include <cstdint>
#include <vector>

#include "core/annual.hh"
#include "core/backup_config.hh"
#include "outage/trace.hh"
#include "power/battery.hh"
#include "sim/soa.hh"
#include "technique/catalog.hh"
#include "workload/profile.hh"

namespace bpsim
{

/**
 * One campaign scenario compiled for batched execution. Construction
 * resolves every per-trial constant (loads, perf levels, ride-through
 * gap, battery parameters, recovery milestones) through the same model
 * objects the scalar path uses; runBatch() then advances whole lane
 * batches through struct-of-arrays state.
 */
class BatchAnnualKernel
{
  public:
    BatchAnnualKernel(const WorkloadProfile &profile, int n_servers,
                      const TechniqueSpec &technique,
                      const BackupConfigSpec &config);

    /**
     * True when the scenario shape is inside the fast path's envelope.
     * Individual lanes can still fall back (trace shape, obs enabled);
     * false means every lane uses the scalar simulator.
     */
    bool fastPathEligible() const { return eligible_; }

    /**
     * True when @p events can be replayed closed-form: every outage
     * starts after t = 0, and consecutive outages leave more than a
     * full recovery window between them (boot + process start +
     * preload + warm-up), so no outage ever lands mid-recovery.
     */
    bool traceEligible(const std::vector<OutageEvent> &events) const;

    /**
     * Simulate campaign trials [lo, hi): trial t draws its trace from
     * Rng::stream(seed, t) and out[t - lo] receives its AnnualResult,
     * bit-identical to the scalar path for every trial.
     */
    void runBatch(std::uint64_t seed, std::uint64_t lo, std::uint64_t hi,
                  AnnualResult *out) const;

    /**
     * Replay one eligible trace closed-form (fast lane only; callers
     * must check fastPathEligible() and traceEligible()). Exposed for
     * the differential tests and the microbench.
     */
    AnnualResult runFastTrace(const std::vector<OutageEvent> &events) const;

  private:
    void replayLane(const std::vector<OutageEvent> &events, TrialLanes &ln,
                    std::size_t l) const;
    AnnualResult laneResult(const TrialLanes &ln, std::size_t l,
                            int outages) const;

    WorkloadProfile profile_;
    int nServers_;
    TechniqueSpec technique_;
    BackupConfigSpec config_;
    OutageTraceGenerator gen_;
    AnnualSimulator scalar_;

    bool eligible_ = false;

    /** @name Resolved scenario constants (see batch_kernel.cc) */
    ///@{
    bool hasUps_ = false;
    PeukertBattery::Params batParams_;
    Watts upsCapacityW_ = 0.0;
    Time gapTime_ = 0;
    Watts loadOut_ = 0.0;
    bool canCarryOut_ = false;
    Time fullRuntimeOut_ = 0;
    double qFull_ = 0.0;
    double qThr_ = 0.0;
    double qWarm_ = 0.0;
    Time dBoot_ = 0;
    Time dStart_ = 0;
    Time dPreload_ = 0;
    Time dWarmup_ = 0;
    bool hasPreload_ = false;
    bool hasWarmup_ = false;
    Time recoverySpan_ = 0;
    bool warmAvailable_ = false;
    double lostPerCrashSec_ = 0.0;
    ///@}
};

} // namespace bpsim

#endif // BPSIM_CAMPAIGN_BATCH_KERNEL_HH
