#include "campaign/tdigest.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "campaign/json.hh"
#include "sim/logging.hh"

namespace bpsim
{

namespace
{

constexpr double kTwoPi = 6.283185307179586476925286766559;

/** k1 scale function: k(q) = δ/(2π) · asin(2q − 1). */
double
scaleK(double q, double compression)
{
    const double a = std::clamp(2.0 * q - 1.0, -1.0, 1.0);
    return compression / kTwoPi * std::asin(a);
}

/** Inverse of scaleK: q(k) = (sin(2πk/δ) + 1) / 2. */
double
scaleQ(double k, double compression)
{
    const double s = std::sin(kTwoPi * k / compression);
    return std::clamp((s + 1.0) / 2.0, 0.0, 1.0);
}

} // namespace

TDigest::TDigest(double compression) : compression_(compression)
{
    BPSIM_ASSERT(compression >= 10.0,
                 "t-digest compression %g too small (min 10)",
                 compression);
    buffer_.reserve(static_cast<std::size_t>(8.0 * compression));
}

void
TDigest::add(double x, double weight)
{
    BPSIM_ASSERT(std::isfinite(x), "TDigest::add(%g): not finite", x);
    BPSIM_ASSERT(weight > 0.0, "TDigest::add: weight %g <= 0", weight);
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    count_ += static_cast<std::uint64_t>(weight);
    buffer_.push_back({x, weight});
    if (buffer_.size() >= static_cast<std::size_t>(8.0 * compression_))
        flush();
}

void
TDigest::merge(const TDigest &other)
{
    if (other.count_ == 0)
        return;
    other.flush();
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    buffer_.insert(buffer_.end(), other.centroids_.begin(),
                   other.centroids_.end());
    if (buffer_.size() >= static_cast<std::size_t>(8.0 * compression_))
        flush();
}

void
TDigest::flush() const
{
    if (buffer_.empty())
        return;
    std::vector<Centroid> points;
    points.reserve(centroids_.size() + buffer_.size());
    points.insert(points.end(), centroids_.begin(), centroids_.end());
    points.insert(points.end(), buffer_.begin(), buffer_.end());
    buffer_.clear();
    std::stable_sort(points.begin(), points.end(),
                     [](const Centroid &a, const Centroid &b) {
                         if (a.mean != b.mean)
                             return a.mean < b.mean;
                         return a.weight < b.weight;
                     });

    double total = 0.0;
    for (const auto &p : points)
        total += p.weight;

    // One merging pass: greedily absorb neighbours into the current
    // cluster while its k-size stays under one.
    std::vector<Centroid> out;
    out.reserve(static_cast<std::size_t>(compression_) + 8);
    Centroid cur = points[0];
    double w_before = 0.0; // weight strictly left of `cur`
    double q_limit =
        scaleQ(scaleK(0.0, compression_) + 1.0, compression_);
    for (std::size_t i = 1; i < points.size(); ++i) {
        const Centroid &p = points[i];
        const double q_new = (w_before + cur.weight + p.weight) / total;
        if (q_new <= q_limit) {
            // Weighted-mean update keeps the cluster mean inside
            // [cur.mean, p.mean] exactly.
            cur.mean +=
                p.weight / (cur.weight + p.weight) * (p.mean - cur.mean);
            cur.weight += p.weight;
        } else {
            out.push_back(cur);
            w_before += cur.weight;
            q_limit = scaleQ(
                scaleK(w_before / total, compression_) + 1.0,
                compression_);
            cur = p;
        }
    }
    out.push_back(cur);
    centroids_ = std::move(out);
}

double
TDigest::min() const
{
    return count_ ? min_ : 0.0;
}

double
TDigest::max() const
{
    return count_ ? max_ : 0.0;
}

const std::vector<TDigest::Centroid> &
TDigest::centroids() const
{
    flush();
    return centroids_;
}

double
TDigest::quantile(double q) const
{
    BPSIM_ASSERT(q >= 0.0 && q <= 1.0, "quantile %g outside [0, 1]", q);
    flush();
    if (count_ == 0)
        return 0.0;
    if (centroids_.size() == 1)
        return centroids_[0].mean;

    double total = 0.0;
    for (const auto &c : centroids_)
        total += c.weight;
    const double t = q * total;

    // Piecewise-linear between centroid midpoints, with the exact
    // min/max anchoring the first and last half-clusters.
    double cum = 0.0; // weight strictly left of centroid i
    double prev_mid = 0.0, prev_mean = min_;
    for (const auto &c : centroids_) {
        const double mid = cum + c.weight / 2.0;
        if (t <= mid) {
            const double span = mid - prev_mid;
            if (span <= 0.0)
                return c.mean;
            const double frac = (t - prev_mid) / span;
            return prev_mean + frac * (c.mean - prev_mean);
        }
        prev_mid = mid;
        prev_mean = c.mean;
        cum += c.weight;
    }
    // Upper tail: last midpoint .. exact max.
    const double span = total - prev_mid;
    if (span <= 0.0)
        return max_;
    const double frac = (t - prev_mid) / span;
    return prev_mean + std::min(frac, 1.0) * (max_ - prev_mean);
}

void
TDigest::writeJson(JsonWriter &w) const
{
    flush();
    w.beginObject();
    w.field("compression", compression_);
    w.field("count", count_);
    w.field("min", min());
    w.field("max", max());
    w.key("centroids").beginArray();
    for (const auto &c : centroids_) {
        w.beginArray();
        w.value(c.mean);
        w.value(c.weight);
        w.endArray();
    }
    w.endArray();
    w.endObject();
}

void
TDigest::writeStateJson(JsonWriter &w) const
{
    const auto points = [&w](const std::vector<Centroid> &list) {
        w.beginArray();
        for (const auto &c : list) {
            w.beginArray();
            w.value(c.mean);
            w.value(c.weight);
            w.endArray();
        }
        w.endArray();
    };
    w.beginObject();
    w.field("compression", compression_);
    w.field("count", count_);
    w.field("min", min_);
    w.field("max", max_);
    w.key("centroids");
    points(centroids_);
    w.key("buffer");
    points(buffer_);
    w.endObject();
}

std::optional<TDigest>
TDigest::fromStateJson(const JsonValue &v)
{
    if (v.kind() != JsonValue::Kind::Object)
        return std::nullopt;
    const JsonValue *compression = v.find("compression");
    const JsonValue *count = v.find("count");
    const JsonValue *min = v.find("min");
    const JsonValue *max = v.find("max");
    if (!compression || compression->kind() != JsonValue::Kind::Number ||
        compression->asDouble() < 10.0 || !count ||
        count->kind() != JsonValue::Kind::Number ||
        count->asDouble() < 0 ||
        count->asDouble() != std::floor(count->asDouble()) || !min ||
        min->kind() != JsonValue::Kind::Number || !max ||
        max->kind() != JsonValue::Kind::Number)
        return std::nullopt;

    TDigest d(compression->asDouble());
    d.count_ = count->asUint();
    d.min_ = min->asDouble();
    d.max_ = max->asDouble();
    // Both lists are restored verbatim (order included): the buffer's
    // insertion order feeds the next flush's stable sort, so it is
    // part of the bit-exactness contract.
    const auto points = [&v](const char *key,
                             std::vector<Centroid> &into) {
        const JsonValue *list = v.find(key);
        if (!list || list->kind() != JsonValue::Kind::Array)
            return false;
        for (std::size_t i = 0; i < list->size(); ++i) {
            const JsonValue &c = list->item(i);
            if (c.kind() != JsonValue::Kind::Array || c.size() != 2 ||
                c.item(0).kind() != JsonValue::Kind::Number ||
                c.item(1).kind() != JsonValue::Kind::Number)
                return false;
            const double mean = c.item(0).asDouble();
            const double weight = c.item(1).asDouble();
            if (!std::isfinite(mean) || !(weight > 0.0))
                return false;
            into.push_back({mean, weight});
        }
        return true;
    };
    if (!points("centroids", d.centroids_) ||
        !points("buffer", d.buffer_))
        return std::nullopt;
    return d;
}

TDigest
TDigest::fromJson(const JsonValue &v)
{
    TDigest d(v.at("compression").asDouble());
    d.count_ = v.at("count").asUint();
    d.min_ = v.at("min").asDouble();
    d.max_ = v.at("max").asDouble();
    const JsonValue &cents = v.at("centroids");
    double prev = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < cents.size(); ++i) {
        const JsonValue &c = cents.item(i);
        BPSIM_ASSERT(c.size() == 2, "centroid %zu is not a pair", i);
        const double mean = c.item(0).asDouble();
        const double weight = c.item(1).asDouble();
        BPSIM_ASSERT(mean >= prev, "centroids not sorted at %zu", i);
        BPSIM_ASSERT(weight > 0.0, "centroid %zu has weight %g", i,
                     weight);
        d.centroids_.push_back({mean, weight});
        prev = mean;
    }
    return d;
}

} // namespace bpsim
