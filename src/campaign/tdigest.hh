/**
 * @file
 * Mergeable streaming quantile sketch (t-digest, Dunning & Ertl).
 *
 * The P² sketch tracks one quantile in O(1) memory but two P² states
 * cannot be combined, which blocks distributed campaigns. A t-digest
 * keeps a size-bounded list of (mean, weight) centroids whose widths
 * follow the k1 scale function — fine near the tails, coarse in the
 * middle — so any two digests merge into a digest of the union with
 * bounded rank error. Campaign shards each build one digest per
 * metric and the coordinator merges them (see campaign/shard.hh).
 *
 * Determinism: feeding the same observations in the same order yields
 * bit-identical state, and merging the same digests in the same order
 * is likewise reproducible. Merging in a *different* order changes
 * centroid placement slightly — quantiles then agree to within the
 * sketch's rank error, not bitwise (the exact aggregates that must be
 * bit-stable across shardings live in ExactSum instead).
 */

#ifndef BPSIM_CAMPAIGN_TDIGEST_HH
#define BPSIM_CAMPAIGN_TDIGEST_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace bpsim
{

class JsonWriter;
class JsonValue;

/** Mergeable quantile sketch with the k1 (arcsine) scale function. */
class TDigest
{
  public:
    /** One cluster of nearby observations. */
    struct Centroid
    {
        double mean = 0.0;
        double weight = 0.0;
    };

    /**
     * @p compression (δ) bounds the flushed digest to about ⌈δ⌉
     * centroids; rank error scales as O(q(1-q)/δ). 100 is a good
     * default (≲1% mid-rank error, much tighter at the tails).
     */
    explicit TDigest(double compression = 100.0);

    /** Add one observation with the given weight. */
    void add(double x, double weight = 1.0);

    /** Fold another digest into this one. */
    void merge(const TDigest &other);

    /**
     * Estimated value of the @p q quantile (0 <= q <= 1); piecewise
     * linear between centroid midpoints, anchored at the exact
     * min/max. 0 for an empty digest.
     */
    double quantile(double q) const;

    /** Total observations added (merges included). */
    std::uint64_t count() const { return count_; }

    double compression() const { return compression_; }

    /** Exact extremes of everything added. */
    double min() const;
    double max() const;

    /** Flushed centroids, ascending by mean. */
    const std::vector<Centroid> &centroids() const;

    /**
     * Emit as a JSON object in value position:
     * `{"compression":δ,"count":n,"min":m,"max":M,
     *   "centroids":[[mean,weight],...]}`.
     * Round-trips bit-exactly through TDigest::fromJson (the writer
     * prints doubles with %.17g).
     */
    void writeJson(JsonWriter &w) const;

    /** Rebuild from writeJson output (asserts on malformed input). */
    static TDigest fromJson(const JsonValue &v);

    /**
     * @name Exact-state checkpointing
     * writeJson() flushes first, which is right for *merging* but
     * changes the future clustering trajectory: a digest flushed at
     * trial K and then fed trials K..M-1 clusters differently from
     * one fed 0..M-1 straight through. Campaign checkpoints that must
     * resume bit-identically (campaign/checkpoint.hh) therefore
     * serialize the raw internal state — the flushed centroids AND
     * the pending buffer, verbatim, with no flush.
     */
    ///@{
    /** Emit the exact internal state as a JSON object (no flush). */
    void writeStateJson(JsonWriter &w) const;
    /**
     * Rebuild from writeStateJson output. Returns nullopt on
     * malformed input (checkpoint payloads arrive from disk, so this
     * validates instead of asserting).
     */
    static std::optional<TDigest> fromStateJson(const JsonValue &v);
    ///@}

  private:
    /** Sort the buffer into the centroid list and re-cluster. */
    void flush() const;

    double compression_;
    std::uint64_t count_ = 0;
    double min_ = 0.0, max_ = 0.0;
    /** Clustered state + pending raw points; flushed lazily so the
     * read-side accessors can stay const. */
    mutable std::vector<Centroid> centroids_;
    mutable std::vector<Centroid> buffer_;
};

} // namespace bpsim

#endif // BPSIM_CAMPAIGN_TDIGEST_HH
