#include "campaign/thread_pool.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bpsim
{

namespace
{

/** Set while the current thread is executing items for some pool. */
thread_local bool inside_worker = false;

} // namespace

int
WorkStealingPool::hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

WorkStealingPool &
WorkStealingPool::shared()
{
    static WorkStealingPool pool(hardwareThreads());
    return pool;
}

WorkStealingPool::WorkStealingPool(int threads)
{
    if (threads <= 0)
        threads = hardwareThreads();
    slots.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
        slots.push_back(std::make_unique<Slot>());
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back(
            [this, t] { workerLoop(static_cast<std::size_t>(t)); });
    }
}

WorkStealingPool::~WorkStealingPool()
{
    {
        std::lock_guard<std::mutex> lk(job_m);
        shutdown = true;
    }
    job_cv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
WorkStealingPool::parallelFor(std::uint64_t n,
                              const std::function<void(std::uint64_t)> &fn,
                              const std::function<bool()> &cancelled)
{
    if (n == 0)
        return;

    // Nested or concurrent submissions degrade to a serial loop: a
    // worker blocking on its own pool would deadlock, and two
    // interleaved jobs would corrupt the single job slot.
    std::unique_lock<std::mutex> submit(submit_m, std::try_to_lock);
    if (inside_worker || !submit.owns_lock()) {
        for (std::uint64_t i = 0; i < n; ++i) {
            if (cancelled && cancelled())
                return;
            fn(i);
        }
        return;
    }

    Job j;
    j.fn = &fn;
    j.cancelled = cancelled ? &cancelled : nullptr;
    j.remaining = n;

    // Seed every worker with a contiguous stripe of the index space;
    // imbalance is corrected by stealing.
    const auto T = static_cast<std::uint64_t>(slots.size());
    for (std::uint64_t t = 0; t < T; ++t) {
        const std::uint64_t begin = n * t / T;
        const std::uint64_t end = n * (t + 1) / T;
        if (begin == end)
            continue;
        std::lock_guard<std::mutex> lk(slots[t]->m);
        slots[t]->dq.push_back({begin, end});
    }

    {
        std::lock_guard<std::mutex> lk(job_m);
        job = &j;
        ++epoch;
    }
    job_cv.notify_all();

    // All items ran or were discarded...
    {
        std::unique_lock<std::mutex> lk(j.done_m);
        j.done_cv.wait(lk, [&] { return j.remaining == 0; });
    }
    // ...and every worker has deregistered from this job, so none can
    // touch `j` (or pick up a later job's ranges with this job's fn)
    // after we return. Clearing `job` first makes late registration
    // impossible: workers register under job_m only while job != null.
    {
        std::unique_lock<std::mutex> lk(job_m);
        job = nullptr;
        job_cv.wait(lk, [&] { return j.active == 0; });
    }
}

void
WorkStealingPool::workerLoop(std::size_t self)
{
    inside_worker = true;
    std::uint64_t seen = 0;
    for (;;) {
        Job *j;
        {
            std::unique_lock<std::mutex> lk(job_m);
            job_cv.wait(lk, [&] {
                return shutdown || (job != nullptr && epoch != seen);
            });
            if (shutdown)
                return;
            seen = epoch;
            j = job;
            ++j->active; // registered within the same critical section
        }
        runJob(self, j);
        {
            std::lock_guard<std::mutex> lk(job_m);
            if (--j->active == 0)
                job_cv.notify_all();
        }
    }
}

bool
WorkStealingPool::popLocal(std::size_t self, Range &out)
{
    Slot &s = *slots[self];
    std::lock_guard<std::mutex> lk(s.m);
    if (s.dq.empty())
        return false;
    out = s.dq.front();
    s.dq.pop_front();
    return true;
}

bool
WorkStealingPool::steal(std::size_t self, Range &out)
{
    const std::size_t T = slots.size();
    for (std::size_t k = 1; k < T; ++k) {
        Slot &victim = *slots[(self + k) % T];
        std::lock_guard<std::mutex> lk(victim.m);
        if (victim.dq.empty())
            continue;
        // Steal from the back, where the big unsplit ranges live.
        out = victim.dq.back();
        victim.dq.pop_back();
        return true;
    }
    return false;
}

void
WorkStealingPool::finishItems(Job *j, std::uint64_t count)
{
    std::lock_guard<std::mutex> lk(j->done_m);
    BPSIM_ASSERT(j->remaining >= count, "double completion");
    j->remaining -= count;
    if (j->remaining == 0)
        j->done_cv.notify_all();
}

void
WorkStealingPool::runJob(std::size_t self, Job *j)
{
    for (;;) {
        Range r;
        if (!popLocal(self, r) && !steal(self, r)) {
            // No visible work. Other workers may still split ranges
            // off their current chunk, so retry briefly before giving
            // up; whoever holds the remaining ranges will finish them
            // either way.
            bool found = false;
            for (int spin = 0; spin < 2 && !found; ++spin) {
                std::this_thread::yield();
                found = popLocal(self, r) || steal(self, r);
            }
            if (!found)
                return;
        }
        if (j->cancelled && (*j->cancelled)()) {
            finishItems(j, r.end - r.begin);
            continue;
        }
        // Keep the front item; expose the rest to thieves (the back
        // of the deque keeps the largest splits).
        while (r.end - r.begin > 1) {
            const std::uint64_t mid = r.begin + (r.end - r.begin) / 2;
            Slot &s = *slots[self];
            std::lock_guard<std::mutex> lk(s.m);
            s.dq.push_front({mid, r.end});
            r.end = mid;
        }
        (*j->fn)(r.begin);
        finishItems(j, 1);
    }
}

} // namespace bpsim
