#include "campaign/batch_kernel.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "power/power_hierarchy.hh"
#include "power/ups.hh"
#include "server/server_model.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace bpsim
{

namespace
{

constexpr Time kYear = 365LL * 24 * kHour;

/** Application::recomputeFraction default (mid-interval crash). */
constexpr double kRecomputeFraction = 0.5;

/** Cluster::aggregatePerf() fold: n equal per-app terms, then mean. */
double
meanOfN(double per_app, int n)
{
    double total = 0.0;
    for (int i = 0; i < n; ++i)
        total += per_app;
    return total / static_cast<double>(n);
}

/** Cluster::totalPowerW() fold: n equal per-server terms. */
Watts
sumOfN(Watts per_server, int n)
{
    Watts total = 0.0;
    for (int i = 0; i < n; ++i)
        total += per_server;
    return total;
}

} // namespace

BatchAnnualKernel::BatchAnnualKernel(const WorkloadProfile &profile,
                                     int n_servers,
                                     const TechniqueSpec &technique,
                                     const BackupConfigSpec &config)
    : profile_(profile), nServers_(n_servers), technique_(technique),
      config_(config), gen_(OutageTraceGenerator::figure1())
{
    BPSIM_ASSERT(n_servers >= 1, "kernel needs at least one server");
    const ServerModel model; // the scalar path's default SKU
    const Watts peak =
        model.params().peakPowerW * static_cast<double>(n_servers);
    const PowerHierarchy::Config hcfg = toHierarchyConfig(config, peak);

    const bool throttling = technique.kind == TechniqueKind::Throttle;
    // The fast path covers the shapes a campaign actually sweeps hot:
    // passive or throttled clusters behind utility + (optional) offline
    // UPS. A DG brings a ramp state machine, online UPS changes the
    // transfer gap, and peak shaving drains the string outside outages
    // — all of those fall back to the event-driven reference.
    eligible_ = (technique.kind == TechniqueKind::None || throttling) &&
                !hcfg.hasDg && hcfg.peakShaveThresholdW == 0.0 &&
                (!hcfg.hasUps ||
                 hcfg.ups.placement == Ups::Placement::Offline);

    hasUps_ = hcfg.hasUps;
    if (hasUps_) {
        const Ups ups(hcfg.ups);
        batParams_ = ups.battery().params();
        upsCapacityW_ = ups.params().powerCapacityW;
        gapTime_ = fromSeconds(std::min(hcfg.psuRideThroughSec,
                                        toSeconds(ups.transferDelay())));
    } else {
        gapTime_ = fromSeconds(hcfg.psuRideThroughSec);
    }

    // Perf levels and loads, folded exactly as Cluster aggregates them.
    const double u_full = profile.throttledPerf(model, 0, 0);
    const double u_out =
        throttling
            ? profile.throttledPerf(model, technique.pstate,
                                    technique.tstate)
            : u_full;
    qFull_ = meanOfN(u_full, n_servers);
    qThr_ = meanOfN(u_out, n_servers);
    qWarm_ = meanOfN(profile.warmupPerf * u_full, n_servers);
    // The standing technique engages at outage start, before the
    // ride-through gap ends, so the battery sees the throttled load.
    loadOut_ = sumOfN(
        model.activePowerW(throttling ? technique.pstate : 0,
                           throttling ? technique.tstate : 0, 1.0),
        n_servers);
    if (hasUps_) {
        canCarryOut_ = loadOut_ <= upsCapacityW_ * (1.0 + 1e-9);
        if (canCarryOut_)
            fullRuntimeOut_ =
                PeukertBattery::runtimeAtLoadFor(batParams_, loadOut_);
    }

    // Post-crash recovery pipeline (reboot -> process start ->
    // preload -> warm-up), as integer event offsets.
    dBoot_ = fromSeconds(model.params().bootTimeSec);
    dStart_ = fromSeconds(profile.processStartSec);
    hasPreload_ = profile.statePreloadSec > 0.0;
    dPreload_ = hasPreload_ ? fromSeconds(profile.statePreloadSec) : 0;
    hasWarmup_ = profile.warmupSec > 0.0;
    dWarmup_ = hasWarmup_ ? fromSeconds(profile.warmupSec) : 0;
    recoverySpan_ = dBoot_ + dStart_ + dPreload_ + dWarmup_;
    // Application::available() during warm-up: SLO-charged only for
    // latency-constrained services below 0.7.
    warmAvailable_ =
        profile.metric != PerfMetric::LatencyConstrainedThroughput ||
        profile.warmupPerf >= 0.7;

    // Application::noteHostState() recompute debt per crash.
    if (profile.recomputeMaxSec > 0.0) {
        double lost = profile.recomputeMinSec +
                      kRecomputeFraction * (profile.recomputeMaxSec -
                                            profile.recomputeMinSec);
        if (profile.checkpointIntervalSec > 0.0)
            lost = std::min(lost, kRecomputeFraction *
                                      profile.checkpointIntervalSec);
        lostPerCrashSec_ = lost;
    }
}

bool
BatchAnnualKernel::traceEligible(
    const std::vector<OutageEvent> &events) const
{
    for (std::size_t i = 0; i < events.size(); ++i) {
        const OutageEvent &ev = events[i];
        if (ev.duration <= 0 || ev.end() > kYear)
            return false;
        if (i == 0) {
            if (ev.start <= 0)
                return false;
        } else if (ev.start - events[i - 1].end() <= recoverySpan_) {
            // An outage landing inside the previous recovery window
            // (or out of order) needs the full event-driven machinery.
            return false;
        }
    }
    return true;
}

void
BatchAnnualKernel::replayLane(const std::vector<OutageEvent> &events,
                              TrialLanes &ln, std::size_t l) const
{
    double &soc = ln.soc[l];
    double &battery_j = ln.batteryJ[l];
    double &perf_int = ln.perfIntegral[l];
    double &perf_val = ln.perfValue[l];
    Time &perf_since = ln.perfSince[l];
    double &avail_int = ln.availIntegral[l];
    double &avail_val = ln.availValue[l];
    Time &avail_since = ln.availSince[l];

    // Battery recharge anchor (the hierarchy's lastSync) and the
    // recovery milestones the next inter-outage recharge splits at:
    // each milestone event syncs the hierarchy, and min(1, soc + dt/T)
    // applied per segment is not the same float as one merged segment.
    Time anchor = 0;
    Time pending[4];
    int n_pending = 0;

    for (const OutageEvent &ev : events) {
        const Time t1 = ev.start;
        const Time tr = ev.start + ev.duration;

        if (hasUps_) {
            for (int i = 0; i < n_pending; ++i) {
                soc = PeukertBattery::rechargedSoc(batParams_, soc,
                                                   pending[i] - anchor);
                anchor = pending[i];
            }
            soc = PeukertBattery::rechargedSoc(batParams_, soc,
                                               t1 - anchor);
        }
        n_pending = 0;

        // Outage start: the standing technique throttles (a no-op
        // record for None) before the ride-through gap ends.
        stepRecord(perf_int, perf_val, perf_since, t1, qThr_);

        bool crashed = false;
        Time tc = 0;
        const Time tg = t1 + gapTime_;
        if (tg < tr) {
            // Ride-through ends mid-outage: the battery (if any)
            // must pick up the load. Ties go to the restore event,
            // which is scheduled first and cancels the gap timer.
            if (!hasUps_ || !canCarryOut_ || soc <= 0.0) {
                crashed = true;
                tc = tg;
            } else {
                const Time tte = PeukertBattery::timeToEmptyFrom(
                    soc, fullRuntimeOut_);
                const Time td = tg + tte;
                const Time stop = td < tr ? td : tr;
                soc = PeukertBattery::dischargedSoc(soc, stop - tg,
                                                    fullRuntimeOut_);
                battery_j += loadOut_ * toSeconds(stop - tg);
                if (td < tr) {
                    crashed = true;
                    tc = td;
                }
            }
        }

        if (crashed) {
            ++ln.losses[l];
            if (lostPerCrashSec_ > 0.0)
                ln.appExtraSec[l] += lostPerCrashSec_;
            stepRecord(perf_int, perf_val, perf_since, tc, 0.0);
            stepRecord(avail_int, avail_val, avail_since, tc, 0.0);

            const Time t_boot = tr + dBoot_;
            const Time t_start = t_boot + dStart_;
            const Time t_preload =
                hasPreload_ ? t_start + dPreload_ : t_start;
            const Time t_warm =
                hasWarmup_ ? t_preload + dWarmup_ : t_preload;
            const Time t_avail =
                hasWarmup_ ? (warmAvailable_ ? t_preload : t_warm)
                           : t_preload;

            ln.worstGap[l] = std::max(
                ln.worstGap[l], std::min(t_avail, kYear) - tc);
            if (hasWarmup_) {
                if (t_preload <= kYear)
                    stepRecord(perf_int, perf_val, perf_since,
                               t_preload, qWarm_);
                if (t_warm <= kYear)
                    stepRecord(perf_int, perf_val, perf_since, t_warm,
                               qFull_);
            } else if (t_preload <= kYear) {
                stepRecord(perf_int, perf_val, perf_since, t_preload,
                           qFull_);
            }
            if (t_avail <= kYear)
                stepRecord(avail_int, avail_val, avail_since, t_avail,
                           1.0);

            pending[n_pending++] = t_boot;
            pending[n_pending++] = t_start;
            if (hasPreload_)
                pending[n_pending++] = t_preload;
            if (hasWarmup_)
                pending[n_pending++] = t_warm;
        } else {
            // Restoration unthrottles (another no-op record for None).
            stepRecord(perf_int, perf_val, perf_since, tr, qFull_);
        }
        anchor = tr;
    }
}

AnnualResult
BatchAnnualKernel::laneResult(const TrialLanes &ln, std::size_t l,
                              int outages) const
{
    AnnualResult r;
    r.outages = outages;
    r.losses = static_cast<int>(ln.losses[l]);
    const double avail_int =
        stepFinish(ln.availIntegral[l], ln.availValue[l],
                   ln.availSince[l], kYear);
    const double perf_int = stepFinish(
        ln.perfIntegral[l], ln.perfValue[l], ln.perfSince[l], kYear);
    const double avail_avg = avail_int / toSeconds(kYear);
    // Cluster::extraDowntimeSec(): per-app fold, then mean.
    double extra = 0.0;
    for (int i = 0; i < nServers_; ++i)
        extra += ln.appExtraSec[l];
    extra /= static_cast<double>(nServers_);
    r.downtimeMin =
        (1.0 - avail_avg) * toMinutes(kYear) + extra / 60.0;
    r.meanPerf = perf_int / toSeconds(kYear);
    r.batteryKwh = joulesToKwh(ln.batteryJ[l]);
    r.worstGapMin = toMinutes(ln.worstGap[l]);
    return r;
}

AnnualResult
BatchAnnualKernel::runFastTrace(
    const std::vector<OutageEvent> &events) const
{
    BPSIM_ASSERT(eligible_ && traceEligible(events),
                 "trace outside the fast path envelope");
    TrialLanes lanes;
    lanes.assign(1, qFull_, 1.0);
    replayLane(events, lanes, 0);
    return laneResult(lanes, 0, static_cast<int>(events.size()));
}

void
BatchAnnualKernel::runBatch(std::uint64_t seed, std::uint64_t lo,
                            std::uint64_t hi, AnnualResult *out) const
{
    BPSIM_ASSERT(hi >= lo, "bad batch range");
    const std::size_t n = static_cast<std::size_t>(hi - lo);

    // Stage 1: draw every lane's trace. Rng::stream(seed, trial) makes
    // each stream a pure function of the global trial id, so the batch
    // partition cannot change any lane's randomness.
    std::vector<std::vector<OutageEvent>> traces(n);
    for (std::size_t i = 0; i < n; ++i) {
        Rng rng = Rng::stream(seed, lo + i);
        traces[i] = gen_.generate(rng, kYear);
    }

    // Stage 2: split lanes. Tracing hooks inside the event loop (SoC
    // deciles, outage spans, trial-end markers) only exist on the
    // scalar path, so an observed run must take it wholesale.
    const bool fast = eligible_ && !obs::enabled();
    std::vector<std::size_t> fast_lanes;
    fast_lanes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (fast && traceEligible(traces[i])) {
            fast_lanes.push_back(i);
        } else {
            const obs::TrialScope scope(lo + i);
            out[i] = scalar_.runYear(profile_, nServers_, technique_,
                                     config_, traces[i]);
        }
    }

    // Stage 3: advance the fast lanes through SoA state.
    TrialLanes lanes;
    lanes.assign(fast_lanes.size(), qFull_, 1.0);
    for (std::size_t k = 0; k < fast_lanes.size(); ++k)
        replayLane(traces[fast_lanes[k]], lanes, k);
    for (std::size_t k = 0; k < fast_lanes.size(); ++k) {
        const std::size_t i = fast_lanes[k];
        out[i] = laneResult(
            lanes, k, static_cast<int>(traces[i].size()));
    }
}

} // namespace bpsim
