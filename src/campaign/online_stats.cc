#include "campaign/online_stats.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace bpsim
{

P2Quantile::P2Quantile(double probability) : p(probability)
{
    BPSIM_ASSERT(probability > 0.0 && probability < 1.0,
                 "quantile probability %g outside (0, 1)", probability);
    for (int i = 0; i < 5; ++i) {
        q[i] = 0.0;
        n_[i] = static_cast<double>(i + 1);
    }
    np[0] = 1.0;
    np[1] = 1.0 + 2.0 * p;
    np[2] = 1.0 + 4.0 * p;
    np[3] = 3.0 + 2.0 * p;
    np[4] = 5.0;
    dn[0] = 0.0;
    dn[1] = p / 2.0;
    dn[2] = p;
    dn[3] = (1.0 + p) / 2.0;
    dn[4] = 1.0;
}

void
P2Quantile::add(double x)
{
    ++count_;
    if (count_ <= 5) {
        // Initialization phase: collect and keep sorted.
        q[count_ - 1] = x;
        std::sort(q, q + count_);
        return;
    }

    // Find the cell containing x and clamp the extreme markers.
    int k;
    if (x < q[0]) {
        q[0] = x;
        k = 0;
    } else if (x >= q[4]) {
        q[4] = x;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && x >= q[k + 1])
            ++k;
    }

    for (int i = k + 1; i < 5; ++i)
        n_[i] += 1.0;
    for (int i = 0; i < 5; ++i)
        np[i] += dn[i];

    // Nudge the three middle markers toward their desired positions,
    // with parabolic (falling back to linear) height adjustment.
    for (int i = 1; i <= 3; ++i) {
        const double d = np[i] - n_[i];
        if ((d >= 1.0 && n_[i + 1] - n_[i] > 1.0) ||
            (d <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
            const double sign = d >= 0.0 ? 1.0 : -1.0;
            const double qp =
                q[i] +
                sign / (n_[i + 1] - n_[i - 1]) *
                    ((n_[i] - n_[i - 1] + sign) * (q[i + 1] - q[i]) /
                         (n_[i + 1] - n_[i]) +
                     (n_[i + 1] - n_[i] - sign) * (q[i] - q[i - 1]) /
                         (n_[i] - n_[i - 1]));
            if (q[i - 1] < qp && qp < q[i + 1]) {
                q[i] = qp;
            } else {
                // Parabolic estimate left the bracket; linear step.
                const int j = i + static_cast<int>(sign);
                q[i] += sign * (q[j] - q[i]) / (n_[j] - n_[i]);
            }
            n_[i] += sign;
        }
    }
}

double
P2Quantile::value() const
{
    if (count_ == 0)
        return 0.0;
    if (count_ <= 5) {
        // Exact sample quantile (nearest-rank with interpolation).
        const auto m = static_cast<double>(count_);
        const double rank = p * (m - 1.0);
        const auto lo = static_cast<std::size_t>(rank);
        const std::size_t hi = std::min<std::size_t>(
            lo + 1, static_cast<std::size_t>(count_) - 1);
        const double frac = rank - static_cast<double>(lo);
        return q[lo] + frac * (q[hi] - q[lo]);
    }
    return q[2];
}

P2Quantile
P2Quantile::restore(double probability, const double heights[5],
                    const double positions[5], const double desired[5],
                    std::uint64_t count)
{
    P2Quantile s(probability); // recomputes dn from the probability
    for (int i = 0; i < 5; ++i) {
        s.q[i] = heights[i];
        s.n_[i] = positions[i];
        s.np[i] = desired[i];
    }
    s.count_ = count;
    return s;
}

BinomialCi
wilsonInterval(std::uint64_t successes, std::uint64_t trials, double z)
{
    BinomialCi ci;
    if (trials == 0)
        return ci;
    BPSIM_ASSERT(successes <= trials, "%llu successes out of %llu trials",
                 static_cast<unsigned long long>(successes),
                 static_cast<unsigned long long>(trials));
    const auto n = static_cast<double>(trials);
    const double phat = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (phat + z2 / (2.0 * n)) / denom;
    const double half =
        z / denom * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
    ci.fraction = phat;
    ci.lo = std::max(0.0, center - half);
    ci.hi = std::min(1.0, center + half);
    return ci;
}

void
MetricStats::add(double x)
{
    s.add(x);
    q50.add(x);
    q95.add(x);
    q99.add(x);
    td.add(x);
}

double
MetricStats::meanCiHalfWidth(double z) const
{
    if (s.count() < 2)
        return 0.0;
    return z * s.stddev() / std::sqrt(static_cast<double>(s.count()));
}

MetricStats
MetricStats::restore(const SummaryStats &summary, const P2Quantile &p50,
                     const P2Quantile &p95, const P2Quantile &p99,
                     TDigest digest)
{
    MetricStats m;
    m.s = summary;
    m.q50 = p50;
    m.q95 = p95;
    m.q99 = p99;
    m.td = std::move(digest);
    return m;
}

} // namespace bpsim
