/**
 * @file
 * Online (single-pass, bounded-memory) statistics for Monte Carlo
 * campaigns: the P² streaming quantile sketch, Wilson score intervals
 * for binomial proportions (loss-free-year fraction), and a per-metric
 * aggregate bundling Welford moments with P50/P95/P99 sketches.
 *
 * Everything here is deterministic in the input *sequence*: feeding
 * the same observations in the same order yields bit-identical state.
 * The campaign runner exploits this by always consuming trial results
 * in trial-id order, so campaign statistics do not depend on the
 * thread count or scheduling (see campaign/runner.hh).
 */

#ifndef BPSIM_CAMPAIGN_ONLINE_STATS_HH
#define BPSIM_CAMPAIGN_ONLINE_STATS_HH

#include <cstdint>

#include "campaign/tdigest.hh"
#include "sim/stats.hh"

namespace bpsim
{

/**
 * P² streaming quantile estimator (Jain & Chlamtac, CACM 1985):
 * tracks one quantile of an unbounded stream with five markers and
 * O(1) memory. Exact for the first five observations, a parabolic
 * interpolation thereafter.
 */
class P2Quantile
{
  public:
    /** Track the @p probability quantile (0 < probability < 1). */
    explicit P2Quantile(double probability);

    /** Add one observation. */
    void add(double x);

    /** Current estimate (exact sample quantile while count() < 5). */
    double value() const;

    /** Observations seen. */
    std::uint64_t count() const { return count_; }

    /** The tracked probability. */
    double probability() const { return p; }

    /**
     * @name Checkpoint state access
     * The exact marker state, for campaign checkpoints that resume a
     * stream bit-identically (campaign/checkpoint.hh). The desired
     * position increments are a pure function of the probability, so
     * only the heights, positions and desired positions need to ride
     * the checkpoint.
     */
    ///@{
    const double *markerHeights() const { return q; }       // q[5]
    const double *markerPositions() const { return n_; }    // n_[5]
    const double *desiredPositions() const { return np; }   // np[5]
    /** Rebuild a sketch mid-stream from checkpointed marker state. */
    static P2Quantile restore(double probability,
                              const double heights[5],
                              const double positions[5],
                              const double desired[5],
                              std::uint64_t count);
    ///@}

  private:
    double p;
    double q[5];  // marker heights
    double n_[5]; // marker positions (1-based)
    double np[5]; // desired marker positions
    double dn[5]; // desired position increments
    std::uint64_t count_ = 0;
};

/** A binomial proportion with its Wilson score interval. */
struct BinomialCi
{
    double fraction = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Wilson score interval for @p successes out of @p trials at normal
 * quantile @p z (1.96 = 95%). Well-behaved at 0 and 1, unlike the
 * Wald interval. Returns all-zero for trials == 0.
 */
BinomialCi wilsonInterval(std::uint64_t successes, std::uint64_t trials,
                          double z = 1.96);

/**
 * One campaign metric: streaming moments (Welford), P50/P95/P99 P²
 * sketches, and a t-digest for arbitrary (and mergeable) quantiles.
 * The P² values remain the canonical p50/p95/p99 readouts for
 * backward compatibility; quantile() reads the digest.
 */
class MetricStats
{
  public:
    /** Add one per-trial observation. */
    void add(double x);

    /** Welford count/mean/variance/min/max/sum. */
    const SummaryStats &summary() const { return s; }

    double p50() const { return q50.value(); }
    double p95() const { return q95.value(); }
    double p99() const { return q99.value(); }

    /** Any quantile, from the t-digest (see campaign/tdigest.hh). */
    double quantile(double q) const { return td.quantile(q); }

    /** The underlying mergeable sketch. */
    const TDigest &digest() const { return td; }

    /**
     * Normal-approximation half-width of the confidence interval on
     * the mean: z * stddev / sqrt(n). Zero for fewer than 2 samples.
     */
    double meanCiHalfWidth(double z = 1.96) const;

    /**
     * @name Checkpoint state access
     * The P² sketches behind p50/p95/p99, and a restore factory that
     * rebuilds the whole per-metric aggregate mid-stream. Feeding the
     * same tail of observations to a restored metric yields state (and
     * serialized bytes) identical to never having checkpointed — the
     * invariant campaign/checkpoint.hh is built on.
     */
    ///@{
    const P2Quantile &sketch50() const { return q50; }
    const P2Quantile &sketch95() const { return q95; }
    const P2Quantile &sketch99() const { return q99; }
    static MetricStats restore(const SummaryStats &summary,
                               const P2Quantile &p50,
                               const P2Quantile &p95,
                               const P2Quantile &p99, TDigest digest);
    ///@}

  private:
    SummaryStats s;
    P2Quantile q50{0.50};
    P2Quantile q95{0.95};
    P2Quantile q99{0.99};
    TDigest td{100.0};
};

} // namespace bpsim

#endif // BPSIM_CAMPAIGN_ONLINE_STATS_HH
