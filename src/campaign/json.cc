#include "campaign/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "sim/logging.hh"

namespace bpsim
{

void
JsonWriter::separate()
{
    if (pending_key) {
        pending_key = false;
        return;
    }
    if (!used.empty()) {
        if (used.back())
            os << ',';
        used.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    os << '{';
    used.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    BPSIM_ASSERT(!used.empty(), "endObject() without beginObject()");
    used.pop_back();
    os << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    os << '[';
    used.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    BPSIM_ASSERT(!used.empty(), "endArray() without beginArray()");
    used.pop_back();
    os << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    separate();
    os << '"' << name << "\":";
    pending_key = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    if (std::isfinite(v)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        os << buf;
    } else {
        os << "null"; // JSON has no inf/nan
    }
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    separate();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    os << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &json)
{
    separate();
    os << json;
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    os << '"';
    for (char c : v) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\t':
            os << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
    return *this;
}

bool
JsonValue::asBool() const
{
    BPSIM_ASSERT(kind_ == Kind::Bool, "JSON value is not a boolean");
    return bool_;
}

double
JsonValue::asDouble() const
{
    BPSIM_ASSERT(kind_ == Kind::Number, "JSON value is not a number");
    return num_;
}

std::int64_t
JsonValue::asInt() const
{
    const double d = asDouble();
    const auto i = static_cast<std::int64_t>(d);
    BPSIM_ASSERT(static_cast<double>(i) == d,
                 "JSON number %g is not an integer", d);
    return i;
}

std::uint64_t
JsonValue::asUint() const
{
    const std::int64_t i = asInt();
    BPSIM_ASSERT(i >= 0, "JSON number %lld is negative",
                 static_cast<long long>(i));
    return static_cast<std::uint64_t>(i);
}

const std::string &
JsonValue::asString() const
{
    BPSIM_ASSERT(kind_ == Kind::String, "JSON value is not a string");
    return str_;
}

std::size_t
JsonValue::size() const
{
    if (kind_ == Kind::Object)
        return members_.size();
    BPSIM_ASSERT(kind_ == Kind::Array, "JSON value is not a container");
    return items_.size();
}

const JsonValue &
JsonValue::item(std::size_t i) const
{
    BPSIM_ASSERT(kind_ == Kind::Array, "JSON value is not an array");
    BPSIM_ASSERT(i < items_.size(), "JSON array index %zu out of range",
                 i);
    return items_[i];
}

const std::pair<std::string, JsonValue> &
JsonValue::member(std::size_t i) const
{
    BPSIM_ASSERT(kind_ == Kind::Object, "JSON value is not an object");
    BPSIM_ASSERT(i < members_.size(),
                 "JSON object member index %zu out of range", i);
    return members_[i];
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    BPSIM_ASSERT(v != nullptr, "JSON object has no member \"%s\"",
                 key.c_str());
    return *v;
}

JsonValue
JsonValue::makeNull()
{
    return {};
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double d)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = d;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::makeObject()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

void
JsonValue::append(JsonValue v)
{
    BPSIM_ASSERT(kind_ == Kind::Array, "append() on a non-array");
    items_.push_back(std::move(v));
}

void
JsonValue::set(std::string key, JsonValue v)
{
    BPSIM_ASSERT(kind_ == Kind::Object, "set() on a non-object");
    members_.emplace_back(std::move(key), std::move(v));
}

namespace
{

/** Recursive-descent parser over one in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text(text) {}

    std::optional<JsonValue>
    parse(std::string *error)
    {
        JsonValue v;
        if (!parseValue(v) || !atEndAfterSpace()) {
            if (error)
                *error = formatString("%s at offset %zu", err.c_str(),
                                      pos);
            return std::nullopt;
        }
        return v;
    }

  private:
    bool
    fail(const char *why)
    {
        if (err.empty())
            err = why;
        return false;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    atEndAfterSpace()
    {
        skipSpace();
        return pos == text.size() || fail("trailing garbage");
    }

    bool
    literal(const char *word)
    {
        const std::string_view w(word);
        if (text.substr(pos, w.size()) != w)
            return fail("invalid literal");
        pos += w.size();
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipSpace();
        if (pos >= text.size())
            return fail("unexpected end of input");
        switch (text[pos]) {
        case '{':
            return parseObject(out);
        case '[':
            return parseArray(out);
        case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = JsonValue::makeString(std::move(s));
            return true;
        }
        case 't':
            out = JsonValue::makeBool(true);
            return literal("true");
        case 'f':
            out = JsonValue::makeBool(false);
            return literal("false");
        case 'n':
            out = JsonValue::makeNull();
            return literal("null");
        default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        if (++depth > kJsonMaxDepth)
            return fail("nesting too deep");
        ++pos; // '{'
        out = JsonValue::makeObject();
        skipSpace();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            --depth;
            return true;
        }
        while (true) {
            skipSpace();
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (pos >= text.size() || text[pos] != ':')
                return fail("expected ':'");
            ++pos;
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.set(std::move(key), std::move(v));
            skipSpace();
            if (pos >= text.size())
                return fail("unterminated object");
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == '}') {
                ++pos;
                --depth;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        if (++depth > kJsonMaxDepth)
            return fail("nesting too deep");
        ++pos; // '['
        out = JsonValue::makeArray();
        skipSpace();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            --depth;
            return true;
        }
        while (true) {
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.append(std::move(v));
            skipSpace();
            if (pos >= text.size())
                return fail("unterminated array");
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == ']') {
                ++pos;
                --depth;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos];
            if (c != '\\') {
                out.push_back(c);
                ++pos;
                continue;
            }
            if (++pos >= text.size())
                return fail("unterminated escape");
            switch (text[pos]) {
            case '"':
            case '\\':
            case '/':
                out.push_back(text[pos]);
                break;
            case 'b':
                out.push_back('\b');
                break;
            case 'f':
                out.push_back('\f');
                break;
            case 'n':
                out.push_back('\n');
                break;
            case 'r':
                out.push_back('\r');
                break;
            case 't':
                out.push_back('\t');
                break;
            case 'u': {
                if (pos + 4 >= text.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 1; i <= 4; ++i) {
                    const char h = text[pos + i];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        cp |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        cp |= h - 'A' + 10;
                    else
                        return fail("bad \\u escape");
                }
                pos += 4;
                // UTF-8 encode (surrogate pairs unsupported; the
                // writer never emits them).
                if (cp < 0x80) {
                    out.push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out.push_back(
                        static_cast<char>(0xc0 | (cp >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3f)));
                } else {
                    out.push_back(
                        static_cast<char>(0xe0 | (cp >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((cp >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3f)));
                }
                break;
            }
            default:
                return fail("unknown escape");
            }
            ++pos;
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos; // closing '"'
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        // JSON requires a digit here: no leading '+', '.', or 'e'
        // (strtod below would happily take "+1" or ".5").
        if (pos >= text.size() ||
            !std::isdigit(static_cast<unsigned char>(text[pos])))
            return fail("expected value");
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("expected value");
        const std::string num(text.substr(start, pos - start));
        char *end = nullptr;
        const double d = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size())
            return fail("malformed number");
        out = JsonValue::makeNumber(d);
        return true;
    }

    std::string_view text;
    std::size_t pos = 0;
    /** Current container nesting (bounded by kJsonMaxDepth). */
    int depth = 0;
    std::string err;
};

} // namespace

std::optional<JsonValue>
parseJson(std::string_view text, std::string *error)
{
    return JsonParser(text).parse(error);
}

std::optional<JsonValue>
parseJsonFile(const std::string &path, std::string *error)
{
    std::ifstream is(path);
    if (!is) {
        if (error)
            *error = "cannot open " + path;
        return std::nullopt;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    return parseJson(ss.str(), error);
}

const char *
buildId()
{
#ifdef BPSIM_BUILD_ID
    return BPSIM_BUILD_ID;
#else
    return "unknown";
#endif
}

const std::string &
hostCpuModel()
{
    static const std::string model = [] {
        std::ifstream is("/proc/cpuinfo");
        std::string line;
        while (std::getline(is, line)) {
            const auto colon = line.find(':');
            if (colon == std::string::npos)
                continue;
            if (line.compare(0, 10, "model name") != 0)
                continue;
            std::size_t start = colon + 1;
            while (start < line.size() && line[start] == ' ')
                ++start;
            return line.substr(start);
        }
        return std::string("unknown");
    }();
    return model;
}

unsigned
hostCoreCount()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

std::string
writeBenchJsonFile(const std::string &name,
                   const std::function<void(JsonWriter &)> &body)
{
    const std::string file = "BENCH_" + name + ".json";
    std::ofstream os(file);
    if (!os) {
        warn("cannot write %s", file.c_str());
        return "";
    }
    JsonWriter w(os);
    w.beginObject();
    w.field("bench", name);
    w.field("build", buildId());
    w.field("host_cpu", hostCpuModel());
    w.field("host_cores", static_cast<std::uint64_t>(hostCoreCount()));
    body(w);
    w.endObject();
    os << '\n';
    return os ? file : "";
}

} // namespace bpsim
