#include "campaign/json.hh"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "sim/logging.hh"

namespace bpsim
{

void
JsonWriter::separate()
{
    if (pending_key) {
        pending_key = false;
        return;
    }
    if (!used.empty()) {
        if (used.back())
            os << ',';
        used.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    os << '{';
    used.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    BPSIM_ASSERT(!used.empty(), "endObject() without beginObject()");
    used.pop_back();
    os << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    os << '[';
    used.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    BPSIM_ASSERT(!used.empty(), "endArray() without beginArray()");
    used.pop_back();
    os << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    separate();
    os << '"' << name << "\":";
    pending_key = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    if (std::isfinite(v)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        os << buf;
    } else {
        os << "null"; // JSON has no inf/nan
    }
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    separate();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    os << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &json)
{
    separate();
    os << json;
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    os << '"';
    for (char c : v) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\t':
            os << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
    return *this;
}

std::string
writeBenchJsonFile(const std::string &name,
                   const std::function<void(JsonWriter &)> &body)
{
    const std::string file = "BENCH_" + name + ".json";
    std::ofstream os(file);
    if (!os) {
        warn("cannot write %s", file.c_str());
        return "";
    }
    JsonWriter w(os);
    w.beginObject();
    w.field("bench", name);
    body(w);
    w.endObject();
    os << '\n';
    return os ? file : "";
}

} // namespace bpsim
