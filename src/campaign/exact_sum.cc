#include "campaign/exact_sum.hh"

#include <cmath>

#include "campaign/json.hh"
#include "sim/logging.hh"

namespace bpsim
{

namespace
{

constexpr std::int64_t kBase = std::int64_t{1} << 30;

} // namespace

void
ExactSum::add(double x)
{
    BPSIM_ASSERT(std::isfinite(x), "ExactSum::add(%g): not finite", x);
    if (x == 0.0)
        return;

    // x = m * 2^(e-53) with |m| a 53-bit integer; frexp is exact.
    int e;
    const double f = std::frexp(x, &e);
    auto m = static_cast<std::int64_t>(std::ldexp(f, 53));
    int pos = e - 53 + kBias; // bit index of m's LSB, from 2^-1074
    if (pos < 0) {
        // Subnormal input: m is a multiple of 2^-pos, so this is exact.
        m >>= -pos;
        pos = 0;
    }

    const bool neg = m < 0;
    auto wide = static_cast<unsigned __int128>(neg ? -m : m);
    wide <<= pos % kLimbBits;
    for (int j = pos / kLimbBits; wide != 0; ++j, wide >>= kLimbBits) {
        const auto chunk =
            static_cast<std::int64_t>(wide & (kBase - 1));
        limb_[j] += neg ? -chunk : chunk;
    }

    // Each add shifts any limb by < 2^30; renormalize long before a
    // limb could reach the int64 range.
    if (++dirty_ >= (1u << 30))
        normalize();
}

void
ExactSum::merge(const ExactSum &other)
{
    ExactSum o = other;
    o.normalize(); // canonical limbs are < 2^30 in magnitude
    for (int j = 0; j < kLimbs; ++j)
        limb_[j] += o.limb_[j];
    if (++dirty_ >= (1u << 30))
        normalize();
}

void
ExactSum::normalize()
{
    // Pass 1: carry-propagate every limb into (-2^30, 2^30).
    std::int64_t carry = 0;
    for (int j = 0; j < kLimbs; ++j) {
        const std::int64_t t = limb_[j] + carry;
        limb_[j] = t % kBase;
        carry = t / kBase;
    }
    BPSIM_ASSERT(carry == 0, "ExactSum overflow beyond 2^1024");

    // Pass 2: unify limb signs so the digits are the canonical
    // base-2^30 representation of |sum| (the top nonzero limb always
    // carries the sign of the total).
    int ms = kLimbs - 1;
    while (ms >= 0 && limb_[ms] == 0)
        --ms;
    if (ms >= 0) {
        const int sign = limb_[ms] > 0 ? 1 : -1;
        for (int j = 0; j < ms; ++j) {
            if (sign > 0 && limb_[j] < 0) {
                limb_[j] += kBase;
                limb_[j + 1] -= 1;
            } else if (sign < 0 && limb_[j] > 0) {
                limb_[j] -= kBase;
                limb_[j + 1] += 1;
            }
        }
    }
    dirty_ = 0;
}

double
ExactSum::value() const
{
    ExactSum c = *this;
    c.normalize();
    // High-to-low accumulation of same-signed digits: faithful, and a
    // pure function of the canonical digits.
    double v = 0.0;
    for (int j = kLimbs - 1; j >= 0; --j) {
        if (c.limb_[j] != 0)
            v += std::ldexp(static_cast<double>(c.limb_[j]),
                            j * kLimbBits - kBias);
    }
    return v;
}

bool
ExactSum::zero() const
{
    ExactSum c = *this;
    c.normalize();
    for (int j = 0; j < kLimbs; ++j)
        if (c.limb_[j] != 0)
            return false;
    return true;
}

void
ExactSum::writeJson(JsonWriter &w) const
{
    ExactSum c = *this;
    c.normalize();
    int lo = 0, hi = kLimbs - 1;
    while (hi >= 0 && c.limb_[hi] == 0)
        --hi;
    const int sign = hi < 0 ? 0 : (c.limb_[hi] > 0 ? 1 : -1);
    while (lo < hi && c.limb_[lo] == 0)
        ++lo;

    w.beginObject();
    w.field("sign", sign);
    w.field("lo", sign == 0 ? 0 : lo);
    w.key("limbs").beginArray();
    if (sign != 0) {
        for (int j = lo; j <= hi; ++j)
            w.value(static_cast<int>(sign > 0 ? c.limb_[j]
                                              : -c.limb_[j]));
    }
    w.endArray();
    w.endObject();
}

bool
ExactSum::validJson(const JsonValue &v)
{
    if (v.kind() != JsonValue::Kind::Object)
        return false;
    const auto integral = [](const JsonValue *x) {
        return x && x->kind() == JsonValue::Kind::Number &&
               x->asDouble() == std::floor(x->asDouble());
    };
    const JsonValue *sign = v.find("sign");
    const JsonValue *lo = v.find("lo");
    const JsonValue *limbs = v.find("limbs");
    if (!integral(sign) || sign->asDouble() < -1.0 ||
        sign->asDouble() > 1.0)
        return false;
    if (!integral(lo) || lo->asDouble() < 0.0)
        return false;
    if (!limbs || limbs->kind() != JsonValue::Kind::Array)
        return false;
    if (lo->asDouble() + static_cast<double>(limbs->size()) >
        static_cast<double>(kLimbs))
        return false;
    for (std::size_t i = 0; i < limbs->size(); ++i) {
        const JsonValue &d = limbs->item(i);
        if (!integral(&d) || d.asDouble() < 0.0 ||
            d.asDouble() >= static_cast<double>(kBase))
            return false;
    }
    return true;
}

ExactSum
ExactSum::fromJson(const JsonValue &v)
{
    ExactSum out;
    const auto sign = v.at("sign").asInt();
    BPSIM_ASSERT(sign >= -1 && sign <= 1, "ExactSum: bad sign %lld",
                 static_cast<long long>(sign));
    if (sign == 0)
        return out;
    const auto lo = v.at("lo").asInt();
    const JsonValue &limbs = v.at("limbs");
    BPSIM_ASSERT(lo >= 0 &&
                     lo + static_cast<std::int64_t>(limbs.size()) <=
                         kLimbs,
                 "ExactSum: limb range out of bounds");
    for (std::size_t i = 0; i < limbs.size(); ++i) {
        const auto digit = limbs.item(i).asInt();
        BPSIM_ASSERT(digit >= 0 && digit < kBase,
                     "ExactSum: digit %lld outside [0, 2^30)",
                     static_cast<long long>(digit));
        out.limb_[lo + static_cast<std::int64_t>(i)] = sign * digit;
    }
    return out;
}

} // namespace bpsim
