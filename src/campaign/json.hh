/**
 * @file
 * Minimal JSON layer for campaign and bench exports: a streaming
 * writer plus a small recursive-descent reader.
 *
 * The writer emits syntactically valid JSON with automatic comma
 * placement; doubles are printed with %.17g so values round-trip
 * exactly. The reader parses what the writer (and the shard export
 * format) produces — objects, arrays, strings, numbers, booleans and
 * null — into a JsonValue tree so shard aggregate files can be merged
 * back. Neither side aims to be a general-purpose JSON library.
 */

#ifndef BPSIM_CAMPAIGN_JSON_HH
#define BPSIM_CAMPAIGN_JSON_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bpsim
{

/** Streaming writer for one JSON document. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os(os) {}

    /** @name Structure */
    ///@{
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    /** Emit the key of the next member (inside an object). */
    JsonWriter &key(const std::string &name);
    ///@}

    /** @name Values */
    ///@{
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &value(const char *v);
    JsonWriter &value(const std::string &v);
    /**
     * Splice pre-serialized JSON verbatim in value position. The
     * caller guarantees `json` is one complete JSON value (e.g. an
     * array built by another JsonWriter).
     */
    JsonWriter &raw(const std::string &json);
    ///@}

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

  private:
    void separate();

    std::ostream &os;
    /** Per-nesting-level "a member has been emitted" flags. */
    std::vector<bool> used;
    /** A key() is pending, so the next value needs no comma. */
    bool pending_key = false;
};

/**
 * One parsed JSON value. Objects preserve member order; numbers are
 * stored as double (exact for every integer the exporters emit, all
 * far below 2^53).
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }

    /** @name Typed accessors (assert on kind mismatch) */
    ///@{
    bool asBool() const;
    double asDouble() const;
    /** The number as an integer (asserts it is integral). */
    std::int64_t asInt() const;
    /** The number as a non-negative integer. */
    std::uint64_t asUint() const;
    const std::string &asString() const;
    ///@}

    /** @name Array access */
    ///@{
    /** Element count (arrays and objects). */
    std::size_t size() const;
    const JsonValue &item(std::size_t i) const;
    ///@}

    /** @name Object access */
    ///@{
    /** Member lookup; nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;
    /** Member lookup; asserts presence. */
    const JsonValue &at(const std::string &key) const;
    /** i-th member, in parse order (for iterating dynamic keys). */
    const std::pair<std::string, JsonValue> &member(std::size_t i) const;
    ///@}

    /** @name Construction (used by the parser and tests) */
    ///@{
    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double d);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray();
    static JsonValue makeObject();
    void append(JsonValue v);                      // array
    void set(std::string key, JsonValue v);        // object
    ///@}

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Maximum container nesting depth parseJson() accepts. The parser is
 * recursive-descent, so untrusted input (the what-if server feeds it
 * raw request bodies) could otherwise drive unbounded stack growth
 * with a few kilobytes of '['. Every document the exporters emit is
 * fewer than ten levels deep; 64 leaves generous headroom.
 */
constexpr int kJsonMaxDepth = 64;

/**
 * Parse one JSON document. Returns nullopt on malformed input —
 * including container nesting beyond kJsonMaxDepth — with a
 * human-readable reason (including the byte offset) in @p error when
 * provided. Trailing whitespace is allowed; trailing garbage is not.
 */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string *error = nullptr);

/** Parse the whole contents of @p path; nullopt on I/O or parse error. */
std::optional<JsonValue> parseJsonFile(const std::string &path,
                                       std::string *error = nullptr);

/**
 * Build identifier stamped into exported files: `git describe
 * --always --dirty` captured at configure time ("unknown" outside a
 * git checkout). Ties every result file back to the binary that
 * produced it.
 */
const char *buildId();

/** @name Host provenance (for bench trajectory comparability) */
///@{
/** CPU model string from /proc/cpuinfo ("unknown" elsewhere). */
const std::string &hostCpuModel();
/** Hardware concurrency of this host. */
unsigned hostCoreCount();
///@}

/**
 * Write `BENCH_<name>.json` in the current working directory with
 * `body` filling the members of the top-level object ("bench",
 * "build" and host-provenance members are emitted first). Returns
 * the file name, or "" on I/O failure.
 */
std::string writeBenchJsonFile(const std::string &name,
                               const std::function<void(JsonWriter &)> &body);

} // namespace bpsim

#endif // BPSIM_CAMPAIGN_JSON_HH
