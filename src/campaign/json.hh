/**
 * @file
 * Minimal streaming JSON writer for campaign and bench exports.
 *
 * Emits syntactically valid JSON with automatic comma placement;
 * doubles are printed with %.17g so values round-trip exactly. Not a
 * general serializer — just enough for flat result objects and the
 * machine-readable BENCH_*.json files the benches emit so the perf
 * trajectory can be tracked across PRs.
 */

#ifndef BPSIM_CAMPAIGN_JSON_HH
#define BPSIM_CAMPAIGN_JSON_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace bpsim
{

/** Streaming writer for one JSON document. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os(os) {}

    /** @name Structure */
    ///@{
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    /** Emit the key of the next member (inside an object). */
    JsonWriter &key(const std::string &name);
    ///@}

    /** @name Values */
    ///@{
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &value(const char *v);
    JsonWriter &value(const std::string &v);
    /**
     * Splice pre-serialized JSON verbatim in value position. The
     * caller guarantees `json` is one complete JSON value (e.g. an
     * array built by another JsonWriter).
     */
    JsonWriter &raw(const std::string &json);
    ///@}

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

  private:
    void separate();

    std::ostream &os;
    /** Per-nesting-level "a member has been emitted" flags. */
    std::vector<bool> used;
    /** A key() is pending, so the next value needs no comma. */
    bool pending_key = false;
};

/**
 * Write `BENCH_<name>.json` in the current working directory with
 * `body` filling the members of the top-level object (a "bench" member
 * is emitted first). Returns the file name, or "" on I/O failure.
 */
std::string writeBenchJsonFile(const std::string &name,
                               const std::function<void(JsonWriter &)> &body);

} // namespace bpsim

#endif // BPSIM_CAMPAIGN_JSON_HH
