/**
 * @file
 * Distributed campaign sharding: split one annual campaign's trial
 * range [0, N) into contiguous shards, run each shard independently
 * (on separate machines — `Rng::stream(seed, id)` needs no
 * cross-shard coordination), export a self-describing per-shard
 * aggregate file, and merge the shard files back into campaign
 * aggregates.
 *
 * The merge invariant (asserted by the `shard`-labeled ctests):
 * count, mean, min/max, variance-derived CI half-widths and the
 * Wilson loss-free interval of the merged campaign are bit-identical
 * for ANY shard count and merge order — counts are integers, sums are
 * ExactSum superaccumulators, and everything else is a deterministic
 * function of those. Quantiles come from merged t-digests and are
 * rank-accurate (≈0.5–1% of rank at δ=100) rather than bitwise.
 *
 * Early stop across shards: a campaign early-stop rule needs the
 * in-order trial prefix, which no single shard owns. Shards therefore
 * record cumulative checkpoints of the downtime sums at a configurable
 * cadence; `evaluateEarlyStop` replays the merged in-order prefix at
 * those boundaries and reports where a single-machine coordinator
 * would have stopped. See docs/CAMPAIGN.md "Sharding".
 */

#ifndef BPSIM_CAMPAIGN_SHARD_HH
#define BPSIM_CAMPAIGN_SHARD_HH

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "campaign/annual_campaign.hh"
#include "campaign/exact_sum.hh"
#include "campaign/tdigest.hh"
#include "obs/histogram.hh"
#include "obs/incident.hh"

namespace bpsim
{

/** Version stamped into every shard file; bump on format changes. */
constexpr int kShardSchemaVersion = 1;
/** Schema identifier stamped into every shard file. */
constexpr const char *kShardSchemaName = "bpsim.campaign.shard";
/** Digest compression used for shard metrics (≲1% mid-rank error). */
constexpr double kShardDigestCompression = 100.0;

/** Identity of one shard within a larger campaign. */
struct ShardSpec
{
    /** Campaign seed; trial t draws from Rng::stream(seed, t). */
    std::uint64_t seed = 1;
    /** Total campaign size N (the union of all shards). */
    std::uint64_t campaignTrials = 0;
    /** This shard's global trial range [lo, hi). */
    std::uint64_t lo = 0, hi = 0;
    /** Position within the partition (informational). */
    std::uint64_t shardIndex = 0, shardCount = 1;

    std::uint64_t width() const { return hi - lo; }
};

/**
 * The @p index-th of @p count balanced contiguous shards of a
 * @p trials-trial campaign (the first `trials % count` shards get one
 * extra trial).
 */
ShardSpec shardOf(std::uint64_t seed, std::uint64_t trials,
                  std::uint64_t index, std::uint64_t count);

/**
 * One mergeable campaign metric: integer count, ExactSum sums (for
 * bit-stable mean/variance under any partitioning), exact min/max,
 * and a t-digest for quantiles.
 */
class MergingMetric
{
  public:
    /** Add one per-trial observation. */
    void add(double x);

    /** Fold another metric in (exact except for digest placement). */
    void merge(const MergingMetric &other);

    std::uint64_t count() const { return n_; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    /** sum/n via ExactSum: bit-identical for any shard partition. */
    double mean() const;
    /** Population variance from exact sums (clamped at 0). */
    double variance() const;
    double stddev() const;
    /** z * stddev / sqrt(n), as MetricStats::meanCiHalfWidth. */
    double meanCiHalfWidth(double z = 1.96) const;

    double quantile(double q) const { return digest_.quantile(q); }
    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    const ExactSum &sum() const { return sum_; }
    const ExactSum &sumSq() const { return sumSq_; }
    const TDigest &digest() const { return digest_; }

    /** Emit as a JSON object in value position. */
    void writeJson(JsonWriter &w) const;
    /** Rebuild from writeJson output. */
    static MergingMetric fromJson(const JsonValue &v);

  private:
    std::uint64_t n_ = 0;
    double min_ = 0.0, max_ = 0.0;
    ExactSum sum_, sumSq_;
    TDigest digest_{kShardDigestCompression};
};

/**
 * Cumulative prefix snapshot of the early-stop metric (downtime
 * min/yr) after the first @p trials trials *of this shard*.
 */
struct ShardCheckpoint
{
    std::uint64_t trials = 0;
    ExactSum sum, sumSq;
};

/** Aggregates of one executed shard. */
struct ShardResult
{
    ShardSpec spec;
    /** Trials executed (== spec.width()). */
    std::uint64_t trials = 0;

    /** @name Per-metric mergeable aggregates (in trial order) */
    ///@{
    MergingMetric downtimeMin;
    MergingMetric lossesPerYear;
    MergingMetric meanPerf;
    MergingMetric batteryKwh;
    MergingMetric worstGapMin;
    ///@}

    /** Trials with zero abrupt power-loss events. */
    std::uint64_t lossFreeTrials = 0;

    /** Early-stop bookkeeping (cumulative downtime prefixes). */
    std::vector<ShardCheckpoint> checkpoints;

    /**
     * Observability counter deltas accumulated while this shard ran
     * (obs::Registry names -> counts). Empty when observability is
     * disabled — and then omitted from the shard file, so files from
     * uninstrumented runs are byte-identical to schema v1 without
     * counters. Merged key-wise (addition) by mergeShards().
     */
    std::map<std::string, std::uint64_t> counters;

    /**
     * Observability histogram deltas (sparse bucket counts) captured
     * the same way as `counters` and with the same invariants: empty
     * (and omitted from the file — schema v1 bytes unchanged) when
     * observability is disabled; merged bucket-wise by mergeShards(),
     * bit-identical for any shard partition or merge order.
     */
    std::map<std::string, obs::HistogramSnapshot> histograms;

    /**
     * Incident forensics rollup (downtime attribution by root cause)
     * folded from this shard's trace by the incident engine. Same
     * contract as `counters`/`histograms`: empty — and omitted from
     * the shard file, keeping schema-v1 bytes — when observability is
     * off; merged exactly (ExactSum) by mergeShards(), bit-identical
     * for any shard partition or merge order.
     */
    obs::IncidentAggregate incidents;

    /** Build id of the producing binary (git describe). */
    std::string build;
    /** Wall-clock time (informational, not merged). */
    double wallSeconds = 0.0;
};

/** Execution knobs for one shard run. */
struct ShardOptions
{
    /** Worker threads (0 = shared hardware-sized pool). */
    int threads = 0;
    /**
     * Record a checkpoint every this many trials (0 = shard end
     * only). Cadence 1 reproduces the single-machine early-stop rule
     * exactly; coarser cadences trade file size for stop granularity.
     */
    std::uint64_t checkpointEvery = 0;
    /**
     * Trials per batched-kernel lane batch (0 = scalar per-trial
     * path). Routes the scenario overload through
     * campaign/batch_kernel; shard files stay byte-identical for any
     * batch size. Ignored by the custom-trial-body overload.
     */
    std::uint64_t batch = 0;
};

/**
 * Run one shard of a campaign with a custom trial body. The body sees
 * GLOBAL trial ids (spec.lo .. spec.hi-1) and the same
 * Rng::stream(seed, id) streams as an unsharded run; results are
 * consumed in trial order, so the shard aggregates are bit-identical
 * for any thread count. Shards never stop early — the stop rule is
 * the merging coordinator's call.
 */
ShardResult runAnnualShard(const AnnualTrialFn &trial,
                           const ShardSpec &spec,
                           const ShardOptions &opts = {});

/** Run one shard of the standard scenario campaign. */
ShardResult runAnnualShard(const AnnualCampaignSpec &scenario,
                           const ShardSpec &spec,
                           const ShardOptions &opts = {});

/** Write the self-describing shard aggregate file (schema v1). */
void writeShardJson(std::ostream &os, const ShardResult &shard);

/**
 * Parse a shard aggregate file. Returns nullopt (with a reason in
 * @p error) on schema mismatch or malformed input rather than
 * asserting, so a coordinator can reject foreign files gracefully.
 */
std::optional<ShardResult> readShardJson(const std::string &text,
                                         std::string *error = nullptr);

/** readShardJson over the contents of @p path. */
std::optional<ShardResult> readShardFile(const std::string &path,
                                         std::string *error = nullptr);

/** The campaign early-stop rule, as AnnualCampaignOptions. */
struct EarlyStopRule
{
    std::uint64_t minTrials = 64;
    double ciRelTol = 0.0;
    double ciAbsTolMin = 0.0;
    double ciZ = 1.96;

    bool
    enabled() const
    {
        return ciRelTol > 0.0 || ciAbsTolMin > 0.0;
    }
};

/** Where the merged in-order prefix satisfies the stop rule. */
struct EarlyStopDecision
{
    /** True when some evaluated prefix satisfied the rule. */
    bool fired = false;
    /** Trials a coordinator would have kept (prefix length). */
    std::uint64_t stopTrial = 0;
    /** CI half-width and mean at the stop point. */
    double halfWidth = 0.0;
    double mean = 0.0;
};

/**
 * Replay the early-stop rule over the merged in-order prefix of
 * @p shards (which must be sorted, contiguous from trial 0). The rule
 * is evaluated at every recorded checkpoint boundary; with
 * checkpointEvery == 1 this is exactly the single-machine rule, and
 * the decision is bit-identical for any sharding of the same campaign
 * whose checkpoint boundaries align.
 */
EarlyStopDecision evaluateEarlyStop(const std::vector<ShardResult> &shards,
                                    const EarlyStopRule &rule);

/** Merged aggregates of a complete campaign. */
struct MergedCampaign
{
    std::uint64_t seed = 0;
    /** Campaign size N = sum of shard widths. */
    std::uint64_t trials = 0;
    std::uint64_t shardCount = 0;

    /** @name Merged per-metric aggregates */
    ///@{
    MergingMetric downtimeMin;
    MergingMetric lossesPerYear;
    MergingMetric meanPerf;
    MergingMetric batteryKwh;
    MergingMetric worstGapMin;
    ///@}

    std::uint64_t lossFreeTrials = 0;
    /** Loss-free fraction with its Wilson interval. */
    BinomialCi lossFree;

    /** Key-wise sum of every shard's observability counters. */
    std::map<std::string, std::uint64_t> counters;

    /** Bucket-wise sum of every shard's observability histograms. */
    std::map<std::string, obs::HistogramSnapshot> histograms;

    /** Exact merge of every shard's incident forensics rollup. */
    obs::IncidentAggregate incidents;

    /** Stop-rule replay (all-zero when no rule was supplied). */
    EarlyStopDecision earlyStop;
};

/**
 * Merge shard results into campaign aggregates. Shards are sorted by
 * trial range and validated: same seed, same campaign size, and
 * exactly contiguous coverage of [0, campaignTrials) — gaps, overlaps
 * and foreign shards yield nullopt with a reason in @p error. When
 * @p rule is non-null, the early-stop replay runs over the merged
 * prefix (see evaluateEarlyStop).
 */
std::optional<MergedCampaign>
mergeShards(std::vector<ShardResult> shards,
            const EarlyStopRule *rule = nullptr,
            std::string *error = nullptr);

/** JSON export of the merged campaign (one object). */
void writeMergedJson(std::ostream &os, const MergedCampaign &m);

} // namespace bpsim

#endif // BPSIM_CAMPAIGN_SHARD_HH
