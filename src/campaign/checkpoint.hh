/**
 * @file
 * Serializable campaign checkpoints for incremental trial reuse.
 *
 * A CampaignCheckpoint freezes the *exact* sequential aggregation
 * state of an annual campaign at a trial boundary K: the raw Welford
 * accumulators, the P² marker arrays, the t-digest internals
 * (centroids AND the unflushed buffer, verbatim — flushing would
 * change the future clustering trajectory), plus the campaign's obs
 * deltas (counters, histogram buckets, incident aggregate). Resuming
 * from it and running trials [K, M) yields a summary — and serialized
 * JSON — bit-identical to a fresh M-trial run, for any batch size and
 * thread count on either side of the boundary. That invariant is what
 * lets the what-if server answer an M-trial query by extending a
 * cached K-trial campaign instead of recomputing it from scratch (see
 * docs/SERVICE.md "Incremental trial reuse").
 *
 * The JSON codec is defensive end to end: checkpoints are read back
 * from disk caches that may be truncated, bit-flipped, or written by
 * another build, so readCheckpointJson() validates every member and
 * returns nullopt instead of asserting. A checkpoint also embeds the
 * producing buildId(); loaders treat a foreign build as a miss, since
 * floating-point trajectories are only promised bit-stable within one
 * binary.
 */

#ifndef BPSIM_CAMPAIGN_CHECKPOINT_HH
#define BPSIM_CAMPAIGN_CHECKPOINT_HH

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>

#include "campaign/annual_campaign.hh"
#include "obs/histogram.hh"
#include "obs/incident.hh"

namespace bpsim
{

/** Schema stamp of the checkpoint JSON document. */
constexpr const char *kCheckpointSchemaName = "bpsim.campaign.checkpoint";
constexpr int kCheckpointSchemaVersion = 1;

/**
 * The exact state of an annual campaign after its first
 * summary.trials trials, plus the obs activity those trials produced.
 */
struct CampaignCheckpoint
{
    /**
     * Sequential aggregation state (trials, planned, seed,
     * stoppedEarly, the five per-metric aggregates, lossFreeTrials).
     * The derived members — lossFree interval, wall-clock — are not
     * part of the checkpointed state; finalize recomputes them.
     */
    AnnualCampaignSummary summary;

    /** @name Obs deltas attributable to trials [0, summary.trials)
     * Counter increments, histogram bucket counts, and the incident
     * aggregate recorded while those trials ran. All three are
     * mergeable, so a checkpoint's deltas plus an extension's deltas
     * equal a fresh full run's — the property the incremental tests
     * pin. Empty when observability was off.
     */
    ///@{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, obs::HistogramSnapshot> histograms;
    obs::IncidentAggregate incidents;
    ///@}

    /** buildId() of the producing binary. */
    std::string build;
};

/** What one resumable campaign execution produced. */
struct ResumableOutcome
{
    /** The full campaign aggregate (identical to a fresh run). */
    AnnualCampaignSummary summary;
    /** State at the new boundary, ready to extend again or persist. */
    CampaignCheckpoint checkpoint;
    /** Trials actually simulated by this call (0 on a pure replay). */
    std::uint64_t executedTrials = 0;
};

/**
 * Run the scenario campaign — fresh when @p from is null, otherwise
 * extending the checkpointed state through trials
 * [from->summary.trials, opts.maxTrials) — and capture the obs deltas
 * of the whole logical campaign into the returned checkpoint (this
 * run's deltas merged with @p from's). Must not run concurrently with
 * other obs-recording work: the delta bracket snapshots the global
 * registry, exactly like shard execution (the what-if server already
 * serializes campaigns for the same reason).
 */
ResumableOutcome runResumableCampaign(const AnnualCampaignSpec &spec,
                                      const AnnualCampaignOptions &opts,
                                      const CampaignCheckpoint *from = nullptr);

/** Emit one checkpoint as a schema-stamped JSON document. */
void writeCheckpointJson(std::ostream &os, const CampaignCheckpoint &c);

/**
 * Parse a checkpoint document. Returns nullopt — with a reason in
 * @p error when wired — on anything malformed: wrong schema or
 * version, missing or mistyped members, non-finite or out-of-range
 * state. Never asserts on untrusted input.
 */
std::optional<CampaignCheckpoint>
readCheckpointJson(const std::string &text, std::string *error = nullptr);

} // namespace bpsim

#endif // BPSIM_CAMPAIGN_CHECKPOINT_HH
