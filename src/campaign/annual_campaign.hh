/**
 * @file
 * Year-scale Monte Carlo campaigns: fan independent simulated years
 * (scenario × per-trial seed) across the work-stealing pool, with
 * online aggregation (Welford moments, P50/P95/P99 sketches, Wilson
 * interval on the loss-free-year fraction), an optional
 * confidence-interval early-stop rule, progress callbacks, and
 * JSON/CSV export.
 *
 * The trial/seed model: trial t draws its randomness from
 * `Rng::stream(seed, t)` — a pure function of (campaign seed, trial
 * id) — and builds its own Simulator/PowerHierarchy/Cluster, so no
 * mutable state crosses threads and the aggregated results are
 * bit-identical for any thread count (see docs/CAMPAIGN.md).
 */

#ifndef BPSIM_CAMPAIGN_ANNUAL_CAMPAIGN_HH
#define BPSIM_CAMPAIGN_ANNUAL_CAMPAIGN_HH

#include <functional>
#include <ostream>

#include "campaign/online_stats.hh"
#include "campaign/runner.hh"
#include "core/annual.hh"

namespace bpsim
{

/** The scenario one annual campaign holds fixed across its trials. */
struct AnnualCampaignSpec
{
    WorkloadProfile profile;
    int nServers = 8;
    TechniqueSpec technique;
    BackupConfigSpec config;
};

/** Campaign sizing, seeding, and early-stop knobs. */
struct AnnualCampaignOptions
{
    /** Trial budget (upper bound when early stop is enabled). */
    std::uint64_t maxTrials = 200;
    /** Campaign seed; trial t uses Rng::stream(seed, t). */
    std::uint64_t seed = 1;
    /** Worker threads (0 = shared hardware-sized pool). */
    int threads = 0;

    /**
     * @name Early stop
     * After at least minTrials, stop once the normal-approximation CI
     * half-width of E[downtime min/yr] is <= max(ciAbsTolMin,
     * ciRelTol * |mean|). Disabled while both tolerances are 0. The
     * rule is evaluated on the in-order trial prefix, so the stopping
     * point is identical for every thread count.
     */
    ///@{
    std::uint64_t minTrials = 64;
    double ciRelTol = 0.0;
    double ciAbsTolMin = 0.0;
    double ciZ = 1.96;
    ///@}

    /** Progress callback cadence in trials (0 = no callbacks). */
    std::uint64_t progressEvery = 0;
    std::function<void(const CampaignProgress &)> progress;

    /**
     * Trials per batched-kernel lane batch (0 = scalar per-trial
     * path). Any nonzero batch routes scenario campaigns through
     * campaign/batch_kernel; results are bit-identical to the scalar
     * path for every batch size and thread count, so this is purely a
     * throughput knob. Ignored by the custom-trial-body overload.
     */
    std::uint64_t batch = 0;
};

/** Aggregates of one annual campaign. */
struct AnnualCampaignSummary
{
    /** Trials aggregated (== stop index + 1 under early stop). */
    std::uint64_t trials = 0;
    /** Trial budget the campaign was launched with. */
    std::uint64_t planned = 0;
    /** Campaign seed (provenance: trial t used Rng::stream(seed, t)). */
    std::uint64_t seed = 0;
    /** True when the CI rule stopped the campaign early. */
    bool stoppedEarly = false;

    /** @name Per-metric streaming statistics (in trial order) */
    ///@{
    MetricStats downtimeMin;
    MetricStats lossesPerYear;
    MetricStats meanPerf;
    MetricStats batteryKwh;
    MetricStats worstGapMin;
    ///@}

    /** Years with zero abrupt power-loss events. */
    std::uint64_t lossFreeTrials = 0;
    /** Loss-free fraction with its Wilson interval. */
    BinomialCi lossFree;

    /** @name Wall-clock throughput (not part of the deterministic state) */
    ///@{
    double wallSeconds = 0.0;
    double trialsPerSec = 0.0;
    ///@}
};

/**
 * A custom trial body: simulate year @p trial_id using only @p rng
 * for randomness and return its result. Must not touch shared
 * mutable state.
 */
using AnnualTrialFn =
    std::function<AnnualResult(std::uint64_t trial_id, Rng &rng)>;

/** Run a campaign with a custom per-trial body. */
AnnualCampaignSummary runAnnualCampaign(const AnnualTrialFn &trial,
                                        const AnnualCampaignOptions &opts);

/**
 * Run the standard campaign: each trial draws a Figure 1 outage trace
 * for one year and runs it against the spec's cluster, backup
 * configuration, and standing technique.
 */
AnnualCampaignSummary runAnnualCampaign(const AnnualCampaignSpec &spec,
                                        const AnnualCampaignOptions &opts);

/**
 * Extend a finished campaign: resume the standard scenario campaign
 * from the exact aggregation state of a previous run and execute only
 * trials [from.trials, opts.maxTrials).
 *
 * Contract: @p from must come from the same (spec, seed, batch-or-not
 * irrelevant) with identical early-stop options and
 * from.trials <= opts.maxTrials. Each trial is a pure function of
 * (seed, trial id) and aggregation is strictly in trial order, so the
 * returned summary — including the early-stop trajectory — is
 * bit-identical to a fresh opts.maxTrials-trial run, for any batch
 * size and thread count on either side of the boundary (see
 * campaign/checkpoint.hh and tests/service/incremental_test.cc).
 *
 * Early-stop boundary semantics: before running anything the CI rule
 * is re-evaluated on the restored state, because a cached run whose
 * budget was exactly its stopping point records stoppedEarly == false
 * (the stop is masked at the budget boundary); a longer fresh run
 * would stop right there. If @p from had already stopped early, or the
 * rule holds at the boundary, no trials run and the summary is the
 * replayed fresh-run outcome (planned rewritten to opts.maxTrials).
 */
AnnualCampaignSummary resumeAnnualCampaign(const AnnualCampaignSpec &spec,
                                           const AnnualCampaignOptions &opts,
                                           const AnnualCampaignSummary &from);

/** Export knobs for writeCampaignJson(). */
struct CampaignJsonOptions
{
    /**
     * Emit the wall-clock fields (wall_seconds, trials_per_sec).
     * Disable for deterministic exports: without them the document is
     * a pure function of (spec, seed, trial count, buildId), which is
     * what lets the what-if server cache responses and still promise
     * byte-identical replies across runs (see docs/SERVICE.md).
     */
    bool includeTiming = true;
};

/** JSON export (one object; campaign + per-metric stats). */
void writeCampaignJson(std::ostream &os, const AnnualCampaignSummary &s,
                       const CampaignJsonOptions &opts = {});

/** CSV export: one `metric,count,mean,...` row per metric. */
void writeCampaignCsv(std::ostream &os, const AnnualCampaignSummary &s);

/** Emit one metric as a JSON object member (used by bench exports). */
class JsonWriter;
void writeMetricJson(JsonWriter &w, const std::string &name,
                     const MetricStats &m);

} // namespace bpsim

#endif // BPSIM_CAMPAIGN_ANNUAL_CAMPAIGN_HH
