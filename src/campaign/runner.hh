/**
 * @file
 * Deterministic parallel Monte Carlo campaign runner.
 *
 * A campaign is `trials` independent trials, each identified by a
 * dense trial id in [0, trials). The runner fans trials out across a
 * work-stealing thread pool and funnels the results through a reorder
 * buffer so the consumer sees them in strict trial-id order — which
 * makes every aggregate (Welford moments, P² sketches, early-stop
 * decisions, progress sequences) bit-identical for any thread count
 * and any scheduling, provided each trial is a pure function of its
 * id (derive per-trial randomness as `Rng::stream(seed, id)`, never
 * from shared state).
 *
 * Early stop: the consumer returns false to stop the campaign. The
 * decision is evaluated on the in-order prefix only, so it too is
 * deterministic; trials that other workers completed speculatively
 * beyond the stop index are discarded.
 */

#ifndef BPSIM_CAMPAIGN_RUNNER_HH
#define BPSIM_CAMPAIGN_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "campaign/thread_pool.hh"

namespace bpsim
{

/** Snapshot handed to progress callbacks (in trial order). */
struct CampaignProgress
{
    /** Trials aggregated so far. */
    std::uint64_t consumed = 0;
    /** Planned campaign size. */
    std::uint64_t total = 0;
    /** True when the early-stop rule has fired. */
    bool stopped = false;
};

/** Execution knobs common to every campaign. */
struct CampaignOptions
{
    /**
     * Worker threads: 0 uses the process-wide shared pool (sized to
     * the hardware); any other value runs on a dedicated pool of that
     * size. Results are identical either way.
     */
    int threads = 0;
    /** Invoke `progress` every this many consumed trials (0 = off). */
    std::uint64_t progressEvery = 0;
    /** Serialized, in-order progress callback. */
    std::function<void(const CampaignProgress &)> progress;
};

/** What a campaign actually executed. */
struct CampaignOutcome
{
    /** Trials aggregated (the in-order prefix length). */
    std::uint64_t consumed = 0;
    /** True when the consumer stopped the campaign before the end. */
    bool stoppedEarly = false;
};

/**
 * Run a campaign of @p trials trials. @p trial maps a trial id to its
 * result and runs concurrently on the pool; it must not touch shared
 * mutable state (build one Simulator/PowerHierarchy/Cluster per call).
 * @p consume is called exactly once per aggregated trial, in strict
 * id order, serialized; returning false stops the campaign.
 */
template <typename Result>
CampaignOutcome
runCampaign(std::uint64_t trials,
            const std::function<Result(std::uint64_t)> &trial,
            const std::function<bool(std::uint64_t, Result &&)> &consume,
            const CampaignOptions &opts = {})
{
    CampaignOutcome out;
    if (trials == 0)
        return out;

    std::mutex m;                          // guards buffer + next
    std::map<std::uint64_t, Result> buffer; // finished, not yet consumed
    std::uint64_t next = 0;                // next id to consume
    std::atomic<bool> stop{false};

    auto deliver = [&](std::uint64_t id, Result &&r) {
        std::lock_guard<std::mutex> lk(m);
        if (stop.load(std::memory_order_relaxed))
            return; // speculative trial beyond the stop index
        buffer.emplace(id, std::move(r));
        for (auto it = buffer.find(next); it != buffer.end();
             it = buffer.find(next)) {
            Result ready = std::move(it->second);
            buffer.erase(it);
            const std::uint64_t ready_id = next++;
            const bool more = consume(ready_id, std::move(ready));
            if (!more)
                stop.store(true, std::memory_order_relaxed);
            if (opts.progress && opts.progressEvery != 0 &&
                (ready_id + 1 == trials || !more ||
                 (ready_id + 1) % opts.progressEvery == 0)) {
                opts.progress({ready_id + 1, trials, !more});
            }
            if (!more)
                break;
        }
    };

    const std::function<void(std::uint64_t)> body =
        [&](std::uint64_t id) { deliver(id, trial(id)); };
    const std::function<bool()> cancelled = [&] {
        return stop.load(std::memory_order_relaxed);
    };

    if (opts.threads == 0) {
        WorkStealingPool::shared().parallelFor(trials, body, cancelled);
    } else {
        WorkStealingPool pool(opts.threads);
        pool.parallelFor(trials, body, cancelled);
    }

    out.consumed = next;
    out.stoppedEarly = stop.load() && next < trials;
    return out;
}

/**
 * Parallel map: out[i] = fn(i) for i in [0, n), preserving order.
 * For deterministic fan-out of *non-stochastic* work (e.g. evaluating
 * technique candidates); results land by index, so the output is
 * independent of scheduling.
 */
template <typename Result>
std::vector<Result>
parallelMap(std::uint64_t n, const std::function<Result(std::uint64_t)> &fn,
            int threads = 0)
{
    std::vector<Result> out(n);
    const std::function<void(std::uint64_t)> body =
        [&](std::uint64_t i) { out[i] = fn(i); };
    if (threads == 0) {
        WorkStealingPool::shared().parallelFor(n, body);
    } else {
        WorkStealingPool pool(threads);
        pool.parallelFor(n, body);
    }
    return out;
}

} // namespace bpsim

#endif // BPSIM_CAMPAIGN_RUNNER_HH
