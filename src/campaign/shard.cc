#include "campaign/shard.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "campaign/batch_kernel.hh"
#include "campaign/json.hh"
#include "campaign/runner.hh"
#include "obs/obs.hh"
#include "outage/trace.hh"
#include "sim/logging.hh"

namespace bpsim
{

namespace
{

constexpr Time kYear = 365LL * 24 * kHour;

/** Set @p error (when wired) and return false: validation helper. */
bool
failMerge(std::string *error, std::string why)
{
    if (error)
        *error = std::move(why);
    return false;
}

/**
 * Emit the optional "histograms" member: name -> sparse bucket map.
 * Omitted entirely when empty, so files from uninstrumented runs stay
 * byte-identical to plain schema v1 (the counters-sidecar contract).
 */
void
writeHistogramsObject(
    JsonWriter &w,
    const std::map<std::string, obs::HistogramSnapshot> &histograms)
{
    if (histograms.empty())
        return;
    w.key("histograms").beginObject();
    for (const auto &[name, h] : histograms) {
        w.key(name).beginObject();
        w.key("buckets").beginObject();
        for (const auto &[i, c] : h.buckets)
            w.field(std::to_string(i), c);
        w.endObject();
        w.endObject();
    }
    w.endObject();
}

/**
 * Aggregate one trial into the shard, in local-trial order; identical
 * between the scalar and batched drivers by construction.
 */
void
aggregateShardTrial(ShardResult &out, const ShardOptions &opts,
                    std::uint64_t local, std::uint64_t width,
                    const AnnualResult &r)
{
    out.downtimeMin.add(r.downtimeMin);
    out.lossesPerYear.add(static_cast<double>(r.losses));
    out.meanPerf.add(r.meanPerf);
    out.batteryKwh.add(r.batteryKwh);
    out.worstGapMin.add(r.worstGapMin);
    // Per-trial distribution metrics (consume runs in trial
    // order, so the bucket counts are thread-count invariant).
    BPSIM_OBS_HISTOGRAM_RECORD("campaign.trial_downtime_min",
                               r.downtimeMin);
    BPSIM_OBS_HISTOGRAM_RECORD("campaign.trial_worst_gap_min",
                               r.worstGapMin);
    if (r.losses == 0)
        ++out.lossFreeTrials;
    ++out.trials;
    const bool last = local + 1 == width;
    if (last || (opts.checkpointEvery != 0 &&
                 (local + 1) % opts.checkpointEvery == 0)) {
        out.checkpoints.push_back(
            {out.trials, out.downtimeMin.sum(), out.downtimeMin.sumSq()});
    }
}

/**
 * Shared bracket around both shard drivers: obs counter/histogram
 * deltas, the trace bookmark for the incident fold, provenance, and
 * wall-clock — everything a shard file carries besides the trial
 * aggregates that @p run produces.
 */
template <typename RunFn>
ShardResult
runShardWithBrackets(const ShardSpec &spec, RunFn &&run)
{
    BPSIM_ASSERT(spec.hi > spec.lo && spec.hi <= spec.campaignTrials,
                 "shard range [%llu, %llu) invalid for a %llu-trial "
                 "campaign",
                 static_cast<unsigned long long>(spec.lo),
                 static_cast<unsigned long long>(spec.hi),
                 static_cast<unsigned long long>(spec.campaignTrials));
    const auto t0 = std::chrono::steady_clock::now();
    const auto counters_before = obs::Registry::global().counterSnapshot();
    const auto histograms_before =
        obs::Registry::global().histogramSnapshot();
    // Bookmark (not drain) the trace: the incident engine folds this
    // shard's events below while leaving them in place for the
    // caller's own drain()-based export.
    const auto trace_mark = obs::TraceSink::instance().mark();

    ShardResult out;
    out.spec = spec;
    out.build = buildId();
    run(out);

    out.counters = obs::subtractCounters(
        obs::Registry::global().counterSnapshot(), counters_before);
    out.histograms = obs::subtractHistograms(
        obs::Registry::global().histogramSnapshot(), histograms_before);
    if (obs::enabled())
        out.incidents =
            obs::buildIncidentReport(
                obs::TraceSink::instance().eventsSince(trace_mark))
                .aggregate;
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - t0;
    out.wallSeconds = wall.count();
    return out;
}

} // namespace

ShardSpec
shardOf(std::uint64_t seed, std::uint64_t trials, std::uint64_t index,
        std::uint64_t count)
{
    BPSIM_ASSERT(count >= 1 && index < count,
                 "shard %llu of %llu is not a valid partition slot",
                 static_cast<unsigned long long>(index),
                 static_cast<unsigned long long>(count));
    BPSIM_ASSERT(trials >= 1, "cannot shard an empty campaign");
    const std::uint64_t base = trials / count;
    const std::uint64_t extra = trials % count;
    ShardSpec spec;
    spec.seed = seed;
    spec.campaignTrials = trials;
    spec.shardIndex = index;
    spec.shardCount = count;
    // The first `extra` shards take base+1 trials.
    spec.lo = index * base + std::min(index, extra);
    spec.hi = spec.lo + base + (index < extra ? 1 : 0);
    return spec;
}

void
MergingMetric::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_.add(x);
    sumSq_.add(x * x);
    digest_.add(x);
}

void
MergingMetric::merge(const MergingMetric &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    n_ += other.n_;
    sum_.merge(other.sum_);
    sumSq_.merge(other.sumSq_);
    digest_.merge(other.digest_);
}

double
MergingMetric::mean() const
{
    return n_ ? sum_.value() / static_cast<double>(n_) : 0.0;
}

double
MergingMetric::variance() const
{
    if (n_ < 2)
        return 0.0;
    const auto n = static_cast<double>(n_);
    const double s = sum_.value();
    return std::max(0.0, (sumSq_.value() - s * s / n) / n);
}

double
MergingMetric::stddev() const
{
    return std::sqrt(variance());
}

double
MergingMetric::meanCiHalfWidth(double z) const
{
    if (n_ < 2)
        return 0.0;
    return z * stddev() / std::sqrt(static_cast<double>(n_));
}

void
MergingMetric::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("count", n_);
    w.field("min", min());
    w.field("max", max());
    w.field("mean", mean()); // derived; readers ignore it
    w.key("sum");
    sum_.writeJson(w);
    w.key("sum_sq");
    sumSq_.writeJson(w);
    w.key("tdigest");
    digest_.writeJson(w);
    w.endObject();
}

MergingMetric
MergingMetric::fromJson(const JsonValue &v)
{
    MergingMetric m;
    m.n_ = v.at("count").asUint();
    m.min_ = v.at("min").asDouble();
    m.max_ = v.at("max").asDouble();
    m.sum_ = ExactSum::fromJson(v.at("sum"));
    m.sumSq_ = ExactSum::fromJson(v.at("sum_sq"));
    m.digest_ = TDigest::fromJson(v.at("tdigest"));
    return m;
}

ShardResult
runAnnualShard(const AnnualTrialFn &trial, const ShardSpec &spec,
               const ShardOptions &opts)
{
    return runShardWithBrackets(spec, [&](ShardResult &out) {
        const std::uint64_t width = spec.width();

        const std::function<AnnualResult(std::uint64_t)> body =
            [&](std::uint64_t local) {
                const std::uint64_t id = spec.lo + local;
                // Tag every trace event with the GLOBAL trial id:
                // (trial, seq) is the thread-count-invariant trace
                // sort key.
                const obs::TrialScope trace_scope(id);
                Rng rng = Rng::stream(spec.seed, id);
                return trial(id, rng);
            };
        const std::function<bool(std::uint64_t, AnnualResult &&)>
            consume = [&](std::uint64_t local, AnnualResult &&r) {
                aggregateShardTrial(out, opts, local, width, r);
                return true; // shards never stop early
            };

        CampaignOptions copts;
        copts.threads = opts.threads;
        runCampaign<AnnualResult>(width, body, consume, copts);
    });
}

namespace
{

/**
 * Batched shard driver: lane batches across the pool, unpacked through
 * the same local-trial-order aggregation (including the checkpoint
 * cadence), so shard files are byte-identical to the scalar driver's
 * for any (batch, threads).
 */
ShardResult
runBatchedShard(const AnnualCampaignSpec &scenario, const ShardSpec &spec,
                const ShardOptions &opts)
{
    return runShardWithBrackets(spec, [&](ShardResult &out) {
        const std::uint64_t width = spec.width();
        const BatchAnnualKernel kernel(scenario.profile,
                                       scenario.nServers,
                                       scenario.technique,
                                       scenario.config);
        const std::uint64_t batch = opts.batch;
        const std::uint64_t chunks = (width + batch - 1) / batch;

        const std::function<std::vector<AnnualResult>(std::uint64_t)>
            body = [&](std::uint64_t chunk) {
                const std::uint64_t lo = spec.lo + chunk * batch;
                const std::uint64_t hi =
                    std::min(lo + batch, spec.hi);
                std::vector<AnnualResult> results(
                    static_cast<std::size_t>(hi - lo));
                kernel.runBatch(spec.seed, lo, hi, results.data());
                return results;
            };
        const std::function<bool(std::uint64_t,
                                 std::vector<AnnualResult> &&)>
            consume = [&](std::uint64_t chunk,
                          std::vector<AnnualResult> &&results) {
                const std::uint64_t first = chunk * batch;
                for (std::size_t i = 0; i < results.size(); ++i)
                    aggregateShardTrial(out, opts, first + i, width,
                                        results[i]);
                return true; // shards never stop early
            };

        CampaignOptions copts;
        copts.threads = opts.threads;
        runCampaign<std::vector<AnnualResult>>(chunks, body, consume,
                                               copts);
    });
}

} // namespace

ShardResult
runAnnualShard(const AnnualCampaignSpec &scenario, const ShardSpec &spec,
               const ShardOptions &opts)
{
    if (opts.batch != 0)
        return runBatchedShard(scenario, spec, opts);
    const auto gen = OutageTraceGenerator::figure1();
    const AnnualSimulator sim;
    return runAnnualShard(
        [&](std::uint64_t, Rng &rng) {
            const auto events = gen.generate(rng, kYear);
            return sim.runYear(scenario.profile, scenario.nServers,
                               scenario.technique, scenario.config,
                               events);
        },
        spec, opts);
}

void
writeShardJson(std::ostream &os, const ShardResult &shard)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", kShardSchemaName);
    w.field("schema_version", kShardSchemaVersion);
    w.field("seed", shard.spec.seed);
    w.field("campaign_trials", shard.spec.campaignTrials);
    w.field("trial_lo", shard.spec.lo);
    w.field("trial_hi", shard.spec.hi);
    w.field("shard_index", shard.spec.shardIndex);
    w.field("shard_count", shard.spec.shardCount);
    w.field("build", shard.build);
    w.field("wall_seconds", shard.wallSeconds);
    w.field("trials", shard.trials);
    w.field("loss_free_trials", shard.lossFreeTrials);
    w.key("metrics").beginObject();
    const auto metric = [&w](const char *name, const MergingMetric &m) {
        w.key(name);
        m.writeJson(w);
    };
    metric("downtime_min", shard.downtimeMin);
    metric("losses_per_year", shard.lossesPerYear);
    metric("mean_perf", shard.meanPerf);
    metric("battery_kwh", shard.batteryKwh);
    metric("worst_gap_min", shard.worstGapMin);
    w.endObject();
    w.key("checkpoints").beginArray();
    for (const auto &c : shard.checkpoints) {
        w.beginObject();
        w.field("trials", c.trials);
        w.key("sum");
        c.sum.writeJson(w);
        w.key("sum_sq");
        c.sumSq.writeJson(w);
        w.endObject();
    }
    w.endArray();
    // Only present when observability produced counts: shard files
    // from uninstrumented runs stay byte-identical to plain schema v1.
    if (!shard.counters.empty()) {
        w.key("counters").beginObject();
        for (const auto &[name, v] : shard.counters)
            w.field(name, v);
        w.endObject();
    }
    writeHistogramsObject(w, shard.histograms);
    // Same omitted-when-empty contract as counters/histograms.
    if (!shard.incidents.empty()) {
        w.key("incidents");
        shard.incidents.writeJson(w);
    }
    w.endObject();
    os << '\n';
}

std::optional<ShardResult>
readShardJson(const std::string &text, std::string *error)
{
    const auto doc = parseJson(text, error);
    if (!doc)
        return std::nullopt;

    const JsonValue *schema = doc->find("schema");
    if (!schema || schema->kind() != JsonValue::Kind::String ||
        schema->asString() != kShardSchemaName) {
        failMerge(error, "not a campaign shard file (schema mismatch)");
        return std::nullopt;
    }
    const JsonValue *version = doc->find("schema_version");
    if (!version || version->asInt() != kShardSchemaVersion) {
        failMerge(error,
                  formatString("unsupported shard schema version "
                               "(want %d)",
                               kShardSchemaVersion));
        return std::nullopt;
    }

    ShardResult out;
    out.spec.seed = doc->at("seed").asUint();
    out.spec.campaignTrials = doc->at("campaign_trials").asUint();
    out.spec.lo = doc->at("trial_lo").asUint();
    out.spec.hi = doc->at("trial_hi").asUint();
    out.spec.shardIndex = doc->at("shard_index").asUint();
    out.spec.shardCount = doc->at("shard_count").asUint();
    out.build = doc->at("build").asString();
    out.wallSeconds = doc->at("wall_seconds").asDouble();
    out.trials = doc->at("trials").asUint();
    out.lossFreeTrials = doc->at("loss_free_trials").asUint();

    const JsonValue &metrics = doc->at("metrics");
    out.downtimeMin = MergingMetric::fromJson(metrics.at("downtime_min"));
    out.lossesPerYear =
        MergingMetric::fromJson(metrics.at("losses_per_year"));
    out.meanPerf = MergingMetric::fromJson(metrics.at("mean_perf"));
    out.batteryKwh = MergingMetric::fromJson(metrics.at("battery_kwh"));
    out.worstGapMin =
        MergingMetric::fromJson(metrics.at("worst_gap_min"));

    const JsonValue &cps = doc->at("checkpoints");
    for (std::size_t i = 0; i < cps.size(); ++i) {
        const JsonValue &c = cps.item(i);
        out.checkpoints.push_back(
            {c.at("trials").asUint(), ExactSum::fromJson(c.at("sum")),
             ExactSum::fromJson(c.at("sum_sq"))});
    }
    if (const JsonValue *cs = doc->find("counters")) {
        for (std::size_t i = 0; i < cs->size(); ++i) {
            const auto &[name, v] = cs->member(i);
            out.counters[name] = v.asUint();
        }
    }
    if (const JsonValue *hs = doc->find("histograms")) {
        for (std::size_t i = 0; i < hs->size(); ++i) {
            const auto &[name, h] = hs->member(i);
            obs::HistogramSnapshot snap;
            const JsonValue &buckets = h.at("buckets");
            for (std::size_t j = 0; j < buckets.size(); ++j) {
                const auto &[idx, c] = buckets.member(j);
                snap.buckets[static_cast<std::uint32_t>(
                    std::stoul(idx))] = c.asUint();
            }
            out.histograms[name] = std::move(snap);
        }
    }
    // Pre-forensics shard files have no "incidents" member; they
    // parse (and merge) with an empty aggregate.
    if (const JsonValue *inc = doc->find("incidents"))
        out.incidents = obs::IncidentAggregate::fromJson(*inc);
    return out;
}

std::optional<ShardResult>
readShardFile(const std::string &path, std::string *error)
{
    std::ifstream is(path);
    if (!is) {
        failMerge(error, "cannot open " + path);
        return std::nullopt;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    std::string err;
    auto out = readShardJson(ss.str(), &err);
    if (!out)
        failMerge(error, path + ": " + err);
    return out;
}

EarlyStopDecision
evaluateEarlyStop(const std::vector<ShardResult> &shards,
                  const EarlyStopRule &rule)
{
    EarlyStopDecision out;
    if (!rule.enabled())
        return out;

    // Exact running prefix over fully merged earlier shards.
    std::uint64_t prefix_n = 0;
    ExactSum prefix_sum, prefix_sq;
    for (const auto &s : shards) {
        for (const auto &c : s.checkpoints) {
            const std::uint64_t t = prefix_n + c.trials;
            if (t < rule.minTrials)
                continue;
            ExactSum sum = prefix_sum;
            sum.merge(c.sum);
            ExactSum sq = prefix_sq;
            sq.merge(c.sumSq);
            const auto n = static_cast<double>(t);
            const double sv = sum.value();
            const double mean = sv / n;
            const double var =
                t < 2 ? 0.0
                      : std::max(0.0, (sq.value() - sv * sv / n) / n);
            const double hw = rule.ciZ * std::sqrt(var / n);
            const double tol = std::max(rule.ciAbsTolMin,
                                        rule.ciRelTol * std::abs(mean));
            if (hw <= tol) {
                out.fired = true;
                out.stopTrial = t;
                out.halfWidth = hw;
                out.mean = mean;
                return out;
            }
        }
        prefix_n += s.trials;
        prefix_sum.merge(s.downtimeMin.sum());
        prefix_sq.merge(s.downtimeMin.sumSq());
    }
    return out;
}

std::optional<MergedCampaign>
mergeShards(std::vector<ShardResult> shards, const EarlyStopRule *rule,
            std::string *error)
{
    if (shards.empty()) {
        failMerge(error, "no shards to merge");
        return std::nullopt;
    }
    std::sort(shards.begin(), shards.end(),
              [](const ShardResult &a, const ShardResult &b) {
                  return a.spec.lo < b.spec.lo;
              });

    const std::uint64_t seed = shards.front().spec.seed;
    const std::uint64_t total = shards.front().spec.campaignTrials;
    std::uint64_t next = 0;
    for (const auto &s : shards) {
        if (s.spec.seed != seed) {
            failMerge(error,
                      formatString("seed mismatch: shard [%llu, %llu) "
                                   "has seed %llu, expected %llu",
                                   static_cast<unsigned long long>(
                                       s.spec.lo),
                                   static_cast<unsigned long long>(
                                       s.spec.hi),
                                   static_cast<unsigned long long>(
                                       s.spec.seed),
                                   static_cast<unsigned long long>(
                                       seed)));
            return std::nullopt;
        }
        if (s.spec.campaignTrials != total) {
            failMerge(error, "campaign size mismatch between shards");
            return std::nullopt;
        }
        if (s.spec.lo != next || s.spec.hi <= s.spec.lo) {
            failMerge(error,
                      formatString("shard ranges are not contiguous at "
                                   "trial %llu (next shard covers "
                                   "[%llu, %llu))",
                                   static_cast<unsigned long long>(next),
                                   static_cast<unsigned long long>(
                                       s.spec.lo),
                                   static_cast<unsigned long long>(
                                       s.spec.hi)));
            return std::nullopt;
        }
        if (s.trials != s.spec.width() ||
            s.downtimeMin.count() != s.trials) {
            failMerge(error,
                      formatString("shard [%llu, %llu) is incomplete",
                                   static_cast<unsigned long long>(
                                       s.spec.lo),
                                   static_cast<unsigned long long>(
                                       s.spec.hi)));
            return std::nullopt;
        }
        next = s.spec.hi;
    }
    if (next != total) {
        failMerge(error,
                  formatString("shards cover only [0, %llu) of a "
                               "%llu-trial campaign",
                               static_cast<unsigned long long>(next),
                               static_cast<unsigned long long>(total)));
        return std::nullopt;
    }

    MergedCampaign m;
    m.seed = seed;
    m.trials = total;
    m.shardCount = shards.size();
    for (const auto &s : shards) {
        m.downtimeMin.merge(s.downtimeMin);
        m.lossesPerYear.merge(s.lossesPerYear);
        m.meanPerf.merge(s.meanPerf);
        m.batteryKwh.merge(s.batteryKwh);
        m.worstGapMin.merge(s.worstGapMin);
        m.lossFreeTrials += s.lossFreeTrials;
        obs::mergeCounters(m.counters, s.counters);
        obs::mergeHistograms(m.histograms, s.histograms);
        m.incidents.merge(s.incidents);
    }
    m.lossFree = wilsonInterval(m.lossFreeTrials, m.trials,
                                rule ? rule->ciZ : 1.96);
    if (rule)
        m.earlyStop = evaluateEarlyStop(shards, *rule);
    return m;
}

void
writeMergedJson(std::ostream &os, const MergedCampaign &m)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "bpsim.campaign.merged");
    w.field("schema_version", kShardSchemaVersion);
    w.field("build", buildId());
    w.field("seed", m.seed);
    w.field("trials", m.trials);
    w.field("shard_count", m.shardCount);
    const auto metric = [&w](const char *name, const MergingMetric &x) {
        w.key(name).beginObject();
        w.field("count", x.count());
        w.field("mean", x.mean());
        w.field("stddev", x.stddev());
        w.field("min", x.min());
        w.field("max", x.max());
        w.field("p50", x.p50());
        w.field("p95", x.p95());
        w.field("p99", x.p99());
        w.endObject();
    };
    metric("downtime_min", m.downtimeMin);
    metric("losses_per_year", m.lossesPerYear);
    metric("mean_perf", m.meanPerf);
    metric("battery_kwh", m.batteryKwh);
    metric("worst_gap_min", m.worstGapMin);
    w.key("loss_free").beginObject();
    w.field("trials", m.lossFreeTrials);
    w.field("fraction", m.lossFree.fraction);
    w.field("ci_lo", m.lossFree.lo);
    w.field("ci_hi", m.lossFree.hi);
    w.endObject();
    if (!m.counters.empty()) {
        w.key("counters").beginObject();
        for (const auto &[name, v] : m.counters)
            w.field(name, v);
        w.endObject();
    }
    writeHistogramsObject(w, m.histograms);
    if (!m.incidents.empty()) {
        w.key("incidents");
        m.incidents.writeJson(w);
    }
    w.key("early_stop").beginObject();
    w.field("fired", m.earlyStop.fired);
    w.field("stop_trial", m.earlyStop.stopTrial);
    w.field("half_width", m.earlyStop.halfWidth);
    w.field("mean", m.earlyStop.mean);
    w.endObject();
    w.endObject();
    os << '\n';
}

} // namespace bpsim
