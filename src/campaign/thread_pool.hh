/**
 * @file
 * A work-stealing pool of persistent worker threads executing
 * parallel-for jobs over dense index ranges [0, n).
 *
 * Each worker owns a deque of index ranges: it pops work from the
 * front of its own deque (splitting ranges as it goes so thieves
 * always find the larger back half) and steals from the back of a
 * victim's deque when its own runs dry. Jobs are coarse-grained
 * simulation trials, so the deques are mutex-guarded rather than
 * lock-free — contention is negligible next to the per-item work and
 * the implementation stays obviously race-free under TSan.
 *
 * The pool makes no ordering promises; callers that need
 * deterministic aggregation must re-order results themselves (see
 * campaign/runner.hh, which buffers results and consumes them in
 * strict index order precisely so that campaign statistics are
 * bit-identical for any thread count).
 */

#ifndef BPSIM_CAMPAIGN_THREAD_POOL_HH
#define BPSIM_CAMPAIGN_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bpsim
{

/** Persistent work-stealing thread pool for parallel-for jobs. */
class WorkStealingPool
{
  public:
    /** Spawn @p threads workers; 0 means hardwareThreads(). */
    explicit WorkStealingPool(int threads = 0);
    ~WorkStealingPool();

    WorkStealingPool(const WorkStealingPool &) = delete;
    WorkStealingPool &operator=(const WorkStealingPool &) = delete;

    /** Number of worker threads. */
    int threadCount() const { return static_cast<int>(workers.size()); }

    /** Process-wide pool, sized to the hardware, created on first use. */
    static WorkStealingPool &shared();

    /** Worker count used for `threads == 0` (>= 1). */
    static int hardwareThreads();

    /**
     * Run fn(i) for every i in [0, n), blocking until every item has
     * either run or been discarded. When @p cancelled is provided it
     * is polled between items; once it returns true the remaining
     * items are discarded without running. Each item runs at most
     * once, on exactly one worker.
     *
     * Calls from within a worker of this pool (or while another job
     * is in flight) degrade to a serial inline loop, so nesting can
     * never deadlock.
     */
    void parallelFor(std::uint64_t n,
                     const std::function<void(std::uint64_t)> &fn,
                     const std::function<bool()> &cancelled = {});

  private:
    /** Half-open index range [begin, end). */
    struct Range
    {
        std::uint64_t begin;
        std::uint64_t end;
    };

    /** One worker's deque of pending ranges. */
    struct Slot
    {
        std::mutex m;
        std::deque<Range> dq;
    };

    /** One in-flight parallelFor call. */
    struct Job
    {
        const std::function<void(std::uint64_t)> *fn = nullptr;
        const std::function<bool()> *cancelled = nullptr;
        /** Items not yet run/discarded; guarded by done_m. */
        std::uint64_t remaining = 0;
        /** Workers currently inside runJob; guarded by the pool's job_m. */
        int active = 0;
        std::mutex done_m;
        std::condition_variable done_cv;
    };

    void workerLoop(std::size_t self);
    void runJob(std::size_t self, Job *j);
    bool popLocal(std::size_t self, Range &out);
    bool steal(std::size_t self, Range &out);
    void finishItems(Job *j, std::uint64_t count);

    std::vector<std::unique_ptr<Slot>> slots;
    std::vector<std::thread> workers;

    /** Serializes parallelFor submissions. */
    std::mutex submit_m;

    std::mutex job_m;
    std::condition_variable job_cv;
    Job *job = nullptr;      // guarded by job_m
    std::uint64_t epoch = 0; // guarded by job_m
    bool shutdown = false;   // guarded by job_m
};

} // namespace bpsim

#endif // BPSIM_CAMPAIGN_THREAD_POOL_HH
