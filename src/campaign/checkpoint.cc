#include "campaign/checkpoint.hh"

#include <cmath>
#include <utility>

#include "campaign/json.hh"
#include "obs/obs.hh"
#include "sim/logging.hh"

namespace bpsim
{

namespace
{

/** Set @p error (when wired) and return nullopt: validation helper. */
std::optional<CampaignCheckpoint>
failRead(std::string *error, std::string why)
{
    if (error)
        *error = std::move(why);
    return std::nullopt;
}

/** Integral JSON number (the only shape asUint accepts safely). */
bool
isIntegral(const JsonValue *v)
{
    return v && v->kind() == JsonValue::Kind::Number &&
           v->asDouble() >= 0.0 &&
           v->asDouble() == std::floor(v->asDouble());
}

bool
getUint(const JsonValue &obj, const char *key, std::uint64_t &out)
{
    const JsonValue *v = obj.find(key);
    if (!isIntegral(v))
        return false;
    out = v->asUint();
    return true;
}

/** Any finite or non-finite double — the raw state slots are doubles
 *  produced by our own writer, but a flipped bit can make them NaN;
 *  the caller decides which slots must be finite. */
bool
getDouble(const JsonValue &obj, const char *key, double &out)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->kind() != JsonValue::Kind::Number)
        return false;
    out = v->asDouble();
    return true;
}

void
writeP2Json(JsonWriter &w, const P2Quantile &s)
{
    const auto arr = [&w](const char *key, const double *a) {
        w.key(key).beginArray();
        for (int i = 0; i < 5; ++i)
            w.value(a[i]);
        w.endArray();
    };
    w.beginObject();
    arr("q", s.markerHeights());
    arr("n", s.markerPositions());
    arr("np", s.desiredPositions());
    w.endObject();
}

std::optional<P2Quantile>
readP2Json(const JsonValue &v, double probability, std::uint64_t count)
{
    if (v.kind() != JsonValue::Kind::Object)
        return std::nullopt;
    double q[5], n[5], np[5];
    const auto arr = [&v](const char *key, double (&into)[5]) {
        const JsonValue *a = v.find(key);
        if (!a || a->kind() != JsonValue::Kind::Array || a->size() != 5)
            return false;
        for (std::size_t i = 0; i < 5; ++i) {
            const JsonValue &x = a->item(i);
            if (x.kind() != JsonValue::Kind::Number ||
                !std::isfinite(x.asDouble()))
                return false;
            into[i] = x.asDouble();
        }
        return true;
    };
    if (!arr("q", q) || !arr("n", n) || !arr("np", np))
        return std::nullopt;
    return P2Quantile::restore(probability, q, n, np, count);
}

void
writeMetricStateJson(JsonWriter &w, const std::string &name,
                     const MetricStats &m)
{
    w.key(name).beginObject();
    w.key("summary").beginObject();
    w.field("count", static_cast<std::uint64_t>(m.summary().count()));
    w.field("mean", m.summary().mean());
    w.field("m2", m.summary().m2Raw());
    w.field("min", m.summary().minRaw());
    w.field("max", m.summary().maxRaw());
    w.field("sum", m.summary().sum());
    w.endObject();
    w.key("p50");
    writeP2Json(w, m.sketch50());
    w.key("p95");
    writeP2Json(w, m.sketch95());
    w.key("p99");
    writeP2Json(w, m.sketch99());
    w.key("tdigest");
    m.digest().writeStateJson(w);
    w.endObject();
}

std::optional<MetricStats>
readMetricStateJson(const JsonValue &parent, const char *name)
{
    const JsonValue *v = parent.find(name);
    if (!v || v->kind() != JsonValue::Kind::Object)
        return std::nullopt;
    const JsonValue *s = v->find("summary");
    if (!s || s->kind() != JsonValue::Kind::Object)
        return std::nullopt;
    std::uint64_t count = 0;
    double mean = 0, m2 = 0, min = 0, max = 0, sum = 0;
    if (!getUint(*s, "count", count) || !getDouble(*s, "mean", mean) ||
        !getDouble(*s, "m2", m2) || !getDouble(*s, "min", min) ||
        !getDouble(*s, "max", max) || !getDouble(*s, "sum", sum))
        return std::nullopt;
    if (!std::isfinite(mean) || !std::isfinite(m2) || m2 < 0.0 ||
        !std::isfinite(min) || !std::isfinite(max) ||
        !std::isfinite(sum))
        return std::nullopt;

    const JsonValue *p50 = v->find("p50");
    const JsonValue *p95 = v->find("p95");
    const JsonValue *p99 = v->find("p99");
    const JsonValue *td = v->find("tdigest");
    if (!p50 || !p95 || !p99 || !td)
        return std::nullopt;
    // Every sketch saw the same stream, so the summary count is the
    // sketch count too (one field instead of four in the document).
    auto q50 = readP2Json(*p50, 0.50, count);
    auto q95 = readP2Json(*p95, 0.95, count);
    auto q99 = readP2Json(*p99, 0.99, count);
    auto digest = TDigest::fromStateJson(*td);
    if (!q50 || !q95 || !q99 || !digest)
        return std::nullopt;
    return MetricStats::restore(
        SummaryStats::restore(static_cast<std::size_t>(count), mean, m2,
                              min, max, sum),
        *q50, *q95, *q99, std::move(*digest));
}

/** Structural pre-check for IncidentAggregate::fromJson (which
 *  asserts): every member it dereferences must exist with the right
 *  shape before it runs on untrusted bytes. */
bool
validIncidentJson(const JsonValue &v)
{
    if (v.kind() != JsonValue::Kind::Object)
        return false;
    for (const char *key :
         {"trials", "incidents", "truncated", "loss_incidents"}) {
        if (!isIntegral(v.find(key)))
            return false;
    }
    const JsonValue *reported = v.find("reported_min");
    if (!reported || !ExactSum::validJson(*reported))
        return false;
    const JsonValue *causes = v.find("by_cause");
    if (!causes || causes->kind() != JsonValue::Kind::Object)
        return false;
    for (std::size_t c = 0; c < obs::kRootCauseCount; ++c) {
        const JsonValue *e = causes->find(
            obs::rootCauseName(static_cast<obs::RootCause>(c)));
        if (!e || e->kind() != JsonValue::Kind::Object)
            return false;
        if (!isIntegral(e->find("primary")))
            return false;
        const JsonValue *min = e->find("min");
        if (!min || !ExactSum::validJson(*min))
            return false;
    }
    return true;
}

/** Digits-only bucket-index parse (no exceptions, no sign, no 0x). */
bool
parseBucketIndex(const std::string &s, std::uint32_t &out)
{
    if (s.empty() || s.size() > 9)
        return false;
    std::uint64_t v = 0;
    for (const char c : s) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = static_cast<std::uint32_t>(v);
    return true;
}

} // namespace

void
writeCheckpointJson(std::ostream &os, const CampaignCheckpoint &c)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", kCheckpointSchemaName);
    w.field("schema_version", kCheckpointSchemaVersion);
    w.field("build", c.build);
    w.field("seed", c.summary.seed);
    w.field("trials", c.summary.trials);
    w.field("planned", c.summary.planned);
    w.field("stopped_early", c.summary.stoppedEarly);
    w.field("loss_free_trials", c.summary.lossFreeTrials);
    w.key("metrics").beginObject();
    writeMetricStateJson(w, "downtime_min", c.summary.downtimeMin);
    writeMetricStateJson(w, "losses_per_year", c.summary.lossesPerYear);
    writeMetricStateJson(w, "mean_perf", c.summary.meanPerf);
    writeMetricStateJson(w, "battery_kwh", c.summary.batteryKwh);
    writeMetricStateJson(w, "worst_gap_min", c.summary.worstGapMin);
    w.endObject();
    // Omitted-when-empty, like shard files: checkpoints from
    // uninstrumented runs carry no obs members at all.
    if (!c.counters.empty()) {
        w.key("counters").beginObject();
        for (const auto &[name, v] : c.counters)
            w.field(name, v);
        w.endObject();
    }
    if (!c.histograms.empty()) {
        w.key("histograms").beginObject();
        for (const auto &[name, h] : c.histograms) {
            w.key(name).beginObject();
            w.key("buckets").beginObject();
            for (const auto &[i, cnt] : h.buckets)
                w.field(std::to_string(i), cnt);
            w.endObject();
            w.endObject();
        }
        w.endObject();
    }
    if (!c.incidents.empty()) {
        w.key("incidents");
        c.incidents.writeJson(w);
    }
    w.endObject();
    os << '\n';
}

std::optional<CampaignCheckpoint>
readCheckpointJson(const std::string &text, std::string *error)
{
    const auto doc = parseJson(text, error);
    if (!doc)
        return std::nullopt;

    const JsonValue *schema = doc->find("schema");
    if (!schema || schema->kind() != JsonValue::Kind::String ||
        schema->asString() != kCheckpointSchemaName)
        return failRead(error,
                        "not a campaign checkpoint (schema mismatch)");
    const JsonValue *version = doc->find("schema_version");
    if (!isIntegral(version) ||
        version->asInt() != kCheckpointSchemaVersion)
        return failRead(error,
                        formatString("unsupported checkpoint schema "
                                     "version (want %d)",
                                     kCheckpointSchemaVersion));
    const JsonValue *build = doc->find("build");
    if (!build || build->kind() != JsonValue::Kind::String)
        return failRead(error, "missing build identifier");

    CampaignCheckpoint out;
    out.build = build->asString();
    if (!getUint(*doc, "seed", out.summary.seed) ||
        !getUint(*doc, "trials", out.summary.trials) ||
        !getUint(*doc, "planned", out.summary.planned) ||
        !getUint(*doc, "loss_free_trials", out.summary.lossFreeTrials))
        return failRead(error, "malformed campaign counts");
    const JsonValue *stopped = doc->find("stopped_early");
    if (!stopped || stopped->kind() != JsonValue::Kind::Bool)
        return failRead(error, "malformed stopped_early");
    out.summary.stoppedEarly = stopped->asBool();
    if (out.summary.trials == 0 ||
        out.summary.lossFreeTrials > out.summary.trials)
        return failRead(error, "inconsistent trial counts");

    const JsonValue *metrics = doc->find("metrics");
    if (!metrics || metrics->kind() != JsonValue::Kind::Object)
        return failRead(error, "missing metrics object");
    const auto metric = [&](const char *name, MetricStats &into) {
        auto m = readMetricStateJson(*metrics, name);
        if (m)
            into = std::move(*m);
        return m.has_value();
    };
    if (!metric("downtime_min", out.summary.downtimeMin) ||
        !metric("losses_per_year", out.summary.lossesPerYear) ||
        !metric("mean_perf", out.summary.meanPerf) ||
        !metric("battery_kwh", out.summary.batteryKwh) ||
        !metric("worst_gap_min", out.summary.worstGapMin))
        return failRead(error, "malformed metric state");
    if (out.summary.downtimeMin.summary().count() != out.summary.trials)
        return failRead(error, "metric count does not match trials");

    if (const JsonValue *cs = doc->find("counters")) {
        if (cs->kind() != JsonValue::Kind::Object)
            return failRead(error, "malformed counters");
        for (std::size_t i = 0; i < cs->size(); ++i) {
            const auto &[name, v] = cs->member(i);
            if (!isIntegral(&v))
                return failRead(error, "malformed counter " + name);
            out.counters[name] = v.asUint();
        }
    }
    if (const JsonValue *hs = doc->find("histograms")) {
        if (hs->kind() != JsonValue::Kind::Object)
            return failRead(error, "malformed histograms");
        for (std::size_t i = 0; i < hs->size(); ++i) {
            const auto &[name, h] = hs->member(i);
            const JsonValue *buckets =
                h.kind() == JsonValue::Kind::Object ? h.find("buckets")
                                                    : nullptr;
            if (!buckets || buckets->kind() != JsonValue::Kind::Object)
                return failRead(error, "malformed histogram " + name);
            obs::HistogramSnapshot snap;
            for (std::size_t j = 0; j < buckets->size(); ++j) {
                const auto &[idx, cnt] = buckets->member(j);
                std::uint32_t bucket = 0;
                if (!parseBucketIndex(idx, bucket) || !isIntegral(&cnt))
                    return failRead(error,
                                    "malformed histogram " + name);
                snap.buckets[bucket] = cnt.asUint();
            }
            out.histograms[name] = std::move(snap);
        }
    }
    if (const JsonValue *inc = doc->find("incidents")) {
        if (!validIncidentJson(*inc))
            return failRead(error, "malformed incident aggregate");
        out.incidents = obs::IncidentAggregate::fromJson(*inc);
    }
    return out;
}

ResumableOutcome
runResumableCampaign(const AnnualCampaignSpec &spec,
                     const AnnualCampaignOptions &opts,
                     const CampaignCheckpoint *from)
{
    // Same obs bracket as shard execution: counter/histogram deltas by
    // snapshot subtraction, incidents by folding the trace tail — so
    // the checkpoint carries exactly what this campaign recorded.
    const auto counters_before = obs::Registry::global().counterSnapshot();
    const auto histograms_before =
        obs::Registry::global().histogramSnapshot();
    const auto trace_mark = obs::TraceSink::instance().mark();

    ResumableOutcome out;
    if (from) {
        out.summary = resumeAnnualCampaign(spec, opts, from->summary);
        out.executedTrials = out.summary.trials - from->summary.trials;
    } else {
        out.summary = runAnnualCampaign(spec, opts);
        out.executedTrials = out.summary.trials;
    }

    out.checkpoint.summary = out.summary;
    out.checkpoint.build = buildId();
    out.checkpoint.counters = obs::subtractCounters(
        obs::Registry::global().counterSnapshot(), counters_before);
    out.checkpoint.histograms = obs::subtractHistograms(
        obs::Registry::global().histogramSnapshot(), histograms_before);
    if (obs::enabled())
        out.checkpoint.incidents =
            obs::buildIncidentReport(
                obs::TraceSink::instance().eventsSince(trace_mark))
                .aggregate;
    if (from) {
        obs::mergeCounters(out.checkpoint.counters, from->counters);
        obs::mergeHistograms(out.checkpoint.histograms, from->histograms);
        out.checkpoint.incidents.merge(from->incidents);
    }
    return out;
}

} // namespace bpsim
