#include "campaign/annual_campaign.hh"

#include <chrono>
#include <cmath>

#include "campaign/json.hh"
#include "obs/obs.hh"
#include "outage/trace.hh"
#include "sim/logging.hh"

namespace bpsim
{

namespace
{

constexpr Time kYear = 365LL * 24 * kHour;

} // namespace

AnnualCampaignSummary
runAnnualCampaign(const AnnualTrialFn &trial,
                  const AnnualCampaignOptions &opts)
{
    BPSIM_ASSERT(opts.maxTrials >= 1, "campaign needs at least one trial");
    const auto t0 = std::chrono::steady_clock::now();
    const auto run_timer = obs::scope("campaign.run");

    AnnualCampaignSummary out;
    out.planned = opts.maxTrials;
    out.seed = opts.seed;
    const bool early_stop = opts.ciRelTol > 0.0 || opts.ciAbsTolMin > 0.0;

    const std::function<AnnualResult(std::uint64_t)> body =
        [&](std::uint64_t id) {
            const obs::TrialScope trace_scope(id);
            Rng rng = Rng::stream(opts.seed, id);
            return trial(id, rng);
        };
    const std::function<bool(std::uint64_t, AnnualResult &&)> consume =
        [&](std::uint64_t, AnnualResult &&r) {
            out.downtimeMin.add(r.downtimeMin);
            out.lossesPerYear.add(static_cast<double>(r.losses));
            out.meanPerf.add(r.meanPerf);
            out.batteryKwh.add(r.batteryKwh);
            out.worstGapMin.add(r.worstGapMin);
            // Per-trial distribution metrics (consume runs in trial
            // order, so the bucket counts are thread-count invariant).
            BPSIM_OBS_HISTOGRAM_RECORD("campaign.trial_downtime_min",
                                       r.downtimeMin);
            BPSIM_OBS_HISTOGRAM_RECORD("campaign.trial_worst_gap_min",
                                       r.worstGapMin);
            if (r.losses == 0)
                ++out.lossFreeTrials;
            ++out.trials;
            if (early_stop && out.trials >= opts.minTrials) {
                const double hw =
                    out.downtimeMin.meanCiHalfWidth(opts.ciZ);
                const double tol = std::max(
                    opts.ciAbsTolMin,
                    opts.ciRelTol *
                        std::abs(out.downtimeMin.summary().mean()));
                if (hw <= tol)
                    return false;
            }
            return true;
        };

    CampaignOptions copts;
    copts.threads = opts.threads;
    copts.progressEvery = opts.progressEvery;
    copts.progress = opts.progress;
    const CampaignOutcome oc =
        runCampaign<AnnualResult>(opts.maxTrials, body, consume, copts);
    out.stoppedEarly = oc.stoppedEarly;
    out.lossFree = wilsonInterval(out.lossFreeTrials, out.trials, opts.ciZ);

    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - t0;
    out.wallSeconds = wall.count();
    out.trialsPerSec = out.wallSeconds > 0.0
                           ? static_cast<double>(out.trials) /
                                 out.wallSeconds
                           : 0.0;
    if (BPSIM_OBS_ON()) {
        obs::Registry::global().counter("campaign.trials").add(out.trials);
        obs::Registry::global()
            .gauge("campaign.trials_per_sec")
            .set(out.trialsPerSec);
    }
    return out;
}

AnnualCampaignSummary
runAnnualCampaign(const AnnualCampaignSpec &spec,
                  const AnnualCampaignOptions &opts)
{
    const auto gen = OutageTraceGenerator::figure1();
    const AnnualSimulator sim;
    return runAnnualCampaign(
        [&](std::uint64_t, Rng &rng) {
            const auto events = gen.generate(rng, kYear);
            return sim.runYear(spec.profile, spec.nServers, spec.technique,
                               spec.config, events);
        },
        opts);
}

void
writeMetricJson(JsonWriter &w, const std::string &name,
                const MetricStats &m)
{
    w.key(name).beginObject();
    w.field("count", static_cast<std::uint64_t>(m.summary().count()));
    w.field("mean", m.summary().mean());
    w.field("stddev", m.summary().stddev());
    w.field("min", m.summary().min());
    w.field("max", m.summary().max());
    w.field("p50", m.p50());
    w.field("p95", m.p95());
    w.field("p99", m.p99());
    // Digest-based quantiles (mergeable across shards, unlike P²).
    w.field("td_p50", m.quantile(0.50));
    w.field("td_p95", m.quantile(0.95));
    w.field("td_p99", m.quantile(0.99));
    w.endObject();
}

void
writeCampaignJson(std::ostream &os, const AnnualCampaignSummary &s,
                  const CampaignJsonOptions &opts)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("build", buildId());
    w.field("seed", s.seed);
    w.field("trials", s.trials);
    w.field("planned", s.planned);
    w.field("stopped_early", s.stoppedEarly);
    if (opts.includeTiming) {
        w.field("wall_seconds", s.wallSeconds);
        w.field("trials_per_sec", s.trialsPerSec);
    }
    writeMetricJson(w, "downtime_min", s.downtimeMin);
    writeMetricJson(w, "losses_per_year", s.lossesPerYear);
    writeMetricJson(w, "mean_perf", s.meanPerf);
    writeMetricJson(w, "battery_kwh", s.batteryKwh);
    writeMetricJson(w, "worst_gap_min", s.worstGapMin);
    w.key("loss_free").beginObject();
    w.field("trials", s.lossFreeTrials);
    w.field("fraction", s.lossFree.fraction);
    w.field("ci_lo", s.lossFree.lo);
    w.field("ci_hi", s.lossFree.hi);
    w.endObject();
    w.endObject();
    os << '\n';
}

void
writeCampaignCsv(std::ostream &os, const AnnualCampaignSummary &s)
{
    os << "metric,count,mean,stddev,min,max,p50,p95,p99\n";
    const auto row = [&os](const char *name, const MetricStats &m) {
        os << name << ',' << m.summary().count() << ','
           << m.summary().mean() << ',' << m.summary().stddev() << ','
           << m.summary().min() << ',' << m.summary().max() << ','
           << m.p50() << ',' << m.p95() << ',' << m.p99() << '\n';
    };
    row("downtime_min", s.downtimeMin);
    row("losses_per_year", s.lossesPerYear);
    row("mean_perf", s.meanPerf);
    row("battery_kwh", s.batteryKwh);
    row("worst_gap_min", s.worstGapMin);
    os << "loss_free_fraction," << s.trials << ',' << s.lossFree.fraction
       << ",,," << s.lossFree.lo << ',' << s.lossFree.hi << ",,\n";
}

} // namespace bpsim
