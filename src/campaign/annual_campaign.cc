#include "campaign/annual_campaign.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "campaign/batch_kernel.hh"
#include "campaign/json.hh"
#include "obs/obs.hh"
#include "outage/trace.hh"
#include "sim/logging.hh"

namespace bpsim
{

namespace
{

constexpr Time kYear = 365LL * 24 * kHour;

/**
 * The CI stop rule on the current in-order aggregation state. Shared
 * between aggregateTrial and resumeAnnualCampaign's boundary
 * re-evaluation so the two can never diverge.
 */
bool
earlyStopSatisfied(const AnnualCampaignSummary &out,
                   const AnnualCampaignOptions &opts)
{
    const double hw = out.downtimeMin.meanCiHalfWidth(opts.ciZ);
    const double tol =
        std::max(opts.ciAbsTolMin,
                 opts.ciRelTol * std::abs(out.downtimeMin.summary().mean()));
    return hw <= tol;
}

/**
 * Aggregate one trial into the summary, in trial order; returns false
 * when the early-stop rule fires. Shared verbatim between the scalar
 * and batched drivers so their aggregates cannot diverge.
 */
bool
aggregateTrial(AnnualCampaignSummary &out,
               const AnnualCampaignOptions &opts, bool early_stop,
               const AnnualResult &r)
{
    out.downtimeMin.add(r.downtimeMin);
    out.lossesPerYear.add(static_cast<double>(r.losses));
    out.meanPerf.add(r.meanPerf);
    out.batteryKwh.add(r.batteryKwh);
    out.worstGapMin.add(r.worstGapMin);
    // Per-trial distribution metrics (consume runs in trial
    // order, so the bucket counts are thread-count invariant).
    BPSIM_OBS_HISTOGRAM_RECORD("campaign.trial_downtime_min",
                               r.downtimeMin);
    BPSIM_OBS_HISTOGRAM_RECORD("campaign.trial_worst_gap_min",
                               r.worstGapMin);
    if (r.losses == 0)
        ++out.lossFreeTrials;
    ++out.trials;
    if (early_stop && out.trials >= opts.minTrials &&
        earlyStopSatisfied(out, opts))
        return false;
    return true;
}

/**
 * Wall-clock + loss-free tail shared by every campaign driver.
 * @p executed is the number of trials this *run* simulated — equal to
 * out.trials for the fresh drivers, but only the extension width for
 * resumeAnnualCampaign, so the obs "campaign.trials" counter stays
 * additive: a checkpointed run plus its extension reports exactly what
 * one fresh run of the full budget would.
 */
void
finalizeCampaign(AnnualCampaignSummary &out,
                 const AnnualCampaignOptions &opts,
                 std::chrono::steady_clock::time_point t0,
                 std::uint64_t executed)
{
    out.lossFree = wilsonInterval(out.lossFreeTrials, out.trials, opts.ciZ);
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - t0;
    out.wallSeconds = wall.count();
    out.trialsPerSec = out.wallSeconds > 0.0
                           ? static_cast<double>(executed) /
                                 out.wallSeconds
                           : 0.0;
    if (BPSIM_OBS_ON()) {
        obs::Registry::global().counter("campaign.trials").add(executed);
        obs::Registry::global()
            .gauge("campaign.trials_per_sec")
            .set(out.trialsPerSec);
    }
}

/**
 * Batched scenario driver: fans lane batches (not single trials)
 * across the pool, then unpacks each chunk through the same in-order
 * per-trial aggregation — including the early-stop rule and the
 * progress cadence evaluated on *global* trial ids — so the summary
 * is bit-identical to the scalar driver for any (batch, threads).
 */
AnnualCampaignSummary
runBatchedCampaign(const AnnualCampaignSpec &spec,
                   const AnnualCampaignOptions &opts)
{
    BPSIM_ASSERT(opts.maxTrials >= 1, "campaign needs at least one trial");
    const auto t0 = std::chrono::steady_clock::now();
    const auto run_timer = obs::scope("campaign.run");

    AnnualCampaignSummary out;
    out.planned = opts.maxTrials;
    out.seed = opts.seed;
    const bool early_stop = opts.ciRelTol > 0.0 || opts.ciAbsTolMin > 0.0;

    const BatchAnnualKernel kernel(spec.profile, spec.nServers,
                                   spec.technique, spec.config);
    const std::uint64_t batch = opts.batch;
    const std::uint64_t chunks = (opts.maxTrials + batch - 1) / batch;
    bool stopped = false;

    const std::function<std::vector<AnnualResult>(std::uint64_t)> body =
        [&](std::uint64_t chunk) {
            const std::uint64_t lo = chunk * batch;
            const std::uint64_t hi =
                std::min(lo + batch, opts.maxTrials);
            std::vector<AnnualResult> results(
                static_cast<std::size_t>(hi - lo));
            kernel.runBatch(opts.seed, lo, hi, results.data());
            return results;
        };
    const std::function<bool(std::uint64_t, std::vector<AnnualResult> &&)>
        consume = [&](std::uint64_t chunk,
                      std::vector<AnnualResult> &&results) {
            const std::uint64_t lo = chunk * batch;
            for (std::size_t i = 0; i < results.size(); ++i) {
                const std::uint64_t id = lo + i;
                const bool more =
                    aggregateTrial(out, opts, early_stop, results[i]);
                if (opts.progress && opts.progressEvery != 0 &&
                    (id + 1 == opts.maxTrials || !more ||
                     (id + 1) % opts.progressEvery == 0)) {
                    opts.progress({id + 1, opts.maxTrials, !more});
                }
                if (!more) {
                    stopped = true;
                    return false;
                }
            }
            return true;
        };

    CampaignOptions copts;
    copts.threads = opts.threads;
    runCampaign<std::vector<AnnualResult>>(chunks, body, consume, copts);
    // The chunk-level outcome can't see a stop on the last trial of
    // the last chunk; recover the scalar semantics from trial counts.
    out.stoppedEarly = stopped && out.trials < opts.maxTrials;
    finalizeCampaign(out, opts, t0, out.trials);
    return out;
}

} // namespace

AnnualCampaignSummary
runAnnualCampaign(const AnnualTrialFn &trial,
                  const AnnualCampaignOptions &opts)
{
    BPSIM_ASSERT(opts.maxTrials >= 1, "campaign needs at least one trial");
    const auto t0 = std::chrono::steady_clock::now();
    const auto run_timer = obs::scope("campaign.run");

    AnnualCampaignSummary out;
    out.planned = opts.maxTrials;
    out.seed = opts.seed;
    const bool early_stop = opts.ciRelTol > 0.0 || opts.ciAbsTolMin > 0.0;

    const std::function<AnnualResult(std::uint64_t)> body =
        [&](std::uint64_t id) {
            const obs::TrialScope trace_scope(id);
            Rng rng = Rng::stream(opts.seed, id);
            return trial(id, rng);
        };
    const std::function<bool(std::uint64_t, AnnualResult &&)> consume =
        [&](std::uint64_t, AnnualResult &&r) {
            return aggregateTrial(out, opts, early_stop, r);
        };

    CampaignOptions copts;
    copts.threads = opts.threads;
    copts.progressEvery = opts.progressEvery;
    copts.progress = opts.progress;
    const CampaignOutcome oc =
        runCampaign<AnnualResult>(opts.maxTrials, body, consume, copts);
    out.stoppedEarly = oc.stoppedEarly;
    finalizeCampaign(out, opts, t0, out.trials);
    return out;
}

AnnualCampaignSummary
runAnnualCampaign(const AnnualCampaignSpec &spec,
                  const AnnualCampaignOptions &opts)
{
    if (opts.batch != 0)
        return runBatchedCampaign(spec, opts);
    const auto gen = OutageTraceGenerator::figure1();
    const AnnualSimulator sim;
    return runAnnualCampaign(
        [&](std::uint64_t, Rng &rng) {
            const auto events = gen.generate(rng, kYear);
            return sim.runYear(spec.profile, spec.nServers, spec.technique,
                               spec.config, events);
        },
        opts);
}

AnnualCampaignSummary
resumeAnnualCampaign(const AnnualCampaignSpec &spec,
                     const AnnualCampaignOptions &opts,
                     const AnnualCampaignSummary &from)
{
    BPSIM_ASSERT(from.trials >= 1, "cannot resume an empty campaign");
    BPSIM_ASSERT(from.trials <= opts.maxTrials,
                 "resume boundary %llu beyond the %llu-trial budget",
                 static_cast<unsigned long long>(from.trials),
                 static_cast<unsigned long long>(opts.maxTrials));
    BPSIM_ASSERT(from.seed == opts.seed,
                 "resume seed %llu does not match campaign seed %llu",
                 static_cast<unsigned long long>(from.seed),
                 static_cast<unsigned long long>(opts.seed));
    const auto t0 = std::chrono::steady_clock::now();
    const auto run_timer = obs::scope("campaign.run");

    AnnualCampaignSummary out = from;
    out.planned = opts.maxTrials;
    const bool early_stop = opts.ciRelTol > 0.0 || opts.ciAbsTolMin > 0.0;
    const std::uint64_t start = from.trials;

    // Replay paths: the cached run already stopped early, or the CI
    // rule holds right at the boundary (a run whose budget equals its
    // stopping point masks the stop: stoppedEarly stays false, so the
    // decision must be re-derived from the restored state), or there
    // is simply nothing left to run. A fresh opts.maxTrials-trial run
    // would aggregate exactly these trials.
    const bool stop_at_boundary =
        from.stoppedEarly ||
        (early_stop && start >= opts.minTrials &&
         earlyStopSatisfied(out, opts));
    if (stop_at_boundary || start == opts.maxTrials) {
        out.stoppedEarly = stop_at_boundary && out.trials < opts.maxTrials;
        finalizeCampaign(out, opts, t0, 0);
        return out;
    }

    bool stopped = false;
    const auto progress = [&](std::uint64_t id, bool more) {
        if (opts.progress && opts.progressEvery != 0 &&
            (id + 1 == opts.maxTrials || !more ||
             (id + 1) % opts.progressEvery == 0))
            opts.progress({id + 1, opts.maxTrials, !more});
    };
    CampaignOptions copts;
    copts.threads = opts.threads;

    if (opts.batch != 0) {
        // Batched extension. Chunk boundaries start at the resume
        // point rather than trial 0 — harmless, because every trial's
        // result is a pure function of (seed, id) regardless of which
        // lane batch computed it, and aggregation stays in id order.
        const BatchAnnualKernel kernel(spec.profile, spec.nServers,
                                       spec.technique, spec.config);
        const std::uint64_t batch = opts.batch;
        const std::uint64_t width = opts.maxTrials - start;
        const std::uint64_t chunks = (width + batch - 1) / batch;

        const std::function<std::vector<AnnualResult>(std::uint64_t)>
            body = [&](std::uint64_t chunk) {
                const std::uint64_t lo = start + chunk * batch;
                const std::uint64_t hi =
                    std::min(lo + batch, opts.maxTrials);
                std::vector<AnnualResult> results(
                    static_cast<std::size_t>(hi - lo));
                kernel.runBatch(opts.seed, lo, hi, results.data());
                return results;
            };
        const std::function<bool(std::uint64_t,
                                 std::vector<AnnualResult> &&)>
            consume = [&](std::uint64_t chunk,
                          std::vector<AnnualResult> &&results) {
                const std::uint64_t lo = start + chunk * batch;
                for (std::size_t i = 0; i < results.size(); ++i) {
                    const std::uint64_t id = lo + i;
                    const bool more =
                        aggregateTrial(out, opts, early_stop, results[i]);
                    progress(id, more);
                    if (!more) {
                        stopped = true;
                        return false;
                    }
                }
                return true;
            };
        runCampaign<std::vector<AnnualResult>>(chunks, body, consume,
                                               copts);
    } else {
        const auto gen = OutageTraceGenerator::figure1();
        const AnnualSimulator sim;
        const std::function<AnnualResult(std::uint64_t)> body =
            [&](std::uint64_t local) {
                const std::uint64_t id = start + local;
                const obs::TrialScope trace_scope(id);
                Rng rng = Rng::stream(opts.seed, id);
                const auto events = gen.generate(rng, kYear);
                return sim.runYear(spec.profile, spec.nServers,
                                   spec.technique, spec.config, events);
            };
        const std::function<bool(std::uint64_t, AnnualResult &&)>
            consume = [&](std::uint64_t local, AnnualResult &&r) {
                const bool more =
                    aggregateTrial(out, opts, early_stop, r);
                progress(start + local, more);
                if (!more)
                    stopped = true;
                return more;
            };
        runCampaign<AnnualResult>(opts.maxTrials - start, body, consume,
                                  copts);
    }
    out.stoppedEarly = stopped && out.trials < opts.maxTrials;
    finalizeCampaign(out, opts, t0, out.trials - start);
    return out;
}

void
writeMetricJson(JsonWriter &w, const std::string &name,
                const MetricStats &m)
{
    w.key(name).beginObject();
    w.field("count", static_cast<std::uint64_t>(m.summary().count()));
    w.field("mean", m.summary().mean());
    w.field("stddev", m.summary().stddev());
    w.field("min", m.summary().min());
    w.field("max", m.summary().max());
    w.field("p50", m.p50());
    w.field("p95", m.p95());
    w.field("p99", m.p99());
    // Digest-based quantiles (mergeable across shards, unlike P²).
    w.field("td_p50", m.quantile(0.50));
    w.field("td_p95", m.quantile(0.95));
    w.field("td_p99", m.quantile(0.99));
    w.endObject();
}

void
writeCampaignJson(std::ostream &os, const AnnualCampaignSummary &s,
                  const CampaignJsonOptions &opts)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("build", buildId());
    w.field("seed", s.seed);
    w.field("trials", s.trials);
    w.field("planned", s.planned);
    w.field("stopped_early", s.stoppedEarly);
    if (opts.includeTiming) {
        w.field("wall_seconds", s.wallSeconds);
        w.field("trials_per_sec", s.trialsPerSec);
    }
    writeMetricJson(w, "downtime_min", s.downtimeMin);
    writeMetricJson(w, "losses_per_year", s.lossesPerYear);
    writeMetricJson(w, "mean_perf", s.meanPerf);
    writeMetricJson(w, "battery_kwh", s.batteryKwh);
    writeMetricJson(w, "worst_gap_min", s.worstGapMin);
    w.key("loss_free").beginObject();
    w.field("trials", s.lossFreeTrials);
    w.field("fraction", s.lossFree.fraction);
    w.field("ci_lo", s.lossFree.lo);
    w.field("ci_hi", s.lossFree.hi);
    w.endObject();
    w.endObject();
    os << '\n';
}

void
writeCampaignCsv(std::ostream &os, const AnnualCampaignSummary &s)
{
    os << "metric,count,mean,stddev,min,max,p50,p95,p99\n";
    const auto row = [&os](const char *name, const MetricStats &m) {
        os << name << ',' << m.summary().count() << ','
           << m.summary().mean() << ',' << m.summary().stddev() << ','
           << m.summary().min() << ',' << m.summary().max() << ','
           << m.p50() << ',' << m.p95() << ',' << m.p99() << '\n';
    };
    row("downtime_min", s.downtimeMin);
    row("losses_per_year", s.lossesPerYear);
    row("mean_perf", s.meanPerf);
    row("battery_kwh", s.batteryKwh);
    row("worst_gap_min", s.worstGapMin);
    os << "loss_free_fraction," << s.trials << ',' << s.lossFree.fraction
       << ",,," << s.lossFree.lo << ',' << s.lossFree.hi << ",,\n";
}

} // namespace bpsim
