/**
 * @file
 * Exact, mergeable accumulation of doubles for distributed campaign
 * aggregates.
 *
 * Floating-point addition is not associative, so a campaign mean
 * computed as "sum of shard sums / n" would depend on how the trial
 * range was partitioned. ExactSum side-steps this by accumulating
 * into a fixed-point superaccumulator (one signed limb per 30 bits of
 * binary exponent, spanning the entire double range): every add() and
 * merge() is exact, so the accumulated value — and therefore the
 * merged campaign mean and CI — is bit-identical for any shard count
 * and any merge order. See docs/CAMPAIGN.md "Sharding".
 */

#ifndef BPSIM_CAMPAIGN_EXACT_SUM_HH
#define BPSIM_CAMPAIGN_EXACT_SUM_HH

#include <array>
#include <cstdint>

namespace bpsim
{

class JsonWriter;
class JsonValue;

/**
 * Exact sum of doubles: add() folds the full 53-bit significand of
 * each finite input into base-2^30 limbs with no rounding, merge()
 * adds accumulators limb-wise, and value() reads the total back out
 * as a double (faithfully rounded, and a pure function of the exact
 * real sum — never of the order values or shards were combined in).
 *
 * Capacity: each limb absorbs ~2^32 adds between normalizations;
 * add() renormalizes automatically long before that bound, so the
 * accumulator is safe for arbitrarily long campaigns.
 */
class ExactSum
{
  public:
    /** Add one finite observation (exactly). */
    void add(double x);

    /** Fold another accumulator in (exactly; commutative). */
    void merge(const ExactSum &other);

    /** The accumulated sum, faithfully rounded to double. */
    double value() const;

    /** True when nothing (or only zeros) has been accumulated. */
    bool zero() const;

    /**
     * Emit as a JSON object `{"sign":s,"lo":j,"limbs":[...]}` in
     * value position: the canonical base-2^30 limbs of |sum| from
     * limb index `lo` upward. Round-trips exactly through
     * ExactSum::fromJson.
     */
    void writeJson(JsonWriter &w) const;

    /** Rebuild from writeJson output (asserts on malformed input). */
    static ExactSum fromJson(const JsonValue &v);

    /**
     * True when @p v is a well-formed writeJson document that
     * fromJson would accept without asserting. Checkpoint readers
     * validate untrusted payloads with this first, so a corrupt file
     * degrades to a cache miss instead of aborting the server.
     */
    static bool validJson(const JsonValue &v);

  private:
    static constexpr int kLimbBits = 30;
    /** Lowest representable bit: 2^-1074 (subnormal ulp). */
    static constexpr int kBias = 1074;
    /** Limbs covering exponents -1074..1024 plus carry headroom. */
    static constexpr int kLimbs = (kBias + 1024 + 53) / kLimbBits + 2;

    /** Carry-propagate into the canonical single-sign form. */
    void normalize();

    /** value = sum_j limb[j] * 2^(j*30 - 1074) */
    std::array<std::int64_t, kLimbs> limb_{};
    /** add()s since the last normalize() (overflow guard). */
    std::uint32_t dirty_ = 0;
};

} // namespace bpsim

#endif // BPSIM_CAMPAIGN_EXACT_SUM_HH
