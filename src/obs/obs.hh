/**
 * @file
 * Umbrella header and instrumentation macros for the observability
 * layer (obs/trace.hh, obs/registry.hh, obs/export.hh).
 *
 * Instrumentation sites in the simulation models go through the
 * macros below so they cost nothing when observability is compiled
 * out and a single relaxed atomic load when it is compiled in but
 * disabled at runtime (the default):
 *
 *  - compile-time gate: configure with -DBPSIM_OBS=OFF (which defines
 *    BPSIM_OBS_ENABLED=0) and every macro expands to a no-op
 *    statement — no branch, no atomic, no strings in the binary;
 *  - runtime gate: obs::setEnabled(true) arms recording; while it is
 *    off, BPSIM_TRACE / BPSIM_OBS_COUNTER_ADD short-circuit on
 *    obs::enabled() before touching any sink or registry state.
 */

#ifndef BPSIM_OBS_OBS_HH
#define BPSIM_OBS_OBS_HH

#include "obs/export.hh"
#include "obs/histogram.hh"
#include "obs/registry.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"

#ifndef BPSIM_OBS_ENABLED
#define BPSIM_OBS_ENABLED 1
#endif

#if BPSIM_OBS_ENABLED

/**
 * The runtime gate as a compile-out-able expression, for guarding
 * instrumentation-only work (e.g. tracking battery SoC crossings)
 * that is more than a single BPSIM_TRACE call. Constant-folds to
 * false when observability is compiled out.
 */
#define BPSIM_OBS_ON() (::bpsim::obs::enabled())

/**
 * Record a trace event; arguments are forwarded to
 * obs::TraceSink::emit(kind, sim_time, name[, detail[, a[, b]]]).
 */
#define BPSIM_TRACE(...)                                                \
    do {                                                                \
        if (::bpsim::obs::enabled())                                    \
            ::bpsim::obs::TraceSink::emit(__VA_ARGS__);                 \
    } while (0)

/**
 * Bump Registry::global().counter(name) by n. The counter reference
 * is resolved once per site (local static), so the steady-state cost
 * is the enabled() check plus one relaxed fetch_add.
 */
#define BPSIM_OBS_COUNTER_ADD(name_, n_)                                \
    do {                                                                \
        if (::bpsim::obs::enabled()) {                                  \
            static ::bpsim::obs::Counter &bpsim_obs_counter_ =          \
                ::bpsim::obs::Registry::global().counter(name_);        \
            bpsim_obs_counter_.add(n_);                                 \
        }                                                               \
    } while (0)

/**
 * Record value v into Registry::global().histogram(name). Same cost
 * model as BPSIM_OBS_COUNTER_ADD: the histogram reference is resolved
 * once per site, so the steady-state cost is the enabled() check plus
 * one relaxed fetch_add on the target bucket.
 */
#define BPSIM_OBS_HISTOGRAM_RECORD(name_, v_)                           \
    do {                                                                \
        if (::bpsim::obs::enabled()) {                                  \
            static ::bpsim::obs::Histogram &bpsim_obs_hist_ =           \
                ::bpsim::obs::Registry::global().histogram(name_);      \
            bpsim_obs_hist_.record(v_);                                 \
        }                                                               \
    } while (0)

#else // !BPSIM_OBS_ENABLED

#define BPSIM_OBS_ON() (false)

#define BPSIM_TRACE(...)                                                \
    do {                                                                \
    } while (0)

#define BPSIM_OBS_COUNTER_ADD(name_, n_)                                \
    do {                                                                \
    } while (0)

#define BPSIM_OBS_HISTOGRAM_RECORD(name_, v_)                           \
    do {                                                                \
    } while (0)

#endif // BPSIM_OBS_ENABLED

#endif // BPSIM_OBS_OBS_HH
