/**
 * @file
 * Named runtime metrics: monotonic counters, last-value gauges and
 * accumulating wall-clock timers, owned by a process-wide Registry
 * and snapshotable to plain maps (and, via obs/export.hh, to JSON
 * alongside build/seed provenance).
 *
 * Counters are plain relaxed atomics, so concurrent trial bodies can
 * bump them without coordination; totals are sums of per-trial
 * contributions and therefore identical for any thread count.
 * Counter snapshots merge by key-wise addition — an associative,
 * commutative operation, which is what lets per-shard counter deltas
 * ride shard aggregate files and recombine in mergeShards() (the
 * `obs`-labeled property tests pin this).
 *
 * References returned by counter()/gauge()/timer() stay valid for the
 * process lifetime (entries are never removed; reset() only zeroes
 * values), so instrumentation sites can cache them in local statics.
 */

#ifndef BPSIM_OBS_REGISTRY_HH
#define BPSIM_OBS_REGISTRY_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/histogram.hh"

namespace bpsim
{
namespace obs
{

/** Monotonic event counter (relaxed atomic; merge = addition). */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return v_.load(std::memory_order_relaxed);
    }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Last-value gauge (e.g. trials_per_sec). */
class Gauge
{
  public:
    void set(double v);
    double value() const;
    void reset();

  private:
    /** Double bits in an atomic word (atomic<double> is not lock-free
     *  everywhere). */
    std::atomic<std::uint64_t> bits_{0};
};

/** Accumulating wall-clock timer (total nanoseconds + entry count). */
class TimerStat
{
  public:
    void add(std::uint64_t ns)
    {
        ns_.fetch_add(ns, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
    }
    double seconds() const
    {
        return static_cast<double>(ns_.load(std::memory_order_relaxed)) *
               1e-9;
    }
    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    void reset();

  private:
    std::atomic<std::uint64_t> ns_{0};
    std::atomic<std::uint64_t> count_{0};
};

/** One timer's snapshot value. */
struct TimerSnapshot
{
    double seconds = 0.0;
    std::uint64_t count = 0;
};

/**
 * Named metric registry. Instrumentation goes through the process-wide
 * global(); free-standing instances exist for hermetic exporter tests
 * (a local registry's content is exactly what the test put there).
 */
class Registry
{
  public:
    Registry() = default;

    static Registry &global();

    /** Find-or-create; the reference is valid forever. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    TimerStat &timer(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** @name Snapshots (sorted by name; stable for exports) */
    ///@{
    std::map<std::string, std::uint64_t> counterSnapshot() const;
    std::map<std::string, double> gaugeSnapshot() const;
    std::map<std::string, TimerSnapshot> timerSnapshot() const;
    std::map<std::string, HistogramSnapshot> histogramSnapshot() const;
    ///@}

    /** Zero every value, keeping registrations (cached refs stay
     *  valid). */
    void reset();

  private:
    mutable std::mutex m_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<TimerStat>> timers_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/**
 * Key-wise counter-map addition: the shard-merge operation.
 * Associative and commutative, so any merge tree over any partition
 * of the same event stream yields identical totals.
 */
void mergeCounters(std::map<std::string, std::uint64_t> &into,
                   const std::map<std::string, std::uint64_t> &from);

/**
 * Key-wise difference `after - before` (keys absent from @p before
 * count from zero; results that would be zero are omitted). Used to
 * capture a shard run's counter delta from the process-wide registry.
 */
std::map<std::string, std::uint64_t>
subtractCounters(const std::map<std::string, std::uint64_t> &after,
                 const std::map<std::string, std::uint64_t> &before);

/**
 * RAII wall-clock timer feeding a Registry TimerStat on destruction.
 * Obtain via obs::scope(); inert when observability is disabled.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(TimerStat *stat);
    ScopedTimer(ScopedTimer &&other) noexcept;
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;
    ScopedTimer &operator=(ScopedTimer &&) = delete;

  private:
    TimerStat *stat_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * Time the enclosing scope into Registry::global().timer(name):
 *
 *     auto t = bpsim::obs::scope("campaign.run");
 *
 * Returns an inert timer while observability is disabled.
 */
ScopedTimer scope(const char *name);

} // namespace obs
} // namespace bpsim

#endif // BPSIM_OBS_REGISTRY_HH
