/**
 * @file
 * Tiered round-robin metrics history: a bounded, in-process
 * time-series store in the netdata lineage — one ring of fixed-width
 * buckets per tier, finer tiers covering a short recent window and
 * coarser tiers covering proportionally longer ones (default
 * 1×/10×/60× the sampling cadence). Every recorded sample feeds every
 * tier directly, and each bucket keeps min/max/sum/count, so a coarse
 * bucket is the *exact* aggregate of the samples its window saw —
 * rollups are never re-derived from already-rolled data and therefore
 * never drift from the raw ring (the tier-reconciliation tests pin
 * this bucket for bucket).
 *
 * The store itself is clock-agnostic: callers stamp samples with any
 * monotonic nanosecond timestamp (the what-if service feeds it from
 * the same injectable clock as the request-observability layer, so
 * tests pin /v1/series response *bytes* with a stepping fake clock).
 *
 * Memory is strictly bounded: each tier ring holds at most
 * `retention / cadence` buckets per series, the series count is
 * capped (samples for new names beyond the cap are counted as
 * dropped, never stored), and stats() reports resident bytes so
 * GET /v1/status can surface the footprint.
 *
 * Concurrency: one mutex guards the whole store. The intended write
 * load is one sampler tick per cadence (a few hundred record() calls
 * per second at most) with concurrent readers on the query path, so
 * contention is negligible and the simple lock keeps the
 * sampler-vs-request hammer test TSan-clean by construction.
 */

#ifndef BPSIM_OBS_HISTORY_HH
#define BPSIM_OBS_HISTORY_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace bpsim
{
namespace obs
{

/** One fixed-width rollup bucket (the tier ring element). */
struct HistoryBucket
{
    /** Bucket window start (ns; window is [start, start + width)). */
    std::uint64_t startNs = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    std::uint64_t count = 0;
};

/** Store shape: cadence, tier widths and bounds. */
struct HistoryConfig
{
    /** Raw-tier bucket width — the sampling cadence (ns). */
    std::uint64_t cadenceNs = 1000000000ull;
    /** Time span the *raw* tier retains (ns); every tier keeps
     *  retention/cadence buckets, so tier k spans multiplier[k]
     *  times this. */
    std::uint64_t retentionNs = 600ull * 1000000000ull;
    /** Bucket-width multipliers, one per tier, ascending; the first
     *  should be 1 (the raw ring). */
    std::vector<std::uint32_t> multipliers = {1, 10, 60};
    /** Hard cap on distinct series; records for new names beyond it
     *  are dropped (and counted). */
    std::size_t maxSeries = 256;
};

/** Point-in-time store statistics (the /v1/status history block). */
struct HistoryStats
{
    /** record() calls accepted into rings. */
    std::uint64_t samples = 0;
    /** Samples dropped because the series cap was hit. */
    std::uint64_t droppedSeries = 0;
    /** Per-tier drops of samples older than the ring head (cannot
     *  happen with a monotonic feed; counted, never merged). */
    std::uint64_t droppedStale = 0;
    /** Buckets overwritten by ring wrap (retention eviction). */
    std::uint64_t evictedBuckets = 0;
    std::size_t series = 0;
    /** Approximate resident bytes (rings + names). */
    std::size_t bytes = 0;

    struct Tier
    {
        std::uint64_t widthNs = 0;
        /** Ring bound (buckets per series). */
        std::size_t capacity = 0;
        /** Live buckets across every series. */
        std::size_t buckets = 0;
    };
    std::vector<Tier> tiers;
};

/** Bounded tiered time-series store (see file comment). */
class HistoryStore
{
  public:
    explicit HistoryStore(HistoryConfig cfg = {});

    const HistoryConfig &config() const { return cfg_; }

    /** Ring bound for tier @p tier (retention / cadence, >= 2). */
    std::size_t tierCapacity(std::size_t tier) const;
    /** Bucket width of tier @p tier (cadence * multiplier). */
    std::uint64_t tierWidthNs(std::size_t tier) const;
    std::size_t tierCount() const { return cfg_.multipliers.size(); }

    /**
     * Record one sample into every tier of @p name's series (creating
     * it unless the series cap is hit). @p tNs is a monotonic
     * nanosecond timestamp; samples older than a ring's newest bucket
     * are dropped for that tier, never merged backwards.
     */
    void record(const std::string &name, std::uint64_t tNs,
                double value);

    /** Every stored series name, sorted. */
    std::vector<std::string> names() const;

    /** Query window + downsampling bound. */
    struct Query
    {
        /** Keep buckets whose window *overlaps* (afterNs, ...]. */
        std::uint64_t afterNs = 0;
        /** Keep buckets starting at or before this (default: all). */
        std::uint64_t beforeNs = ~0ull;
        /** LTTB-downsample to at most this many buckets (0 = all). */
        std::size_t maxPoints = 0;
        /** Force a tier (-1 = auto: the finest tier whose retained
         *  span still covers afterNs; with afterNs == 0, the
         *  coarsest, longest-spanning tier). */
        int tier = -1;
    };

    /** One query answer (tier metadata + the selected buckets). */
    struct Series
    {
        /** Tier the points came from (-1: unknown series name). */
        int tier = -1;
        std::uint64_t widthNs = 0;
        std::size_t capacity = 0;
        /** True when maxPoints forced LTTB downsampling. */
        bool downsampled = false;
        std::vector<HistoryBucket> points;
    };

    /**
     * Buckets of @p name inside the query window, oldest first.
     * Deterministic: a pure function of the recorded samples and the
     * query. Unknown names return an empty Series with tier == -1.
     */
    Series query(const std::string &name, const Query &q) const;

    HistoryStats stats() const;

    /** Drop every series (counters are not reset). */
    void clear();

  private:
    /** Fixed-capacity ring of buckets, oldest at `head`. */
    struct Ring
    {
        std::vector<HistoryBucket> buckets;
        /** Index of the oldest bucket once the ring has wrapped. */
        std::size_t head = 0;
        bool wrapped = false;
    };

    struct SeriesData
    {
        std::vector<Ring> tiers;
    };

    const HistoryBucket &newest(const Ring &r) const;
    std::size_t ringSize(const Ring &r) const;

    HistoryConfig cfg_;
    mutable std::mutex m_;
    std::map<std::string, SeriesData> series_;
    std::uint64_t samples_ = 0;
    std::uint64_t droppedSeries_ = 0;
    std::uint64_t droppedStale_ = 0;
    std::uint64_t evictedBuckets_ = 0;
};

} // namespace obs
} // namespace bpsim

#endif // BPSIM_OBS_HISTORY_HH
