#include "obs/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bpsim
{
namespace obs
{

namespace
{

/** Per-cause accent colors (categorical, color-blind-safe-ish). */
const char *
causeColor(RootCause cause)
{
    switch (cause) {
      case RootCause::UpsExhaustedBeforeDg: return "#b5493b";
      case RootCause::DgStartFailure: return "#d08a2e";
      case RootCause::TechniqueTransitionGap: return "#3d6f9e";
      case RootCause::CapacityShortfall: return "#7b5ca6";
      case RootCause::Unattributed: return "#8c8c8c";
    }
    return "#8c8c8c";
}

const char *
severityColor(Severity severity)
{
    switch (severity) {
      case Severity::Critical: return "#b5493b";
      case Severity::Warning: return "#d08a2e";
      case Severity::Info: return "#6b7680";
    }
    return "#6b7680";
}

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          default: out += c;
        }
    }
    return out;
}

/** Compact human number: %.4g with non-finite clamped. */
std::string
num(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
}

/** Simulated instant as "d12 03:41" (day-of-year, hh:mm). */
std::string
simStamp(Time t)
{
    const auto total_min =
        static_cast<long long>(toMinutes(t));
    const long long day = total_min / (24 * 60);
    const long long hh = (total_min / 60) % 24;
    const long long mm = total_min % 60;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "d%03lld %02lld:%02lld", day, hh,
                  mm);
    return buf;
}

/** Duration as minutes with a sensible unit ("3.2 min", "45 s"). */
std::string
durStamp(Time t)
{
    const double sec = toSeconds(t);
    if (sec < 120.0)
        return num(sec) + " s";
    if (sec < 2.0 * 3600.0)
        return num(sec / 60.0) + " min";
    return num(sec / 3600.0) + " h";
}

void
writeStyles(std::ostream &os)
{
    os << "<style>\n"
          "body{font:14px/1.45 -apple-system,'Segoe UI',Roboto,"
          "sans-serif;color:#24292f;margin:2rem auto;max-width:70rem;"
          "padding:0 1rem;background:#fff}\n"
          "h1{font-size:1.5rem;border-bottom:2px solid #d0d7de;"
          "padding-bottom:.4rem}\n"
          "h2{font-size:1.2rem;margin-top:2.2rem;border-bottom:1px "
          "solid #d0d7de;padding-bottom:.3rem}\n"
          "h3{font-size:1rem;margin-top:1.4rem;color:#57606a}\n"
          "table{border-collapse:collapse;margin:.6rem 0;width:100%}\n"
          "th,td{border:1px solid #d0d7de;padding:.3rem .55rem;"
          "text-align:left;font-variant-numeric:tabular-nums}\n"
          "th{background:#f6f8fa;font-weight:600}\n"
          "td.r,th.r{text-align:right}\n"
          ".prov{color:#57606a;font-size:.85rem}\n"
          ".prov span{margin-right:1.2rem}\n"
          ".tiles{display:flex;flex-wrap:wrap;gap:.8rem;margin:.8rem "
          "0}\n"
          ".tile{border:1px solid #d0d7de;border-radius:6px;padding:"
          ".5rem .9rem;min-width:8rem;background:#f6f8fa}\n"
          ".tile b{display:block;font-size:1.25rem}\n"
          ".tile span{color:#57606a;font-size:.8rem}\n"
          ".bar{display:inline-block;height:.7rem;border-radius:2px;"
          "vertical-align:middle}\n"
          ".sw{display:inline-block;width:.7rem;height:.7rem;"
          "border-radius:2px;margin-right:.35rem;vertical-align:"
          "baseline}\n"
          ".sev{font-weight:600}\n"
          ".ok{color:#2b7a3d;font-weight:600}\n"
          ".lane{margin:.35rem 0}\n"
          ".lane svg{display:block}\n"
          ".foot{margin-top:2.5rem;color:#57606a;font-size:.85rem;"
          "border-top:1px solid #d0d7de;padding-top:.5rem}\n"
          "</style>\n";
}

/** One signal lane as an inline SVG polyline. */
void
writeLane(std::ostream &os, const ReportLane &lane)
{
    constexpr double kW = 640.0, kH = 56.0, kPad = 4.0;
    double lo = 0.0, hi = 1.0;
    if (!lane.points.empty()) {
        lo = hi = lane.points.front().value;
        for (const SeriesPoint &p : lane.points) {
            lo = std::min(lo, p.value);
            hi = std::max(hi, p.value);
        }
    }
    if (hi <= lo)
        hi = lo + 1.0;
    const Time t0 = lane.points.empty() ? 0 : lane.points.front().t;
    const Time t1 =
        lane.points.empty() ? 1 : lane.points.back().t;
    const double span =
        static_cast<double>(t1 > t0 ? t1 - t0 : Time{1});

    os << "<div class=\"lane\"><span class=\"prov\">t"
       << lane.trial << " · " << signalName(lane.signal) << " · ["
       << num(lo) << ", " << num(hi) << "]</span>";
    os << "<svg width=\"" << static_cast<int>(kW) << "\" height=\""
       << static_cast<int>(kH)
       << "\" role=\"img\" aria-label=\""
       << signalName(lane.signal) << "\">";
    os << "<rect x=\"0\" y=\"0\" width=\"" << static_cast<int>(kW)
       << "\" height=\"" << static_cast<int>(kH)
       << "\" fill=\"#f6f8fa\" stroke=\"#d0d7de\"/>";
    if (!lane.points.empty()) {
        os << "<polyline fill=\"none\" stroke=\"#3d6f9e\" "
              "stroke-width=\"1.2\" points=\"";
        char buf[48];
        for (const SeriesPoint &p : lane.points) {
            const double x =
                kPad + (kW - 2 * kPad) *
                           (static_cast<double>(p.t - t0) / span);
            const double y =
                kH - kPad -
                (kH - 2 * kPad) * ((p.value - lo) / (hi - lo));
            std::snprintf(buf, sizeof(buf), "%.1f,%.1f ", x, y);
            os << buf;
        }
        os << "\"/>";
    }
    os << "</svg></div>\n";
}

void
writeAttribution(std::ostream &os, const ReportScenario &sc)
{
    const IncidentAggregate &agg = sc.forensics.aggregate;
    const double total = agg.attributedTotalMin();
    os << "<h3>Downtime attribution</h3>\n";
    os << "<table><tr><th>root cause</th><th class=\"r\">minutes"
          "</th><th class=\"r\">share</th><th class=\"r\">incidents "
          "(primary)</th><th>share of attributed downtime</th></tr>\n";
    for (std::size_t c = 0; c < kRootCauseCount; ++c) {
        const auto cause = static_cast<RootCause>(c);
        const double min = agg.attributedMin(cause);
        const double share = total > 0.0 ? min / total : 0.0;
        os << "<tr><td><span class=\"sw\" style=\"background:"
           << causeColor(cause) << "\"></span>"
           << rootCauseName(cause) << "</td><td class=\"r\">"
           << num(min) << "</td><td class=\"r\">"
           << num(share * 100.0) << "%</td><td class=\"r\">"
           << agg.incidentsByPrimaryCause(cause)
           << "</td><td><span class=\"bar\" style=\"width:"
           << num(std::max(share * 240.0, min > 0.0 ? 2.0 : 0.0))
           << "px;background:" << causeColor(cause)
           << "\"></span></td></tr>\n";
    }
    os << "<tr><th>total attributed</th><th class=\"r\">" << num(total)
       << "</th><th class=\"r\">100%</th><th class=\"r\">"
       << agg.incidents() << "</th><th></th></tr>\n";
    os << "</table>\n";
    os << "<p class=\"prov\">simulator-reported downtime across "
       << agg.trials() << " trials: " << num(agg.reportedMin())
       << " min (residual " << num(agg.reportedMin() - total)
       << " min); " << agg.lossIncidents()
       << " incidents saw a full power loss, "
       << agg.truncatedIncidents()
       << " were still open at a trial boundary.</p>\n";
}

void
writeIncidentTable(std::ostream &os, const ReportScenario &sc,
                   std::size_t max_rows)
{
    os << "<h3>Incident timeline (worst first)</h3>\n";
    std::vector<const Incident *> rows;
    rows.reserve(sc.forensics.incidents.size());
    for (const Incident &inc : sc.forensics.incidents)
        rows.push_back(&inc);
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Incident *x, const Incident *y) {
                         return x->downtimeMin() > y->downtimeMin();
                     });
    os << "<table><tr><th class=\"r\">trial</th><th class=\"r\">id"
          "</th><th>start</th><th class=\"r\">outage</th><th "
          "class=\"r\">dark</th><th class=\"r\">downtime</th><th>"
          "primary cause</th><th class=\"r\">DG starts</th><th>"
          "flags</th></tr>\n";
    std::size_t shown = 0;
    for (const Incident *inc : rows) {
        if (shown++ >= max_rows)
            break;
        const Time outage_len =
            (inc->outageEnd == kTimeNever ? inc->windowEnd
                                          : inc->outageEnd) -
            inc->outageStart;
        std::string flags;
        if (inc->upsDischarged)
            flags += "ups ";
        if (inc->dgCarried)
            flags += "dg-carried ";
        if (inc->backupDepleted)
            flags += "depleted ";
        if (inc->truncated)
            flags += "truncated ";
        if (inc->powerLosses > 0)
            flags += "power-lost ";
        os << "<tr><td class=\"r\">" << inc->trial
           << "</td><td class=\"r\">#" << inc->id << "</td><td>"
           << simStamp(inc->outageStart) << "</td><td class=\"r\">"
           << durStamp(outage_len) << "</td><td class=\"r\">"
           << durStamp(inc->darkTime) << "</td><td class=\"r\">"
           << num(inc->downtimeMin()) << " min</td><td>"
           << "<span class=\"sw\" style=\"background:"
           << causeColor(inc->primaryCause()) << "\"></span>"
           << rootCauseName(inc->primaryCause())
           << "</td><td class=\"r\">" << inc->dgStarts
           << (inc->dgStartFailures > 0
                   ? " (+" + std::to_string(inc->dgStartFailures) +
                         " failed)"
                   : "")
           << "</td><td>" << flags << "</td></tr>\n";
    }
    os << "</table>\n";
    if (rows.size() > shown)
        os << "<p class=\"prov\">… and " << rows.size() - shown
           << " more incidents (see the trace export).</p>\n";
}

void
writeHealth(std::ostream &os, const ReportScenario &sc,
            std::size_t max_rows)
{
    const HealthReport &h = sc.health;
    os << "<h3>Health findings</h3>\n";
    if (h.totalFindings == 0) {
        os << "<p class=\"ok\">All " << healthRules().size()
           << " invariant rules passed.</p>\n";
        return;
    }
    os << "<table><tr><th>severity</th><th>rule</th><th "
          "class=\"r\">trial</th><th>at</th><th>detail</th></tr>\n";
    std::size_t shown = 0;
    for (const HealthFinding &f : h.findings) {
        if (shown++ >= max_rows)
            break;
        os << "<tr><td class=\"sev\" style=\"color:"
           << severityColor(f.severity) << "\">"
           << severityName(f.severity) << "</td><td>"
           << htmlEscape(f.rule) << "</td><td class=\"r\">" << f.trial
           << "</td><td>" << simStamp(f.t) << "</td><td>"
           << htmlEscape(f.message) << "</td></tr>\n";
    }
    os << "</table>\n";
    if (h.totalFindings > shown)
        os << "<p class=\"prov\">… " << h.totalFindings - shown
           << " further findings counted.</p>\n";
}

void
writeScenario(std::ostream &os, const ReportScenario &sc,
              const CampaignReport &report)
{
    os << "<h2>" << htmlEscape(sc.name) << "</h2>\n";
    os << "<div class=\"tiles\">\n";
    os << "<div class=\"tile\"><b>" << sc.trials
       << (sc.stoppedEarly ? "*" : "")
       << "</b><span>simulated years"
       << (sc.stoppedEarly ? " (early stop)" : "") << "</span></div>\n";
    os << "<div class=\"tile\"><b>" << num(sc.meanDowntimeMin)
       << "</b><span>E[downtime] min/yr</span></div>\n";
    os << "<div class=\"tile\"><b>" << num(sc.p99DowntimeMin)
       << "</b><span>P99 downtime min/yr</span></div>\n";
    os << "<div class=\"tile\"><b>"
       << num(sc.lossFreeFraction * 100.0)
       << "%</b><span>loss-free years [" << num(sc.lossFreeLo * 100.0)
       << ", " << num(sc.lossFreeHi * 100.0) << "]</span></div>\n";
    os << "<div class=\"tile\"><b>"
       << sc.forensics.aggregate.incidents()
       << "</b><span>incidents reconstructed</span></div>\n";
    os << "</div>\n";

    writeAttribution(os, sc);
    writeIncidentTable(os, sc, report.maxIncidentRows);
    writeHealth(os, sc, report.maxFindingRows);

    if (!sc.lanes.empty()) {
        os << "<h3>Signal lanes (sampled trials)</h3>\n";
        for (const ReportLane &lane : sc.lanes)
            writeLane(os, lane);
    }
}

} // namespace

void
writeHtmlReport(std::ostream &os, const CampaignReport &report)
{
    os << "<!doctype html>\n<html lang=\"en\">\n<head>\n"
          "<meta charset=\"utf-8\">\n<title>"
       << htmlEscape(report.title) << "</title>\n";
    writeStyles(os);
    os << "</head>\n<body>\n";
    os << "<h1>" << htmlEscape(report.title) << "</h1>\n";
    if (!report.provenance.empty()) {
        os << "<p class=\"prov\">";
        for (const auto &[k, v] : report.provenance)
            os << "<span>" << htmlEscape(k) << " = <b>"
               << htmlEscape(v) << "</b></span>";
        os << "</p>\n";
    }

    for (const ReportScenario &sc : report.scenarios)
        writeScenario(os, sc, report);

    os << "<h2>Rule book</h2>\n"
          "<table><tr><th>rule</th><th>severity</th><th>invariant"
          "</th></tr>\n";
    for (const HealthRule &r : healthRules())
        os << "<tr><td>" << r.name << "</td><td class=\"sev\" "
           << "style=\"color:" << severityColor(r.severity) << "\">"
           << severityName(r.severity) << "</td><td>" << r.description
           << "</td></tr>\n";
    os << "</table>\n";

    os << "<p class=\"foot\">Self-contained report — no scripts, no "
          "external assets. Attribution minutes accumulate in exact "
          "superaccumulators and are bit-identical for any worker "
          "thread count or shard partition.</p>\n";
    os << "</body>\n</html>\n";
}

} // namespace obs
} // namespace bpsim
