/**
 * @file
 * Event tracing for simulation runs: a process-wide TraceSink that
 * records typed, timestamped simulation events (outage start/end, DG
 * start success/failure, UPS discharge/depletion, technique phase
 * transitions, migration/hibernate progress, battery state-of-charge
 * crossings) into lock-free per-thread ring buffers.
 *
 * Determinism contract: every event carries (trial, seq) where `seq`
 * is a per-trial emission counter. A trial is a pure function of its
 * id and runs on exactly one worker thread, so sorting the drained
 * events by (trial, seq) yields a sequence that is bit-identical for
 * any thread count — the property the golden-trace tests pin. Wall
 * times ride along for profiling but are excluded from deterministic
 * exports.
 *
 * Cost contract: when tracing is disabled (the default) every
 * instrumentation site reduces to one relaxed atomic load and a
 * predictable branch; compiling with BPSIM_OBS_ENABLED=0 removes the
 * sites entirely (see obs.hh).
 */

#ifndef BPSIM_OBS_TRACE_HH
#define BPSIM_OBS_TRACE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace bpsim
{
namespace obs
{

/** What happened (drives the category/rendering of exporters). */
enum class EventKind : std::uint8_t
{
    /** A campaign trial began (a = trial id). */
    TrialStart,
    /** Utility failed; backup path engaging (a = load watts). */
    OutageStart,
    /** Utility restored. */
    OutageEnd,
    /** UPS battery began carrying load (a = battery share watts). */
    UpsDischarge,
    /** A backup source ran dry while needed (battery or fuel). */
    BackupDepleted,
    /** The IT load abruptly lost power (a = load watts). */
    PowerLost,
    /** DG start requested (crank begins). */
    DgStart,
    /** DG start failed (empty tank). */
    DgStartFailed,
    /** DG finished its startup delay and began ramping. */
    DgOnline,
    /** DG fully carrying the load. */
    DgCarrying,
    /** Battery SoC crossed a 10 % boundary (a = soc, b = boundary). */
    BatterySoc,
    /** Technique Table 4 phase transition (detail = technique name). */
    Phase,
    /** Migration/consolidation progress (detail = technique name). */
    Migration,
    /** Hibernate/sleep save-state progress (a = server index). */
    Hibernate,
    /** Cluster availability changed (a = available fraction 0..1). */
    Availability,
    /** Batch recompute debt charged (a = extra downtime seconds). */
    Recompute,
    /** A campaign trial ended (a = downtime min, b = battery kWh). */
    TrialEnd,
    /** Anything else (examples, tests). */
    Custom,
};

/** Number of EventKind enumerators (Custom is last). */
constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::Custom) + 1;

/** Stable lowercase identifier of @p kind ("outage-start", ...). */
const char *kindName(EventKind kind);

/** Coarse grouping of @p kind ("power", "dg", "technique", ...). */
const char *kindCategory(EventKind kind);

/** One recorded simulation event. */
struct TraceEvent
{
    /** Campaign trial id the event belongs to (0 outside campaigns). */
    std::uint64_t trial = 0;
    /** Emission index within the trial (the determinism sort key). */
    std::uint32_t seq = 0;
    /**
     * Causal incident id: 1-based per-trial counter of the grid-outage
     * episode the event belongs to, 0 outside any incident. Every
     * event emitted between beginIncident() and endIncident() — UPS
     * discharge, DG start attempts, technique phase changes,
     * restoration — carries the same id, threading one outage into a
     * single span tree the incident engine can fold.
     */
    std::uint32_t incident = 0;
    EventKind kind = EventKind::Custom;
    /** Simulated timestamp (microseconds within the trial). */
    Time simTime = 0;
    /** Wall-clock seconds since the process first emitted an event
     *  (profiling only; excluded from deterministic exports). */
    double wallSeconds = 0.0;
    /** Interned event name; must be a string literal. */
    const char *name = "";
    /** Kind-specific payload. */
    double a = 0.0, b = 0.0;
    /** Short free-form annotation (e.g. the technique name). */
    char detail[32] = {};

    /** Copy (and truncate) @p s into detail. */
    void
    setDetail(const char *s)
    {
        if (!s)
            return;
        std::strncpy(detail, s, sizeof(detail) - 1);
        detail[sizeof(detail) - 1] = '\0';
    }
};

/** True when observability recording is switched on at runtime. */
bool enabled();

/** Flip the process-wide runtime recording gate. */
void setEnabled(bool on);

/**
 * The calling thread's active trial id (0 outside a TrialScope).
 * Shared by TraceSink and TimeSeriesSink so every observability
 * stream tags rows with the same trial key.
 */
std::uint64_t currentTrial();

/**
 * Open a new causal incident on the calling thread and return its
 * 1-based per-trial id; subsequently emitted events carry it. Called
 * by PowerHierarchy when the utility fails. Counters reset with each
 * TrialScope, so ids are deterministic per trial.
 */
std::uint32_t beginIncident();

/** Close the calling thread's open incident (id returns to 0). */
void endIncident();

/** The calling thread's open incident id (0 when none). */
std::uint32_t currentIncident();

/**
 * Process-wide trace collector. Threads append to private ring
 * buffers without locking; drain()/clear() must only be called while
 * no simulation trials are in flight (e.g. between campaigns).
 */
class TraceSink
{
  public:
    static TraceSink &instance();

    /**
     * Record one event on the calling thread (no-op while disabled).
     * @p name and the strings reachable from it must outlive the sink
     * (pass string literals); @p detail is copied (truncated to 31
     * chars).
     */
    static void emit(EventKind kind, Time sim_time, const char *name,
                     const char *detail = nullptr, double a = 0.0,
                     double b = 0.0);

    /**
     * Remove and return every recorded event, sorted by (trial, seq)
     * — a deterministic order for any thread count.
     */
    std::vector<TraceEvent> drain();

    /**
     * Opaque position bookmark for eventsSince(). Valid until the
     * next drain()/clear() (which rewind the rings).
     */
    struct Mark
    {
        std::vector<std::pair<const void *, std::size_t>> counts;
    };

    /** Bookmark the current end of every thread's ring. */
    Mark mark() const;

    /**
     * Copy (without consuming) every event recorded after @p m,
     * sorted by (trial, seq). Same caller contract as drain(): only
     * while no trials are in flight. Lets the shard runner fold
     * incidents out of the trace while leaving the events in place
     * for a later drain()-based export.
     */
    std::vector<TraceEvent> eventsSince(const Mark &m) const;

    /** Discard everything recorded so far. */
    void clear();

    /**
     * Cap on events recorded per trial; later emissions are counted
     * as dropped. Because `seq` keeps advancing, the set of surviving
     * events stays deterministic. Default 65536.
     */
    void setMaxEventsPerTrial(std::uint32_t cap);
    std::uint32_t maxEventsPerTrial() const;

    /** Events discarded by the per-trial cap since the last clear(). */
    std::uint64_t droppedEvents() const;

  private:
    TraceSink() = default;
};

/**
 * RAII trial context: tags events emitted by the calling thread with
 * @p trial and restarts the per-trial sequence counter. Instantiated
 * by the campaign runners around each trial body; nests correctly
 * (restores the previous context on destruction).
 */
class TrialScope
{
  public:
    explicit TrialScope(std::uint64_t trial);
    ~TrialScope();

    TrialScope(const TrialScope &) = delete;
    TrialScope &operator=(const TrialScope &) = delete;

  private:
    std::uint64_t prevTrial;
    std::uint32_t prevSeq;
    std::uint32_t prevIncident;
    std::uint32_t prevIncidentCount;
};

} // namespace obs
} // namespace bpsim

#endif // BPSIM_OBS_TRACE_HH
