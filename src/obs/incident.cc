#include "obs/incident.hh"

#include <algorithm>

#include "campaign/json.hh"
#include "sim/logging.hh"

namespace bpsim
{
namespace obs
{

namespace
{

/**
 * Replay state for one trial. The engine walks the trial's events in
 * seq order (sim time is non-decreasing within a trial) integrating
 * (1 - availability) between consecutive timestamps and bucketing
 * each interval by the prevailing cause.
 */
struct TrialReplay
{
    std::vector<Incident> incidents;
    TrialForensics trial;

    /** Step-function state. */
    Time lastT = 0;
    double avail = 1.0;
    bool dark = false;
    RootCause darkCause = RootCause::CapacityShortfall;
    /** Index of the incident whose window is open; -1 when none. */
    std::ptrdiff_t open = -1;

    Incident *
    openIncident()
    {
        return open < 0 ? nullptr : &incidents[static_cast<std::size_t>(
                                        open)];
    }

    /** Integrate [lastT, t) into the prevailing cause bucket. */
    void
    advanceTo(Time t)
    {
        if (t <= lastT)
            return;
        const Time dt = t - lastT;
        lastT = t;
        Incident *inc = openIncident();
        if (dark && inc)
            inc->darkTime += dt;
        if (avail >= 1.0)
            return;
        const double min = (1.0 - avail) * toMinutes(dt);
        charge(min);
    }

    /** Add @p min of unavailability to the prevailing cause. */
    void
    charge(double min)
    {
        RootCause cause = RootCause::Unattributed;
        Incident *inc = openIncident();
        if (dark)
            cause = darkCause;
        else if (inc)
            cause = RootCause::TechniqueTransitionGap;
        const auto c = static_cast<std::size_t>(cause);
        if (inc)
            inc->attributedMin[c] += min;
        trial.attributedMin[c] += min;
    }

    /** Why is the floor dark, given what this incident saw so far? */
    RootCause
    classifyDark() const
    {
        const Incident *inc =
            open < 0 ? nullptr
                     : &incidents[static_cast<std::size_t>(open)];
        if (inc && inc->dgStartFailures > 0)
            return RootCause::DgStartFailure;
        if (inc && inc->dgStarts > 0 && !inc->dgCarried)
            return RootCause::UpsExhaustedBeforeDg;
        return RootCause::CapacityShortfall;
    }

    /** Close the open incident's attribution window at @p t. */
    void
    closeWindow(Time t)
    {
        Incident *inc = openIncident();
        if (!inc)
            return;
        inc->windowEnd = t;
        if (inc->outageEnd == kTimeNever)
            inc->truncated = true;
        open = -1;
    }

    void
    consume(const TraceEvent &ev)
    {
        advanceTo(ev.simTime);
        switch (ev.kind) {
          case EventKind::OutageStart: {
            // A new episode: the previous one's recovery tail (if any
            // window is still open) ends here.
            closeWindow(ev.simTime);
            Incident inc;
            inc.trial = ev.trial;
            inc.id = ev.incident != 0
                         ? ev.incident
                         : static_cast<std::uint32_t>(
                               incidents.size() + 1);
            inc.outageStart = ev.simTime;
            inc.loadW = ev.a;
            incidents.push_back(inc);
            open = static_cast<std::ptrdiff_t>(incidents.size()) - 1;
            break;
          }
          case EventKind::OutageEnd:
            if (Incident *inc = openIncident())
                inc->outageEnd = ev.simTime;
            dark = false; // restoration re-powers the floor
            break;
          case EventKind::UpsDischarge:
            if (Incident *inc = openIncident())
                inc->upsDischarged = true;
            break;
          case EventKind::BackupDepleted:
            if (Incident *inc = openIncident())
                inc->backupDepleted = true;
            break;
          case EventKind::DgStart:
            if (Incident *inc = openIncident())
                ++inc->dgStarts;
            break;
          case EventKind::DgStartFailed:
            if (Incident *inc = openIncident())
                ++inc->dgStartFailures;
            break;
          case EventKind::DgCarrying:
            if (Incident *inc = openIncident())
                inc->dgCarried = true;
            dark = false; // the DG re-energizes a dead floor
            break;
          case EventKind::PowerLost: {
            if (open < 0) {
                // Defensive: a loss outside any outage (malformed or
                // hand-built stream). Synthesize an episode so the
                // time still lands in a window; the health engine
                // flags the pairing violation separately.
                Incident inc;
                inc.trial = ev.trial;
                inc.id = ev.incident != 0
                             ? ev.incident
                             : static_cast<std::uint32_t>(
                                   incidents.size() + 1);
                inc.outageStart = ev.simTime;
                inc.loadW = ev.a;
                incidents.push_back(inc);
                open =
                    static_cast<std::ptrdiff_t>(incidents.size()) - 1;
            }
            Incident *inc = openIncident();
            ++inc->powerLosses;
            inc->firstPowerLostAt =
                std::min(inc->firstPowerLostAt, ev.simTime);
            darkCause = classifyDark();
            dark = true;
            break;
          }
          case EventKind::Availability:
            avail = ev.a;
            break;
          case EventKind::Recompute:
            // Recompute debt is charged the instant work is lost and
            // lands in the bucket that caused the loss.
            charge(ev.a / 60.0);
            break;
          case EventKind::TrialEnd:
            trial.reportedDowntimeMin = ev.a;
            trial.hasTrialEnd = true;
            closeWindow(ev.simTime);
            break;
          default:
            break; // phases/SoC/etc. shape nothing directly
        }
    }

    /** Finish the trial: close any window at the last seen time. */
    void
    finish()
    {
        closeWindow(lastT);
        trial.incidents =
            static_cast<std::uint32_t>(incidents.size());
    }
};

} // namespace

const char *
rootCauseName(RootCause cause)
{
    switch (cause) {
      case RootCause::UpsExhaustedBeforeDg:
        return "ups-exhausted-before-dg";
      case RootCause::DgStartFailure:
        return "dg-start-failure";
      case RootCause::TechniqueTransitionGap:
        return "technique-transition-gap";
      case RootCause::CapacityShortfall:
        return "capacity-shortfall";
      case RootCause::Unattributed:
        return "unattributed";
    }
    return "unknown";
}

double
Incident::downtimeMin() const
{
    double total = 0.0;
    for (const double m : attributedMin)
        total += m;
    return total;
}

RootCause
Incident::primaryCause() const
{
    std::size_t best = static_cast<std::size_t>(RootCause::Unattributed);
    double best_min = 0.0;
    for (std::size_t c = 0; c < kRootCauseCount; ++c)
        if (attributedMin[c] > best_min) {
            best = c;
            best_min = attributedMin[c];
        }
    return static_cast<RootCause>(best);
}

double
TrialForensics::attributedTotalMin() const
{
    double total = 0.0;
    for (const double m : attributedMin)
        total += m;
    return total;
}

double
TrialForensics::residualMin() const
{
    return reportedDowntimeMin - attributedTotalMin();
}

void
IncidentAggregate::addIncident(const Incident &inc)
{
    ++incidents_;
    if (inc.truncated)
        ++truncated_;
    if (inc.powerLosses > 0)
        ++lossIncidents_;
    ++byPrimary_[static_cast<std::size_t>(inc.primaryCause())];
}

void
IncidentAggregate::addTrial(const TrialForensics &t)
{
    ++trials_;
    for (std::size_t c = 0; c < kRootCauseCount; ++c)
        minutes_[c].add(t.attributedMin[c]);
    reported_.add(t.reportedDowntimeMin);
}

void
IncidentAggregate::merge(const IncidentAggregate &other)
{
    trials_ += other.trials_;
    incidents_ += other.incidents_;
    truncated_ += other.truncated_;
    lossIncidents_ += other.lossIncidents_;
    for (std::size_t c = 0; c < kRootCauseCount; ++c) {
        byPrimary_[c] += other.byPrimary_[c];
        minutes_[c].merge(other.minutes_[c]);
    }
    reported_.merge(other.reported_);
}

bool
IncidentAggregate::empty() const
{
    return trials_ == 0 && incidents_ == 0;
}

std::uint64_t
IncidentAggregate::incidentsByPrimaryCause(RootCause cause) const
{
    return byPrimary_[static_cast<std::size_t>(cause)];
}

double
IncidentAggregate::attributedMin(RootCause cause) const
{
    return minutes_[static_cast<std::size_t>(cause)].value();
}

double
IncidentAggregate::attributedTotalMin() const
{
    ExactSum total;
    for (const ExactSum &m : minutes_)
        total.merge(m);
    return total.value();
}

void
IncidentAggregate::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("trials", trials_);
    w.field("incidents", incidents_);
    w.field("truncated", truncated_);
    w.field("loss_incidents", lossIncidents_);
    w.key("reported_min");
    reported_.writeJson(w);
    w.key("by_cause").beginObject();
    for (std::size_t c = 0; c < kRootCauseCount; ++c) {
        w.key(rootCauseName(static_cast<RootCause>(c))).beginObject();
        w.field("primary", byPrimary_[c]);
        w.key("min");
        minutes_[c].writeJson(w);
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

IncidentAggregate
IncidentAggregate::fromJson(const JsonValue &v)
{
    IncidentAggregate a;
    a.trials_ = v.at("trials").asUint();
    a.incidents_ = v.at("incidents").asUint();
    a.truncated_ = v.at("truncated").asUint();
    a.lossIncidents_ = v.at("loss_incidents").asUint();
    a.reported_ = ExactSum::fromJson(v.at("reported_min"));
    const JsonValue &causes = v.at("by_cause");
    for (std::size_t c = 0; c < kRootCauseCount; ++c) {
        const JsonValue &e =
            causes.at(rootCauseName(static_cast<RootCause>(c)));
        a.byPrimary_[c] = e.at("primary").asUint();
        a.minutes_[c] = ExactSum::fromJson(e.at("min"));
    }
    return a;
}

IncidentReport
buildIncidentReport(const std::vector<TraceEvent> &events)
{
    IncidentReport report;
    std::size_t i = 0;
    while (i < events.size()) {
        const std::uint64_t trial = events[i].trial;
        TrialReplay replay;
        replay.trial.trial = trial;
        for (; i < events.size() && events[i].trial == trial; ++i)
            replay.consume(events[i]);
        replay.finish();
        report.aggregate.addTrial(replay.trial);
        for (const Incident &inc : replay.incidents)
            report.aggregate.addIncident(inc);
        report.trials.push_back(replay.trial);
        report.incidents.insert(report.incidents.end(),
                                replay.incidents.begin(),
                                replay.incidents.end());
    }
    return report;
}

} // namespace obs
} // namespace bpsim
