/**
 * @file
 * Outage forensics stage 1: fold a drained, (trial, seq)-sorted trace
 * into per-incident records that attribute every second of
 * unavailability to a root cause.
 *
 * An *incident* is one grid-outage episode — everything between an
 * OutageStart and the matching OutageEnd, plus the recovery tail that
 * follows restoration (reboots, NVDIMM restores, recompute debt) up
 * to the next outage or the end of the trial. The causal incident id
 * stamped on every TraceEvent by obs::beginIncident() threads UPS
 * discharge, DG start attempts, technique phases and restoration into
 * one record.
 *
 * Attribution replays the availability step function the cluster
 * traced (EventKind::Availability) and integrates (1 - availability)
 * over time, bucketing each interval by why the service was degraded:
 *
 *   - ups-exhausted-before-dg  power fully lost because the battery
 *                              (or fuel) ran dry while a DG start was
 *                              still in flight;
 *   - dg-start-failure         power fully lost after a DG start
 *                              attempt failed outright (empty tank);
 *   - capacity-shortfall       power fully lost with no DG in play —
 *                              the backup path simply cannot carry
 *                              the load long enough;
 *   - technique-transition-gap degraded-but-powered time inside an
 *                              incident window: Table 4 phase
 *                              transitions, sleep/hibernate dips,
 *                              post-restoration reboots, recompute
 *                              debt;
 *   - unattributed             degraded time outside any incident
 *                              window (should be ~0; a nonzero value
 *                              is itself a finding).
 *
 * Determinism contract: the engine is a pure function of the sorted
 * event vector, and the mergeable IncidentAggregate accumulates
 * minutes in ExactSum superaccumulators — so merged attribution
 * totals are bit-identical for any worker thread count and any shard
 * partition (pinned by tests/obs/fixtures/incidents_v1.json).
 */

#ifndef BPSIM_OBS_INCIDENT_HH
#define BPSIM_OBS_INCIDENT_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "campaign/exact_sum.hh"
#include "obs/trace.hh"

namespace bpsim
{

class JsonWriter;
class JsonValue;

namespace obs
{

/** Why a stretch of unavailability happened. */
enum class RootCause : std::uint8_t
{
    /** Battery/fuel ran out while a DG start was still in flight. */
    UpsExhaustedBeforeDg,
    /** A DG start attempt failed outright (empty tank). */
    DgStartFailure,
    /** Degraded-but-powered time inside an incident window. */
    TechniqueTransitionGap,
    /** Full power loss with no DG in play: backup cannot carry. */
    CapacityShortfall,
    /** Degraded time outside any incident window. */
    Unattributed,
};

/** Number of RootCause enumerators (Unattributed is last). */
constexpr std::size_t kRootCauseCount =
    static_cast<std::size_t>(RootCause::Unattributed) + 1;

/** Stable lowercase identifier ("ups-exhausted-before-dg", ...). */
const char *rootCauseName(RootCause cause);

/** Minutes of unavailability bucketed by root cause. */
using CauseMinutes = std::array<double, kRootCauseCount>;

/** One reconstructed grid-outage episode. */
struct Incident
{
    /** Campaign trial the incident belongs to. */
    std::uint64_t trial = 0;
    /** 1-based per-trial causal id (TraceEvent::incident). */
    std::uint32_t id = 0;
    /** Utility failure time (simulated microseconds). */
    Time outageStart = 0;
    /** Utility restoration time; kTimeNever when never restored. */
    Time outageEnd = kTimeNever;
    /** End of the attribution window: the next outage's start, the
     *  trial horizon, or the last event seen. */
    Time windowEnd = 0;
    /** True when the trial ended before the utility came back. */
    bool truncated = false;
    /** IT load at outage start (watts). */
    double loadW = 0.0;
    /** The UPS battery carried load at some point. */
    bool upsDischarged = false;
    /** A backup source ran dry while needed. */
    bool backupDepleted = false;
    /** DG start attempts / outright start failures. */
    std::uint32_t dgStarts = 0;
    std::uint32_t dgStartFailures = 0;
    /** The DG ended up carrying the load. */
    bool dgCarried = false;
    /** Abrupt full power losses within the episode. */
    std::uint32_t powerLosses = 0;
    /** First full power loss (kTimeNever when power never dropped). */
    Time firstPowerLostAt = kTimeNever;
    /** Total fully-dark time inside the window (microseconds). */
    Time darkTime = 0;
    /** Attributed unavailability inside this window, by cause. */
    CauseMinutes attributedMin{};

    /** Sum of attributedMin in fixed enum order. */
    double downtimeMin() const;
    /** The cause with the largest bucket (Unattributed when clean). */
    RootCause primaryCause() const;
};

/** Per-trial attribution rollup (the "sums exactly" unit). */
struct TrialForensics
{
    std::uint64_t trial = 0;
    /** Downtime reported by the simulator via TrialEnd (min/yr). */
    double reportedDowntimeMin = 0.0;
    /** A TrialEnd event was present (fixes the horizon at the trial
     *  length; otherwise the last event's time is used). */
    bool hasTrialEnd = false;
    /** Incidents reconstructed in this trial. */
    std::uint32_t incidents = 0;
    /** Attributed unavailability by cause (whole trial). */
    CauseMinutes attributedMin{};

    /** Total attributed minutes: Σ attributedMin in enum order. By
     *  construction the per-cause buckets sum *exactly* to this. */
    double attributedTotalMin() const;
    /** reportedDowntimeMin - attributedTotalMin (diagnostic; tiny
     *  float noise from the simulator's different summation order). */
    double residualMin() const;
};

/**
 * Mergeable per-shard attribution aggregate. Rides campaign shard
 * files like counters/histograms do (an "incidents" object, omitted
 * when empty so uninstrumented shard files keep the exact schema-v1
 * bytes). All minute totals accumulate in ExactSum, so merging is
 * exact, commutative and associative: any shard partition and any
 * merge order produces bit-identical JSON.
 */
class IncidentAggregate
{
  public:
    /** Fold one reconstructed incident in. */
    void addIncident(const Incident &inc);

    /** Fold one trial's rollup in. */
    void addTrial(const TrialForensics &t);

    /** Fold another shard's aggregate in (exact; commutative). */
    void merge(const IncidentAggregate &other);

    /** True when nothing has been recorded (the omit-from-JSON gate). */
    bool empty() const;

    /** @name Totals */
    ///@{
    std::uint64_t trials() const { return trials_; }
    std::uint64_t incidents() const { return incidents_; }
    std::uint64_t truncatedIncidents() const { return truncated_; }
    /** Incidents that saw at least one full power loss. */
    std::uint64_t lossIncidents() const { return lossIncidents_; }
    /** Incidents whose largest bucket is @p cause. */
    std::uint64_t incidentsByPrimaryCause(RootCause cause) const;
    /** Attributed minutes for @p cause across all trials. */
    double attributedMin(RootCause cause) const;
    /** Σ attributedMin over every cause (exact). */
    double attributedTotalMin() const;
    /** Σ simulator-reported downtime over trials with a TrialEnd. */
    double reportedMin() const { return reported_.value(); }
    ///@}

    /** Emit as a JSON object in value position. */
    void writeJson(JsonWriter &w) const;

    /** Rebuild from writeJson output (asserts on malformed input). */
    static IncidentAggregate fromJson(const JsonValue &v);

  private:
    std::uint64_t trials_ = 0;
    std::uint64_t incidents_ = 0;
    std::uint64_t truncated_ = 0;
    std::uint64_t lossIncidents_ = 0;
    std::array<std::uint64_t, kRootCauseCount> byPrimary_{};
    std::array<ExactSum, kRootCauseCount> minutes_{};
    ExactSum reported_;
};

/** Everything the engine reconstructs from one drained trace. */
struct IncidentReport
{
    /** Every incident, ordered (trial, id). */
    std::vector<Incident> incidents;
    /** Per-trial rollups, ordered by trial (trials that emitted any
     *  event appear; quiet trials with no events do not). */
    std::vector<TrialForensics> trials;
    /** Mergeable rollup of the above. */
    IncidentAggregate aggregate;
};

/**
 * Reconstruct incidents from @p events, which must be sorted by
 * (trial, seq) — the order drain()/eventsSince() return. Pure
 * function: same events, same report, bit for bit.
 */
IncidentReport buildIncidentReport(const std::vector<TraceEvent> &events);

} // namespace obs
} // namespace bpsim

#endif // BPSIM_OBS_INCIDENT_HH
