/**
 * @file
 * Outage forensics stage 2: declarative health/invariant checks over
 * a drained trace (and optionally sampled signals and the incident
 * report), in the spirit of Netdata's alarm engine and the
 * calibration invariants literature: a simulation whose outputs
 * violate SoC bounds, power balance or legal DG state transitions
 * cannot be trusted, however plausible its summary numbers look.
 *
 * Each rule is declared once in healthRules() — name, severity,
 * description — so docs and the HTML report can enumerate exactly
 * what ran. checkHealth() replays the evidence and emits
 * severity-tagged findings; a clean run returns a report whose
 * healthy() is true. The checker is a pure function of its inputs,
 * so findings are deterministic for any thread count.
 */

#ifndef BPSIM_OBS_HEALTH_HH
#define BPSIM_OBS_HEALTH_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/incident.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"

namespace bpsim
{
namespace obs
{

/** How bad a finding is. */
enum class Severity : std::uint8_t
{
    /** Informational (worth a look, not a defect). */
    Info,
    /** Suspicious: plausible but warrants investigation. */
    Warning,
    /** An invariant is broken; results cannot be trusted. */
    Critical,
};

/** Number of Severity enumerators. */
constexpr std::size_t kSeverityCount =
    static_cast<std::size_t>(Severity::Critical) + 1;

/** Stable lowercase identifier ("info", "warning", "critical"). */
const char *severityName(Severity severity);

/** One declared invariant (the rule table drives docs + report). */
struct HealthRule
{
    /** Stable rule id ("soc-bounds", ...). */
    const char *name;
    Severity severity;
    /** One-line human description of the invariant. */
    const char *description;
};

/** Every rule checkHealth() evaluates, in evaluation order. */
const std::vector<HealthRule> &healthRules();

/** One rule violation (or observation). */
struct HealthFinding
{
    /** HealthRule::name of the violated rule. */
    std::string rule;
    Severity severity = Severity::Info;
    /** Trial and simulated time the evidence points at. */
    std::uint64_t trial = 0;
    Time t = 0;
    /** The offending value (rule-specific; 0 when not applicable). */
    double value = 0.0;
    /** Human-readable explanation. */
    std::string message;
};

/** Aggregated result of one checkHealth() pass. */
struct HealthReport
{
    /** Findings in evidence order, capped (see totalFindings). */
    std::vector<HealthFinding> findings;
    /** Findings counted, including any beyond the cap. */
    std::uint64_t totalFindings = 0;
    /** Finding counts by severity (index = Severity). */
    std::array<std::uint64_t, kSeverityCount> bySeverity{};
    /** Finding counts by rule name. */
    std::map<std::string, std::uint64_t> byRule;

    /** True when no Warning or Critical finding was recorded. */
    bool
    healthy() const
    {
        return bySeverity[static_cast<std::size_t>(
                   Severity::Warning)] == 0 &&
               bySeverity[static_cast<std::size_t>(
                   Severity::Critical)] == 0;
    }
};

/** Tuning for one checkHealth() pass. */
struct HealthOptions
{
    /** Cap on findings *kept*; counting continues past it. */
    std::size_t maxFindings = 256;
    /** Relative tolerance for power-balance surplus checks. */
    double powerBalanceRelTol = 1e-6;
    /** Tolerance (minutes, relative to reported downtime) before the
     *  attribution residual becomes a finding. */
    double residualRelTol = 1e-6;
};

/**
 * Evaluate every declared rule against @p events (sorted by
 * (trial, seq)), plus @p series (power-balance rules; may be null)
 * and @p incidents (attribution-residual rule; may be null).
 */
HealthReport checkHealth(const std::vector<TraceEvent> &events,
                         const TimeSeriesStore *series = nullptr,
                         const IncidentReport *incidents = nullptr,
                         const HealthOptions &opts = {});

} // namespace obs
} // namespace bpsim

#endif // BPSIM_OBS_HEALTH_HH
