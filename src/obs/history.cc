#include "obs/history.hh"

#include <algorithm>
#include <unordered_map>

#include "obs/timeseries.hh"

namespace bpsim
{
namespace obs
{

namespace
{

/** Per-series, per-tier upper bound so a pathological CLI cadence
 *  cannot allocate unbounded rings. */
constexpr std::size_t kMaxRingCapacity = 1u << 20;

} // namespace

HistoryStore::HistoryStore(HistoryConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.cadenceNs == 0)
        cfg_.cadenceNs = 1000000000ull;
    if (cfg_.retentionNs < cfg_.cadenceNs)
        cfg_.retentionNs = cfg_.cadenceNs;
    if (cfg_.multipliers.empty())
        cfg_.multipliers = {1, 10, 60};
    std::sort(cfg_.multipliers.begin(), cfg_.multipliers.end());
    cfg_.multipliers.erase(std::unique(cfg_.multipliers.begin(),
                                       cfg_.multipliers.end()),
                           cfg_.multipliers.end());
    for (std::uint32_t &m : cfg_.multipliers)
        if (m == 0)
            m = 1;
    if (cfg_.maxSeries == 0)
        cfg_.maxSeries = 1;
}

std::size_t
HistoryStore::tierCapacity(std::size_t) const
{
    // Every tier keeps the same bucket count; a tier's *span* grows
    // with its width (retention × multiplier), the netdata shape.
    const std::size_t n =
        static_cast<std::size_t>(cfg_.retentionNs / cfg_.cadenceNs);
    return std::min(kMaxRingCapacity, std::max<std::size_t>(2, n));
}

std::uint64_t
HistoryStore::tierWidthNs(std::size_t tier) const
{
    return cfg_.cadenceNs * cfg_.multipliers[tier];
}

const HistoryBucket &
HistoryStore::newest(const Ring &r) const
{
    const std::size_t n = r.buckets.size();
    return r.buckets[(r.head + n - 1) % n];
}

std::size_t
HistoryStore::ringSize(const Ring &r) const
{
    return r.buckets.size();
}

void
HistoryStore::record(const std::string &name, std::uint64_t tNs,
                     double value)
{
    std::lock_guard<std::mutex> lk(m_);
    auto it = series_.find(name);
    if (it == series_.end()) {
        if (series_.size() >= cfg_.maxSeries) {
            ++droppedSeries_;
            return;
        }
        SeriesData data;
        data.tiers.resize(cfg_.multipliers.size());
        it = series_.emplace(name, std::move(data)).first;
    }
    ++samples_;

    for (std::size_t k = 0; k < cfg_.multipliers.size(); ++k) {
        const std::uint64_t width = tierWidthNs(k);
        const std::uint64_t start = tNs - tNs % width;
        Ring &ring = it->second.tiers[k];
        if (!ring.buckets.empty() && start < newest(ring).startNs) {
            // Older than the ring head: never merge backwards — a
            // monotonic sampler cannot get here.
            ++droppedStale_;
            continue;
        }
        if (!ring.buckets.empty() && start == newest(ring).startNs) {
            HistoryBucket &b =
                ring.buckets[(ring.head + ring.buckets.size() - 1) %
                             ring.buckets.size()];
            b.min = std::min(b.min, value);
            b.max = std::max(b.max, value);
            b.sum += value;
            ++b.count;
            continue;
        }
        HistoryBucket fresh;
        fresh.startNs = start;
        fresh.min = fresh.max = fresh.sum = value;
        fresh.count = 1;
        const std::size_t cap = tierCapacity(k);
        if (ring.buckets.size() < cap) {
            ring.buckets.push_back(fresh);
        } else {
            // Round-robin: the oldest bucket is overwritten.
            ring.buckets[ring.head] = fresh;
            ring.head = (ring.head + 1) % ring.buckets.size();
            ring.wrapped = true;
            ++evictedBuckets_;
        }
    }
}

std::vector<std::string>
HistoryStore::names() const
{
    std::lock_guard<std::mutex> lk(m_);
    std::vector<std::string> out;
    out.reserve(series_.size());
    for (const auto &[name, data] : series_)
        out.push_back(name);
    return out; // std::map iteration is already sorted
}

HistoryStore::Series
HistoryStore::query(const std::string &name, const Query &q) const
{
    std::lock_guard<std::mutex> lk(m_);
    Series out;
    const auto it = series_.find(name);
    if (it == series_.end())
        return out;
    const SeriesData &data = it->second;

    // Tier selection: an explicit tier wins; otherwise the finest
    // tier whose oldest retained bucket still covers afterNs, so a
    // recent window gets raw resolution and an old one degrades to
    // the rollup that still remembers it. afterNs == 0 asks for the
    // whole span, which only the coarsest tier provides.
    std::size_t tier = data.tiers.size() - 1;
    if (q.tier >= 0) {
        tier = std::min(static_cast<std::size_t>(q.tier),
                        data.tiers.size() - 1);
    } else if (q.afterNs > 0) {
        for (std::size_t k = 0; k < data.tiers.size(); ++k) {
            const Ring &ring = data.tiers[k];
            if (ring.buckets.empty())
                continue;
            const HistoryBucket &oldest = ring.buckets[ring.head];
            if (oldest.startNs <= q.afterNs) {
                tier = k;
                break;
            }
        }
    }

    out.tier = static_cast<int>(tier);
    out.widthNs = tierWidthNs(tier);
    out.capacity = tierCapacity(tier);

    const Ring &ring = data.tiers[tier];
    const std::size_t n = ring.buckets.size();
    out.points.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const HistoryBucket &b = ring.buckets[(ring.head + i) % n];
        // Overlap semantics: a bucket belongs to the window when any
        // part of [start, start + width) lies past afterNs.
        if (b.startNs + out.widthNs <= q.afterNs ||
            b.startNs > q.beforeNs)
            continue;
        out.points.push_back(b);
    }

    if (q.maxPoints > 0 && out.points.size() > q.maxPoints) {
        // Reuse the deterministic LTTB downsampler over bucket means,
        // then keep the *chosen* buckets whole (min/max/sum/count
        // survive downsampling; only in-between buckets are dropped).
        std::vector<SeriesPoint> pts;
        pts.reserve(out.points.size());
        std::unordered_map<std::uint64_t, const HistoryBucket *> at;
        for (const HistoryBucket &b : out.points) {
            pts.push_back({static_cast<Time>(b.startNs),
                           b.count > 0
                               ? b.sum / static_cast<double>(b.count)
                               : 0.0});
            at.emplace(b.startNs, &b);
        }
        const auto kept = lttb(pts, q.maxPoints);
        std::vector<HistoryBucket> down;
        down.reserve(kept.size());
        for (const SeriesPoint &p : kept)
            down.push_back(*at.at(static_cast<std::uint64_t>(p.t)));
        out.points = std::move(down);
        out.downsampled = true;
    }
    return out;
}

HistoryStats
HistoryStore::stats() const
{
    std::lock_guard<std::mutex> lk(m_);
    HistoryStats s;
    s.samples = samples_;
    s.droppedSeries = droppedSeries_;
    s.droppedStale = droppedStale_;
    s.evictedBuckets = evictedBuckets_;
    s.series = series_.size();
    s.tiers.resize(cfg_.multipliers.size());
    for (std::size_t k = 0; k < cfg_.multipliers.size(); ++k) {
        s.tiers[k].widthNs = tierWidthNs(k);
        s.tiers[k].capacity = tierCapacity(k);
    }
    for (const auto &[name, data] : series_) {
        s.bytes += name.size() + sizeof(SeriesData);
        for (std::size_t k = 0; k < data.tiers.size(); ++k) {
            s.tiers[k].buckets += data.tiers[k].buckets.size();
            s.bytes += data.tiers[k].buckets.capacity() *
                       sizeof(HistoryBucket);
        }
    }
    return s;
}

void
HistoryStore::clear()
{
    std::lock_guard<std::mutex> lk(m_);
    series_.clear();
}

} // namespace obs
} // namespace bpsim
