/**
 * @file
 * Trace and metrics exporters.
 *
 * writeChromeTrace() emits the Chrome trace_event JSON format that
 * chrome://tracing and Perfetto load directly: one track (tid) per
 * campaign trial, outages as B/E duration spans, everything else as
 * instant events at their simulated-time timestamp (the trace_event
 * `ts` unit is microseconds — exactly the simulator's Time unit, so
 * timestamps transfer losslessly). writeTraceCsv() emits the same
 * events as a flat spreadsheet-friendly table.
 *
 * Both exporters are deterministic: wall-clock stamps are excluded
 * unless explicitly requested, non-finite payloads are clamped to 0,
 * and doubles print with %.17g so values survive a JSON round trip
 * bit-exactly. The golden-trace tests compare exporter output
 * byte-for-byte across thread counts and against a checked-in
 * fixture.
 *
 * writeMetricsJson() snapshots an obs::Registry (counters, gauges,
 * timers, sorted by name) together with caller-supplied provenance
 * fields such as buildId() and the campaign seed.
 */

#ifndef BPSIM_OBS_EXPORT_HH
#define BPSIM_OBS_EXPORT_HH

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"

namespace bpsim
{
namespace obs
{

/** Knobs for writeChromeTrace() / writeTraceCsv(). */
struct TraceExportOptions
{
    /**
     * Provenance fields for the top-level "metadata" object (e.g.
     * {"build", buildId()}, {"seed", "2014"}). Emitted in the order
     * given; the object is omitted when empty.
     */
    std::vector<std::pair<std::string, std::string>> metadata;
    /**
     * Include wall-clock stamps (args.wall / a wall column). Off by
     * default: wall times vary run to run and would break the
     * byte-identical determinism contract.
     */
    bool includeWall = false;
    /**
     * LTTB budget per time-series channel in the counter-track
     * export (0 = emit every sample). Downsampling is deterministic,
     * so capped exports stay byte-identical across thread counts.
     */
    std::size_t maxPointsPerSeries = 0;
};

/** Write @p events as a Chrome trace_event JSON document. */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceEvent> &events,
                      const TraceExportOptions &opts = {});

/**
 * Write @p events plus @p series as one Chrome trace_event JSON
 * document: the event spans/instants first, then every time-series
 * channel as counter samples ("ph":"C"), so Perfetto renders SoC and
 * power lanes beside the outage spans. Counter names are the signal
 * names, prefixed with "t<trial>/" when the store spans more than
 * one trial so lanes do not merge across trials.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceEvent> &events,
                      const TimeSeriesStore &series,
                      const TraceExportOptions &opts = {});

/** Write @p events as CSV (one header row + one row per event). */
void writeTraceCsv(std::ostream &os,
                   const std::vector<TraceEvent> &events,
                   const TraceExportOptions &opts = {});

/**
 * One generic wall-clock span for writeSpanTrace(): a complete-event
 * ("ph":"X") rectangle on track @p track, @p durUs microseconds long.
 * Unlike TraceEvent, spans are not tied to simulated time or trials —
 * the service uses them for server-side request timelines.
 */
struct SpanEvent
{
    std::string name;
    std::string category = "span";
    /** Track (trace_event tid) the span renders on. */
    std::uint64_t track = 0;
    std::int64_t startUs = 0;
    std::int64_t durUs = 0;
    /**
     * Extra "args" members as (key, value) pairs where the value is a
     * pre-serialized JSON fragment spliced verbatim (quote strings
     * yourself).
     */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Write @p spans as a Chrome trace_event JSON document of complete
 * events, in the order given. Deterministic for a deterministic span
 * list; opts.metadata is emitted as for writeChromeTrace().
 */
void writeSpanTrace(std::ostream &os, const std::vector<SpanEvent> &spans,
                    const TraceExportOptions &opts = {});

/** Write @p series as CSV: trial,signal,sim_us,value. */
void writeTimeSeriesCsv(std::ostream &os, const TimeSeriesStore &series);

/**
 * Write a JSON snapshot of @p registry: provenance fields first, then
 * "counters", "gauges" and "timers" objects sorted by metric name.
 * The output re-parses with parseJson (pinned by the obs tests).
 */
void writeMetricsJson(
    std::ostream &os, const Registry &registry,
    const std::vector<std::pair<std::string, std::string>> &provenance =
        {});

/**
 * OpenMetrics / Prometheus text exposition of @p registry: counters
 * as `<name>_total`, gauges as-is, timers as summary `_sum`/`_count`
 * pairs, histograms as cumulative `_bucket{le="..."}` series plus
 * `_sum`/`_count`, terminated by `# EOF`. Metric names are prefixed
 * with "bpsim_" and sanitized (dots become underscores); @p labels
 * are rendered on every sample line (e.g. {{"build", buildId()}}).
 * Output is deterministic (sorted names, %.17g numbers), so it can
 * be pinned byte-for-byte by golden-fixture tests.
 *
 * Registry names may carry an encoded label set after a '|':
 * `base|k1=v1,k2=v2` renders as `bpsim_base{k1="v1",k2="v2",...}`
 * with the per-metric labels first and the global @p labels after.
 * Metrics sharing a base name form one exposition family (a single
 * `# TYPE` line) because '|' sorts after every name character, so the
 * registry's sorted snapshot keeps a family's series adjacent.
 */
void writeOpenMetrics(
    std::ostream &os, const Registry &registry,
    const std::vector<std::pair<std::string, std::string>> &labels = {});

} // namespace obs
} // namespace bpsim

#endif // BPSIM_OBS_EXPORT_HH
