/**
 * @file
 * Log-linear bucketed histogram (HDR-style) for distribution metrics
 * such as DG start latency or per-outage downtime.
 *
 * Layout: values are grouped by power-of-two octave, each octave split
 * into kSubBuckets linear sub-buckets, giving a worst-case relative
 * quantile error of 1/kSubBuckets (~6 %) over the whole representable
 * range [2^kMinExp, 2^(kMaxExp+1)). Bucket 0 catches zero, negative
 * and underflowing values; the last bucket catches overflow. Bucket
 * boundaries are pure functions of the index — no per-instance state
 * — so snapshots, merges and quantile queries are deterministic.
 *
 * Concurrency: record() is one relaxed fetch_add per call, the same
 * contract as obs::Counter. Totals are sums of per-trial
 * contributions and therefore identical for any thread count.
 *
 * Merging: snapshots are sparse (index -> count) maps and merge by
 * bucket-wise addition — associative and commutative — so per-shard
 * histogram deltas ride shard aggregate files next to the counters
 * sidecar and recombine bit-identically for any shard partition or
 * merge order. For the same reason sum() is *derived* from bucket
 * counts times representative values rather than accumulated at
 * record time: a true running sum of doubles would be order-dependent
 * and break the any-partition bit-identity invariant.
 */

#ifndef BPSIM_OBS_HISTOGRAM_HH
#define BPSIM_OBS_HISTOGRAM_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace bpsim
{
namespace obs
{

/** Sparse histogram snapshot: bucket index -> count (zeros omitted). */
struct HistogramSnapshot
{
    std::map<std::uint32_t, std::uint64_t> buckets;

    /** Total recorded count. */
    std::uint64_t count() const;
    /** Sum derived from bucket midpoints (bucket-resolution exact). */
    double sum() const;
    /**
     * Quantile @p q in [0, 1] by cumulative bucket walk with linear
     * interpolation inside the target bucket. Returns 0 when empty.
     */
    double quantile(double q) const;

    bool operator==(const HistogramSnapshot &o) const
    {
        return buckets == o.buckets;
    }
    bool operator!=(const HistogramSnapshot &o) const
    {
        return !(*this == o);
    }
};

/** Concurrent log-linear histogram (relaxed-atomic buckets). */
class Histogram
{
  public:
    /** Linear sub-buckets per power-of-two octave. */
    static constexpr int kSubBuckets = 16;
    /** Smallest distinguishable octave: values < 2^kMinExp hit
     *  bucket 0 (with zero and negatives). 2^-16 ~ 1.5e-5. */
    static constexpr int kMinExp = -16;
    /** Largest octave: values >= 2^(kMaxExp+1) (~2.8e14) hit the
     *  overflow bucket. */
    static constexpr int kMaxExp = 47;
    /** Bucket count: underflow + octaves * sub-buckets + overflow. */
    static constexpr std::uint32_t kBuckets =
        2 + static_cast<std::uint32_t>(kMaxExp - kMinExp + 1) *
                kSubBuckets;

    /** @name Pure bucket-layout functions (shared with snapshots) */
    ///@{
    static std::uint32_t bucketIndex(double v);
    static double bucketLowerBound(std::uint32_t i);
    static double bucketUpperBound(std::uint32_t i);
    /** Representative value used for the derived sum (the bucket
     *  midpoint; 0 for the underflow bucket, the lower bound for the
     *  overflow bucket). */
    static double bucketMidpoint(std::uint32_t i);
    ///@}

    /** Record one value (one relaxed fetch_add). */
    void record(double v)
    {
        buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    }

    /** Total recorded count. */
    std::uint64_t count() const;
    /** See HistogramSnapshot::quantile(). */
    double quantile(double q) const;

    /** Sparse copy of the current bucket counts. */
    HistogramSnapshot snapshot() const;
    /** Zero every bucket (the registry reset contract). */
    void reset();

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/**
 * Key-wise, bucket-wise histogram-map addition: the shard-merge
 * operation. Associative and commutative, so any merge tree over any
 * partition of the same event stream yields identical totals.
 */
void mergeHistograms(std::map<std::string, HistogramSnapshot> &into,
                     const std::map<std::string, HistogramSnapshot> &from);

/**
 * Bucket-wise difference `after - before` (buckets absent from
 * @p before count from zero; empty results are omitted). Used to
 * capture a shard run's histogram delta from the process-wide
 * registry.
 */
std::map<std::string, HistogramSnapshot>
subtractHistograms(const std::map<std::string, HistogramSnapshot> &after,
                   const std::map<std::string, HistogramSnapshot> &before);

} // namespace obs
} // namespace bpsim

#endif // BPSIM_OBS_HISTOGRAM_HH
