#include "obs/health.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bpsim
{
namespace obs
{

namespace
{

/** Indices into healthRules() (kept adjacent so they cannot drift). */
enum RuleIx : std::size_t
{
    kSocBounds,
    kSocMonotone,
    kDgStateMachine,
    kOutagePairing,
    kIncidentIds,
    kPowerBalance,
    kTrialInvariants,
    kAttributionResidual,
};

const std::vector<HealthRule> &
rules()
{
    static const std::vector<HealthRule> r = {
        {"soc-bounds", Severity::Critical,
         "battery state of charge stays within [0, 1] in every traced "
         "event and sampled signal"},
        {"soc-monotone-on-battery", Severity::Warning,
         "SoC never rises while the battery alone carries the load "
         "(between ups-discharge and DG pickup / restoration)"},
        {"dg-state-machine", Severity::Critical,
         "DG events follow the legal state machine: start -> online "
         "-> carrying, reset by restoration"},
        {"outage-pairing", Severity::Critical,
         "outage-start/outage-end events pair up and power is only "
         "lost inside an outage"},
        {"incident-ids", Severity::Critical,
         "causal incident ids on outage-start are 1-based and "
         "strictly sequential within a trial"},
        {"power-balance", Severity::Critical,
         "the supply mix (utility + battery + DG) never exceeds the "
         "load it claims to carry (energy conservation per level)"},
        {"trial-invariants", Severity::Warning,
         "per-trial totals are physical: downtime within [0, minutes "
         "per year], battery energy non-negative"},
        {"attribution-residual", Severity::Warning,
         "per-cause attributed downtime reconciles with the "
         "simulator's own per-trial total"},
    };
    return r;
}

/** Collects findings with the cap + counting bookkeeping. */
class Collector
{
  public:
    Collector(HealthReport &report, const HealthOptions &opts)
        : report(report), opts(opts)
    {
    }

    void
    add(RuleIx ix, std::uint64_t trial, Time t, double value,
        std::string message)
    {
        const HealthRule &rule = rules()[ix];
        ++report.totalFindings;
        ++report.bySeverity[static_cast<std::size_t>(rule.severity)];
        ++report.byRule[rule.name];
        if (report.findings.size() >= opts.maxFindings)
            return;
        HealthFinding f;
        f.rule = rule.name;
        f.severity = rule.severity;
        f.trial = trial;
        f.t = t;
        f.value = value;
        f.message = std::move(message);
        report.findings.push_back(std::move(f));
    }

  private:
    HealthReport &report;
    const HealthOptions &opts;
};

std::string
format(const char *fmt, double a, double b = 0.0)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), fmt, a, b);
    return buf;
}

/** Event-stream rules, replayed one trial at a time. */
void
checkEvents(const std::vector<TraceEvent> &events, Collector &out)
{
    enum class DgState { Off, Starting, Online };

    std::size_t i = 0;
    while (i < events.size()) {
        const std::uint64_t trial = events[i].trial;
        bool outage_open = false;
        bool on_battery = false;
        double last_soc = -1.0;
        DgState dg = DgState::Off;
        std::uint32_t last_incident = 0;

        for (; i < events.size() && events[i].trial == trial; ++i) {
            const TraceEvent &ev = events[i];
            switch (ev.kind) {
              case EventKind::OutageStart:
                if (outage_open)
                    out.add(kOutagePairing, trial, ev.simTime, 0.0,
                            "outage-start while an outage is open");
                outage_open = true;
                if (ev.incident != 0) {
                    if (ev.incident != last_incident + 1)
                        out.add(kIncidentIds, trial, ev.simTime,
                                ev.incident,
                                format("incident id %.0f after %.0f "
                                       "(expected sequential)",
                                       ev.incident, last_incident));
                    last_incident = ev.incident;
                }
                break;
              case EventKind::OutageEnd:
                if (!outage_open)
                    out.add(kOutagePairing, trial, ev.simTime, 0.0,
                            "outage-end without a matching "
                            "outage-start");
                outage_open = false;
                on_battery = false;
                dg = DgState::Off;
                last_soc = -1.0;
                break;
              case EventKind::PowerLost:
                if (!outage_open)
                    out.add(kOutagePairing, trial, ev.simTime, 0.0,
                            "power lost outside any outage");
                on_battery = false;
                break;
              case EventKind::UpsDischarge:
                on_battery = true;
                last_soc = -1.0;
                break;
              case EventKind::DgStart:
                if (dg != DgState::Off)
                    out.add(kDgStateMachine, trial, ev.simTime, 0.0,
                            "dg-start while the DG is already "
                            "starting or online");
                dg = DgState::Starting;
                break;
              case EventKind::DgStartFailed:
                break; // a failed attempt leaves the DG off
              case EventKind::DgOnline:
                if (dg != DgState::Starting)
                    out.add(kDgStateMachine, trial, ev.simTime, 0.0,
                            "dg-online without a preceding dg-start");
                dg = DgState::Online;
                break;
              case EventKind::DgCarrying:
                if (dg != DgState::Online)
                    out.add(kDgStateMachine, trial, ev.simTime, 0.0,
                            "dg-carrying while the DG is not online");
                on_battery = false;
                break;
              case EventKind::BatterySoc:
                if (ev.a < 0.0 || ev.a > 1.0)
                    out.add(kSocBounds, trial, ev.simTime, ev.a,
                            format("traced SoC %.6g outside [0, 1]",
                                   ev.a));
                if (on_battery && last_soc >= 0.0 &&
                    ev.a > last_soc + 1e-9)
                    out.add(kSocMonotone, trial, ev.simTime, ev.a,
                            format("SoC rose %.6g -> %.6g while on "
                                   "battery",
                                   last_soc, ev.a));
                if (on_battery)
                    last_soc = ev.a;
                break;
              case EventKind::TrialEnd: {
                constexpr double kYearMin = 365.0 * 24.0 * 60.0;
                if (ev.a < 0.0 || ev.a > kYearMin)
                    out.add(kTrialInvariants, trial, ev.simTime, ev.a,
                            format("trial downtime %.6g min outside "
                                   "[0, %.0f]",
                                   ev.a, kYearMin));
                if (ev.b < 0.0)
                    out.add(kTrialInvariants, trial, ev.simTime, ev.b,
                            format("battery energy %.6g kWh is "
                                   "negative",
                                   ev.b));
                break;
              }
              default:
                break;
            }
        }
    }
}

/**
 * Power-balance over sampled signals: at every sample instant the
 * supply mix must not exceed the load (surplus = conjured energy,
 * Critical). Deficits are legal inside an outage — ride-through,
 * transfer gaps and dark floors all starve the load by design — but
 * a deficit on healthy utility is a Warning.
 */
void
checkPowerBalance(const std::vector<TraceEvent> &events,
                  const TimeSeriesStore &series,
                  const HealthOptions &opts, Collector &out)
{
    // Outage windows per trial, from the event stream. A still-open
    // window extends to the end of the trial.
    struct Window
    {
        Time lo, hi;
    };
    std::map<std::uint64_t, std::vector<Window>> outages;
    for (const TraceEvent &ev : events) {
        auto &w = outages[ev.trial];
        if (ev.kind == EventKind::OutageStart)
            w.push_back({ev.simTime, kTimeNever});
        else if (ev.kind == EventKind::OutageEnd && !w.empty() &&
                 w.back().hi == kTimeNever)
            w.back().hi = ev.simTime;
    }
    const auto inOutage = [&](std::uint64_t trial, Time t) {
        const auto it = outages.find(trial);
        if (it == outages.end())
            return false;
        for (const Window &w : it->second)
            if (t >= w.lo && (w.hi == kTimeNever || t <= w.hi))
                return true;
        return false;
    };

    // Channels are contiguous and sorted (trial, signal, t); the
    // sampler emits every signal at every tick, so the per-trial
    // channels of the four power signals are parallel arrays.
    const auto &chans = series.channels();
    const auto chanFor = [&](std::uint64_t trial, SignalId sig)
        -> const TimeSeriesStore::Channel * {
        for (const auto &c : chans)
            if (c.trial == trial && c.signal == sig)
                return &c;
        return nullptr;
    };
    for (const auto &load_ch : chans) {
        if (load_ch.signal != SignalId::LoadW)
            continue;
        const auto *util = chanFor(load_ch.trial, SignalId::UtilityW);
        const auto *batt = chanFor(load_ch.trial, SignalId::BatteryW);
        const auto *dg = chanFor(load_ch.trial, SignalId::DgW);
        if (!util || !batt || !dg)
            continue;
        const std::size_t n = load_ch.end - load_ch.begin;
        if (util->end - util->begin != n ||
            batt->end - batt->begin != n || dg->end - dg->begin != n)
            continue; // unparallel channels: nothing sound to check
        for (std::size_t k = 0; k < n; ++k) {
            const Time t = series.times()[load_ch.begin + k];
            const double load = series.values()[load_ch.begin + k];
            const double supply = series.values()[util->begin + k] +
                                  series.values()[batt->begin + k] +
                                  series.values()[dg->begin + k];
            const double tol =
                opts.powerBalanceRelTol * std::max(1.0, load);
            if (supply > load + tol)
                out.add(kPowerBalance, load_ch.trial, t,
                        supply - load,
                        format("supply %.6g W exceeds load %.6g W",
                               supply, load));
            else if (supply < load - tol &&
                     !inOutage(load_ch.trial, t))
                out.add(kPowerBalance, load_ch.trial, t,
                        supply - load,
                        format("load %.6g W starved (supply %.6g W) "
                               "on healthy utility",
                               load, supply));
        }
    }

    // Sampled SoC obeys the same bounds as traced SoC.
    for (const auto &c : chans) {
        if (c.signal != SignalId::BatterySoc)
            continue;
        for (std::size_t k = c.begin; k < c.end; ++k) {
            const double soc = series.values()[k];
            if (soc < 0.0 || soc > 1.0)
                out.add(kSocBounds, c.trial, series.times()[k], soc,
                        format("sampled SoC %.6g outside [0, 1]",
                               soc));
        }
    }
}

void
checkAttribution(const IncidentReport &incidents,
                 const HealthOptions &opts, Collector &out)
{
    for (const TrialForensics &t : incidents.trials) {
        if (!t.hasTrialEnd)
            continue;
        const double tol =
            opts.residualRelTol *
            std::max(1.0, std::fabs(t.reportedDowntimeMin));
        if (std::fabs(t.residualMin()) > tol)
            out.add(kAttributionResidual, t.trial, 0, t.residualMin(),
                    format("attributed %.6g min vs reported %.6g min",
                           t.attributedTotalMin(),
                           t.reportedDowntimeMin));
    }
}

} // namespace

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Critical: return "critical";
    }
    return "unknown";
}

const std::vector<HealthRule> &
healthRules()
{
    return rules();
}

HealthReport
checkHealth(const std::vector<TraceEvent> &events,
            const TimeSeriesStore *series,
            const IncidentReport *incidents, const HealthOptions &opts)
{
    HealthReport report;
    Collector out(report, opts);
    checkEvents(events, out);
    if (series)
        checkPowerBalance(events, *series, opts, out);
    if (incidents)
        checkAttribution(*incidents, opts, out);
    return report;
}

} // namespace obs
} // namespace bpsim
