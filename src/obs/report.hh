/**
 * @file
 * Outage forensics stage 3: a single-file HTML campaign report. Every
 * byte — styles, tables, SVG signal lanes — is embedded in the one
 * output stream; there are no external assets, scripts or network
 * references, so the file can be archived with the shard JSON it
 * summarizes, attached to a CI run, or mailed around, and will render
 * identically anywhere.
 *
 * Per scenario (one Table 3 configuration of the sweep) the report
 * shows: campaign headline numbers, the downtime-attribution
 * breakdown by root cause, an incident timeline table (worst
 * episodes first), health findings, and LTTB-downsampled signal
 * lanes drawn as inline SVG. The writer is a pure function of its
 * inputs, so report bytes are deterministic.
 */

#ifndef BPSIM_OBS_REPORT_HH
#define BPSIM_OBS_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/health.hh"
#include "obs/incident.hh"
#include "obs/timeseries.hh"

namespace bpsim
{
namespace obs
{

/** One downsampled signal lane ((trial, signal) channel). */
struct ReportLane
{
    std::uint64_t trial = 0;
    SignalId signal = SignalId::LoadW;
    std::vector<SeriesPoint> points;
};

/** Everything the report renders for one campaign scenario. */
struct ReportScenario
{
    /** Configuration name ("DG+UPS_small", ...). */
    std::string name;
    /** @name Campaign headline numbers */
    ///@{
    std::uint64_t trials = 0;
    bool stoppedEarly = false;
    double meanDowntimeMin = 0.0;
    double p99DowntimeMin = 0.0;
    /** Fraction of loss-free years with its Wilson interval. */
    double lossFreeFraction = 0.0;
    double lossFreeLo = 0.0;
    double lossFreeHi = 0.0;
    ///@}
    /** Reconstructed incidents + attribution for this scenario. */
    IncidentReport forensics;
    /** Health findings for this scenario. */
    HealthReport health;
    /** Signal lanes (pre-downsampled; rendered as inline SVG). */
    std::vector<ReportLane> lanes;
};

/** The whole report. */
struct CampaignReport
{
    std::string title = "Backup-power campaign report";
    /** Provenance rows (build id, seed, ...) shown in the header. */
    std::vector<std::pair<std::string, std::string>> provenance;
    std::vector<ReportScenario> scenarios;
    /** Row caps keeping worst-case reports readable. */
    std::size_t maxIncidentRows = 40;
    std::size_t maxFindingRows = 40;
};

/** Render @p report as one self-contained HTML document. */
void writeHtmlReport(std::ostream &os, const CampaignReport &report);

} // namespace obs
} // namespace bpsim

#endif // BPSIM_OBS_REPORT_HH
