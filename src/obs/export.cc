#include "obs/export.hh"

#include <cmath>
#include <cstdio>
#include <inttypes.h>

namespace bpsim
{
namespace obs
{

namespace
{

/** %.17g (round-trip exact), with non-finite values clamped to 0. */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeMetadataObject(
    std::ostream &os,
    const std::vector<std::pair<std::string, std::string>> &meta)
{
    os << '{';
    bool first = true;
    for (const auto &[k, v] : meta) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(k) << "\":\"" << jsonEscape(v) << '"';
    }
    os << '}';
}

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<TraceEvent> &events,
                 const TraceExportOptions &opts)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    char head[160];
    for (const TraceEvent &ev : events) {
        if (!first)
            os << ",\n";
        first = false;

        // Outages render as duration spans; everything else as a
        // thread-scoped instant on the trial's track.
        const char *name = ev.name && ev.name[0] ? ev.name
                                                 : kindName(ev.kind);
        const char *ph = "i";
        if (ev.kind == EventKind::OutageStart) {
            name = "outage";
            ph = "B";
        } else if (ev.kind == EventKind::OutageEnd) {
            name = "outage";
            ph = "E";
        }
        std::snprintf(head, sizeof(head),
                      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\","
                      "%s\"ts\":%" PRId64 ",\"pid\":1,\"tid\":%" PRIu64,
                      name, kindCategory(ev.kind), ph,
                      ph[0] == 'i' ? "\"s\":\"t\"," : "",
                      static_cast<std::int64_t>(ev.simTime), ev.trial);
        os << head;
        // "E" closes the matching "B"; its args live on the "B" side.
        if (ph[0] != 'E') {
            os << ",\"args\":{\"seq\":" << ev.seq << ",\"event\":\""
               << kindName(ev.kind) << "\",\"a\":" << jsonNumber(ev.a)
               << ",\"b\":" << jsonNumber(ev.b);
            if (ev.detail[0] != '\0')
                os << ",\"detail\":\"" << jsonEscape(ev.detail) << '"';
            if (opts.includeWall)
                os << ",\"wall\":" << jsonNumber(ev.wallSeconds);
            os << '}';
        }
        os << '}';
    }
    os << "],\"displayTimeUnit\":\"ms\"";
    if (!opts.metadata.empty()) {
        os << ",\"metadata\":";
        writeMetadataObject(os, opts.metadata);
    }
    os << "}\n";
}

void
writeTraceCsv(std::ostream &os, const std::vector<TraceEvent> &events,
              const TraceExportOptions &opts)
{
    os << "trial,seq,category,event,name,detail,sim_us";
    if (opts.includeWall)
        os << ",wall_s";
    os << ",a,b\n";
    for (const TraceEvent &ev : events) {
        os << ev.trial << ',' << ev.seq << ',' << kindCategory(ev.kind)
           << ',' << kindName(ev.kind) << ',' << ev.name << ','
           << ev.detail << ',' << ev.simTime;
        if (opts.includeWall)
            os << ',' << jsonNumber(ev.wallSeconds);
        os << ',' << jsonNumber(ev.a) << ',' << jsonNumber(ev.b) << '\n';
    }
}

void
writeMetricsJson(
    std::ostream &os, const Registry &registry,
    const std::vector<std::pair<std::string, std::string>> &provenance)
{
    os << "{\"schema\":\"bpsim.obs.metrics\",\"schema_version\":1";
    for (const auto &[k, v] : provenance)
        os << ",\"" << jsonEscape(k) << "\":\"" << jsonEscape(v) << '"';

    os << ",\"counters\":{";
    bool first = true;
    for (const auto &[name, v] : registry.counterSnapshot()) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(name) << "\":" << v;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, v] : registry.gaugeSnapshot()) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(name) << "\":" << jsonNumber(v);
    }
    os << "},\"timers\":{";
    first = true;
    for (const auto &[name, t] : registry.timerSnapshot()) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(name)
           << "\":{\"seconds\":" << jsonNumber(t.seconds)
           << ",\"count\":" << t.count << '}';
    }
    os << "}}\n";
}

} // namespace obs
} // namespace bpsim
