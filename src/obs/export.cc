#include "obs/export.hh"

#include <cmath>
#include <cstdio>
#include <inttypes.h>

namespace bpsim
{
namespace obs
{

namespace
{

/** %.17g (round-trip exact), with non-finite values clamped to 0. */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeMetadataObject(
    std::ostream &os,
    const std::vector<std::pair<std::string, std::string>> &meta)
{
    os << '{';
    bool first = true;
    for (const auto &[k, v] : meta) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(k) << "\":\"" << jsonEscape(v) << '"';
    }
    os << '}';
}

/** The trace_event objects for @p events, ",\n"-separated. */
void
writeTraceEventObjects(std::ostream &os,
                       const std::vector<TraceEvent> &events,
                       const TraceExportOptions &opts, bool &first)
{
    char head[160];
    for (const TraceEvent &ev : events) {
        if (!first)
            os << ",\n";
        first = false;

        // Outages render as duration spans; everything else as a
        // thread-scoped instant on the trial's track.
        const char *name = ev.name && ev.name[0] ? ev.name
                                                 : kindName(ev.kind);
        const char *ph = "i";
        if (ev.kind == EventKind::OutageStart) {
            name = "outage";
            ph = "B";
        } else if (ev.kind == EventKind::OutageEnd) {
            name = "outage";
            ph = "E";
        }
        std::snprintf(head, sizeof(head),
                      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\","
                      "%s\"ts\":%" PRId64 ",\"pid\":1,\"tid\":%" PRIu64,
                      name, kindCategory(ev.kind), ph,
                      ph[0] == 'i' ? "\"s\":\"t\"," : "",
                      static_cast<std::int64_t>(ev.simTime), ev.trial);
        os << head;
        // "E" closes the matching "B"; its args live on the "B" side.
        if (ph[0] != 'E') {
            os << ",\"args\":{\"seq\":" << ev.seq;
            if (ev.incident != 0)
                os << ",\"incident\":" << ev.incident;
            os << ",\"event\":\""
               << kindName(ev.kind) << "\",\"a\":" << jsonNumber(ev.a)
               << ",\"b\":" << jsonNumber(ev.b);
            if (ev.detail[0] != '\0')
                os << ",\"detail\":\"" << jsonEscape(ev.detail) << '"';
            if (opts.includeWall)
                os << ",\"wall\":" << jsonNumber(ev.wallSeconds);
            os << '}';
        }
        os << '}';
    }
}

/** Counter-sample ("ph":"C") objects for every series channel. */
void
writeCounterTrackObjects(std::ostream &os, const TimeSeriesStore &series,
                         const TraceExportOptions &opts, bool &first)
{
    const auto &chans = series.channels();
    const bool multi_trial =
        !chans.empty() && chans.front().trial != chans.back().trial;
    for (const TimeSeriesStore::Channel &c : chans) {
        const char *signal = signalName(c.signal);
        std::string name = signal;
        if (multi_trial)
            name = "t" + std::to_string(c.trial) + "/" + signal;

        std::vector<SeriesPoint> pts;
        pts.reserve(c.end - c.begin);
        for (std::size_t i = c.begin; i < c.end; ++i)
            pts.push_back({series.times()[i], series.values()[i]});
        if (opts.maxPointsPerSeries != 0)
            pts = lttb(pts, opts.maxPointsPerSeries);

        for (const SeriesPoint &p : pts) {
            if (!first)
                os << ",\n";
            first = false;
            os << "{\"name\":\"" << name
               << "\",\"cat\":\"series\",\"ph\":\"C\",\"ts\":" << p.t
               << ",\"pid\":1,\"tid\":" << c.trial << ",\"args\":{\""
               << signal << "\":" << jsonNumber(p.value) << "}}";
        }
    }
}

void
writeChromeTraceTail(std::ostream &os, const TraceExportOptions &opts)
{
    os << "],\"displayTimeUnit\":\"ms\"";
    if (!opts.metadata.empty()) {
        os << ",\"metadata\":";
        writeMetadataObject(os, opts.metadata);
    }
    os << "}\n";
}

/** Prometheus/OpenMetrics metric-name sanitization ("dg.starts" ->
 *  "bpsim_dg_starts"). */
std::string
openMetricsName(const std::string &name)
{
    std::string out = "bpsim_";
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

/** Label-value escaping per the exposition format. */
std::string
labelEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '\\' || c == '"')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

/** Rendered label set "{k=\"v\",...}" with @p extra appended last;
 *  empty string when there are no labels at all. */
std::string
labelSet(const std::vector<std::pair<std::string, std::string>> &labels,
         const std::string &extra = {})
{
    std::string out;
    for (const auto &[k, v] : labels) {
        out += out.empty() ? "{" : ",";
        out += k + "=\"" + labelEscape(v) + "\"";
    }
    if (!extra.empty()) {
        out += out.empty() ? "{" : ",";
        out += extra;
    }
    return out.empty() ? out : out + "}";
}

/** A registry name split at the '|' label marker: the base family
 *  name plus any `k=v` pairs encoded after it. */
struct SplitName
{
    std::string base;
    std::vector<std::pair<std::string, std::string>> labels;
};

SplitName
splitMetricName(const std::string &name)
{
    SplitName out;
    const std::size_t bar = name.find('|');
    out.base = name.substr(0, bar);
    if (bar == std::string::npos)
        return out;
    std::size_t pos = bar + 1;
    while (pos < name.size()) {
        std::size_t comma = name.find(',', pos);
        if (comma == std::string::npos)
            comma = name.size();
        const std::string kv = name.substr(pos, comma - pos);
        const std::size_t eq = kv.find('=');
        if (eq != std::string::npos)
            out.labels.emplace_back(kv.substr(0, eq),
                                    kv.substr(eq + 1));
        pos = comma + 1;
    }
    return out;
}

/** Per-metric encoded labels followed by the global labels. */
std::vector<std::pair<std::string, std::string>>
mergedLabels(
    const SplitName &sn,
    const std::vector<std::pair<std::string, std::string>> &global)
{
    std::vector<std::pair<std::string, std::string>> all = sn.labels;
    all.insert(all.end(), global.begin(), global.end());
    return all;
}

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<TraceEvent> &events,
                 const TraceExportOptions &opts)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    writeTraceEventObjects(os, events, opts, first);
    writeChromeTraceTail(os, opts);
}

void
writeChromeTrace(std::ostream &os, const std::vector<TraceEvent> &events,
                 const TimeSeriesStore &series,
                 const TraceExportOptions &opts)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    writeTraceEventObjects(os, events, opts, first);
    writeCounterTrackObjects(os, series, opts, first);
    writeChromeTraceTail(os, opts);
}

void
writeTraceCsv(std::ostream &os, const std::vector<TraceEvent> &events,
              const TraceExportOptions &opts)
{
    os << "trial,seq,incident,category,event,name,detail,sim_us";
    if (opts.includeWall)
        os << ",wall_s";
    os << ",a,b\n";
    for (const TraceEvent &ev : events) {
        os << ev.trial << ',' << ev.seq << ',' << ev.incident << ','
           << kindCategory(ev.kind)
           << ',' << kindName(ev.kind) << ',' << ev.name << ','
           << ev.detail << ',' << ev.simTime;
        if (opts.includeWall)
            os << ',' << jsonNumber(ev.wallSeconds);
        os << ',' << jsonNumber(ev.a) << ',' << jsonNumber(ev.b) << '\n';
    }
}

void
writeMetricsJson(
    std::ostream &os, const Registry &registry,
    const std::vector<std::pair<std::string, std::string>> &provenance)
{
    os << "{\"schema\":\"bpsim.obs.metrics\",\"schema_version\":1";
    for (const auto &[k, v] : provenance)
        os << ",\"" << jsonEscape(k) << "\":\"" << jsonEscape(v) << '"';

    os << ",\"counters\":{";
    bool first = true;
    for (const auto &[name, v] : registry.counterSnapshot()) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(name) << "\":" << v;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, v] : registry.gaugeSnapshot()) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(name) << "\":" << jsonNumber(v);
    }
    os << "},\"timers\":{";
    first = true;
    for (const auto &[name, t] : registry.timerSnapshot()) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(name)
           << "\":{\"seconds\":" << jsonNumber(t.seconds)
           << ",\"count\":" << t.count << '}';
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : registry.histogramSnapshot()) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(name)
           << "\":{\"count\":" << h.count()
           << ",\"sum\":" << jsonNumber(h.sum())
           << ",\"p50\":" << jsonNumber(h.quantile(0.50))
           << ",\"p99\":" << jsonNumber(h.quantile(0.99))
           << ",\"buckets\":{";
        bool bfirst = true;
        for (const auto &[i, c] : h.buckets) {
            if (!bfirst)
                os << ',';
            bfirst = false;
            os << '"' << i << "\":" << c;
        }
        os << "}}";
    }
    os << "}}\n";
}

void
writeTimeSeriesCsv(std::ostream &os, const TimeSeriesStore &series)
{
    os << "trial,signal,sim_us,value\n";
    for (std::size_t i = 0; i < series.rows(); ++i) {
        os << series.trials()[i] << ','
           << signalName(series.signals()[i]) << ','
           << series.times()[i] << ','
           << jsonNumber(series.values()[i]) << '\n';
    }
}

void
writeOpenMetrics(
    std::ostream &os, const Registry &registry,
    const std::vector<std::pair<std::string, std::string>> &labels)
{
    std::string family;
    for (const auto &[name, v] : registry.counterSnapshot()) {
        const SplitName sn = splitMetricName(name);
        const std::string m = openMetricsName(sn.base);
        if (m != family) {
            os << "# TYPE " << m << " counter\n";
            family = m;
        }
        os << m << "_total" << labelSet(mergedLabels(sn, labels)) << ' '
           << v << '\n';
    }
    family.clear();
    for (const auto &[name, v] : registry.gaugeSnapshot()) {
        const SplitName sn = splitMetricName(name);
        const std::string m = openMetricsName(sn.base);
        if (m != family) {
            os << "# TYPE " << m << " gauge\n";
            family = m;
        }
        os << m << labelSet(mergedLabels(sn, labels)) << ' '
           << jsonNumber(v) << '\n';
    }
    family.clear();
    for (const auto &[name, h] : registry.histogramSnapshot()) {
        const SplitName sn = splitMetricName(name);
        const std::string m = openMetricsName(sn.base);
        if (m != family) {
            os << "# TYPE " << m << " histogram\n";
            family = m;
        }
        const auto all = mergedLabels(sn, labels);
        const std::string ls = labelSet(all);
        std::uint64_t cum = 0;
        for (const auto &[i, c] : h.buckets) {
            if (i >= Histogram::kBuckets - 1)
                break; // overflow counts land on the +Inf line below
            cum += c;
            const std::string le =
                jsonNumber(Histogram::bucketUpperBound(i));
            os << m << "_bucket" << labelSet(all, "le=\"" + le + "\"")
               << ' ' << cum << '\n';
        }
        os << m << "_bucket" << labelSet(all, "le=\"+Inf\"") << ' '
           << h.count() << '\n';
        os << m << "_sum" << ls << ' ' << jsonNumber(h.sum()) << '\n';
        os << m << "_count" << ls << ' ' << h.count() << '\n';
    }
    family.clear();
    for (const auto &[name, t] : registry.timerSnapshot()) {
        const SplitName sn = splitMetricName(name);
        const std::string m = openMetricsName(sn.base) + "_seconds";
        if (m != family) {
            os << "# TYPE " << m << " summary\n";
            family = m;
        }
        const std::string ls = labelSet(mergedLabels(sn, labels));
        os << m << "_count" << ls << ' ' << t.count << '\n';
        os << m << "_sum" << ls << ' ' << jsonNumber(t.seconds) << '\n';
    }
    os << "# EOF\n";
}

void
writeSpanTrace(std::ostream &os, const std::vector<SpanEvent> &spans,
               const TraceExportOptions &opts)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const SpanEvent &s : spans) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"name\":\"" << jsonEscape(s.name) << "\",\"cat\":\""
           << jsonEscape(s.category) << "\",\"ph\":\"X\",\"ts\":"
           << s.startUs << ",\"dur\":" << s.durUs
           << ",\"pid\":1,\"tid\":" << s.track;
        if (!s.args.empty()) {
            os << ",\"args\":{";
            bool afirst = true;
            for (const auto &[k, v] : s.args) {
                if (!afirst)
                    os << ',';
                afirst = false;
                os << '"' << jsonEscape(k) << "\":" << v;
            }
            os << '}';
        }
        os << '}';
    }
    writeChromeTraceTail(os, opts);
}

} // namespace obs
} // namespace bpsim
