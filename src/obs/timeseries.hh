/**
 * @file
 * Simulated-signal time series: a sampler-facing TimeSeriesSink that
 * records (trial, sim-time, signal, value) rows into lock-free
 * per-thread ring buffers, and a columnar TimeSeriesStore built from
 * the drained rows for export.
 *
 * Determinism contract: samples are keyed to *simulated* time — the
 * sampler is an ordinary simulation event self-rescheduling at a
 * fixed cadence (EventPriority::Stats, so the state at each instant
 * has settled) — and each trial is a pure function of its id running
 * on one worker thread. Sorting the drained rows by (trial, signal,
 * time) therefore yields a sequence that is bit-identical for any
 * thread count, the same contract as TraceSink. Wall clocks never
 * enter the stream.
 *
 * Cost contract: sampling is armed by *two* runtime knobs — the
 * global obs::setEnabled() gate and a nonzero sample cadence
 * (setSampleCadence(); default 0 = off) — and the scheduling site is
 * additionally guarded by BPSIM_OBS_ON(), so a BPSIM_OBS=OFF build
 * contains no sampler at all and a default-configured run schedules
 * no sampling events.
 *
 * Export: TimeSeriesStore groups rows into per-(trial, signal)
 * channels; obs/export.hh renders channels as Chrome trace counter
 * tracks ("ph":"C") beside the event spans, or as CSV. lttb() is the
 * largest-triangle-three-buckets downsampler for bounding export
 * size while keeping the visual shape of each series.
 */

#ifndef BPSIM_OBS_TIMESERIES_HH
#define BPSIM_OBS_TIMESERIES_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace bpsim
{
namespace obs
{

/** Which simulated signal a sample belongs to. */
enum class SignalId : std::uint8_t
{
    /** IT load demand at the hierarchy (watts). */
    LoadW,
    /** Watts served from utility. */
    UtilityW,
    /** Watts served from the UPS battery. */
    BatteryW,
    /** Watts served from the diesel generator. */
    DgW,
    /** Battery state of charge (0..1; 0 when no UPS). */
    BatterySoc,
    /** Servers in the Active state. */
    ServersActive,
    /** Technique Table 4 phase (0 normal, 1 start-of-outage,
     *  2 during-outage, 3 after-restoration, 4 power-lost). */
    TechPhase,
    /** Cluster electrical draw (watts). */
    ClusterPowerW,
    /** Pending events in the simulator queue. */
    QueueDepth,
};

/** Number of SignalId enumerators (for iteration). */
constexpr std::size_t kSignalCount = 9;

/** Stable lowercase identifier of @p s ("load_w", "battery_soc"...). */
const char *signalName(SignalId s);

/** One recorded sample. */
struct SignalSample
{
    /** Campaign trial id (0 outside campaigns). */
    std::uint64_t trial = 0;
    /** Simulated timestamp (microseconds within the trial). */
    Time t = 0;
    SignalId signal = SignalId::LoadW;
    double value = 0.0;
};

/** @name Sampling cadence (simulated time between samples) */
///@{
/** 0 (the default) disables sampling entirely. */
void setSampleCadence(Time cadence);
Time sampleCadence();
///@}

/**
 * Process-wide sample collector; the TraceSink pattern applied to
 * numeric signals. Threads append to private ring buffers without
 * locking; drain()/clear() must only run while no trials are in
 * flight.
 */
class TimeSeriesSink
{
  public:
    static TimeSeriesSink &instance();

    /**
     * Record one sample on the calling thread, tagged with
     * obs::currentTrial(). No-op while obs is disabled at runtime.
     */
    static void emit(SignalId signal, Time t, double value);

    /**
     * Remove and return every recorded sample, sorted by
     * (trial, signal, t) — a deterministic order for any thread
     * count, and the row order TimeSeriesStore expects.
     */
    std::vector<SignalSample> drain();

    /** Discard everything recorded so far. */
    void clear();

  private:
    TimeSeriesSink() = default;
};

/**
 * Columnar (struct-of-arrays) sample store with a channel index.
 * Rows are held sorted by (trial, signal, t), so each channel — one
 * (trial, signal) pair — is a contiguous row range.
 */
class TimeSeriesStore
{
  public:
    /** One contiguous per-(trial, signal) row range. */
    struct Channel
    {
        std::uint64_t trial = 0;
        SignalId signal = SignalId::LoadW;
        /** Row range [begin, end) into the column arrays. */
        std::size_t begin = 0, end = 0;
    };

    TimeSeriesStore() = default;
    /** Build from drained rows (sorted or not; sorts if needed). */
    static TimeSeriesStore fromSamples(std::vector<SignalSample> rows);

    std::size_t rows() const { return times_.size(); }
    bool empty() const { return times_.empty(); }

    /** @name Columns (all rows() long, channel-major order) */
    ///@{
    const std::vector<std::uint64_t> &trials() const { return trials_; }
    const std::vector<Time> &times() const { return times_; }
    const std::vector<SignalId> &signals() const { return signals_; }
    const std::vector<double> &values() const { return values_; }
    ///@}

    const std::vector<Channel> &channels() const { return channels_; }

  private:
    std::vector<std::uint64_t> trials_;
    std::vector<Time> times_;
    std::vector<SignalId> signals_;
    std::vector<double> values_;
    std::vector<Channel> channels_;
};

/** One (time, value) point of a downsampled series. */
struct SeriesPoint
{
    Time t = 0;
    double value = 0.0;
};

/**
 * Largest-triangle-three-buckets downsampling of one channel's
 * points to at most @p max_points (first and last points are always
 * kept; @p max_points < 3 degenerates to endpoints). Deterministic:
 * pure function of the input.
 */
std::vector<SeriesPoint> lttb(const std::vector<SeriesPoint> &points,
                              std::size_t max_points);

} // namespace obs
} // namespace bpsim

#endif // BPSIM_OBS_TIMESERIES_HH
