#include "obs/registry.hh"

#include <cstring>

#include "obs/trace.hh"

namespace bpsim
{
namespace obs
{

void
Gauge::set(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
}

double
Gauge::value() const
{
    const std::uint64_t bits = bits_.load(std::memory_order_relaxed);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

void
Gauge::reset()
{
    bits_.store(0, std::memory_order_relaxed);
}

void
TimerStat::reset()
{
    ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
}

Registry &
Registry::global()
{
    static Registry r;
    return r;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lk(m_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lk(m_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

TimerStat &
Registry::timer(const std::string &name)
{
    std::lock_guard<std::mutex> lk(m_);
    auto &slot = timers_[name];
    if (!slot)
        slot = std::make_unique<TimerStat>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lk(m_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::map<std::string, std::uint64_t>
Registry::counterSnapshot() const
{
    std::map<std::string, std::uint64_t> out;
    std::lock_guard<std::mutex> lk(m_);
    for (const auto &[name, c] : counters_)
        out[name] = c->value();
    return out;
}

std::map<std::string, double>
Registry::gaugeSnapshot() const
{
    std::map<std::string, double> out;
    std::lock_guard<std::mutex> lk(m_);
    for (const auto &[name, g] : gauges_)
        out[name] = g->value();
    return out;
}

std::map<std::string, TimerSnapshot>
Registry::timerSnapshot() const
{
    std::map<std::string, TimerSnapshot> out;
    std::lock_guard<std::mutex> lk(m_);
    for (const auto &[name, t] : timers_)
        out[name] = {t->seconds(), t->count()};
    return out;
}

std::map<std::string, HistogramSnapshot>
Registry::histogramSnapshot() const
{
    std::map<std::string, HistogramSnapshot> out;
    std::lock_guard<std::mutex> lk(m_);
    for (const auto &[name, h] : histograms_) {
        HistogramSnapshot s = h->snapshot();
        if (!s.buckets.empty())
            out.emplace(name, std::move(s));
    }
    return out;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lk(m_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, t] : timers_)
        t->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

void
mergeCounters(std::map<std::string, std::uint64_t> &into,
              const std::map<std::string, std::uint64_t> &from)
{
    for (const auto &[name, v] : from)
        into[name] += v;
}

std::map<std::string, std::uint64_t>
subtractCounters(const std::map<std::string, std::uint64_t> &after,
                 const std::map<std::string, std::uint64_t> &before)
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &[name, v] : after) {
        const auto it = before.find(name);
        const std::uint64_t base = it == before.end() ? 0 : it->second;
        if (v > base)
            out[name] = v - base;
    }
    return out;
}

ScopedTimer::ScopedTimer(TimerStat *stat)
    : stat_(stat), start_(std::chrono::steady_clock::now())
{
}

ScopedTimer::ScopedTimer(ScopedTimer &&other) noexcept
    : stat_(other.stat_), start_(other.start_)
{
    other.stat_ = nullptr;
}

ScopedTimer::~ScopedTimer()
{
    if (!stat_)
        return;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count();
    stat_->add(static_cast<std::uint64_t>(ns));
}

ScopedTimer
scope(const char *name)
{
    return ScopedTimer(enabled() ? &Registry::global().timer(name)
                                 : nullptr);
}

} // namespace obs
} // namespace bpsim
