#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

namespace bpsim
{
namespace obs
{

namespace
{

/** Runtime recording gate (one relaxed load on every hot path). */
std::atomic<bool> g_enabled{false};

/** Per-trial emission cap (see TraceSink::setMaxEventsPerTrial). */
std::atomic<std::uint32_t> g_trial_cap{65536};

/** Events discarded by the cap. */
std::atomic<std::uint64_t> g_dropped{0};

/**
 * One thread's event buffer. Only the owning thread appends;
 * `published` is release-stored after each append so drain() (which
 * runs with no trials in flight, after the pool's completion edge)
 * reads a consistent prefix even from still-alive worker threads.
 */
struct Ring
{
    std::vector<TraceEvent> events;
    std::atomic<std::size_t> published{0};
};

/**
 * Registry of every thread's ring. The vector is heap-allocated and
 * never destroyed: worker threads may still be alive during static
 * destruction, and the static pointer keeps the rings reachable so
 * LeakSanitizer does not flag them.
 */
std::mutex g_rings_m;
std::vector<Ring *> &
rings()
{
    static std::vector<Ring *> *const r = new std::vector<Ring *>;
    return *r;
}

/** The calling thread's ring, registered on first use. */
Ring *
localRing()
{
    thread_local Ring *ring = [] {
        auto *r = new Ring; // owned by rings(), never destroyed
        std::lock_guard<std::mutex> lk(g_rings_m);
        rings().push_back(r);
        return r;
    }();
    return ring;
}

/** Per-thread trial tag + sequence counter (see TrialScope). */
struct TrialCtx
{
    std::uint64_t trial = 0;
    std::uint32_t seq = 0;
    /** Open incident id (0 = none) and per-trial incident counter. */
    std::uint32_t incident = 0;
    std::uint32_t incidentCount = 0;
};
thread_local TrialCtx t_ctx;

/** Process epoch for the wall-clock stamps. */
std::chrono::steady_clock::time_point
wallEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

} // namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    if (on)
        wallEpoch(); // pin the epoch before the first event
    g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t
currentTrial()
{
    return t_ctx.trial;
}

std::uint32_t
beginIncident()
{
    t_ctx.incident = ++t_ctx.incidentCount;
    return t_ctx.incident;
}

void
endIncident()
{
    t_ctx.incident = 0;
}

std::uint32_t
currentIncident()
{
    return t_ctx.incident;
}

const char *
kindName(EventKind kind)
{
    switch (kind) {
      case EventKind::TrialStart: return "trial-start";
      case EventKind::OutageStart: return "outage-start";
      case EventKind::OutageEnd: return "outage-end";
      case EventKind::UpsDischarge: return "ups-discharge";
      case EventKind::BackupDepleted: return "backup-depleted";
      case EventKind::PowerLost: return "power-lost";
      case EventKind::DgStart: return "dg-start";
      case EventKind::DgStartFailed: return "dg-start-failed";
      case EventKind::DgOnline: return "dg-online";
      case EventKind::DgCarrying: return "dg-carrying";
      case EventKind::BatterySoc: return "battery-soc";
      case EventKind::Phase: return "phase";
      case EventKind::Migration: return "migration";
      case EventKind::Hibernate: return "hibernate";
      case EventKind::Availability: return "availability";
      case EventKind::Recompute: return "recompute-debt";
      case EventKind::TrialEnd: return "trial-end";
      case EventKind::Custom: return "custom";
    }
    return "unknown";
}

const char *
kindCategory(EventKind kind)
{
    switch (kind) {
      case EventKind::TrialStart:
      case EventKind::TrialEnd:
        return "trial";
      case EventKind::OutageStart:
      case EventKind::OutageEnd:
      case EventKind::UpsDischarge:
      case EventKind::BackupDepleted:
      case EventKind::PowerLost:
        return "power";
      case EventKind::DgStart:
      case EventKind::DgStartFailed:
      case EventKind::DgOnline:
      case EventKind::DgCarrying:
        return "dg";
      case EventKind::BatterySoc:
        return "battery";
      case EventKind::Phase:
      case EventKind::Migration:
      case EventKind::Hibernate:
        return "technique";
      case EventKind::Availability:
      case EventKind::Recompute:
        return "workload";
      case EventKind::Custom:
        return "custom";
    }
    return "unknown";
}

TraceSink &
TraceSink::instance()
{
    static TraceSink sink;
    return sink;
}

void
TraceSink::emit(EventKind kind, Time sim_time, const char *name,
                const char *detail, double a, double b)
{
    if (!enabled())
        return;
    TrialCtx &ctx = t_ctx;
    const std::uint32_t seq = ctx.seq++;
    if (seq >= g_trial_cap.load(std::memory_order_relaxed)) {
        g_dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Ring *ring = localRing();
    TraceEvent ev;
    ev.trial = ctx.trial;
    ev.seq = seq;
    ev.incident = ctx.incident;
    ev.kind = kind;
    ev.simTime = sim_time;
    ev.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wallEpoch())
            .count();
    ev.name = name ? name : "";
    ev.a = a;
    ev.b = b;
    ev.setDetail(detail);
    ring->events.push_back(ev);
    ring->published.store(ring->events.size(), std::memory_order_release);
}

std::vector<TraceEvent>
TraceSink::drain()
{
    std::vector<TraceEvent> out;
    {
        std::lock_guard<std::mutex> lk(g_rings_m);
        for (Ring *r : rings()) {
            const std::size_t n =
                r->published.load(std::memory_order_acquire);
            out.insert(out.end(), r->events.begin(),
                       r->events.begin() +
                           static_cast<std::ptrdiff_t>(n));
            r->events.clear();
            r->published.store(0, std::memory_order_release);
        }
    }
    g_dropped.store(0, std::memory_order_relaxed);
    std::sort(out.begin(), out.end(),
              [](const TraceEvent &x, const TraceEvent &y) {
                  return x.trial != y.trial ? x.trial < y.trial
                                            : x.seq < y.seq;
              });
    return out;
}

TraceSink::Mark
TraceSink::mark() const
{
    Mark m;
    std::lock_guard<std::mutex> lk(g_rings_m);
    m.counts.reserve(rings().size());
    for (Ring *r : rings())
        m.counts.emplace_back(
            r, r->published.load(std::memory_order_acquire));
    return m;
}

std::vector<TraceEvent>
TraceSink::eventsSince(const Mark &m) const
{
    std::vector<TraceEvent> out;
    {
        std::lock_guard<std::mutex> lk(g_rings_m);
        for (Ring *r : rings()) {
            std::size_t from = 0;
            for (const auto &[ring, count] : m.counts)
                if (ring == r) {
                    from = count;
                    break;
                }
            const std::size_t n =
                r->published.load(std::memory_order_acquire);
            // A drain() since the mark rewinds rings; clamp so a
            // stale mark degrades to "everything now present".
            from = std::min(from, n);
            out.insert(out.end(),
                       r->events.begin() +
                           static_cast<std::ptrdiff_t>(from),
                       r->events.begin() +
                           static_cast<std::ptrdiff_t>(n));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent &x, const TraceEvent &y) {
                  return x.trial != y.trial ? x.trial < y.trial
                                            : x.seq < y.seq;
              });
    return out;
}

void
TraceSink::clear()
{
    std::lock_guard<std::mutex> lk(g_rings_m);
    for (Ring *r : rings()) {
        r->events.clear();
        r->published.store(0, std::memory_order_release);
    }
    g_dropped.store(0, std::memory_order_relaxed);
}

void
TraceSink::setMaxEventsPerTrial(std::uint32_t cap)
{
    g_trial_cap.store(cap == 0 ? 1 : cap, std::memory_order_relaxed);
}

std::uint32_t
TraceSink::maxEventsPerTrial() const
{
    return g_trial_cap.load(std::memory_order_relaxed);
}

std::uint64_t
TraceSink::droppedEvents() const
{
    return g_dropped.load(std::memory_order_relaxed);
}

TrialScope::TrialScope(std::uint64_t trial)
    : prevTrial(t_ctx.trial), prevSeq(t_ctx.seq),
      prevIncident(t_ctx.incident), prevIncidentCount(t_ctx.incidentCount)
{
    t_ctx.trial = trial;
    t_ctx.seq = 0;
    t_ctx.incident = 0;
    t_ctx.incidentCount = 0;
    TraceSink::emit(EventKind::TrialStart, 0, "trial-start", nullptr,
                    static_cast<double>(trial));
}

TrialScope::~TrialScope()
{
    t_ctx.trial = prevTrial;
    t_ctx.seq = prevSeq;
    t_ctx.incident = prevIncident;
    t_ctx.incidentCount = prevIncidentCount;
}

} // namespace obs
} // namespace bpsim
