#include "obs/histogram.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bpsim
{
namespace obs
{

namespace
{

/** Lowest representable value (below it -> underflow bucket 0). */
double
minTrackable()
{
    return std::ldexp(1.0, Histogram::kMinExp);
}

/** First value past the linear range (at/above -> overflow bucket). */
double
maxTrackable()
{
    return std::ldexp(1.0, Histogram::kMaxExp + 1);
}

} // namespace

std::uint32_t
Histogram::bucketIndex(double v)
{
    // The negated comparison routes NaN, zero, negatives and
    // underflow into bucket 0.
    if (!(v >= minTrackable()))
        return 0;
    if (v >= maxTrackable())
        return kBuckets - 1;
    int e = 0;
    const double m = std::frexp(v, &e); // v = m * 2^e, m in [0.5, 1)
    const int oct = e - 1;              // v in [2^oct, 2^(oct+1))
    const int sub = std::min(
        kSubBuckets - 1,
        static_cast<int>((m - 0.5) * 2.0 * kSubBuckets));
    return 1 +
           static_cast<std::uint32_t>(oct - kMinExp) * kSubBuckets +
           static_cast<std::uint32_t>(sub);
}

double
Histogram::bucketLowerBound(std::uint32_t i)
{
    if (i == 0)
        return 0.0;
    if (i >= kBuckets - 1)
        return maxTrackable();
    const std::uint32_t lin = i - 1;
    const int oct = static_cast<int>(lin / kSubBuckets) + kMinExp;
    const int sub = static_cast<int>(lin % kSubBuckets);
    return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, oct);
}

double
Histogram::bucketUpperBound(std::uint32_t i)
{
    if (i == 0)
        return minTrackable();
    if (i >= kBuckets - 1)
        return std::numeric_limits<double>::infinity();
    return bucketLowerBound(i + 1);
}

double
Histogram::bucketMidpoint(std::uint32_t i)
{
    if (i == 0)
        return 0.0;
    if (i >= kBuckets - 1)
        return maxTrackable();
    return 0.5 * (bucketLowerBound(i) + bucketUpperBound(i));
}

std::uint64_t
Histogram::count() const
{
    std::uint64_t n = 0;
    for (const auto &b : buckets_)
        n += b.load(std::memory_order_relaxed);
    return n;
}

double
Histogram::quantile(double q) const
{
    return snapshot().quantile(q);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot s;
    for (std::uint32_t i = 0; i < kBuckets; ++i) {
        const std::uint64_t n =
            buckets_[i].load(std::memory_order_relaxed);
        if (n != 0)
            s.buckets.emplace(i, n);
    }
    return s;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
}

std::uint64_t
HistogramSnapshot::count() const
{
    std::uint64_t n = 0;
    for (const auto &[i, c] : buckets) {
        (void)i;
        n += c;
    }
    return n;
}

double
HistogramSnapshot::sum() const
{
    // Buckets iterate in ascending index order (std::map), so this
    // summation order is fixed and the result is bit-identical for
    // any partition/merge history that produced the same counts.
    double s = 0.0;
    for (const auto &[i, c] : buckets)
        s += static_cast<double>(c) * Histogram::bucketMidpoint(i);
    return s;
}

double
HistogramSnapshot::quantile(double q) const
{
    const std::uint64_t total = count();
    if (total == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    // Target rank in [1, total]; the value at cumulative rank `r` is
    // interpolated linearly inside the bucket containing it.
    const double rank =
        std::max(1.0, q * static_cast<double>(total));
    std::uint64_t cum = 0;
    for (const auto &[i, c] : buckets) {
        const double before = static_cast<double>(cum);
        cum += c;
        if (static_cast<double>(cum) >= rank) {
            if (i == 0)
                return 0.0;
            const double lo = Histogram::bucketLowerBound(i);
            if (i >= Histogram::kBuckets - 1)
                return lo;
            const double hi = Histogram::bucketUpperBound(i);
            const double frac =
                (rank - before) / static_cast<double>(c);
            return lo + (hi - lo) * frac;
        }
    }
    return 0.0; // unreachable: total > 0
}

void
mergeHistograms(std::map<std::string, HistogramSnapshot> &into,
                const std::map<std::string, HistogramSnapshot> &from)
{
    for (const auto &[name, snap] : from) {
        HistogramSnapshot &dst = into[name];
        for (const auto &[i, c] : snap.buckets)
            dst.buckets[i] += c;
    }
}

std::map<std::string, HistogramSnapshot>
subtractHistograms(const std::map<std::string, HistogramSnapshot> &after,
                   const std::map<std::string, HistogramSnapshot> &before)
{
    std::map<std::string, HistogramSnapshot> out;
    for (const auto &[name, snap] : after) {
        const auto b = before.find(name);
        HistogramSnapshot delta;
        for (const auto &[i, c] : snap.buckets) {
            std::uint64_t base = 0;
            if (b != before.end()) {
                const auto bb = b->second.buckets.find(i);
                if (bb != b->second.buckets.end())
                    base = bb->second;
            }
            if (c > base)
                delta.buckets.emplace(i, c - base);
        }
        if (!delta.buckets.empty())
            out.emplace(name, std::move(delta));
    }
    return out;
}

} // namespace obs
} // namespace bpsim
