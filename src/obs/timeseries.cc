#include "obs/timeseries.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <tuple>

#include "obs/trace.hh"

namespace bpsim
{
namespace obs
{

namespace
{

/** Simulated time between samples; 0 disables the sampler. */
std::atomic<Time> g_cadence{0};

/** One thread's sample buffer (same publish protocol as the trace
 *  rings: owner-only appends, release-published size). */
struct SampleRing
{
    std::vector<SignalSample> rows;
    std::atomic<std::size_t> published{0};
};

/** Never-destroyed ring registry (see obs/trace.cc for why). */
std::mutex g_rings_m;
std::vector<SampleRing *> &
rings()
{
    static std::vector<SampleRing *> *const r =
        new std::vector<SampleRing *>;
    return *r;
}

SampleRing *
localRing()
{
    thread_local SampleRing *ring = [] {
        auto *r = new SampleRing; // owned by rings(), never destroyed
        std::lock_guard<std::mutex> lk(g_rings_m);
        rings().push_back(r);
        return r;
    }();
    return ring;
}

bool
rowLess(const SignalSample &x, const SignalSample &y)
{
    return std::make_tuple(x.trial, static_cast<int>(x.signal), x.t) <
           std::make_tuple(y.trial, static_cast<int>(y.signal), y.t);
}

} // namespace

const char *
signalName(SignalId s)
{
    switch (s) {
      case SignalId::LoadW: return "load_w";
      case SignalId::UtilityW: return "utility_w";
      case SignalId::BatteryW: return "battery_w";
      case SignalId::DgW: return "dg_w";
      case SignalId::BatterySoc: return "battery_soc";
      case SignalId::ServersActive: return "servers_active";
      case SignalId::TechPhase: return "tech_phase";
      case SignalId::ClusterPowerW: return "cluster_power_w";
      case SignalId::QueueDepth: return "queue_depth";
    }
    return "unknown";
}

void
setSampleCadence(Time cadence)
{
    g_cadence.store(cadence < 0 ? 0 : cadence,
                    std::memory_order_relaxed);
}

Time
sampleCadence()
{
    return g_cadence.load(std::memory_order_relaxed);
}

TimeSeriesSink &
TimeSeriesSink::instance()
{
    static TimeSeriesSink sink;
    return sink;
}

void
TimeSeriesSink::emit(SignalId signal, Time t, double value)
{
    if (!enabled())
        return;
    SampleRing *ring = localRing();
    SignalSample row;
    row.trial = currentTrial();
    row.t = t;
    row.signal = signal;
    row.value = value;
    ring->rows.push_back(row);
    ring->published.store(ring->rows.size(), std::memory_order_release);
}

std::vector<SignalSample>
TimeSeriesSink::drain()
{
    std::vector<SignalSample> out;
    {
        std::lock_guard<std::mutex> lk(g_rings_m);
        for (SampleRing *r : rings()) {
            const std::size_t n =
                r->published.load(std::memory_order_acquire);
            out.insert(out.end(), r->rows.begin(),
                       r->rows.begin() +
                           static_cast<std::ptrdiff_t>(n));
            r->rows.clear();
            r->published.store(0, std::memory_order_release);
        }
    }
    std::sort(out.begin(), out.end(), rowLess);
    return out;
}

void
TimeSeriesSink::clear()
{
    std::lock_guard<std::mutex> lk(g_rings_m);
    for (SampleRing *r : rings()) {
        r->rows.clear();
        r->published.store(0, std::memory_order_release);
    }
}

TimeSeriesStore
TimeSeriesStore::fromSamples(std::vector<SignalSample> rows)
{
    if (!std::is_sorted(rows.begin(), rows.end(), rowLess))
        std::sort(rows.begin(), rows.end(), rowLess);
    TimeSeriesStore s;
    s.trials_.reserve(rows.size());
    s.times_.reserve(rows.size());
    s.signals_.reserve(rows.size());
    s.values_.reserve(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SignalSample &r = rows[i];
        if (s.channels_.empty() ||
            s.channels_.back().trial != r.trial ||
            s.channels_.back().signal != r.signal) {
            Channel c;
            c.trial = r.trial;
            c.signal = r.signal;
            c.begin = i;
            s.channels_.push_back(c);
        }
        s.channels_.back().end = i + 1;
        s.trials_.push_back(r.trial);
        s.times_.push_back(r.t);
        s.signals_.push_back(r.signal);
        s.values_.push_back(r.value);
    }
    return s;
}

std::vector<SeriesPoint>
lttb(const std::vector<SeriesPoint> &points, std::size_t max_points)
{
    const std::size_t n = points.size();
    if (max_points >= n || n <= 2)
        return points;
    if (max_points < 3) {
        // Degenerate budget: keep the endpoints only.
        return {points.front(), points.back()};
    }

    std::vector<SeriesPoint> out;
    out.reserve(max_points);
    out.push_back(points.front());

    // Interior points are split into max_points-2 buckets; from each
    // bucket keep the point forming the largest triangle with the
    // previously kept point and the next bucket's average.
    const std::size_t buckets = max_points - 2;
    const double span =
        static_cast<double>(n - 2) / static_cast<double>(buckets);
    std::size_t prev = 0;
    for (std::size_t b = 0; b < buckets; ++b) {
        const std::size_t lo =
            1 + static_cast<std::size_t>(
                    std::floor(static_cast<double>(b) * span));
        std::size_t hi =
            1 + static_cast<std::size_t>(
                    std::floor(static_cast<double>(b + 1) * span));
        hi = std::min(hi, n - 1);

        // Average of the *next* bucket (or the final point).
        const std::size_t nlo = hi;
        const std::size_t nhi =
            b + 2 < buckets
                ? std::min(
                      n - 1,
                      1 + static_cast<std::size_t>(std::floor(
                              static_cast<double>(b + 2) * span)))
                : n;
        double avg_t = 0.0, avg_v = 0.0;
        const std::size_t nn = nhi > nlo ? nhi - nlo : 1;
        for (std::size_t i = nlo; i < nhi; ++i) {
            avg_t += static_cast<double>(points[i].t);
            avg_v += points[i].value;
        }
        if (nhi > nlo) {
            avg_t /= static_cast<double>(nn);
            avg_v /= static_cast<double>(nn);
        } else {
            avg_t = static_cast<double>(points[n - 1].t);
            avg_v = points[n - 1].value;
        }

        const double pt = static_cast<double>(points[prev].t);
        const double pv = points[prev].value;
        double best_area = -1.0;
        std::size_t best = lo;
        for (std::size_t i = lo; i < hi; ++i) {
            const double area = std::abs(
                (pt - avg_t) *
                    (points[i].value - pv) -
                (pt - static_cast<double>(points[i].t)) *
                    (avg_v - pv));
            if (area > best_area) {
                best_area = area;
                best = i;
            }
        }
        out.push_back(points[best]);
        prev = best;
    }
    out.push_back(points.back());
    return out;
}

} // namespace obs
} // namespace bpsim
