/**
 * @file
 * Static electrical and mechanical model of one datacenter server.
 *
 * Calibrated to the paper's testbed (Section 6): dual-socket 6-core
 * 3.4 GHz parts, 64 GB DRAM, 1 Gbps Ethernet, ~80 W idle, ~250 W peak,
 * 7 DVFS P-states and 8 clock-throttling T-states, S3 sleep around 5 W
 * (2-4 W per DIMM of self-refresh plus standby logic).
 */

#ifndef BPSIM_SERVER_SERVER_MODEL_HH
#define BPSIM_SERVER_SERVER_MODEL_HH

#include "sim/types.hh"

namespace bpsim
{

/** Immutable per-SKU server parameters and power curves. */
class ServerModel
{
  public:
    /** Static parameters. */
    struct Params
    {
        /** Idle power with all components on (watts). */
        Watts idlePowerW = 80.0;
        /** Measured peak draw at full load (watts). */
        Watts peakPowerW = 250.0;
        /** Draw while booting (firmware + OS load), watts. */
        Watts bootPowerW = 150.0;
        /** S3 suspend-to-RAM draw (watts). */
        Watts sleepPowerW = 5.0;
        /** Number of DVFS P-states (index 0 = fastest). */
        int pStates = 7;
        /** Number of clock-throttling T-states (index 0 = full duty). */
        int tStates = 8;
        /** Slowest P-state frequency as a fraction of nominal. */
        double minFreqRatio = 1.6 / 3.4;
        /** Exponent relating frequency to dynamic power (v ~ f). */
        double dvfsPowerExponent = 2.5;
        /** Installed DRAM (gigabytes). */
        double memoryGb = 64.0;
        /** Core count across sockets. */
        int cores = 12;
        /** Cold boot to login (seconds). */
        double bootTimeSec = 120.0;
        /** Sequential disk write bandwidth (MB/s). */
        double diskWriteMBps = 80.0;
        /** Sequential disk read bandwidth (MB/s). */
        double diskReadMBps = 115.0;
        /** Network line rate (Gb/s). */
        double nicGbps = 1.0;
        /** Achievable fraction of NIC line rate for bulk transfer. */
        double nicEfficiency = 0.85;
        /**
         * NVDIMM-equipped memory (Section 7): a super-capacitor
         * flushes DRAM to on-DIMM flash *after* power is cut, so the
         * machine needs no external backup power to preserve volatile
         * state, and an abrupt power loss persists rather than
         * destroys it.
         */
        bool nvdimm = false;
        /** DRAM restore bandwidth from on-DIMM flash (MB/s). */
        double nvdimmRestoreMBps = 1000.0;
    };

    ServerModel() : ServerModel(Params{}) {}
    explicit ServerModel(const Params &params);

    /** Static parameters. */
    const Params &params() const { return p; }

    /** Frequency of P-state @p pstate as a fraction of nominal. */
    double freqRatio(int pstate) const;

    /** Duty cycle of T-state @p tstate as a fraction of full speed. */
    double dutyRatio(int tstate) const;

    /**
     * Electrical draw in an active state.
     *
     * @param pstate       DVFS state, 0 (fastest) .. pStates-1.
     * @param tstate       Throttle state, 0 (full duty) .. tStates-1.
     * @param utilization  Offered CPU load in [0, 1].
     */
    Watts activePowerW(int pstate, int tstate, double utilization) const;

    /** Deepest-throttle active draw at full load (floor of DVFS+T). */
    Watts minActivePowerW() const;

    /** Effective bulk-transfer NIC bandwidth (bytes/second). */
    double nicBytesPerSec() const;

    /** Sequential write bandwidth (bytes/second). */
    double diskWriteBytesPerSec() const { return p.diskWriteMBps * 1e6; }

    /** Sequential read bandwidth (bytes/second). */
    double diskReadBytesPerSec() const { return p.diskReadMBps * 1e6; }

  private:
    Params p;
};

/** Gigabytes to bytes. */
constexpr double
gbToBytes(double gb)
{
    return gb * 1e9;
}

} // namespace bpsim

#endif // BPSIM_SERVER_SERVER_MODEL_HH
