#include "server/server_model.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace bpsim
{

ServerModel::ServerModel(const Params &params) : p(params)
{
    BPSIM_ASSERT(p.peakPowerW > p.idlePowerW,
                 "peak power %g must exceed idle power %g", p.peakPowerW,
                 p.idlePowerW);
    BPSIM_ASSERT(p.pStates >= 1 && p.tStates >= 1, "need >= 1 power state");
    BPSIM_ASSERT(p.minFreqRatio > 0.0 && p.minFreqRatio <= 1.0,
                 "min frequency ratio %g out of (0, 1]", p.minFreqRatio);
    BPSIM_ASSERT(p.sleepPowerW >= 0.0 && p.sleepPowerW <= p.idlePowerW,
                 "implausible sleep power %g", p.sleepPowerW);
}

double
ServerModel::freqRatio(int pstate) const
{
    BPSIM_ASSERT(pstate >= 0 && pstate < p.pStates, "P-state %d out of range",
                 pstate);
    if (p.pStates == 1)
        return 1.0;
    const double step = (1.0 - p.minFreqRatio) /
                        static_cast<double>(p.pStates - 1);
    return 1.0 - step * static_cast<double>(pstate);
}

double
ServerModel::dutyRatio(int tstate) const
{
    BPSIM_ASSERT(tstate >= 0 && tstate < p.tStates, "T-state %d out of range",
                 tstate);
    return static_cast<double>(p.tStates - tstate) /
           static_cast<double>(p.tStates);
}

Watts
ServerModel::activePowerW(int pstate, int tstate, double utilization) const
{
    BPSIM_ASSERT(utilization >= 0.0 && utilization <= 1.0,
                 "utilization %g out of [0, 1]", utilization);
    const double freq = freqRatio(pstate);
    const double duty = dutyRatio(tstate);
    const double dynamic_frac =
        utilization * duty * std::pow(freq, p.dvfsPowerExponent);
    return p.idlePowerW + (p.peakPowerW - p.idlePowerW) * dynamic_frac;
}

Watts
ServerModel::minActivePowerW() const
{
    return activePowerW(p.pStates - 1, p.tStates - 1, 1.0);
}

double
ServerModel::nicBytesPerSec() const
{
    return p.nicGbps * 1e9 / 8.0 * p.nicEfficiency;
}

} // namespace bpsim
