/**
 * @file
 * Dirty-page dynamics for migration and proactive state-flushing.
 *
 * Live migration (Xen-style iterative pre-copy) and the proactive
 * techniques (Remus-style periodic flushing) both hinge on how fast an
 * application re-dirties its memory: each copy round transfers the pages
 * dirtied during the previous round, so total migration time follows a
 * geometric series governed by dirty-rate / link-bandwidth, and the
 * steady-state residual after periodic flushing is bounded by the hot
 * working set.
 */

#ifndef BPSIM_SERVER_DIRTY_PAGES_HH
#define BPSIM_SERVER_DIRTY_PAGES_HH

#include "sim/types.hh"

namespace bpsim
{

/** Analytic dirty-page model of one application's memory image. */
class DirtyPageModel
{
  public:
    /** Static parameters. */
    struct Params
    {
        /** Total volatile state that exists to be moved (bytes). */
        double totalStateBytes = 18e9;
        /**
         * Hot working set: the pool of pages that gets re-dirtied
         * (bytes). Read-mostly workloads have small hot sets.
         */
        double hotSetBytes = 2e9;
        /** Rate at which hot pages are re-dirtied (bytes/second). */
        double dirtyRateBytesPerSec = 50e6;
    };

    DirtyPageModel() : DirtyPageModel(Params{}) {}
    explicit DirtyPageModel(const Params &params);

    /** Static parameters. */
    const Params &params() const { return p; }

    /** Bytes dirtied @p dt after a full synchronization (saturating). */
    double dirtyAfter(Time dt) const;

    /**
     * Result of an iterative pre-copy transfer.
     */
    struct CopyPlan
    {
        /** Wall-clock time for all rounds (simulated Time). */
        Time totalTime = 0;
        /** Total bytes moved across rounds. */
        double bytesMoved = 0.0;
        /** Bytes in the final stop-and-copy round. */
        double finalRoundBytes = 0.0;
        /** Number of copy rounds, including the final one. */
        int rounds = 0;
        /** True if the loop converged below the stop threshold. */
        bool converged = false;
    };

    /**
     * Plan an iterative pre-copy of @p initial_bytes over a link of
     * @p bw_bytes_per_sec, stopping when a round falls below
     * @p stop_threshold_bytes or after @p max_rounds rounds (then a
     * stop-and-copy of whatever remains dirty).
     */
    CopyPlan iterativeCopy(double initial_bytes, double bw_bytes_per_sec,
                           double stop_threshold_bytes = 256e6,
                           int max_rounds = 10) const;

    /**
     * Steady-state residual dirty bytes when the image is re-flushed
     * every @p period: the state that must still be moved after a
     * failure under the proactive techniques.
     */
    double residualAfterPeriodicFlush(Time period) const;

  private:
    Params p;
};

} // namespace bpsim

#endif // BPSIM_SERVER_DIRTY_PAGES_HH
