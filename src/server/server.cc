#include "server/server.hh"

#include "sim/logging.hh"

namespace bpsim
{

const char *
serverStateName(ServerState s)
{
    switch (s) {
      case ServerState::Off: return "Off";
      case ServerState::Booting: return "Booting";
      case ServerState::Active: return "Active";
      case ServerState::EnteringSleep: return "EnteringSleep";
      case ServerState::Sleeping: return "Sleeping";
      case ServerState::Waking: return "Waking";
      case ServerState::SavingToDisk: return "SavingToDisk";
      case ServerState::Hibernated: return "Hibernated";
      case ServerState::ResumingFromDisk: return "ResumingFromDisk";
      case ServerState::Crashed: return "Crashed";
    }
    return "?";
}

Server::Server(Simulator &sim, const ServerModel &model, int id)
    : sim(sim), model_(model), id_(id)
{
}

Watts
Server::powerW() const
{
    const auto &p = model_.params();
    switch (st) {
      case ServerState::Off:
      case ServerState::Hibernated:
      case ServerState::Crashed:
        return 0.0;
      case ServerState::Booting:
        return p.bootPowerW;
      case ServerState::Sleeping:
        return p.sleepPowerW;
      case ServerState::Active:
        return model_.activePowerW(pstate_, tstate_, util);
      case ServerState::EnteringSleep:
      case ServerState::Waking:
      case ServerState::SavingToDisk:
      case ServerState::ResumingFromDisk:
        // Transitional work (suspend, image write/read) runs the
        // machine at its current throttle settings, fully busy.
        return model_.activePowerW(pstate_, tstate_, 1.0);
    }
    return 0.0;
}

bool
Server::holdsVolatileState() const
{
    switch (st) {
      case ServerState::Active:
      case ServerState::EnteringSleep:
      case ServerState::Sleeping:
      case ServerState::Waking:
      case ServerState::SavingToDisk:
        return true;
      default:
        return false;
    }
}

void
Server::notify()
{
    if (changeFn)
        changeFn();
}

void
Server::setPState(int pstate)
{
    BPSIM_ASSERT(pstate >= 0 && pstate < model_.params().pStates,
                 "server %d: P-state %d out of range", id_, pstate);
    pstate_ = pstate;
    notify();
}

void
Server::setTState(int tstate)
{
    BPSIM_ASSERT(tstate >= 0 && tstate < model_.params().tStates,
                 "server %d: T-state %d out of range", id_, tstate);
    tstate_ = tstate;
    notify();
}

void
Server::setUtilization(double u)
{
    BPSIM_ASSERT(u >= 0.0 && u <= 1.0, "server %d: utilization %g", id_, u);
    util = u;
    notify();
}

void
Server::completeTransition(ServerState target, std::uint64_t token)
{
    if (token != transitionToken)
        return; // superseded by a crash or another transition
    st = target;
    notify();
}

namespace
{

void
scheduleCompletion(Simulator &sim, Time delay, const char *name,
                   std::function<void()> fn, EventHandle &slot)
{
    slot = sim.schedule(delay, std::move(fn), name);
}

} // namespace

void
Server::primeActive()
{
    BPSIM_ASSERT(st == ServerState::Off, "server %d: primeActive from %s",
                 id_, serverStateName(st));
    pending.cancel();
    ++transitionToken;
    st = ServerState::Active;
    pstate_ = 0;
    tstate_ = 0;
    util = 1.0;
    notify();
}

void
Server::boot(Time boot_time)
{
    BPSIM_ASSERT(st == ServerState::Off || st == ServerState::Crashed,
                 "server %d: boot from %s", id_, serverStateName(st));
    BPSIM_ASSERT(boot_time >= 0, "negative boot time");
    pending.cancel();
    st = ServerState::Booting;
    pstate_ = 0;
    tstate_ = 0;
    util = 1.0;
    const auto token = ++transitionToken;
    scheduleCompletion(sim, boot_time, "server-boot-done",
                       [this, token] {
                           completeTransition(ServerState::Active, token);
                       },
                       pending);
    notify();
}

void
Server::shutdown()
{
    BPSIM_ASSERT(st == ServerState::Active, "server %d: shutdown from %s",
                 id_, serverStateName(st));
    pending.cancel();
    ++transitionToken;
    st = ServerState::Off;
    notify();
}

void
Server::enterSleep(Time transition)
{
    BPSIM_ASSERT(st == ServerState::Active, "server %d: sleep from %s", id_,
                 serverStateName(st));
    BPSIM_ASSERT(transition >= 0, "negative sleep transition");
    pending.cancel();
    st = ServerState::EnteringSleep;
    const auto token = ++transitionToken;
    scheduleCompletion(sim, transition, "server-sleep-done",
                       [this, token] {
                           completeTransition(ServerState::Sleeping, token);
                       },
                       pending);
    notify();
}

void
Server::wake(Time resume)
{
    BPSIM_ASSERT(st == ServerState::Sleeping, "server %d: wake from %s", id_,
                 serverStateName(st));
    BPSIM_ASSERT(resume >= 0, "negative wake time");
    pending.cancel();
    st = ServerState::Waking;
    // Resume runs on restored utility power: full speed.
    pstate_ = 0;
    tstate_ = 0;
    const auto token = ++transitionToken;
    scheduleCompletion(sim, resume, "server-wake-done",
                       [this, token] {
                           completeTransition(ServerState::Active, token);
                       },
                       pending);
    notify();
}

void
Server::saveToDisk(Time save_time)
{
    BPSIM_ASSERT(st == ServerState::Active, "server %d: hibernate from %s",
                 id_, serverStateName(st));
    BPSIM_ASSERT(save_time >= 0, "negative save time");
    pending.cancel();
    st = ServerState::SavingToDisk;
    const auto token = ++transitionToken;
    scheduleCompletion(sim, save_time, "server-hibernate-done",
                       [this, token] {
                           completeTransition(ServerState::Hibernated,
                                              token);
                       },
                       pending);
    notify();
}

void
Server::resumeFromDisk(Time resume_time)
{
    BPSIM_ASSERT(st == ServerState::Hibernated,
                 "server %d: disk resume from %s", id_, serverStateName(st));
    BPSIM_ASSERT(resume_time >= 0, "negative resume time");
    pending.cancel();
    st = ServerState::ResumingFromDisk;
    // Resume runs on restored utility power: full speed.
    pstate_ = 0;
    tstate_ = 0;
    const auto token = ++transitionToken;
    scheduleCompletion(sim, resume_time, "server-resume-done",
                       [this, token] {
                           completeTransition(ServerState::Active, token);
                       },
                       pending);
    notify();
}

void
Server::crash()
{
    if (st == ServerState::Off || st == ServerState::Hibernated ||
        st == ServerState::Crashed) {
        return; // nothing volatile to lose, nothing drawing power
    }
    pending.cancel();
    ++transitionToken;
    if (model_.params().nvdimm && holdsVolatileState()) {
        // The on-DIMM super-capacitor flushes DRAM to flash after the
        // cut: the machine is dark but its state is persisted.
        st = ServerState::Hibernated;
    } else {
        st = ServerState::Crashed;
    }
    notify();
}

} // namespace bpsim
