#include "server/dirty_pages.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bpsim
{

DirtyPageModel::DirtyPageModel(const Params &params) : p(params)
{
    BPSIM_ASSERT(p.totalStateBytes >= 0.0, "negative state size");
    BPSIM_ASSERT(p.hotSetBytes >= 0.0, "negative hot set");
    BPSIM_ASSERT(p.hotSetBytes <= p.totalStateBytes + 1e-9,
                 "hot set %g exceeds total state %g", p.hotSetBytes,
                 p.totalStateBytes);
    BPSIM_ASSERT(p.dirtyRateBytesPerSec >= 0.0, "negative dirty rate");
}

double
DirtyPageModel::dirtyAfter(Time dt) const
{
    BPSIM_ASSERT(dt >= 0, "negative interval");
    return std::min(p.hotSetBytes, p.dirtyRateBytesPerSec * toSeconds(dt));
}

DirtyPageModel::CopyPlan
DirtyPageModel::iterativeCopy(double initial_bytes, double bw_bytes_per_sec,
                              double stop_threshold_bytes,
                              int max_rounds) const
{
    BPSIM_ASSERT(bw_bytes_per_sec > 0.0, "non-positive copy bandwidth");
    BPSIM_ASSERT(max_rounds >= 1, "need at least one copy round");
    CopyPlan plan;
    double pending = std::max(0.0, initial_bytes);
    for (int round = 0; round < max_rounds; ++round) {
        const double round_sec = pending / bw_bytes_per_sec;
        plan.totalTime += fromSeconds(round_sec);
        plan.bytesMoved += pending;
        plan.finalRoundBytes = pending;
        ++plan.rounds;
        // Pages dirtied while this round was in flight form the next.
        const double next = dirtyAfter(fromSeconds(round_sec));
        if (next <= stop_threshold_bytes || next >= pending) {
            // Converged (or stopped converging): stop-and-copy `next`.
            if (next > 0.0) {
                plan.totalTime += fromSeconds(next / bw_bytes_per_sec);
                plan.bytesMoved += next;
                plan.finalRoundBytes = next;
                ++plan.rounds;
            }
            plan.converged = next <= stop_threshold_bytes;
            return plan;
        }
        pending = next;
    }
    plan.converged = false;
    return plan;
}

double
DirtyPageModel::residualAfterPeriodicFlush(Time period) const
{
    return dirtyAfter(period);
}

} // namespace bpsim
