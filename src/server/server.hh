/**
 * @file
 * One server's power-state machine.
 *
 * The server owns its electrical state (P/T-state knobs, utilization,
 * sleep/hibernate/boot transitions) and reports its instantaneous draw.
 * Transition *durations* are supplied by the caller (they depend on how
 * much application state must be saved and how throttled the machine
 * is), which is exactly how the outage-handling techniques interact
 * with the hardware in the paper. Abrupt power loss in any
 * volatile-state-holding condition loses that state.
 */

#ifndef BPSIM_SERVER_SERVER_HH
#define BPSIM_SERVER_SERVER_HH

#include <functional>
#include <string>

#include "server/server_model.hh"
#include "sim/simulator.hh"
#include "sim/types.hh"

namespace bpsim
{

/** Power/operational state of one server. */
enum class ServerState
{
    /** Powered down, no volatile state. */
    Off,
    /** Firmware + OS boot in progress. */
    Booting,
    /** OS up; application runnable. */
    Active,
    /** Suspend-to-RAM transition in progress. */
    EnteringSleep,
    /** S3: DRAM in self-refresh, everything else off. */
    Sleeping,
    /** Resuming from S3. */
    Waking,
    /** Writing volatile state to local persistent storage. */
    SavingToDisk,
    /** State persisted; machine fully off. */
    Hibernated,
    /** Reading persisted state back from disk. */
    ResumingFromDisk,
    /** Lost power abruptly: off, volatile state gone. */
    Crashed,
};

/** Human-readable state name (for traces and test failures). */
const char *serverStateName(ServerState s);

/** A single server: power knobs + state machine. */
class Server
{
  public:
    Server(Simulator &sim, const ServerModel &model, int id);

    /** Stable identifier within the cluster. */
    int id() const { return id_; }

    /** The electrical model. */
    const ServerModel &model() const { return model_; }

    /** Current state. */
    ServerState state() const { return st; }

    /** Instantaneous electrical draw (watts). */
    Watts powerW() const;

    /** True in any state where DRAM contents survive. */
    bool holdsVolatileState() const;

    /** True if the last transition to Off was an abrupt crash. */
    bool crashed() const { return st == ServerState::Crashed; }

    /**
     * Register the change hook; fired after every state or knob change
     * so the cluster can re-aggregate power and performance.
     */
    void onChange(std::function<void()> fn) { changeFn = std::move(fn); }

    /** @name Performance/power knobs (valid while Active) */
    ///@{
    /** Select DVFS state 0 (fastest) .. pStates-1. */
    void setPState(int pstate);
    /** Select throttle state 0 (full duty) .. tStates-1. */
    void setTState(int tstate);
    /** Offered utilization in [0, 1]. */
    void setUtilization(double u);
    int pstate() const { return pstate_; }
    int tstate() const { return tstate_; }
    double utilization() const { return util; }
    ///@}

    /** @name Transitions (durations supplied by the caller) */
    ///@{
    /**
     * Jump straight to Active at full speed. Initialization-only
     * helper for starting simulations in steady state.
     */
    void primeActive();
    /** Off/Crashed -> Booting -> Active after @p boot_time. */
    void boot(Time boot_time);
    /** Graceful power-off from Active (consolidation shutdown). */
    void shutdown();
    /** Active -> EnteringSleep -> Sleeping after @p transition. */
    void enterSleep(Time transition);
    /** Sleeping -> Waking -> Active after @p resume. */
    void wake(Time resume);
    /** Active -> SavingToDisk -> Hibernated after @p save_time. */
    void saveToDisk(Time save_time);
    /** Hibernated -> ResumingFromDisk -> Active after @p resume_time. */
    void resumeFromDisk(Time resume_time);
    /**
     * Abrupt power loss. Any in-DRAM state is gone; an interrupted
     * save-to-disk loses the partially-written image. Hibernated and
     * Off machines are unaffected.
     */
    void crash();
    ///@}

  private:
    void completeTransition(ServerState target, std::uint64_t token);
    void notify();

    Simulator &sim;
    ServerModel model_;
    int id_;
    ServerState st = ServerState::Off;
    int pstate_ = 0;
    int tstate_ = 0;
    double util = 1.0;
    EventHandle pending;
    std::uint64_t transitionToken = 0;
    std::function<void()> changeFn;
};

} // namespace bpsim

#endif // BPSIM_SERVER_SERVER_HH
