#include "core/backup_config.hh"

#include "sim/logging.hh"

namespace bpsim
{

namespace
{

BackupConfigSpec
make(const char *name, bool has_dg, double dg_frac, bool has_ups,
     double ups_frac, double runtime_sec)
{
    BackupConfigSpec s;
    s.name = name;
    s.hasDg = has_dg;
    s.dgPowerFrac = dg_frac;
    s.hasUps = has_ups;
    s.upsPowerFrac = ups_frac;
    s.upsRuntimeSec = runtime_sec;
    return s;
}

} // namespace

BackupConfigSpec
maxPerfConfig()
{
    return make("MaxPerf", true, 1.0, true, 1.0, 120.0);
}

BackupConfigSpec
minCostConfig()
{
    return make("MinCost", false, 0.0, false, 0.0, 0.0);
}

BackupConfigSpec
noDgConfig()
{
    return make("NoDG", false, 0.0, true, 1.0, 120.0);
}

BackupConfigSpec
noUpsConfig()
{
    return make("NoUPS", true, 1.0, false, 0.0, 0.0);
}

BackupConfigSpec
dgSmallPUpsConfig()
{
    return make("DG-SmallPUPS", true, 1.0, true, 0.5, 120.0);
}

BackupConfigSpec
smallDgSmallPUpsConfig()
{
    return make("SmallDG-SmallPUPS", true, 0.5, true, 0.5, 120.0);
}

BackupConfigSpec
smallPUpsConfig()
{
    return make("SmallPUPS", false, 0.0, true, 0.5, 120.0);
}

BackupConfigSpec
largeEUpsConfig()
{
    return make("LargeEUPS", false, 0.0, true, 1.0, 30.0 * 60.0);
}

BackupConfigSpec
smallPLargeEUpsConfig()
{
    return make("SmallP-LargeEUPS", false, 0.0, true, 0.5, 62.0 * 60.0);
}

std::vector<BackupConfigSpec>
table3Configs()
{
    return {maxPerfConfig(),          minCostConfig(),
            noDgConfig(),             noUpsConfig(),
            dgSmallPUpsConfig(),      smallDgSmallPUpsConfig(),
            smallPUpsConfig(),        largeEUpsConfig(),
            smallPLargeEUpsConfig()};
}

PowerHierarchy::Config
toHierarchyConfig(const BackupConfigSpec &spec, Watts peak_w)
{
    BPSIM_ASSERT(peak_w > 0.0, "non-positive peak load %g", peak_w);
    PowerHierarchy::Config cfg;
    cfg.hasDg = spec.hasDg;
    if (spec.hasDg)
        cfg.dg.powerCapacityW = spec.dgPowerFrac * peak_w;
    cfg.hasUps = spec.hasUps;
    if (spec.hasUps) {
        cfg.ups.powerCapacityW = spec.upsPowerFrac * peak_w;
        cfg.ups.runtimeAtRatedSec = spec.upsRuntimeSec;
    }
    return cfg;
}

BackupCapacity
capacityOf(const BackupConfigSpec &spec, Watts peak_w)
{
    BackupCapacity cap;
    cap.dgKw = spec.hasDg ? spec.dgPowerFrac * peak_w / 1000.0 : 0.0;
    cap.upsKw = spec.hasUps ? spec.upsPowerFrac * peak_w / 1000.0 : 0.0;
    cap.upsRuntimeSec = spec.hasUps ? spec.upsRuntimeSec : 0.0;
    return cap;
}

} // namespace bpsim
