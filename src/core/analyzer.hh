/**
 * @file
 * The performability analyzer: runs one outage scenario through the
 * full simulator and reduces it to the paper's three evaluation metrics
 * (cost, performance during the outage, downtime), in two modes:
 *
 *  - evaluateConfig(): a *fixed* backup configuration (Table 3 rows,
 *    for Figure 5);
 *  - sizeUpsOnly(): find the *minimum-cost* UPS (power + energy) that
 *    sustains a given technique for a given outage, mirroring the
 *    paper's Figures 6-9 methodology ("for each system technique, we
 *    use the lowest cost backup configuration at each operating
 *    point"). Sizing accounts for the Peukert load/runtime curve and
 *    the free base runtime.
 */

#ifndef BPSIM_CORE_ANALYZER_HH
#define BPSIM_CORE_ANALYZER_HH

#include "core/backup_config.hh"
#include "core/cost_model.hh"
#include "technique/catalog.hh"
#include "workload/profile.hh"

namespace bpsim
{

/** One outage experiment: workload, cluster, technique, outage shape. */
struct Scenario
{
    /** The application profile (one instance per server). */
    WorkloadProfile profile;
    /**
     * Heterogeneous rack: one server per entry (Section 7). When
     * non-empty this overrides profile/nServers.
     */
    std::vector<WorkloadProfile> mixedProfiles;
    /** Server SKU parameters (defaults to the paper's testbed). */
    ServerModel::Params serverParams;
    /** Cluster size (ignored when mixedProfiles is set). */
    int nServers = 8;

    /** Effective number of servers. */
    int
    servers() const
    {
        return mixedProfiles.empty()
                   ? nServers
                   : static_cast<int>(mixedProfiles.size());
    }
    /** Outage-handling technique. */
    TechniqueSpec technique;
    /** When the outage begins (steady state before it). */
    Time outageStart = fromMinutes(5);
    /** Outage length. */
    Time outageDuration = fromMinutes(5);
    /** Observation window after restoration (recovery accounting). */
    Time settleAfter = fromHours(2);
    /** Where batch recompute penalties land in [min, max]. */
    double recomputeFraction = 0.5;
    /**
     * Battery-technology Peukert exponent; 0 selects the Figure 3
     * lead-acid fit (use kLiIonPeukertExponent for Li-ion studies).
     */
    double upsPeukertExponent = 0.0;
};

/** Reduced metrics of one simulated scenario. */
struct RunResult
{
    /** Abrupt power-loss events (0 = technique stayed within backup). */
    int losses = 0;
    /** Mean normalized performance over the outage window. */
    double perfDuringOutage = 0.0;
    /** Mean availability over the outage window. */
    double availabilityDuringOutage = 0.0;
    /**
     * Total downtime (seconds): unavailable time per application from
     * outage start through the settle window, plus batch recompute.
     */
    double downtimeSec = 0.0;
    /** Peak draw on the backup path during the run (watts). */
    Watts peakBackupDrawW = 0.0;
    /** Peak battery draw during the run (watts). */
    Watts peakBatteryDrawW = 0.0;
    /** Energy delivered by the battery (kWh). */
    double batteryEnergyKwh = 0.0;
    /**
     * Peukert charge integral: the battery runtime (at a rated power
     * equal to the peak battery draw) that the run consumed (seconds).
     */
    double peukertRuntimeSec = 0.0;
    /** Normalized performance at the end of the settle window. */
    double finalPerf = 0.0;
    /** True when everything is back to full service at the end. */
    bool recovered = false;
};

/** A (configuration, result, cost) triple. */
struct Evaluation
{
    RunResult result;
    BackupCapacity capacity;
    double costPerYr = 0.0;
    double normalizedCost = 0.0;
    /** No power-loss events: the backup covered the technique. */
    bool feasible = false;
};

/** Scenario runner and backup sizer. */
class Analyzer
{
  public:
    Analyzer() : Analyzer(CostModel()) {}
    explicit Analyzer(CostModel cost_model) : cost(cost_model) {}

    /** The cost model in use. */
    const CostModel &costModel() const { return cost; }

    /** Nominal datacenter peak for the scenario's cluster (watts). */
    Watts nominalPeakW(const Scenario &sc) const;

    /** Simulate the scenario under an explicit electrical config. */
    RunResult run(const Scenario &sc,
                  const PowerHierarchy::Config &config) const;

    /** Figure 5 mode: fixed Table 3-style configuration. */
    Evaluation evaluateConfig(const Scenario &sc,
                              const BackupConfigSpec &spec) const;

    /**
     * Figures 6-9 mode: size the cheapest UPS-only backup that covers
     * this technique for this outage, then verify it by re-running
     * with the sized configuration.
     */
    Evaluation sizeUpsOnly(const Scenario &sc) const;

  private:
    CostModel cost;
};

} // namespace bpsim

#endif // BPSIM_CORE_ANALYZER_HH
