/**
 * @file
 * Annual availability simulation: a whole year of utility behaviour —
 * many outages drawn from the Figure 1 statistics, with battery
 * recharge between them — run against one backup configuration and one
 * standing technique. This is the multi-outage complement to the
 * per-outage Analyzer, and what a capacity planner ultimately buys:
 * expected yearly downtime and its distribution.
 */

#ifndef BPSIM_CORE_ANNUAL_HH
#define BPSIM_CORE_ANNUAL_HH

#include <cstdint>
#include <vector>

#include "core/analyzer.hh"
#include "core/datacenter.hh"
#include "outage/trace.hh"
#include "sim/stats.hh"

namespace bpsim
{

/** Outcome of one simulated year. */
struct AnnualResult
{
    /** Number of utility outages in the year. */
    int outages = 0;
    /** Abrupt power-loss events. */
    int losses = 0;
    /** Total application downtime over the year (minutes). */
    double downtimeMin = 0.0;
    /** Time-average normalized performance across the year. */
    double meanPerf = 0.0;
    /** Energy drawn from batteries across the year (kWh). */
    double batteryKwh = 0.0;
    /** Longest single stretch of (full) unavailability (minutes). */
    double worstGapMin = 0.0;
};

/** Aggregate over many simulated years. */
struct AnnualSummary
{
    SummaryStats downtimeMin;
    SummaryStats lossesPerYear;
    SummaryStats meanPerf;
    SummaryStats batteryKwh;
    SummaryStats worstGapMin;
    /** Fraction of years with zero abrupt power-loss events. */
    double lossFreeYears = 0.0;

    /**
     * @name Provenance
     * The (seed, trial range) that produced these aggregates: year y
     * drew from Rng::stream(seed, y) for y in [firstYear, firstYear +
     * years). Stamped so every exported result is traceable to its
     * randomness.
     */
    ///@{
    std::uint64_t seed = 0;
    std::uint64_t firstYear = 0;
    std::uint64_t years = 0;
    ///@}
};

/** Multi-outage, year-scale simulation driver. */
class AnnualSimulator
{
  public:
    AnnualSimulator() = default;

    /**
     * Simulate one year: the given outage events hit a cluster of
     * @p n_servers running @p profile behind @p config, defended by
     * @p technique.
     */
    AnnualResult runYear(const WorkloadProfile &profile, int n_servers,
                         const TechniqueSpec &technique,
                         const BackupConfigSpec &config,
                         const std::vector<OutageEvent> &events) const;

    /**
     * Simulate @p years independent years with traces drawn from the
     * Figure 1 statistics. Year y draws its randomness from
     * Rng::stream(seed, y) and the years are fanned out across the
     * campaign thread pool; aggregation is in year order, so the
     * summary is bit-identical for any thread count.
     */
    AnnualSummary runYears(const WorkloadProfile &profile, int n_servers,
                           const TechniqueSpec &technique,
                           const BackupConfigSpec &config, int years,
                           std::uint64_t seed) const;

    /**
     * One year against a *sectioned* datacenter (Section 7): every
     * section rides the same outage trace behind its own backup.
     * Returns server-weighted aggregates.
     */
    AnnualResult runSectionedYear(
        const std::vector<SectionSpec> &specs,
        const std::vector<OutageEvent> &events) const;
};

} // namespace bpsim

#endif // BPSIM_CORE_ANNUAL_HH
