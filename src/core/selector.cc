#include "core/selector.hh"

#include <algorithm>

#include "campaign/runner.hh"
#include "sim/logging.hh"

namespace bpsim
{

bool
TechniqueSelector::better(const TechniqueChoice &a, const TechniqueChoice &b)
{
    if (a.eval.feasible != b.eval.feasible)
        return a.eval.feasible;
    const double perf_a = a.eval.result.perfDuringOutage;
    const double perf_b = b.eval.result.perfDuringOutage;
    if (std::abs(perf_a - perf_b) > 1e-6)
        return perf_a > perf_b;
    if (std::abs(a.eval.result.downtimeSec - b.eval.result.downtimeSec) >
        1e-3) {
        return a.eval.result.downtimeSec < b.eval.result.downtimeSec;
    }
    return a.eval.costPerYr < b.eval.costPerYr;
}

TechniqueChoice
TechniqueSelector::bestForConfig(
    const Scenario &base, const BackupConfigSpec &config,
    const std::vector<TechniqueSpec> &candidates) const
{
    BPSIM_ASSERT(!candidates.empty(), "no candidate techniques");
    // Evaluations are independent full-simulator runs: fan them out
    // across the campaign pool, then reduce in candidate order so the
    // tie-breaking (first win) matches the serial loop exactly.
    auto choices = parallelMap<TechniqueChoice>(
        candidates.size(), [&](std::uint64_t i) {
            Scenario sc = base;
            sc.technique = candidates[i];
            return TechniqueChoice{
                candidates[i], analyzer_.evaluateConfig(sc, config)};
        });
    std::optional<TechniqueChoice> best;
    for (auto &choice : choices) {
        if (!best || better(choice, *best))
            best = std::move(choice);
    }
    return *best;
}

std::vector<TechniqueChoice>
TechniqueSelector::sizeAll(const Scenario &base,
                           const std::vector<TechniqueSpec> &candidates) const
{
    // Each sizing run is an independent bisection over full simulator
    // runs; the sweep is embarrassingly parallel and order-preserving.
    return parallelMap<TechniqueChoice>(
        candidates.size(), [&](std::uint64_t i) {
            Scenario sc = base;
            sc.technique = candidates[i];
            return TechniqueChoice{candidates[i],
                                   analyzer_.sizeUpsOnly(sc)};
        });
}

std::vector<TechniqueChoice>
TechniqueSelector::costPerfFrontier(
    const Scenario &base,
    const std::vector<TechniqueSpec> &candidates) const
{
    std::vector<TechniqueChoice> feasible;
    for (auto &choice : sizeAll(base, candidates)) {
        if (choice.eval.feasible)
            feasible.push_back(std::move(choice));
    }
    std::sort(feasible.begin(), feasible.end(),
              [](const TechniqueChoice &a, const TechniqueChoice &b) {
                  if (a.eval.costPerYr != b.eval.costPerYr)
                      return a.eval.costPerYr < b.eval.costPerYr;
                  return a.eval.result.perfDuringOutage >
                         b.eval.result.perfDuringOutage;
              });
    std::vector<TechniqueChoice> frontier;
    double best_perf = -1.0;
    for (auto &choice : feasible) {
        if (choice.eval.result.perfDuringOutage > best_perf + 1e-12) {
            best_perf = choice.eval.result.perfDuringOutage;
            frontier.push_back(std::move(choice));
        }
    }
    return frontier;
}

std::optional<TechniqueChoice>
TechniqueSelector::bestUnderBudget(
    const Scenario &base, const std::vector<TechniqueSpec> &candidates,
    double max_normalized_cost) const
{
    std::optional<TechniqueChoice> best;
    for (auto &choice : sizeAll(base, candidates)) {
        if (choice.eval.normalizedCost > max_normalized_cost)
            continue;
        if (!choice.eval.feasible)
            continue;
        if (!best || better(choice, *best))
            best = choice;
    }
    return best;
}

} // namespace bpsim
