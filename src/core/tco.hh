/**
 * @file
 * Organization-level TCO analysis of DG elimination (Section 7 and
 * Figure 10).
 *
 * An outage without a DG costs revenue plus idle server depreciation,
 * both proportional to unavailable kilowatt-minutes; skipping the DG
 * saves its amortized capital cost. The crossover — yearly outage
 * minutes below which under-provisioning is profitable — is the
 * paper's ~5 hours/year for Google's 2011 financials.
 */

#ifndef BPSIM_CORE_TCO_HH
#define BPSIM_CORE_TCO_HH

namespace bpsim
{

/** Organization financial parameters (defaults: Google 2011, §7). */
struct TcoParams
{
    /**
     * Revenue per provisioned kW per minute of operation ($): $38 B
     * revenue over 260 MW for a year gives ~$0.28.
     */
    double revenuePerKwMin = 0.28;
    /**
     * Idle capital depreciation per kW per minute ($): $2000 servers,
     * 4-year life, ~250 W each.
     */
    double serverDepreciationPerKwMin = 0.003;
    /** Amortized DG cost ($/kW/year), 12-year lifetime. */
    double dgCostPerKwYr = 83.3;
};

/** Figure 10 calculator. */
class TcoModel
{
  public:
    TcoModel() : TcoModel(TcoParams{}) {}
    explicit TcoModel(const TcoParams &params) : p(params) {}

    /** The parameters. */
    const TcoParams &params() const { return p; }

    /** Combined loss rate per unavailable kW-minute ($). */
    double lossPerKwMin() const
    {
        return p.revenuePerKwMin + p.serverDepreciationPerKwMin;
    }

    /** Outage cost ($/kW/year) for a yearly unavailability. */
    double outageCostPerKwYr(double outage_min_per_yr) const
    {
        return lossPerKwMin() * outage_min_per_yr;
    }

    /** Savings from not provisioning the DG ($/kW/year). */
    double dgSavingsPerKwYr() const { return p.dgCostPerKwYr; }

    /**
     * Yearly outage minutes at which outage losses equal DG savings
     * (the Figure 10 crossover, ~294 min ~= 5 h for the defaults).
     */
    double crossoverMinutesPerYr() const
    {
        return p.dgCostPerKwYr / lossPerKwMin();
    }

    /** True when skipping the DG is profitable at this outage level. */
    bool profitableWithoutDg(double outage_min_per_yr) const
    {
        return outageCostPerKwYr(outage_min_per_yr) < dgSavingsPerKwYr();
    }

  private:
    TcoParams p;
};

} // namespace bpsim

#endif // BPSIM_CORE_TCO_HH
