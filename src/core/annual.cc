#include "core/annual.hh"

#include "campaign/runner.hh"
#include "obs/obs.hh"
#include "power/utility.hh"
#include "sim/logging.hh"
#include "workload/cluster.hh"

namespace bpsim
{

namespace
{

constexpr Time kYear = 365LL * 24 * kHour;

} // namespace

AnnualResult
AnnualSimulator::runYear(const WorkloadProfile &profile, int n_servers,
                         const TechniqueSpec &technique,
                         const BackupConfigSpec &config,
                         const std::vector<OutageEvent> &events) const
{
    Simulator sim;
    Utility utility(sim);
    const ServerModel model;
    const Watts peak =
        model.params().peakPowerW * static_cast<double>(n_servers);
    PowerHierarchy hierarchy(sim, utility, toHierarchyConfig(config, peak));
    Cluster cluster(sim, hierarchy, model, profile, n_servers);
    auto tech = makeTechnique(technique);
    tech->attach(sim, cluster, hierarchy);
    cluster.primeSteadyState();

    for (const auto &ev : events) {
        BPSIM_ASSERT(ev.end() <= kYear, "outage beyond the year");
        utility.scheduleOutage(ev.start, ev.duration);
    }

#if BPSIM_OBS_ENABLED
    // Time-series sampler: an ordinary self-rescheduling event on the
    // sim-time cadence grid (Stats priority, so the state at each
    // instant has settled). Purely read-only — enabling sampling
    // never perturbs simulation results — and keyed to simulated
    // time, so the sample stream is deterministic by construction.
    std::function<void()> sampler;
    const Time cadence = obs::sampleCadence();
    if (BPSIM_OBS_ON() && cadence > 0) {
        sampler = [&sampler, &sim, &hierarchy, &cluster, &tech,
                   cadence] {
            using obs::SignalId;
            using obs::TimeSeriesSink;
            const Time now = sim.now();
            TimeSeriesSink::emit(SignalId::LoadW, now,
                                 hierarchy.load());
            TimeSeriesSink::emit(SignalId::UtilityW, now,
                                 hierarchy.utilityShareW());
            TimeSeriesSink::emit(SignalId::BatteryW, now,
                                 hierarchy.batteryShareW());
            TimeSeriesSink::emit(SignalId::DgW, now,
                                 hierarchy.dgShareW());
            TimeSeriesSink::emit(SignalId::BatterySoc, now,
                                 hierarchy.batterySoc());
            TimeSeriesSink::emit(
                SignalId::ServersActive, now,
                static_cast<double>(cluster.activeServers()));
            TimeSeriesSink::emit(
                SignalId::TechPhase, now,
                static_cast<double>(tech->currentPhase()));
            TimeSeriesSink::emit(SignalId::ClusterPowerW, now,
                                 cluster.totalPowerW());
            TimeSeriesSink::emit(
                SignalId::QueueDepth, now,
                static_cast<double>(sim.queueDepth()));
            if (now + cadence <= kYear)
                sim.schedule(cadence, sampler, "obs-sample",
                             EventPriority::Stats);
        };
        sim.at(0, sampler, "obs-sample", EventPriority::Stats);
    }
#endif

    sim.runUntil(kYear);

    AnnualResult r;
    r.outages = static_cast<int>(events.size());
    r.losses = hierarchy.powerLossCount();
    const auto &avail = cluster.availabilityTimeline();
    r.downtimeMin = (1.0 - avail.average(0, kYear)) * toMinutes(kYear) +
                    cluster.extraDowntimeSec() / 60.0;
    r.meanPerf = cluster.perfTimeline().average(0, kYear);
    r.batteryKwh =
        joulesToKwh(hierarchy.meter().batteryEnergyJ(0, kYear));

    // Longest fully-dark stretch.
    Time worst = 0;
    Time gap_start = -1;
    double cur = avail.valueAt(0);
    for (const auto &s : avail.samples()) {
        if (cur > 0.0 && s.value == 0.0) {
            gap_start = s.at;
        } else if (cur == 0.0 && s.value > 0.0 && gap_start >= 0) {
            worst = std::max(worst, s.at - gap_start);
            gap_start = -1;
        }
        cur = s.value;
    }
    if (cur == 0.0 && gap_start >= 0)
        worst = std::max(worst, kYear - gap_start);
    r.worstGapMin = toMinutes(worst);
    // Closes the trial for the incident engine: fixes the attribution
    // horizon at kYear (truncating any still-open outage) and carries
    // the simulator's own downtime total for residual checks.
    BPSIM_TRACE(obs::EventKind::TrialEnd, kYear, "trial-end", nullptr,
                r.downtimeMin, r.batteryKwh);
    return r;
}

AnnualResult
AnnualSimulator::runSectionedYear(
    const std::vector<SectionSpec> &specs,
    const std::vector<OutageEvent> &events) const
{
    Simulator sim;
    Utility utility(sim);
    Datacenter dc(sim, utility, ServerModel{}, specs);
    for (const auto &ev : events) {
        BPSIM_ASSERT(ev.end() <= kYear, "outage beyond the year");
        utility.scheduleOutage(ev.start, ev.duration);
    }
    sim.runUntil(kYear);

    AnnualResult r;
    r.outages = static_cast<int>(events.size());
    r.losses = dc.totalLosses();
    const double total =
        static_cast<double>(dc.totalServers());
    for (int i = 0; i < dc.size(); ++i) {
        const Section &s = dc.section(i);
        const double weight =
            static_cast<double>(s.servers()) / total;
        const auto &avail = s.cluster().availabilityTimeline();
        r.downtimeMin +=
            weight * ((1.0 - avail.average(0, kYear)) *
                          toMinutes(kYear) +
                      s.cluster().extraDowntimeSec() / 60.0);
        r.meanPerf +=
            weight * s.cluster().perfTimeline().average(0, kYear);
        r.batteryKwh += joulesToKwh(
            s.hierarchy().meter().batteryEnergyJ(0, kYear));
    }
    return r;
}

AnnualSummary
AnnualSimulator::runYears(const WorkloadProfile &profile, int n_servers,
                          const TechniqueSpec &technique,
                          const BackupConfigSpec &config, int years,
                          std::uint64_t seed) const
{
    BPSIM_ASSERT(years >= 1, "need at least one year");
    const auto gen = OutageTraceGenerator::figure1();
    AnnualSummary summary;
    summary.seed = seed;
    summary.firstYear = 0;
    summary.years = static_cast<std::uint64_t>(years);
    int loss_free = 0;
    // One independent trial per year, fanned out across the campaign
    // pool; each trial builds its own Simulator and draws from
    // Rng::stream(seed, y), and the consumer below runs in year order,
    // so the summary does not depend on the thread count.
    runCampaign<AnnualResult>(
        static_cast<std::uint64_t>(years),
        [&](std::uint64_t y) {
            const obs::TrialScope trace_scope(y);
            Rng year_rng = Rng::stream(seed, y);
            const auto events = gen.generate(year_rng, kYear);
            return runYear(profile, n_servers, technique, config, events);
        },
        [&](std::uint64_t, AnnualResult &&r) {
            summary.downtimeMin.add(r.downtimeMin);
            summary.lossesPerYear.add(static_cast<double>(r.losses));
            summary.meanPerf.add(r.meanPerf);
            summary.batteryKwh.add(r.batteryKwh);
            summary.worstGapMin.add(r.worstGapMin);
            if (r.losses == 0)
                ++loss_free;
            return true;
        });
    summary.lossFreeYears =
        static_cast<double>(loss_free) / static_cast<double>(years);
    return summary;
}

} // namespace bpsim
