#include "core/analyzer.hh"

#include <algorithm>
#include <cmath>

#include "power/battery.hh"
#include "power/utility.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "workload/cluster.hh"

namespace bpsim
{

namespace
{

/**
 * Peukert charge integral of a battery-draw timeline: the runtime (at
 * rated power @p rated_w) consumed by the trace, in seconds. For a
 * constant draw P over t seconds this is t * (P / rated)^k, matching
 * the runtime-chart discharge model.
 */
double
peukertRuntimeSec(const Timeline &battery_draw, Watts rated_w, double k,
                  Time end)
{
    if (rated_w <= 0.0)
        return 0.0;
    double total = 0.0;
    Time cursor = 0;
    double value = 0.0; // battery timelines start at zero draw
    auto account = [&](Time upto) {
        if (value > 0.0 && upto > cursor) {
            total += toSeconds(upto - cursor) *
                     std::pow(value / rated_w, k);
        }
    };
    for (const auto &s : battery_draw.samples()) {
        if (s.at >= end)
            break;
        account(s.at);
        cursor = s.at;
        value = s.value;
    }
    account(end);
    return total;
}

} // namespace

Watts
Analyzer::nominalPeakW(const Scenario &sc) const
{
    return sc.serverParams.peakPowerW *
           static_cast<double>(sc.servers());
}

RunResult
Analyzer::run(const Scenario &sc, const PowerHierarchy::Config &config) const
{
    BPSIM_ASSERT(sc.servers() >= 1, "scenario needs servers");
    BPSIM_ASSERT(sc.outageDuration > 0, "scenario needs an outage");

    Simulator sim;
    Utility utility(sim);
    PowerHierarchy hierarchy(sim, utility, config);
    ServerModel model(sc.serverParams);
    Cluster cluster =
        sc.mixedProfiles.empty()
            ? Cluster(sim, hierarchy, model, sc.profile, sc.nServers)
            : Cluster(sim, hierarchy, model, sc.mixedProfiles);
    auto technique = makeTechnique(sc.technique);
    technique->attach(sim, cluster, hierarchy);
    for (int i = 0; i < cluster.size(); ++i)
        cluster.app(i).setRecomputeFraction(sc.recomputeFraction);

    cluster.primeSteadyState();
    utility.scheduleOutage(sc.outageStart, sc.outageDuration);

    const Time outage_end = sc.outageStart + sc.outageDuration;
    const Time horizon = outage_end + sc.settleAfter;
    sim.runUntil(horizon);

    RunResult r;
    r.losses = hierarchy.powerLossCount();
    const auto &perf = cluster.perfTimeline();
    const auto &avail = cluster.availabilityTimeline();
    r.perfDuringOutage = perf.average(sc.outageStart, outage_end);
    r.availabilityDuringOutage = avail.average(sc.outageStart, outage_end);
    const double observed_sec = toSeconds(horizon - sc.outageStart);
    r.downtimeSec =
        (1.0 - avail.average(sc.outageStart, horizon)) * observed_sec +
        cluster.extraDowntimeSec();
    const auto &meter = hierarchy.meter();
    r.peakBatteryDrawW = meter.fromBattery().maxOver(0, horizon);
    r.peakBackupDrawW = std::max(r.peakBatteryDrawW,
                                 meter.fromDg().maxOver(0, horizon));
    r.batteryEnergyKwh = joulesToKwh(meter.batteryEnergyJ(0, horizon));
    const double k = config.hasUps && config.ups.peukertExponent > 0.0
                         ? config.ups.peukertExponent
                         : figure3PeukertExponent();
    r.peukertRuntimeSec = peukertRuntimeSec(meter.fromBattery(),
                                            r.peakBatteryDrawW, k, horizon);
    r.finalPerf = perf.valueAt(horizon);
    r.recovered = r.finalPerf >= 0.99 && avail.valueAt(horizon) >= 0.999;
    return r;
}

Evaluation
Analyzer::evaluateConfig(const Scenario &sc,
                         const BackupConfigSpec &spec) const
{
    const Watts peak = nominalPeakW(sc);
    Evaluation ev;
    PowerHierarchy::Config cfg = toHierarchyConfig(spec, peak);
    if (cfg.hasUps)
        cfg.ups.peukertExponent = sc.upsPeukertExponent;
    ev.result = run(sc, cfg);
    ev.capacity = capacityOf(spec, peak);
    ev.costPerYr = cost.totalCostPerYr(ev.capacity);
    ev.normalizedCost = cost.normalizedCost(ev.capacity, peak / 1000.0);
    ev.feasible = ev.result.losses == 0;
    return ev;
}

Evaluation
Analyzer::sizeUpsOnly(const Scenario &sc) const
{
    const Watts peak = nominalPeakW(sc);

    // Pass 1: generous battery, observe the demand the technique
    // actually places on the backup.
    PowerHierarchy::Config generous;
    generous.hasDg = false;
    generous.hasUps = true;
    generous.ups.powerCapacityW = peak * 1.001;
    generous.ups.runtimeAtRatedSec = 30.0 * 24.0 * 3600.0;
    generous.ups.peukertExponent = sc.upsPeukertExponent;
    const RunResult probe = run(sc, generous);

    Evaluation ev;
    if (probe.peakBatteryDrawW <= 0.0) {
        // The technique never touched the battery (nothing to size).
        ev.result = probe;
        ev.capacity = BackupCapacity{};
        ev.costPerYr = 0.0;
        ev.normalizedCost = 0.0;
        ev.feasible = probe.losses == 0;
        return ev;
    }

    // Pass 2: size power to the observed peak and energy to the
    // Peukert charge actually consumed (with a small engineering
    // margin), floored at the free base runtime.
    BackupCapacity cap;
    cap.upsKw = probe.peakBatteryDrawW / 1000.0;
    cap.upsRuntimeSec =
        std::max(probe.peukertRuntimeSec * 1.02 + 1.0,
                 cost.params().freeRunTimeSec);

    PowerHierarchy::Config sized;
    sized.hasDg = false;
    sized.hasUps = true;
    sized.ups.powerCapacityW = probe.peakBatteryDrawW * 1.001;
    sized.ups.runtimeAtRatedSec = cap.upsRuntimeSec;
    sized.ups.peukertExponent = sc.upsPeukertExponent;

    ev.result = run(sc, sized);
    ev.capacity = cap;
    ev.costPerYr = cost.totalCostPerYr(cap);
    ev.normalizedCost = cost.normalizedCost(cap, peak / 1000.0);
    ev.feasible = ev.result.losses == 0;
    return ev;
}

} // namespace bpsim
