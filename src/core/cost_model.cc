#include "core/cost_model.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bpsim
{

CostParams
leadAcidCostParams()
{
    return CostParams{};
}

CostParams
liIonCostParams()
{
    CostParams p;
    p.upsPowerCostPerKwYr = 40.0;   // 10-year life amortizes cheaper
    p.upsEnergyCostPerKwhYr = 125.0; // energy dearer than lead-acid
    p.freeRunTimeSec = 60.0;         // high power density: small base
    return p;
}

CostModel::CostModel(const CostParams &params) : p(params)
{
    BPSIM_ASSERT(p.dgPowerCostPerKwYr >= 0.0, "negative DG cost");
    BPSIM_ASSERT(p.upsPowerCostPerKwYr >= 0.0, "negative UPS power cost");
    BPSIM_ASSERT(p.upsEnergyCostPerKwhYr >= 0.0, "negative energy cost");
    BPSIM_ASSERT(p.freeRunTimeSec >= 0.0, "negative free runtime");
}

double
CostModel::dgCostPerYr(double dg_kw) const
{
    BPSIM_ASSERT(dg_kw >= 0.0, "negative DG capacity");
    return p.dgPowerCostPerKwYr * dg_kw;
}

double
CostModel::upsCostPerYr(double ups_kw, double runtime_sec) const
{
    BPSIM_ASSERT(ups_kw >= 0.0, "negative UPS capacity");
    BPSIM_ASSERT(runtime_sec >= 0.0, "negative UPS runtime");
    if (ups_kw == 0.0)
        return 0.0;
    const double energy_kwh = ups_kw * runtime_sec / 3600.0;
    const double free_kwh = ups_kw * p.freeRunTimeSec / 3600.0;
    const double extra_kwh = std::max(0.0, energy_kwh - free_kwh);
    return p.upsPowerCostPerKwYr * ups_kw +
           p.upsEnergyCostPerKwhYr * extra_kwh;
}

double
CostModel::totalCostPerYr(const BackupCapacity &cap) const
{
    return dgCostPerYr(cap.dgKw) +
           upsCostPerYr(cap.upsKw, cap.upsRuntimeSec);
}

double
CostModel::maxPerfCostPerYr(double peak_kw) const
{
    return dgCostPerYr(peak_kw) + upsCostPerYr(peak_kw, p.freeRunTimeSec);
}

double
CostModel::normalizedCost(const BackupCapacity &cap, double peak_kw) const
{
    const double base = maxPerfCostPerYr(peak_kw);
    BPSIM_ASSERT(base > 0.0, "degenerate MaxPerf baseline cost");
    return totalCostPerYr(cap) / base;
}

} // namespace bpsim
