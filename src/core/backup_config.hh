/**
 * @file
 * Named backup-infrastructure configurations (the paper's Table 3).
 *
 * A BackupConfigSpec scales DG and UPS capacities as fractions of the
 * datacenter's peak power, plus an absolute battery runtime. Factory
 * functions produce the nine configurations of Table 3, and converters
 * turn a spec into (a) a PowerHierarchy::Config for simulation and
 * (b) a BackupCapacity for costing.
 */

#ifndef BPSIM_CORE_BACKUP_CONFIG_HH
#define BPSIM_CORE_BACKUP_CONFIG_HH

#include <string>
#include <vector>

#include "core/cost_model.hh"
#include "power/power_hierarchy.hh"

namespace bpsim
{

/** Scalable description of one backup configuration. */
struct BackupConfigSpec
{
    std::string name;
    /** DG present? */
    bool hasDg = false;
    /** DG capacity as a fraction of datacenter peak. */
    double dgPowerFrac = 0.0;
    /** UPS present? */
    bool hasUps = false;
    /** UPS power capacity as a fraction of datacenter peak. */
    double upsPowerFrac = 0.0;
    /** UPS battery runtime at rated power (seconds). */
    double upsRuntimeSec = 0.0;
};

/** @name Table 3 configurations */
///@{
BackupConfigSpec maxPerfConfig();
BackupConfigSpec minCostConfig();
BackupConfigSpec noDgConfig();
BackupConfigSpec noUpsConfig();
BackupConfigSpec dgSmallPUpsConfig();
BackupConfigSpec smallDgSmallPUpsConfig();
BackupConfigSpec smallPUpsConfig();
BackupConfigSpec largeEUpsConfig();
BackupConfigSpec smallPLargeEUpsConfig();
/** All nine rows, in the paper's order. */
std::vector<BackupConfigSpec> table3Configs();
///@}

/** Instantiate the electrical configuration for a given peak load. */
PowerHierarchy::Config toHierarchyConfig(const BackupConfigSpec &spec,
                                         Watts peak_w);

/** The provisioned capacities (for costing) at a given peak load. */
BackupCapacity capacityOf(const BackupConfigSpec &spec, Watts peak_w);

} // namespace bpsim

#endif // BPSIM_CORE_BACKUP_CONFIG_HH
