/**
 * @file
 * Technique selection: given a backup configuration (or a cost budget)
 * and an outage, pick the best-performing feasible technique — the
 * optimization the paper applies when reporting each configuration's
 * performability ("we choose the system technique that offers the
 * highest performance and lowest down time").
 */

#ifndef BPSIM_CORE_SELECTOR_HH
#define BPSIM_CORE_SELECTOR_HH

#include <optional>
#include <vector>

#include "core/analyzer.hh"

namespace bpsim
{

/** A candidate technique together with its evaluated outcome. */
struct TechniqueChoice
{
    TechniqueSpec spec;
    Evaluation eval;
};

/** Ranks techniques for configurations / budgets. */
class TechniqueSelector
{
  public:
    TechniqueSelector() = default;
    explicit TechniqueSelector(Analyzer analyzer)
        : analyzer_(std::move(analyzer))
    {}

    /** The analyzer in use. */
    const Analyzer &analyzer() const { return analyzer_; }

    /**
     * Rank two choices: feasibility first, then performance during the
     * outage, then lower downtime, then lower cost.
     */
    static bool better(const TechniqueChoice &a, const TechniqueChoice &b);

    /**
     * Evaluate all @p candidates under the fixed configuration
     * @p config and return the best (Figure 5 methodology).
     */
    TechniqueChoice bestForConfig(
        const Scenario &base, const BackupConfigSpec &config,
        const std::vector<TechniqueSpec> &candidates) const;

    /**
     * Size a minimal UPS-only backup for every candidate and return
     * each evaluation (Figures 6-9 raw rows).
     */
    std::vector<TechniqueChoice> sizeAll(
        const Scenario &base,
        const std::vector<TechniqueSpec> &candidates) const;

    /**
     * Among minimally-sized candidates whose normalized cost fits
     * @p max_normalized_cost, return the best; nullopt when nothing
     * fits the budget.
     */
    std::optional<TechniqueChoice> bestUnderBudget(
        const Scenario &base, const std::vector<TechniqueSpec> &candidates,
        double max_normalized_cost) const;

    /**
     * The cost / performance Pareto frontier over minimally-sized
     * feasible candidates: every returned choice is undominated (no
     * other feasible candidate is both cheaper-or-equal and
     * better-or-equal on performance, with at least one strict), and
     * the list is sorted by ascending cost (hence ascending
     * performance). This is the spectrum of operating points the
     * paper's Figures 6-9 trace out.
     */
    std::vector<TechniqueChoice> costPerfFrontier(
        const Scenario &base,
        const std::vector<TechniqueSpec> &candidates) const;

  private:
    Analyzer analyzer_;
};

} // namespace bpsim

#endif // BPSIM_CORE_SELECTOR_HH
