/**
 * @file
 * A sectioned datacenter: several (backup configuration + cluster +
 * technique) sections fed by one utility.
 *
 * Section 7 of the paper proposes exactly this structure for
 * heterogeneous fleets: "multiple datacenters or sections in a
 * datacenter could have different backup configurations, in the
 * spectrum of cost-performability choices we outlined", with workloads
 * assigned to the section whose backup matches their needs. Each
 * section owns its own power hierarchy (UPS/DG sizing) and standing
 * defense; a utility outage hits them all simultaneously, but their
 * fates diverge with their provisioning.
 */

#ifndef BPSIM_CORE_DATACENTER_HH
#define BPSIM_CORE_DATACENTER_HH

#include <memory>
#include <string>
#include <vector>

#include "core/analyzer.hh"

namespace bpsim
{

/** One section: workloads + backup sizing + standing defense. */
struct SectionSpec
{
    /** Display name ("interactive", "batch", ...). */
    std::string name;
    /** One server per profile entry. */
    std::vector<WorkloadProfile> profiles;
    /** Backup provisioning for this section. */
    BackupConfigSpec backup;
    /** Standing outage defense. */
    TechniqueSpec technique;
};

/** A living section inside a Datacenter. */
class Section
{
  public:
    Section(Simulator &sim, Utility &utility, const ServerModel &model,
            const SectionSpec &spec);

    /** The spec this section was built from. */
    const SectionSpec &spec() const { return spec_; }

    /** The section's power hierarchy. */
    PowerHierarchy &hierarchy() { return *hierarchy_; }
    const PowerHierarchy &hierarchy() const { return *hierarchy_; }

    /** The section's cluster. */
    Cluster &cluster() { return *cluster_; }
    const Cluster &cluster() const { return *cluster_; }

    /** Number of servers. */
    int servers() const { return cluster_->size(); }

    /** Nominal peak draw of the section (watts). */
    Watts peakPowerW() const { return cluster_->peakPowerW(); }

    /** Annualized backup cost of this section's provisioning. */
    double costPerYr(const CostModel &cost) const;

  private:
    SectionSpec spec_;
    std::unique_ptr<PowerHierarchy> hierarchy_;
    std::unique_ptr<Cluster> cluster_;
    std::unique_ptr<Technique> technique_;
};

/** Several sections behind one utility feed. */
class Datacenter
{
  public:
    /**
     * Build every section and prime it to steady state. @p utility
     * must outlive the datacenter.
     */
    Datacenter(Simulator &sim, Utility &utility, const ServerModel &model,
               const std::vector<SectionSpec> &specs);

    /** Number of sections. */
    int size() const { return static_cast<int>(sections_.size()); }

    /** Section @p i. */
    Section &section(int i) { return *sections_.at(i); }
    const Section &section(int i) const { return *sections_.at(i); }

    /** Total servers across sections. */
    int totalServers() const;

    /** Server-weighted normalized performance right now. */
    double aggregatePerf() const;

    /** Server-weighted availability right now. */
    double aggregateAvailability() const;

    /** Sum of section backup costs ($/year). */
    double totalCostPerYr(const CostModel &cost) const;

    /**
     * Total cost normalized to MaxPerf provisioning of the whole
     * datacenter.
     */
    double normalizedCost(const CostModel &cost) const;

    /** Abrupt power-loss events across all sections. */
    int totalLosses() const;

  private:
    std::vector<std::unique_ptr<Section>> sections_;
};

/** Reduced per-section metrics of one sectioned-datacenter scenario. */
struct SectionResult
{
    std::string name;
    double perfDuringOutage = 0.0;
    double downtimeSec = 0.0;
    int losses = 0;
    double costPerYr = 0.0;
};

/** Reduced metrics of a whole sectioned run. */
struct DatacenterResult
{
    std::vector<SectionResult> sections;
    /** Server-weighted mean performance over the outage. */
    double perfDuringOutage = 0.0;
    /** Server-weighted mean downtime (seconds). */
    double downtimeSec = 0.0;
    /** Cost normalized to whole-datacenter MaxPerf. */
    double normalizedCost = 0.0;
    int losses = 0;
};

/**
 * Convenience driver: run one outage against a sectioned datacenter
 * and reduce the outcome (the sectioned analogue of Analyzer::run).
 */
DatacenterResult runSectioned(const std::vector<SectionSpec> &specs,
                              Time outage_start, Time outage_duration,
                              Time settle_after = fromHours(2.0),
                              const CostModel &cost = CostModel());

} // namespace bpsim

#endif // BPSIM_CORE_DATACENTER_HH
