/**
 * @file
 * Backup-infrastructure cost model (Section 3, Equations 1-2, Table 1).
 *
 * Amortized annual capital expenditure of the backup path. DG cost is
 * linear in provisioned peak power. UPS cost has a power-capacity term
 * plus an energy term for battery capacity *beyond* the base
 * ("FreeRunTime") energy that comes for free with the power rating —
 * the Ragone-plot effect the paper describes. All defaults are the
 * paper's Table 1 values, already depreciated over component lifetimes
 * (12-year DG and UPS electronics, 4-year lead-acid strings).
 */

#ifndef BPSIM_CORE_COST_MODEL_HH
#define BPSIM_CORE_COST_MODEL_HH

#include "sim/types.hh"

namespace bpsim
{

/** Table 1 cost parameters (amortized $/year per unit). */
struct CostParams
{
    /** DG capital cost per kW of peak capacity ($/kW/year). */
    double dgPowerCostPerKwYr = 83.3;
    /** UPS power-electronics cost per kW ($/kW/year). */
    double upsPowerCostPerKwYr = 50.0;
    /** Battery energy cost per kWh beyond the base ($/kWh/year). */
    double upsEnergyCostPerKwhYr = 50.0;
    /** Base battery runtime at rated power that comes free (seconds). */
    double freeRunTimeSec = 120.0;
};

/** The paper's Table 1 (lead-acid strings, 4-year life). */
CostParams leadAcidCostParams();

/**
 * Li-ion economics (Section 7): a longer cell lifetime amortizes the
 * power-side electronics cheaper, but energy capacity is markedly
 * more expensive per kWh than lead-acid — shifting the optimum toward
 * energy-frugal techniques (proactive save-state over throttling).
 * Values are illustrative, consistent with the paper's qualitative
 * characterization.
 */
CostParams liIonCostParams();

/** A provisioned backup configuration's electrical capacities. */
struct BackupCapacity
{
    /** DG peak power (kW); 0 when no DG. */
    double dgKw = 0.0;
    /** UPS peak power (kW); 0 when no UPS. */
    double upsKw = 0.0;
    /** UPS battery runtime at rated power (seconds). */
    double upsRuntimeSec = 0.0;

    /** Nameplate battery energy, paper convention (kWh). */
    double
    upsEnergyKwh() const
    {
        return upsKw * upsRuntimeSec / 3600.0;
    }
};

/** Annualized cap-ex calculator. */
class CostModel
{
  public:
    CostModel() : CostModel(CostParams{}) {}
    explicit CostModel(const CostParams &params);

    /** The parameters. */
    const CostParams &params() const { return p; }

    /** Equation 1: DG cost ($/year). */
    double dgCostPerYr(double dg_kw) const;

    /**
     * Equation 2: UPS cost ($/year). Runtime below the free base
     * incurs no energy cost (the base comes with the power rating).
     */
    double upsCostPerYr(double ups_kw, double runtime_sec) const;

    /** Total backup cost ($/year). */
    double totalCostPerYr(const BackupCapacity &cap) const;

    /**
     * Cost of the paper's baseline ("MaxPerf": full DG + full UPS with
     * the base 2-minute bridge) for a datacenter of @p peak_kw.
     */
    double maxPerfCostPerYr(double peak_kw) const;

    /** Cost of @p cap normalized to MaxPerf at @p peak_kw. */
    double normalizedCost(const BackupCapacity &cap, double peak_kw) const;

  private:
    CostParams p;
};

} // namespace bpsim

#endif // BPSIM_CORE_COST_MODEL_HH
