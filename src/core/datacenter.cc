#include "core/datacenter.hh"

#include "power/utility.hh"
#include "sim/logging.hh"

namespace bpsim
{

Section::Section(Simulator &sim, Utility &utility,
                 const ServerModel &model, const SectionSpec &spec)
    : spec_(spec)
{
    BPSIM_ASSERT(!spec.profiles.empty(), "section '%s' has no servers",
                 spec.name.c_str());
    const Watts peak =
        model.params().peakPowerW *
        static_cast<double>(spec.profiles.size());
    hierarchy_ = std::make_unique<PowerHierarchy>(
        sim, utility, toHierarchyConfig(spec.backup, peak));
    cluster_ = std::make_unique<Cluster>(sim, *hierarchy_, model,
                                         spec.profiles);
    technique_ = makeTechnique(spec.technique);
    technique_->attach(sim, *cluster_, *hierarchy_);
    cluster_->primeSteadyState();
}

double
Section::costPerYr(const CostModel &cost) const
{
    return cost.totalCostPerYr(capacityOf(spec_.backup, peakPowerW()));
}

Datacenter::Datacenter(Simulator &sim, Utility &utility,
                       const ServerModel &model,
                       const std::vector<SectionSpec> &specs)
{
    BPSIM_ASSERT(!specs.empty(), "datacenter needs at least one section");
    sections_.reserve(specs.size());
    for (const auto &spec : specs) {
        sections_.push_back(
            std::make_unique<Section>(sim, utility, model, spec));
    }
}

int
Datacenter::totalServers() const
{
    int total = 0;
    for (const auto &s : sections_)
        total += s->servers();
    return total;
}

double
Datacenter::aggregatePerf() const
{
    double weighted = 0.0;
    for (const auto &s : sections_) {
        weighted += s->cluster().aggregatePerf() *
                    static_cast<double>(s->servers());
    }
    return weighted / static_cast<double>(totalServers());
}

double
Datacenter::aggregateAvailability() const
{
    double weighted = 0.0;
    for (const auto &s : sections_) {
        weighted += s->cluster().availability() *
                    static_cast<double>(s->servers());
    }
    return weighted / static_cast<double>(totalServers());
}

double
Datacenter::totalCostPerYr(const CostModel &cost) const
{
    double total = 0.0;
    for (const auto &s : sections_)
        total += s->costPerYr(cost);
    return total;
}

double
Datacenter::normalizedCost(const CostModel &cost) const
{
    double peak_kw = 0.0;
    for (const auto &s : sections_)
        peak_kw += s->peakPowerW() / 1000.0;
    return totalCostPerYr(cost) / cost.maxPerfCostPerYr(peak_kw);
}

int
Datacenter::totalLosses() const
{
    int total = 0;
    for (const auto &s : sections_)
        total += s->hierarchy().powerLossCount();
    return total;
}

DatacenterResult
runSectioned(const std::vector<SectionSpec> &specs, Time outage_start,
             Time outage_duration, Time settle_after,
             const CostModel &cost)
{
    BPSIM_ASSERT(outage_duration > 0, "need an outage");
    Simulator sim;
    Utility utility(sim);
    const ServerModel model;
    Datacenter dc(sim, utility, model, specs);
    utility.scheduleOutage(outage_start, outage_duration);
    const Time outage_end = outage_start + outage_duration;
    const Time horizon = outage_end + settle_after;
    sim.runUntil(horizon);

    DatacenterResult out;
    double weighted_perf = 0.0, weighted_down = 0.0;
    const double total_servers =
        static_cast<double>(dc.totalServers());
    for (int i = 0; i < dc.size(); ++i) {
        const Section &s = dc.section(i);
        SectionResult sr;
        sr.name = s.spec().name;
        sr.perfDuringOutage = s.cluster().perfTimeline().average(
            outage_start, outage_end);
        sr.downtimeSec =
            (1.0 - s.cluster().availabilityTimeline().average(
                       outage_start, horizon)) *
                toSeconds(horizon - outage_start) +
            s.cluster().extraDowntimeSec();
        sr.losses = s.hierarchy().powerLossCount();
        sr.costPerYr = s.costPerYr(cost);
        weighted_perf +=
            sr.perfDuringOutage * static_cast<double>(s.servers());
        weighted_down +=
            sr.downtimeSec * static_cast<double>(s.servers());
        out.losses += sr.losses;
        out.sections.push_back(std::move(sr));
    }
    out.perfDuringOutage = weighted_perf / total_servers;
    out.downtimeSec = weighted_down / total_servers;
    out.normalizedCost = dc.normalizedCost(cost);
    return out;
}

} // namespace bpsim
