/**
 * @file
 * Sleep (S3 suspend-to-RAM) save-state technique.
 *
 * On outage, every server suspends: DRAM drops to self-refresh (a few
 * watts), everything else powers off; no service is offered, but the
 * volatile state survives and resume after restoration is fast (only
 * processor caches must re-warm). The low-power variant (Sleep-L,
 * Table 6) throttles first so even the brief suspend transition draws
 * only about half of peak.
 */

#ifndef BPSIM_TECHNIQUE_SLEEP_HH
#define BPSIM_TECHNIQUE_SLEEP_HH

#include "technique/technique.hh"

namespace bpsim
{

/** Save-state via S3 suspend-to-RAM ("Sleep" / "Sleep-L"). */
class SleepTechnique : public Technique
{
  public:
    /**
     * @param low_power  Throttle to ~half of peak while suspending
     *                   (the paper's Sleep-L).
     */
    explicit SleepTechnique(bool low_power);

    Time takeEffectTime(const Cluster &cluster) const override;

    /** Save duration for the workload on server @p i (Table 8 row). */
    Time saveTimeFor(const Cluster &cluster, int i) const;

    /** Resume duration for server @p i after power returns. */
    Time resumeTimeFor(const Cluster &cluster, int i) const;

    /** Save duration for a homogeneous cluster. */
    Time
    saveTime(const Cluster &cluster) const
    {
        return saveTimeFor(cluster, 0);
    }

    /** Resume duration for a homogeneous cluster. */
    Time
    resumeTime(const Cluster &cluster) const
    {
        return resumeTimeFor(cluster, 0);
    }

  protected:
    void onOutage(Time now) override;
    void onRestore(Time now) override;
    void onDgCarrying(Time now) override;

  private:
    /** Wake everything (power is back: utility or a full-size DG). */
    void wakeAll();

    bool lowPower;
};

} // namespace bpsim

#endif // BPSIM_TECHNIQUE_SLEEP_HH
