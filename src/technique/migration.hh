/**
 * @file
 * Migration (consolidation and shutdown) techniques.
 *
 * On outage, every second server live-migrates its application onto a
 * neighbour and powers off, halving the number of machines burning idle
 * watts — more energy-proportional than throttling for today's servers
 * (Section 5). Live migration is modelled as Xen-style iterative
 * pre-copy driven by the workload's dirty-page behaviour, with a short
 * stop-and-copy blackout at the end (the hypervisor forces convergence
 * for aggressively-dirtying guests). The proactive variant (Remus-style)
 * pre-flushes state to the remote host during normal operation so only
 * the residual moves after the failure; Migration+Sleep-L additionally
 * puts the consolidated hosts to sleep once migration completes
 * (Table 6).
 */

#ifndef BPSIM_TECHNIQUE_MIGRATION_HH
#define BPSIM_TECHNIQUE_MIGRATION_HH

#include <vector>

#include "technique/technique.hh"

namespace bpsim
{

/** Period of the proactive dirty-state flush to remote memory (s). */
constexpr double kProactiveMigrationFlushSec = 40.0;

/** Stop-and-copy residual the hypervisor forces convergence to. */
constexpr double kMaxStopCopyBytes = 2e9;

/** Sustain-execution via consolidation onto half the servers. */
class MigrationTechnique : public Technique
{
  public:
    /** Variant selection. */
    struct Options
    {
        /** Remus-style periodic pre-flush to the remote host. */
        bool proactive = false;
        /** Sleep the consolidated hosts once migration completes. */
        bool sleepAfter = false;
        /** P-state for all servers while migrating (spike control). */
        int duringPState = 0;
        /** P-state of consolidated hosts for the rest of the outage. */
        int hostPState = 0;
    };

    explicit MigrationTechnique(const Options &options);

    /** Timing decomposition of one live migration. */
    struct Plan
    {
        /** Pre-copy phase: guest keeps serving (slightly degraded). */
        Time precopy = 0;
        /** Stop-and-copy blackout: guest paused. */
        Time blackout = 0;
        /** Total bytes moved. */
        double bytesMoved = 0.0;
    };

    /** Migration plan for the application homed on server @p i. */
    Plan migrationPlanFor(const Cluster &cluster, int i) const;

    /** Plan for a homogeneous cluster's workload. */
    Plan
    migrationPlan(const Cluster &cluster) const
    {
        return migrationPlanFor(cluster, 0);
    }

    Time takeEffectTime(const Cluster &cluster) const override;

    /** Variant options. */
    const Options &options() const { return opt; }

  protected:
    void onOutage(Time now) override;
    void onRestore(Time now) override;
    void onPowerLost(Time now) override;

  private:
    void finishPair(int src);
    void allConsolidated();
    void migrateBack();

    Options opt;
    int pendingMigrations = 0;
    std::vector<int> consolidatedSources;
};

} // namespace bpsim

#endif // BPSIM_TECHNIQUE_MIGRATION_HH
