/**
 * @file
 * Technique catalog: declarative specs, a factory, and candidate-set
 * generators used by the analysis layer and the benchmark harnesses.
 *
 * A TechniqueSpec is a small value type describing a concrete
 * parameterization of one of Section 5's mechanisms; makeTechnique()
 * instantiates it. Candidate generators enumerate the operating points
 * the paper sweeps: the throttling P-state range (the (min,max) bars of
 * Figures 6-9), the save-state variants, the migration variants, and a
 * grid of hybrid serve-window fractions for a given outage duration.
 */

#ifndef BPSIM_TECHNIQUE_CATALOG_HH
#define BPSIM_TECHNIQUE_CATALOG_HH

#include <memory>
#include <string>
#include <vector>

#include "technique/technique.hh"

namespace bpsim
{

/** Which mechanism a spec instantiates. */
enum class TechniqueKind
{
    None,
    Throttle,
    Sleep,
    Hibernate,
    ProactiveHibernate,
    Migration,
    ProactiveMigration,
    MigrationSleep,
    ThrottleSleep,
    ThrottleHibernate,
    /** Request redirection to a geo-replica (Section 7). */
    GeoFailover,
    /** Predictor-driven online escalation (Section 7). */
    Adaptive,
};

/** Declarative description of a parameterized technique. */
struct TechniqueSpec
{
    TechniqueKind kind = TechniqueKind::None;
    /** P-state for throttling / hybrids / migration spike control. */
    int pstate = 0;
    /** T-state for throttling / hybrids. */
    int tstate = 0;
    /** Hybrid serve window before saving. */
    Time serveFor = 0;
    /** Low-power ("-L") save variant. */
    bool lowPower = false;
    /** P-state of consolidated hosts after migration completes. */
    int hostPState = 0;
    /** Remote service level for GeoFailover. */
    double remotePerf = 0.7;
    /** Risk tolerance for the Adaptive technique. */
    double risk = 0.3;

    /** Stable display label. */
    std::string label() const;
};

/** Instantiate the technique described by @p spec. */
std::unique_ptr<Technique> makeTechnique(const TechniqueSpec &spec);

/**
 * The basic techniques of Table 4 (plus their "-L" variants), with
 * throttling enumerated across every P-state of @p model.
 */
std::vector<TechniqueSpec> basicCandidates(const ServerModel &model);

/**
 * Hybrid serve-then-save candidates for an outage of @p duration:
 * serve windows at {25, 50, 75, 95} % of the outage at both the
 * half-power P-state and the deepest P-state.
 */
std::vector<TechniqueSpec> hybridCandidates(const ServerModel &model,
                                            Time duration);

/** Everything: basic + hybrid candidates for @p duration. */
std::vector<TechniqueSpec> allCandidates(const ServerModel &model,
                                         Time duration);

/** One row of the paper's Table 5. */
struct Table5Row
{
    std::string technique;
    /** Time for the mechanism to take effect after the failure. */
    Time timeToTakeEffect;
    /** Qualitative post-activation power, as the paper phrases it. */
    std::string powerAfterActivation;
};

/** Reproduce Table 5 for a given cluster (workload-dependent timings). */
std::vector<Table5Row> table5(const Cluster &cluster);

} // namespace bpsim

#endif // BPSIM_TECHNIQUE_CATALOG_HH
