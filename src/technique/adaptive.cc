#include "technique/adaptive.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bpsim
{

AdaptiveTechnique::AdaptiveTechnique(OutagePredictor predictor,
                                     double risk_tolerance,
                                     double poll_period_sec)
    : Technique(formatString("Adaptive(risk=%.2f)", risk_tolerance),
                TechniqueFamily::Hybrid),
      predictor(std::move(predictor)), risk(risk_tolerance),
      pollSec(poll_period_sec)
{
    BPSIM_ASSERT(risk >= 0.0 && risk <= 1.0, "risk %g out of [0,1]",
                 risk);
    BPSIM_ASSERT(pollSec > 0.0, "non-positive poll period");
}

Watts
AdaptiveTechnique::levelLoadW(int pstate) const
{
    const auto &model = cluster->serverModel();
    Watts total = 0.0;
    for (int i = 0; i < cluster->size(); ++i) {
        if (cluster->server(i).state() == ServerState::Active)
            total += model.activePowerW(pstate, 0, 1.0);
    }
    return total;
}

void
AdaptiveTechnique::onOutage(Time now)
{
    const auto &model = cluster->serverModel();
    levels = {0, pstateForPowerFraction(model, 0.5),
              model.params().pStates - 1};
    outageBegan = now;
    suspended_ = false;
    escalations_ = 0;
    currentLevel = 0;
    evaluate();
}

void
AdaptiveTechnique::evaluate()
{
    if (!hierarchy->ups() ||
        hierarchy->mode() == PowerHierarchy::Mode::Dead) {
        return;
    }
    // Battery runway per level from the current state of charge.
    std::vector<Time> runway;
    std::vector<double> perf;
    const auto &model = cluster->serverModel();
    for (int p : levels) {
        runway.push_back(hierarchy->ups()->timeToEmpty(levelLoadW(p)));
        // Conservative: judge perf by the most throttle-sensitive
        // workload on the floor.
        double worst = 1.0;
        for (int i = 0; i < cluster->size(); ++i) {
            worst = std::min(
                worst, cluster->profileOf(i).throttledPerf(model, p, 0));
        }
        perf.push_back(worst);
    }
    // Reserve enough to suspend (slowest workload, throttled).
    const int p_low = pstateForPowerFraction(model, 0.5);
    const double slow =
        saveSlowdownAtThrottle(model, p_low, 0, kSleepSaveCpuWeight);
    double save_sec = 0.0;
    for (int i = 0; i < cluster->size(); ++i) {
        save_sec = std::max(save_sec,
                            cluster->profileOf(i).sleepSaveSec * slow);
    }
    const Time reserve = fromSeconds(save_sec * 2.0);

    AdaptiveEscalationPolicy policy(predictor, risk);
    const Time elapsed = sim->now() - outageBegan;
    const int pick = policy.choose(elapsed, runway, perf, reserve);

    if (pick < 0) {
        engageSleep();
        return;
    }
    const int target = levels[static_cast<std::size_t>(pick)];
    if (target > currentLevel)
        ++escalations_;
    currentLevel = target;
    for (int i = 0; i < cluster->size(); ++i) {
        Server &srv = cluster->server(i);
        if (srv.state() == ServerState::Active &&
            srv.pstate() != target) {
            srv.setPState(target);
        }
    }
    const auto e = epoch;
    sim->schedule(fromSeconds(pollSec),
                  [this, e] {
                      if (e == epoch)
                          evaluate();
                  },
                  "adaptive-poll");
}

void
AdaptiveTechnique::engageSleep()
{
    suspended_ = true;
    const auto &model = cluster->serverModel();
    const int p_low = pstateForPowerFraction(model, 0.5);
    const double slow =
        saveSlowdownAtThrottle(model, p_low, 0, kSleepSaveCpuWeight);
    for (int i = 0; i < cluster->size(); ++i) {
        Server &srv = cluster->server(i);
        if (srv.state() == ServerState::Active) {
            srv.setPState(p_low);
            srv.enterSleep(fromSeconds(
                cluster->profileOf(i).sleepSaveSec * slow));
        }
    }
}

void
AdaptiveTechnique::recoverAll()
{
    for (int i = 0; i < cluster->size(); ++i) {
        Server &srv = cluster->server(i);
        const auto &prof = cluster->profileOf(i);
        const Time resume = fromSeconds(prof.sleepResumeSec);
        switch (srv.state()) {
          case ServerState::Active:
            srv.setPState(0);
            srv.setTState(0);
            break;
          case ServerState::Sleeping:
            srv.wake(resume);
            break;
          case ServerState::EnteringSleep: {
            const auto e = epoch;
            Server *s = &srv;
            sim->schedule(fromSeconds(prof.sleepSaveSec * 2.0),
                          [this, s, e, resume] {
                              if (e != epoch)
                                  return;
                              if (s->state() == ServerState::Sleeping)
                                  s->wake(resume);
                          },
                          "adaptive-finish-then-wake");
            break;
          }
          default:
            break;
        }
    }
}

void
AdaptiveTechnique::onRestore(Time)
{
    recoverAll();
}

void
AdaptiveTechnique::onDgCarrying(Time)
{
    if (dgCoversFullLoad()) {
        ++epoch; // stop polling; the emergency is over
        recoverAll();
    }
}

} // namespace bpsim
