#include "technique/catalog.hh"

#include "sim/logging.hh"
#include "technique/adaptive.hh"
#include "technique/geo_failover.hh"
#include "technique/hibernate.hh"
#include "technique/hybrid.hh"
#include "technique/migration.hh"
#include "technique/sleep.hh"
#include "technique/throttling.hh"

namespace bpsim
{

std::string
TechniqueSpec::label() const
{
    switch (kind) {
      case TechniqueKind::None:
        return "none";
      case TechniqueKind::Throttle:
        return formatString("Throttling(p%d,t%d)", pstate, tstate);
      case TechniqueKind::Sleep:
        return lowPower ? "Sleep-L" : "Sleep";
      case TechniqueKind::Hibernate:
        return lowPower ? "Hibernate-L" : "Hibernate";
      case TechniqueKind::ProactiveHibernate:
        return lowPower ? "ProactiveHibernate-L" : "ProactiveHibernate";
      case TechniqueKind::Migration:
        return pstate > 0 || hostPState > 0
                   ? formatString("Migration(p%d,h%d)", pstate,
                                  hostPState)
                   : "Migration";
      case TechniqueKind::ProactiveMigration:
        return pstate > 0 || hostPState > 0
                   ? formatString("ProactiveMigration(p%d,h%d)", pstate,
                                  hostPState)
                   : "ProactiveMigration";
      case TechniqueKind::MigrationSleep:
        return "Migration+Sleep-L";
      case TechniqueKind::ThrottleSleep:
        return formatString("Throttle+Sleep-L(p%d,t%d,serve=%.1fmin)",
                            pstate, tstate, toMinutes(serveFor));
      case TechniqueKind::ThrottleHibernate:
        return formatString("Throttle+Hibernate(p%d,t%d,serve=%.1fmin)",
                            pstate, tstate, toMinutes(serveFor));
      case TechniqueKind::GeoFailover:
        return formatString("GeoFailover(remote=%.2f)", remotePerf);
      case TechniqueKind::Adaptive:
        return formatString("Adaptive(risk=%.2f)", risk);
    }
    return "?";
}

std::unique_ptr<Technique>
makeTechnique(const TechniqueSpec &spec)
{
    switch (spec.kind) {
      case TechniqueKind::None:
        return std::make_unique<NoTechnique>();
      case TechniqueKind::Throttle:
        return std::make_unique<Throttling>(spec.pstate, spec.tstate);
      case TechniqueKind::Sleep:
        return std::make_unique<SleepTechnique>(spec.lowPower);
      case TechniqueKind::Hibernate:
        return std::make_unique<HibernationTechnique>(spec.lowPower,
                                                      false);
      case TechniqueKind::ProactiveHibernate:
        return std::make_unique<HibernationTechnique>(spec.lowPower, true);
      case TechniqueKind::Migration: {
        MigrationTechnique::Options o;
        o.duringPState = spec.pstate;
        o.hostPState = spec.hostPState;
        return std::make_unique<MigrationTechnique>(o);
      }
      case TechniqueKind::ProactiveMigration: {
        MigrationTechnique::Options o;
        o.proactive = true;
        o.duringPState = spec.pstate;
        o.hostPState = spec.hostPState;
        return std::make_unique<MigrationTechnique>(o);
      }
      case TechniqueKind::MigrationSleep: {
        MigrationTechnique::Options o;
        o.sleepAfter = true;
        o.duringPState = spec.pstate;
        return std::make_unique<MigrationTechnique>(o);
      }
      case TechniqueKind::ThrottleSleep:
        return std::make_unique<ThrottleThenSave>(
            spec.pstate, spec.tstate, ThrottleThenSave::SaveMode::Sleep,
            spec.serveFor);
      case TechniqueKind::ThrottleHibernate:
        return std::make_unique<ThrottleThenSave>(
            spec.pstate, spec.tstate,
            ThrottleThenSave::SaveMode::Hibernate, spec.serveFor);
      case TechniqueKind::GeoFailover: {
        GeoFailover::Params p;
        p.remotePerf = spec.remotePerf;
        p.drainPState = spec.pstate;
        return std::make_unique<GeoFailover>(p);
      }
      case TechniqueKind::Adaptive:
        return std::make_unique<AdaptiveTechnique>(
            OutagePredictor(OutageDurationDistribution::figure1()),
            spec.risk);
    }
    panic("unknown technique kind");
}

std::vector<TechniqueSpec>
basicCandidates(const ServerModel &model)
{
    std::vector<TechniqueSpec> out;
    // Throttling across the full DVFS range (Figures 6-9 bars), plus
    // deep clock modulation at the slowest frequency.
    for (int p = 0; p < model.params().pStates; ++p)
        out.push_back({TechniqueKind::Throttle, p, 0, 0, false});
    const int p_min = model.params().pStates - 1;
    for (int t : {2, 4, model.params().tStates - 1})
        out.push_back({TechniqueKind::Throttle, p_min, t, 0, false});

    for (bool low : {false, true}) {
        out.push_back({TechniqueKind::Sleep, 0, 0, 0, low});
        out.push_back({TechniqueKind::Hibernate, 0, 0, 0, low});
        out.push_back({TechniqueKind::ProactiveHibernate, 0, 0, 0, low});
    }

    const int p_half = pstateForPowerFraction(model, 0.5);
    out.push_back({TechniqueKind::Migration, 0, 0, 0, false, 0});
    out.push_back({TechniqueKind::Migration, p_half, 0, 0, false, 0});
    // Consolidate-then-throttle: the energy-proportionality play the
    // paper credits for migration's long-outage advantage.
    out.push_back(
        {TechniqueKind::Migration, p_half, 0, 0, false, p_half});
    out.push_back({TechniqueKind::Migration, p_min, 0, 0, false, p_min});
    out.push_back({TechniqueKind::ProactiveMigration, 0, 0, 0, false, 0});
    out.push_back(
        {TechniqueKind::ProactiveMigration, p_half, 0, 0, false, 0});
    out.push_back(
        {TechniqueKind::ProactiveMigration, p_half, 0, 0, false, p_half});
    out.push_back({TechniqueKind::MigrationSleep, 0, 0, 0, false, 0});
    out.push_back(
        {TechniqueKind::MigrationSleep, p_half, 0, 0, false, 0});
    return out;
}

std::vector<TechniqueSpec>
hybridCandidates(const ServerModel &model, Time duration)
{
    std::vector<TechniqueSpec> out;
    const int p_half = pstateForPowerFraction(model, 0.5);
    const int p_min = model.params().pStates - 1;
    for (int p : {p_half, p_min}) {
        for (double frac : {0.25, 0.5, 0.75, 0.95}) {
            const Time serve = static_cast<Time>(
                static_cast<double>(duration) * frac);
            out.push_back(
                {TechniqueKind::ThrottleSleep, p, 0, serve, true});
            out.push_back(
                {TechniqueKind::ThrottleHibernate, p, 0, serve, true});
        }
    }
    return out;
}

std::vector<TechniqueSpec>
allCandidates(const ServerModel &model, Time duration)
{
    auto out = basicCandidates(model);
    auto hybrids = hybridCandidates(model, duration);
    out.insert(out.end(), hybrids.begin(), hybrids.end());
    return out;
}

std::vector<Table5Row>
table5(const Cluster &cluster)
{
    std::vector<Table5Row> rows;
    {
        Throttling t(cluster.serverModel().params().pStates - 1);
        rows.push_back({"Throttling", t.takeEffectTime(cluster),
                        "Throttled state"});
    }
    {
        MigrationTechnique m({});
        rows.push_back({"Migration", m.takeEffectTime(cluster),
                        "Consolidated state"});
    }
    {
        MigrationTechnique::Options o;
        o.proactive = true;
        MigrationTechnique m(o);
        rows.push_back({"Proactive Migration", m.takeEffectTime(cluster),
                        "Consolidated state"});
    }
    {
        SleepTechnique s(false);
        rows.push_back({"Sleep", s.takeEffectTime(cluster),
                        "2-4W per DIMM"});
    }
    {
        HibernationTechnique h(false, false);
        rows.push_back({"Hibernation", h.takeEffectTime(cluster),
                        "0 Watts"});
    }
    {
        HibernationTechnique h(false, true);
        rows.push_back({"Proactive Hibernation", h.takeEffectTime(cluster),
                        "0 Watts"});
    }
    return rows;
}

} // namespace bpsim
