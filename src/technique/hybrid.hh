/**
 * @file
 * Hybrid sustain-then-save techniques (Table 6).
 *
 * Serve throttled for a configurable slice of the outage, then preserve
 * state (sleep or hibernate, transitioning while still throttled).
 * These traverse the whole cost-performability spectrum: the longer the
 * serve window, the more performance is offered and the more battery
 * energy is required; the sleep/hibernate tail costs almost nothing.
 * The analysis layer sweeps the serve window to find operating points.
 */

#ifndef BPSIM_TECHNIQUE_HYBRID_HH
#define BPSIM_TECHNIQUE_HYBRID_HH

#include "technique/technique.hh"

namespace bpsim
{

/** Serve throttled, then save state. */
class ThrottleThenSave : public Technique
{
  public:
    /** What to do when the serve window closes. */
    enum class SaveMode
    {
        /** Suspend to RAM (Throttle+Sleep-L). */
        Sleep,
        /** Suspend to disk (Throttle+Hibernate). */
        Hibernate,
    };

    /**
     * @param pstate     DVFS state held while serving and saving.
     * @param tstate     Throttle state held while serving and saving.
     * @param mode       Sleep or hibernate after the serve window.
     * @param serve_for  Length of the throttled-serving window; 0
     *                   saves immediately (degenerates to Sleep-L /
     *                   Hibernate-L at the chosen throttle).
     */
    ThrottleThenSave(int pstate, int tstate, SaveMode mode, Time serve_for);

    Time takeEffectTime(const Cluster &) const override
    {
        return 50 * kMicrosecond; // the throttle is what takes effect
    }

    /** Save duration for server @p i at the configured throttle. */
    Time saveTimeFor(const Cluster &cluster, int i) const;

    /** Save duration for a homogeneous cluster. */
    Time
    saveTime(const Cluster &cluster) const
    {
        return saveTimeFor(cluster, 0);
    }

    /** The serve window length. */
    Time serveWindow() const { return serveFor; }

  protected:
    void onOutage(Time now) override;
    void onRestore(Time now) override;
    void onDgCarrying(Time now) override;

  private:
    void engageSave();
    /** Wake/resume/unthrottle everything (power is back). */
    void recoverAll();

    int pstate_;
    int tstate_;
    SaveMode mode;
    Time serveFor;
};

} // namespace bpsim

#endif // BPSIM_TECHNIQUE_HYBRID_HH
