#include "technique/throttling.hh"

#include "sim/logging.hh"

namespace bpsim
{

Throttling::Throttling(int pstate, int tstate)
    : Technique(formatString("Throttling(p%d,t%d)", pstate, tstate),
                TechniqueFamily::SustainExecution),
      pstate_(pstate), tstate_(tstate)
{
}

void
Throttling::onOutage(Time)
{
    for (int i = 0; i < cluster->size(); ++i) {
        Server &srv = cluster->server(i);
        if (srv.state() == ServerState::Active) {
            srv.setPState(pstate_);
            srv.setTState(tstate_);
        }
    }
}

void
Throttling::onRestore(Time)
{
    for (int i = 0; i < cluster->size(); ++i) {
        Server &srv = cluster->server(i);
        if (srv.state() == ServerState::Active) {
            srv.setPState(0);
            srv.setTState(0);
        }
    }
}

void
Throttling::onDgCarrying(Time)
{
    // The generator ended the energy emergency; only its power rating
    // still constrains the cluster.
    const int fit =
        pstateToFit(hierarchy->dg()->params().powerCapacityW);
    for (int i = 0; i < cluster->size(); ++i) {
        Server &srv = cluster->server(i);
        if (srv.state() == ServerState::Active) {
            srv.setPState(fit);
            srv.setTState(0);
        }
    }
}

} // namespace bpsim
