/**
 * @file
 * Base class and shared helpers for the outage-handling system
 * techniques of Section 5.
 *
 * A technique listens to power-delivery events and drives the cluster
 * through the four operational phases of Table 4: normal operation,
 * start of outage, during outage, and after restoration. Concrete
 * techniques fall into the paper's two families — sustain-execution
 * (throttling, migration/consolidation) and save-state (sleep,
 * hibernation) — plus the hybrids of Table 6.
 */

#ifndef BPSIM_TECHNIQUE_TECHNIQUE_HH
#define BPSIM_TECHNIQUE_TECHNIQUE_HH

#include <string>

#include "power/power_hierarchy.hh"
#include "sim/simulator.hh"
#include "workload/cluster.hh"

namespace bpsim
{

/** Which family a technique belongs to (Figure 4). */
enum class TechniqueFamily
{
    /** Keep executing, possibly at lower power. */
    SustainExecution,
    /** Preserve state, stop executing. */
    SaveState,
    /** Sustain for a while, then save (Table 6). */
    Hybrid,
    /** Do nothing (MaxPerf relies on the DG; MinCost just crashes). */
    None,
};

/**
 * Table 4 operational phase a technique is currently in (numeric
 * values feed the obs time-series "tech_phase" signal).
 */
enum class TechPhase
{
    Normal = 0,
    StartOfOutage = 1,
    DuringOutage = 2,
    AfterRestoration = 3,
    PowerLost = 4,
};

/** Base outage-handling technique. */
class Technique : public PowerHierarchy::Listener
{
  public:
    ~Technique() override = default;

    /** Display name ("Throttling", "Sleep-L", ...). */
    const std::string &name() const { return name_; }

    /** Family per Figure 4. */
    TechniqueFamily family() const { return family_; }

    /** Wire into a simulation; call once before running. */
    void attach(Simulator &sim, Cluster &cluster,
                PowerHierarchy &hierarchy);

    /** Time for the technique to take effect after a failure (Table 5). */
    virtual Time takeEffectTime(const Cluster &cluster) const = 0;

    /** The Table 4 phase last entered (tracked by the final listener
     *  methods below; sampled by the obs time-series). */
    TechPhase currentPhase() const { return phase_; }

    /** @name PowerHierarchy::Listener */
    ///@{
    void outageStarted(Time now) final;
    void utilityRestored(Time now) final;
    void powerLost(Time now) final;
    void dgCarrying(Time now) final;
    ///@}

  protected:
    Technique(std::string name, TechniqueFamily family)
        : name_(std::move(name)), family_(family)
    {}

    /** React to the start of an outage (already attached). */
    virtual void onOutage(Time now) = 0;
    /** React to the utility coming back. */
    virtual void onRestore(Time now) = 0;
    /** Backup ran out / overload: in-flight plans are void. */
    virtual void onPowerLost(Time) {}
    /**
     * The DG now carries the load: from the technique's perspective
     * the energy emergency is over (though a small DG may still cap
     * power). Default: no reaction.
     */
    virtual void onDgCarrying(Time) {}

    /** True when the provisioned DG can carry the whole cluster. */
    bool dgCoversFullLoad() const;

    /**
     * Shallowest P-state at which the whole cluster fits within
     * @p budget_w (deepest state if nothing fits).
     */
    int pstateToFit(Watts budget_w) const;

    Simulator *sim = nullptr;
    Cluster *cluster = nullptr;
    PowerHierarchy *hierarchy = nullptr;

    /**
     * Epoch guard for scheduled continuations: bumped on power loss
     * and restoration so stale events become no-ops.
     */
    std::uint64_t epoch = 0;

  private:
    std::string name_;
    TechniqueFamily family_;
    TechPhase phase_ = TechPhase::Normal;
};

/** A technique that does nothing (MaxPerf / MinCost baselines). */
class NoTechnique : public Technique
{
  public:
    NoTechnique() : Technique("none", TechniqueFamily::None) {}

    Time takeEffectTime(const Cluster &) const override { return 0; }

  protected:
    void onOutage(Time) override {}
    void onRestore(Time) override {}
};

/** @name Shared calibration helpers */
///@{

/**
 * The P-state whose full-utilization active power is closest to
 * @p fraction of peak power; used by the low-power ("-L") variants
 * which the paper runs at half of peak.
 */
int pstateForPowerFraction(const ServerModel &model, double fraction);

/**
 * Slowdown of a state-save operation at reduced speed. The save path
 * mixes CPU work (compression, page walking, weight @p cpu_weight)
 * with fixed-rate device I/O. Calibrated against Table 8:
 * cpu_weight 0.55 reproduces Sleep-L's 6 s -> 8 s and 0.9 reproduces
 * Hibernate-L's 230 s -> 385 s.
 */
double saveSlowdownAtThrottle(const ServerModel &model, int pstate,
                              int tstate, double cpu_weight);

/** CPU weight of the suspend-to-RAM path (Table 8 calibration). */
constexpr double kSleepSaveCpuWeight = 0.55;
/** CPU weight of the hibernate image-write path (Table 8 calibration). */
constexpr double kHibernateSaveCpuWeight = 0.9;
/** Resume-time penalty measured for Hibernate-L (175 s vs 157 s). */
constexpr double kLowPowerResumePenalty = 175.0 / 157.0;

///@}

} // namespace bpsim

#endif // BPSIM_TECHNIQUE_TECHNIQUE_HH
