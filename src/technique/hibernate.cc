#include "technique/hibernate.hh"

#include <algorithm>

#include "obs/obs.hh"
#include "server/dirty_pages.hh"

namespace bpsim
{

namespace
{

std::string
hibernateName(bool low_power, bool proactive)
{
    std::string n = proactive ? "ProactiveHibernate" : "Hibernate";
    if (low_power)
        n += "-L";
    return n;
}

} // namespace

HibernationTechnique::HibernationTechnique(bool low_power, bool proactive)
    : Technique(hibernateName(low_power, proactive),
                TechniqueFamily::SaveState),
      lowPower(low_power), proactive(proactive)
{
}

double
HibernationTechnique::saveBytesFor(const Cluster &cluster, int i) const
{
    const auto &prof = cluster.profileOf(i);
    const double full = prof.hibernateImageBytes();
    if (!proactive)
        return full;
    const DirtyPageModel dirty(prof.dirtyParams());
    const double residual = dirty.residualAfterPeriodicFlush(
        fromSeconds(kProactiveHibernateFlushSec));
    // The pre-flushed portion of the image is already on disk; only
    // pages dirtied since the last flush must be written now (and the
    // image can never exceed what full hibernation would write).
    return std::min(full, residual);
}

Time
HibernationTechnique::saveTimeFor(const Cluster &cluster, int i) const
{
    const auto &model = cluster.serverModel();
    const auto &prof = cluster.profileOf(i);
    const double bw =
        model.diskWriteBytesPerSec() * prof.hibernateWriteEff;
    double save_sec = saveBytesFor(cluster, i) / bw;
    if (lowPower) {
        const int p = pstateForPowerFraction(model, 0.5);
        save_sec *=
            saveSlowdownAtThrottle(model, p, 0, kHibernateSaveCpuWeight);
    }
    return fromSeconds(save_sec);
}

Time
HibernationTechnique::resumeTimeFor(const Cluster &cluster, int i) const
{
    Time t = cluster.profileOf(i).hibernateResumeTime(
        cluster.serverModel());
    if (lowPower) {
        t = static_cast<Time>(static_cast<double>(t) *
                              kLowPowerResumePenalty);
    }
    return t;
}

Time
HibernationTechnique::takeEffectTime(const Cluster &cluster) const
{
    Time worst = 0;
    for (int i = 0; i < cluster.size(); ++i)
        worst = std::max(worst, saveTimeFor(cluster, i));
    return worst;
}

void
HibernationTechnique::onOutage(Time)
{
    for (int i = 0; i < cluster->size(); ++i) {
        Server &srv = cluster->server(i);
        if (srv.state() != ServerState::Active)
            continue;
        if (lowPower)
            srv.setPState(pstateForPowerFraction(srv.model(), 0.5));
        const Time save = saveTimeFor(*cluster, i);
        BPSIM_TRACE(obs::EventKind::Hibernate, sim->now(), "save-to-disk",
                    name().c_str(), i, toSeconds(save));
        BPSIM_OBS_COUNTER_ADD("technique.hibernate_saves", 1);
        srv.saveToDisk(save);
    }
}

void
HibernationTechnique::onRestore(Time)
{
    resumeAll();
}

void
HibernationTechnique::onDgCarrying(Time)
{
    if (dgCoversFullLoad())
        resumeAll();
}

void
HibernationTechnique::resumeAll()
{
    for (int i = 0; i < cluster->size(); ++i) {
        Server &srv = cluster->server(i);
        const Time resume = resumeTimeFor(*cluster, i);
        switch (srv.state()) {
          case ServerState::Hibernated:
            BPSIM_TRACE(obs::EventKind::Hibernate, sim->now(),
                        "resume-from-disk", name().c_str(), i,
                        toSeconds(resume));
            srv.resumeFromDisk(resume);
            break;
          case ServerState::SavingToDisk: {
            // Power returned mid-save: the image write completes on
            // utility power, then the machine resumes from disk.
            const auto e = epoch;
            Server *s = &srv;
            sim->schedule(saveTimeFor(*cluster, i),
                          [this, s, e, resume] {
                              if (e != epoch)
                                  return;
                              if (s->state() == ServerState::Hibernated)
                                  s->resumeFromDisk(resume);
                          },
                          "hibernate-finish-then-resume");
            break;
          }
          default:
            break;
        }
    }
}

} // namespace bpsim
