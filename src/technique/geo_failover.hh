/**
 * @file
 * Geo-failover: redirect requests to a power-uncorrelated remote site
 * (Section 7's recommendation for very long outages, and [32]'s
 * dark-fiber-instead-of-diesel argument).
 *
 * On outage, the load balancer drains local traffic to a geo-replica
 * over a short redirect window, the local servers shut down gracefully
 * (the battery only needs to bridge the window), and service continues
 * at a degraded level set by the remote site's spare capacity. On
 * restoration the servers reboot and traffic shifts home.
 */

#ifndef BPSIM_TECHNIQUE_GEO_FAILOVER_HH
#define BPSIM_TECHNIQUE_GEO_FAILOVER_HH

#include "technique/technique.hh"

namespace bpsim
{

/** Request redirection to a geo-replicated datacenter. */
class GeoFailover : public Technique
{
  public:
    /** Static parameters. */
    struct Params
    {
        /** Time to drain/redirect traffic after the failure (s). */
        double redirectDelaySec = 60.0;
        /**
         * Normalized service level offered by the remote site's
         * spare capacity.
         */
        double remotePerf = 0.7;
        /**
         * P-state while draining (the battery carries the drain
         * window; throttle to shrink its power draw).
         */
        int drainPState = 0;
    };

    explicit GeoFailover(const Params &params);

    Time takeEffectTime(const Cluster &) const override
    {
        return fromSeconds(p.redirectDelaySec);
    }

    /** Static parameters. */
    const Params &params() const { return p; }

  protected:
    void onOutage(Time now) override;
    void onRestore(Time now) override;
    void onPowerLost(Time now) override;

  private:
    void completeRedirect();

    Params p;
    bool redirected = false;
};

} // namespace bpsim

#endif // BPSIM_TECHNIQUE_GEO_FAILOVER_HH
