/**
 * @file
 * Online adaptive outage handling (Section 7: "how do we deal with
 * unknown outage duration?").
 *
 * Unlike the static techniques — which are configured for a known
 * outage duration — this policy observes the outage as it evolves.
 * Every poll it consults the Markov-chain duration predictor: given
 * how long the outage has already lasted and how much battery runway
 * each operating level (full speed / half-power / deepest DVFS) has
 * left, it picks the highest-performance level whose runway will, with
 * bounded risk, cover the remaining outage plus a state-save reserve.
 * When no level is safe it suspends the cluster (Sleep-L) while there
 * is still energy to do so.
 */

#ifndef BPSIM_TECHNIQUE_ADAPTIVE_HH
#define BPSIM_TECHNIQUE_ADAPTIVE_HH

#include <vector>

#include "outage/predictor.hh"
#include "technique/technique.hh"

namespace bpsim
{

/** Predictor-driven dynamic escalation technique. */
class AdaptiveTechnique : public Technique
{
  public:
    /**
     * @param predictor        Duration predictor (historic outage data).
     * @param risk_tolerance   Acceptable probability that the outage
     *                         outlasts the chosen level's runway.
     * @param poll_period_sec  Re-evaluation period during an outage.
     */
    AdaptiveTechnique(OutagePredictor predictor, double risk_tolerance,
                      double poll_period_sec = 30.0);

    Time takeEffectTime(const Cluster &) const override
    {
        return 50 * kMicrosecond; // first decision is a throttle write
    }

    /** Number of times the policy moved to a deeper level. */
    int escalations() const { return escalations_; }

    /** True if the policy ended up suspending the cluster. */
    bool suspended() const { return suspended_; }

  protected:
    void onOutage(Time now) override;
    void onRestore(Time now) override;
    void onDgCarrying(Time now) override;

  private:
    void evaluate();
    void engageSleep();
    void recoverAll();
    Watts levelLoadW(int pstate) const;

    OutagePredictor predictor;
    double risk;
    double pollSec;
    std::vector<int> levels;
    Time outageBegan = 0;
    int currentLevel = 0;
    int escalations_ = 0;
    bool suspended_ = false;
};

} // namespace bpsim

#endif // BPSIM_TECHNIQUE_ADAPTIVE_HH
