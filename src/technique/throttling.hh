/**
 * @file
 * Throttling: run through the outage in a reduced active power state.
 *
 * Uses DVFS P-states and/or clock-modulation T-states; takes effect
 * within tens of microseconds (inside the ~30 ms PSU ride-through, per
 * the paper's footnote 4), making it the only basic technique that is
 * guaranteed to cap the peak power the backup must supply.
 */

#ifndef BPSIM_TECHNIQUE_THROTTLING_HH
#define BPSIM_TECHNIQUE_THROTTLING_HH

#include "technique/technique.hh"

namespace bpsim
{

/** Sustain-execution via active power-state modulation. */
class Throttling : public Technique
{
  public:
    /**
     * @param pstate  DVFS state to hold during the outage.
     * @param tstate  Clock-throttle state to hold during the outage.
     */
    Throttling(int pstate, int tstate = 0);

    Time takeEffectTime(const Cluster &) const override
    {
        // P/T-state writes take effect in tens of microseconds.
        return 50 * kMicrosecond;
    }

    /** The P-state held during outages. */
    int pstate() const { return pstate_; }
    /** The T-state held during outages. */
    int tstate() const { return tstate_; }

  protected:
    void onOutage(Time now) override;
    void onRestore(Time now) override;
    void onDgCarrying(Time now) override;

  private:
    int pstate_;
    int tstate_;
};

} // namespace bpsim

#endif // BPSIM_TECHNIQUE_THROTTLING_HH
