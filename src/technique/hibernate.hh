/**
 * @file
 * Hibernation save-state techniques.
 *
 * On outage, volatile state is written to local persistent storage and
 * the server powers completely off (0 W), at the cost of a long save
 * and a disk-speed resume. The proactive variant flushes modified pages
 * to disk periodically during *normal* operation, so only the residual
 * dirty set must be written after the failure (the paper measures a
 * 22 % save-time reduction for Specjbb). The "-L" variant throttles
 * while saving, halving the transition's peak power at the cost of a
 * slower save (Table 8: 230 s -> 385 s).
 */

#ifndef BPSIM_TECHNIQUE_HIBERNATE_HH
#define BPSIM_TECHNIQUE_HIBERNATE_HH

#include "technique/technique.hh"

namespace bpsim
{

/** Period of the proactive dirty-state flush to local disk (seconds). */
constexpr double kProactiveHibernateFlushSec = 60.0;

/** Save-state via suspend-to-disk. */
class HibernationTechnique : public Technique
{
  public:
    /**
     * @param low_power  Throttle to ~half of peak while saving
     *                   (Hibernate-L).
     * @param proactive  Periodically pre-flush dirty state during
     *                   normal operation (Proactive Hibernation).
     */
    HibernationTechnique(bool low_power, bool proactive);

    Time takeEffectTime(const Cluster &cluster) const override;

    /** Image-write duration for server @p i (Table 8 rows). */
    Time saveTimeFor(const Cluster &cluster, int i) const;

    /** Image read-back duration for server @p i. */
    Time resumeTimeFor(const Cluster &cluster, int i) const;

    /** Bytes server @p i must write after the failure. */
    double saveBytesFor(const Cluster &cluster, int i) const;

    /** Homogeneous-cluster conveniences. */
    ///@{
    Time
    saveTime(const Cluster &cluster) const
    {
        return saveTimeFor(cluster, 0);
    }
    Time
    resumeTime(const Cluster &cluster) const
    {
        return resumeTimeFor(cluster, 0);
    }
    double
    saveBytes(const Cluster &cluster) const
    {
        return saveBytesFor(cluster, 0);
    }
    ///@}

  protected:
    void onOutage(Time now) override;
    void onRestore(Time now) override;
    void onDgCarrying(Time now) override;

  private:
    /** Resume everything (power is back: utility or full-size DG). */
    void resumeAll();

    bool lowPower;
    bool proactive;
};

} // namespace bpsim

#endif // BPSIM_TECHNIQUE_HIBERNATE_HH
