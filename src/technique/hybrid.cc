#include "technique/hybrid.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bpsim
{

ThrottleThenSave::ThrottleThenSave(int pstate, int tstate, SaveMode mode,
                                   Time serve_for)
    : Technique(formatString(
                    "Throttle+%s(p%d,t%d,serve=%.1fmin)",
                    mode == SaveMode::Sleep ? "Sleep-L" : "Hibernate",
                    pstate, tstate, toMinutes(serve_for)),
                TechniqueFamily::Hybrid),
      pstate_(pstate), tstate_(tstate), mode(mode), serveFor(serve_for)
{
    BPSIM_ASSERT(serve_for >= 0, "negative serve window");
}

Time
ThrottleThenSave::saveTimeFor(const Cluster &cluster, int i) const
{
    const auto &model = cluster.serverModel();
    const auto &prof = cluster.profileOf(i);
    if (mode == SaveMode::Sleep) {
        const double slow = saveSlowdownAtThrottle(model, pstate_, tstate_,
                                                   kSleepSaveCpuWeight);
        return fromSeconds(prof.sleepSaveSec * slow);
    }
    const double bw = model.diskWriteBytesPerSec() * prof.hibernateWriteEff;
    const double slow = saveSlowdownAtThrottle(model, pstate_, tstate_,
                                               kHibernateSaveCpuWeight);
    return fromSeconds(prof.hibernateImageBytes() / bw * slow);
}

void
ThrottleThenSave::onOutage(Time)
{
    for (int i = 0; i < cluster->size(); ++i) {
        Server &srv = cluster->server(i);
        if (srv.state() == ServerState::Active) {
            srv.setPState(pstate_);
            srv.setTState(tstate_);
        }
    }
    const auto e = epoch;
    sim->schedule(serveFor,
                  [this, e] {
                      if (e != epoch)
                          return;
                      engageSave();
                  },
                  "hybrid-engage-save");
}

void
ThrottleThenSave::engageSave()
{
    for (int i = 0; i < cluster->size(); ++i) {
        Server &srv = cluster->server(i);
        if (srv.state() != ServerState::Active)
            continue;
        const Time save = saveTimeFor(*cluster, i);
        if (mode == SaveMode::Sleep)
            srv.enterSleep(save);
        else
            srv.saveToDisk(save);
    }
}

void
ThrottleThenSave::onRestore(Time)
{
    recoverAll();
}

void
ThrottleThenSave::onDgCarrying(Time)
{
    if (!dgCoversFullLoad()) {
        // A partial DG: keep the throttle, but there is no longer a
        // reason to give up serving — cancel the pending save.
        ++epoch;
        const int fit =
            pstateToFit(hierarchy->dg()->params().powerCapacityW);
        for (int i = 0; i < cluster->size(); ++i) {
            Server &srv = cluster->server(i);
            if (srv.state() == ServerState::Active)
                srv.setPState(std::max(fit, pstate_));
        }
        return;
    }
    ++epoch; // cancels the pending engage-save
    recoverAll();
}

void
ThrottleThenSave::recoverAll()
{
    for (int i = 0; i < cluster->size(); ++i) {
        const auto &prof = cluster->profileOf(i);
        const Time wake = fromSeconds(prof.sleepResumeSec);
        const Time disk_resume = prof.hibernateResumeTime(
            cluster->serverModel());
        const Time save = saveTimeFor(*cluster, i);
        Server &srv = cluster->server(i);
        Server *s = &srv;
        const auto e = epoch;
        switch (srv.state()) {
          case ServerState::Active:
            srv.setPState(0);
            srv.setTState(0);
            break;
          case ServerState::Sleeping:
            srv.wake(wake);
            break;
          case ServerState::Hibernated:
            srv.resumeFromDisk(disk_resume);
            break;
          case ServerState::EnteringSleep:
            sim->schedule(save,
                          [this, s, e, wake] {
                              if (e != epoch)
                                  return;
                              if (s->state() == ServerState::Sleeping)
                                  s->wake(wake);
                          },
                          "hybrid-finish-then-wake");
            break;
          case ServerState::SavingToDisk:
            sim->schedule(save,
                          [this, s, e, disk_resume] {
                              if (e != epoch)
                                  return;
                              if (s->state() == ServerState::Hibernated)
                                  s->resumeFromDisk(disk_resume);
                          },
                          "hybrid-finish-then-resume");
            break;
          default:
            break;
        }
    }
}

} // namespace bpsim
