#include "technique/technique.hh"

#include <cmath>

#include "obs/obs.hh"
#include "sim/logging.hh"

namespace bpsim
{

void
Technique::attach(Simulator &s, Cluster &c, PowerHierarchy &h)
{
    BPSIM_ASSERT(sim == nullptr, "technique '%s' attached twice",
                 name_.c_str());
    sim = &s;
    cluster = &c;
    hierarchy = &h;
    h.addListener(this);
}

void
Technique::outageStarted(Time now)
{
    BPSIM_ASSERT(sim != nullptr, "technique '%s' not attached",
                 name_.c_str());
    // The Table 4 phase structure every technique follows: reaction at
    // the start of the outage, steady state once the DG carries the
    // load, recovery after restoration (or abrupt loss).
    BPSIM_TRACE(obs::EventKind::Phase, now, "start-of-outage",
                name_.c_str());
    phase_ = TechPhase::StartOfOutage;
    onOutage(now);
}

void
Technique::utilityRestored(Time now)
{
    ++epoch;
    BPSIM_TRACE(obs::EventKind::Phase, now, "after-restoration",
                name_.c_str());
    phase_ = TechPhase::AfterRestoration;
    onRestore(now);
}

void
Technique::powerLost(Time now)
{
    ++epoch;
    BPSIM_TRACE(obs::EventKind::Phase, now, "power-lost", name_.c_str());
    phase_ = TechPhase::PowerLost;
    onPowerLost(now);
}

void
Technique::dgCarrying(Time now)
{
    BPSIM_TRACE(obs::EventKind::Phase, now, "during-outage",
                name_.c_str());
    phase_ = TechPhase::DuringOutage;
    onDgCarrying(now);
}

bool
Technique::dgCoversFullLoad() const
{
    const auto *dg = hierarchy->dg();
    if (!dg)
        return false;
    return dg->params().powerCapacityW >=
           cluster->peakPowerW() * (1.0 - 1e-9);
}

int
Technique::pstateToFit(Watts budget_w) const
{
    const auto &model = cluster->serverModel();
    const double per_server =
        budget_w / static_cast<double>(cluster->size());
    for (int p = 0; p < model.params().pStates; ++p) {
        if (model.activePowerW(p, 0, 1.0) <= per_server)
            return p;
    }
    return model.params().pStates - 1;
}

int
pstateForPowerFraction(const ServerModel &model, double fraction)
{
    BPSIM_ASSERT(fraction > 0.0 && fraction <= 1.0,
                 "power fraction %g out of (0, 1]", fraction);
    const Watts target = model.params().peakPowerW * fraction;
    int best = 0;
    double best_err = 1e300;
    for (int p = 0; p < model.params().pStates; ++p) {
        const double err = std::abs(model.activePowerW(p, 0, 1.0) - target);
        if (err < best_err) {
            best_err = err;
            best = p;
        }
    }
    return best;
}

double
saveSlowdownAtThrottle(const ServerModel &model, int pstate, int tstate,
                       double cpu_weight)
{
    BPSIM_ASSERT(cpu_weight >= 0.0 && cpu_weight <= 1.0,
                 "cpu weight %g out of [0, 1]", cpu_weight);
    const double speed = model.freqRatio(pstate) * model.dutyRatio(tstate);
    const double rate = (1.0 - cpu_weight) + cpu_weight * speed;
    return 1.0 / rate;
}

} // namespace bpsim
