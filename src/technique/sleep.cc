#include "technique/sleep.hh"

#include <algorithm>

namespace bpsim
{

SleepTechnique::SleepTechnique(bool low_power)
    : Technique(low_power ? "Sleep-L" : "Sleep",
                TechniqueFamily::SaveState),
      lowPower(low_power)
{
}

Time
SleepTechnique::saveTimeFor(const Cluster &cluster, int i) const
{
    const auto &model = cluster.serverModel();
    const auto &prof = cluster.profileOf(i);
    double save = prof.sleepSaveSec;
    if (lowPower) {
        const int p = pstateForPowerFraction(model, 0.5);
        save *= saveSlowdownAtThrottle(model, p, 0, kSleepSaveCpuWeight);
    }
    return fromSeconds(save);
}

Time
SleepTechnique::resumeTimeFor(const Cluster &cluster, int i) const
{
    return fromSeconds(cluster.profileOf(i).sleepResumeSec);
}

Time
SleepTechnique::takeEffectTime(const Cluster &cluster) const
{
    Time worst = 0;
    for (int i = 0; i < cluster.size(); ++i)
        worst = std::max(worst, saveTimeFor(cluster, i));
    return worst;
}

void
SleepTechnique::onOutage(Time)
{
    for (int i = 0; i < cluster->size(); ++i) {
        Server &srv = cluster->server(i);
        if (srv.state() != ServerState::Active)
            continue;
        if (lowPower)
            srv.setPState(pstateForPowerFraction(srv.model(), 0.5));
        srv.enterSleep(saveTimeFor(*cluster, i));
    }
}

void
SleepTechnique::onRestore(Time)
{
    wakeAll();
}

void
SleepTechnique::onDgCarrying(Time)
{
    // A full-size generator restores normal operation mid-outage; an
    // under-provisioned one cannot carry the woken cluster, so stay
    // asleep until the utility returns.
    if (dgCoversFullLoad())
        wakeAll();
}

void
SleepTechnique::wakeAll()
{
    for (int i = 0; i < cluster->size(); ++i) {
        Server &srv = cluster->server(i);
        const Time resume = resumeTimeFor(*cluster, i);
        switch (srv.state()) {
          case ServerState::Sleeping:
            srv.wake(resume);
            break;
          case ServerState::EnteringSleep:
            // Outage ended mid-suspend: let the suspend finish, then
            // wake immediately.
            {
                const auto e = epoch;
                Server *s = &srv;
                sim->schedule(saveTimeFor(*cluster, i),
                              [this, s, e, resume] {
                                  if (e != epoch)
                                      return;
                                  if (s->state() == ServerState::Sleeping)
                                      s->wake(resume);
                              },
                              "sleep-finish-then-wake");
            }
            break;
          default:
            break;
        }
    }
}

} // namespace bpsim
