#include "technique/migration.hh"

#include <algorithm>

#include "obs/obs.hh"
#include "server/dirty_pages.hh"
#include "sim/logging.hh"

namespace bpsim
{

namespace
{

std::string
migrationName(const MigrationTechnique::Options &o)
{
    std::string n = o.proactive ? "ProactiveMigration" : "Migration";
    if (o.sleepAfter)
        n += "+Sleep-L";
    return n;
}

} // namespace

MigrationTechnique::MigrationTechnique(const Options &options)
    : Technique(migrationName(options), TechniqueFamily::SustainExecution),
      opt(options)
{
}

MigrationTechnique::Plan
MigrationTechnique::migrationPlanFor(const Cluster &cluster, int i) const
{
    const auto &prof = cluster.profileOf(i);
    const auto &model = cluster.serverModel();
    const DirtyPageModel dirty(prof.dirtyParams());
    const double bw = model.nicBytesPerSec();

    double initial = gbToBytes(prof.memoryGb);
    if (opt.proactive) {
        initial = std::min(initial,
                           dirty.residualAfterPeriodicFlush(fromSeconds(
                               kProactiveMigrationFlushSec)));
    }
    const auto copy = dirty.iterativeCopy(initial, bw, kMaxStopCopyBytes);
    Plan plan;
    plan.bytesMoved = copy.bytesMoved;
    // Whatever exceeds the forced-convergence residual is shipped with
    // the guest still (slowly) running; only the residual is blackout.
    const double blackout_bytes =
        std::min(copy.finalRoundBytes, kMaxStopCopyBytes);
    plan.blackout = fromSeconds(blackout_bytes / bw);
    plan.precopy = copy.totalTime - plan.blackout;
    BPSIM_ASSERT(plan.precopy >= 0, "negative pre-copy time");
    return plan;
}

Time
MigrationTechnique::takeEffectTime(const Cluster &cluster) const
{
    Time worst = 0;
    for (int i = 1; i < cluster.size(); i += 2) {
        const Plan plan = migrationPlanFor(cluster, i);
        worst = std::max(worst, plan.precopy + plan.blackout);
    }
    if (worst == 0 && cluster.size() >= 1) {
        const Plan plan = migrationPlanFor(cluster, 0);
        worst = plan.precopy + plan.blackout;
    }
    return worst;
}

void
MigrationTechnique::onOutage(Time)
{
    // A new outage may land while a migrate-back from the previous one
    // is still copying: cancel those transfers and stay consolidated
    // (the state never left the hosts), shutting the freshly rebooted
    // sources down again.
    ++epoch;
    pendingMigrations = 0;
    for (int i = 0; i < cluster->size(); ++i) {
        Application &app = cluster->app(i);
        if (app.migrating() && app.host() != app.home()) {
            app.abortMigration();
            Server &src = cluster->server(i);
            if (src.state() == ServerState::Active &&
                app.host() != &src) {
                src.shutdown();
                consolidatedSources.push_back(i);
            }
        }
    }

    if (opt.duringPState > 0) {
        for (int i = 0; i < cluster->size(); ++i) {
            Server &srv = cluster->server(i);
            if (srv.state() == ServerState::Active)
                srv.setPState(opt.duringPState);
        }
    }
    const auto e = epoch;
    for (int i = 1; i < cluster->size(); i += 2) {
        Server &src = cluster->server(i);
        Server &dst = cluster->server(i - 1);
        if (src.state() != ServerState::Active ||
            dst.state() != ServerState::Active) {
            continue;
        }
        Application &app = cluster->app(i);
        if (app.migrating() || app.host() != app.home())
            continue; // already consolidated / in flight
        const Plan plan = migrationPlanFor(*cluster, i);
        app.beginMigration();
        BPSIM_TRACE(obs::EventKind::Migration, sim->now(),
                    "consolidate-start", name().c_str(), i,
                    toSeconds(plan.precopy + plan.blackout));
        ++pendingMigrations;
        const int src_id = i;
        sim->schedule(plan.precopy,
                      [this, e, src_id] {
                          if (e != epoch)
                              return;
                          if (cluster->app(src_id).migrating())
                              cluster->app(src_id).setMigrationBlackout(
                                  true);
                      },
                      "migration-blackout");
        sim->schedule(plan.precopy + plan.blackout,
                      [this, e, src_id] {
                          if (e != epoch)
                              return;
                          finishPair(src_id);
                      },
                      "migration-complete");
    }
    if (pendingMigrations == 0)
        allConsolidated();
}

void
MigrationTechnique::finishPair(int src)
{
    Server &source = cluster->server(src);
    Server &host = cluster->server(src - 1);
    Application &app = cluster->app(src);
    if (source.state() != ServerState::Active ||
        host.state() != ServerState::Active) {
        // A crash raced the completion; nothing to finalize.
        app.abortMigration();
        --pendingMigrations;
        return;
    }
    app.completeMigration(&host, 0.5);
    BPSIM_TRACE(obs::EventKind::Migration, sim->now(), "consolidate-done",
                name().c_str(), src);
    BPSIM_OBS_COUNTER_ADD("technique.migrations", 1);
    cluster->app(src - 1).setShare(0.5);
    source.shutdown();
    consolidatedSources.push_back(src);
    if (--pendingMigrations == 0)
        allConsolidated();
}

void
MigrationTechnique::allConsolidated()
{
    BPSIM_TRACE(obs::EventKind::Migration, sim->now(), "consolidated",
                name().c_str(),
                static_cast<double>(consolidatedSources.size()));
    const auto &model = cluster->serverModel();
    if (opt.sleepAfter) {
        const int p_low = pstateForPowerFraction(model, 0.5);
        const double slow =
            saveSlowdownAtThrottle(model, p_low, 0, kSleepSaveCpuWeight);
        for (int i = 0; i < cluster->size(); ++i) {
            Server &srv = cluster->server(i);
            if (srv.state() == ServerState::Active) {
                srv.setPState(p_low);
                srv.enterSleep(fromSeconds(
                    cluster->profileOf(i).sleepSaveSec * slow));
            }
        }
        return;
    }
    for (int i = 0; i < cluster->size(); ++i) {
        Server &srv = cluster->server(i);
        if (srv.state() == ServerState::Active)
            srv.setPState(opt.hostPState);
    }
}

void
MigrationTechnique::onRestore(Time)
{
    const auto &model = cluster->serverModel();
    // Cancel any in-flight consolidation copies: power is back, the
    // guests simply stay where they are.
    for (int i = 0; i < cluster->size(); ++i) {
        Application &app = cluster->app(i);
        if (app.migrating())
            app.abortMigration();
    }
    pendingMigrations = 0;

    bool any_asleep = false;
    for (int i = 0; i < cluster->size(); ++i) {
        Server &srv = cluster->server(i);
        switch (srv.state()) {
          case ServerState::Active:
            srv.setPState(0);
            srv.setTState(0);
            break;
          case ServerState::Sleeping:
            srv.wake(fromSeconds(cluster->profileOf(i).sleepResumeSec));
            any_asleep = true;
            break;
          case ServerState::EnteringSleep: {
            const auto e = epoch;
            Server *s = &srv;
            const Time resume =
                fromSeconds(cluster->profileOf(i).sleepResumeSec);
            sim->schedule(
                fromSeconds(cluster->profileOf(i).sleepSaveSec * 2),
                [this, s, e, resume] {
                    if (e != epoch)
                        return;
                    if (s->state() == ServerState::Sleeping)
                        s->wake(resume);
                },
                "migration-sleep-finish-then-wake");
            any_asleep = true;
            break;
          }
          default:
            break;
        }
    }

    // Bring the consolidation sources back and then migrate home.
    bool any_off = false;
    for (int src : consolidatedSources) {
        Server &srv = cluster->server(src);
        if (srv.state() == ServerState::Off) {
            srv.boot(fromSeconds(model.params().bootTimeSec));
            any_off = true;
        }
    }
    if (consolidatedSources.empty())
        return;
    // Wait for boots (and any wake-ups) to complete before moving back.
    double worst_resume = 0.0;
    for (int i = 0; i < cluster->size(); ++i) {
        worst_resume =
            std::max(worst_resume, cluster->profileOf(i).sleepResumeSec);
    }
    const double wait_sec = (any_off ? model.params().bootTimeSec : 0.0) +
                            (any_asleep ? worst_resume : 0.0) + 2.0;
    const auto e = epoch;
    sim->schedule(fromSeconds(wait_sec),
                  [this, e] {
                      if (e != epoch)
                          return;
                      migrateBack();
                  },
                  "migrate-back-start");
}

void
MigrationTechnique::migrateBack()
{
    const auto e = epoch;
    auto sources = consolidatedSources;
    consolidatedSources.clear();
    for (int src : sources) {
        Server &home = cluster->server(src);
        Application &app = cluster->app(src);
        if (home.state() != ServerState::Active ||
            app.host()->state() != ServerState::Active ||
            app.host() == &home) {
            continue;
        }
        const Plan plan = migrationPlanFor(*cluster, src);
        app.beginMigration();
        BPSIM_TRACE(obs::EventKind::Migration, sim->now(), "migrate-back",
                    name().c_str(), src,
                    toSeconds(plan.precopy + plan.blackout));
        BPSIM_OBS_COUNTER_ADD("technique.migrations", 1);
        const int src_id = src;
        sim->schedule(plan.precopy,
                      [this, e, src_id] {
                          if (e != epoch)
                              return;
                          if (cluster->app(src_id).migrating())
                              cluster->app(src_id).setMigrationBlackout(
                                  true);
                      },
                      "migrate-back-blackout");
        sim->schedule(plan.precopy + plan.blackout,
                      [this, e, src_id] {
                          if (e != epoch)
                              return;
                          Application &a = cluster->app(src_id);
                          Server &h = cluster->server(src_id);
                          if (h.state() != ServerState::Active) {
                              a.abortMigration();
                              return;
                          }
                          a.completeMigration(&h, 1.0);
                          cluster->app(src_id - 1).setShare(1.0);
                      },
                      "migrate-back-complete");
    }
}

void
MigrationTechnique::onPowerLost(Time)
{
    // Everything volatile is gone; re-home the guests so recovery
    // happens on their own machines once those reboot.
    for (int i = 0; i < cluster->size(); ++i) {
        Application &app = cluster->app(i);
        if (app.migrating())
            app.abortMigration();
        if (app.host() != app.home())
            app.completeMigration(app.home(), 1.0);
        else
            app.setShare(1.0);
    }
    pendingMigrations = 0;
    // consolidatedSources is kept: those machines are Off (gracefully
    // shut down by us) and must be rebooted on restore.
}

} // namespace bpsim
