#include "technique/geo_failover.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bpsim
{

GeoFailover::GeoFailover(const Params &params)
    : Technique(formatString("GeoFailover(remote=%.2f)",
                             params.remotePerf),
                TechniqueFamily::SustainExecution),
      p(params)
{
    BPSIM_ASSERT(p.redirectDelaySec >= 0.0, "negative redirect delay");
    BPSIM_ASSERT(p.remotePerf >= 0.0 && p.remotePerf <= 1.0,
                 "remote perf %g out of [0, 1]", p.remotePerf);
}

void
GeoFailover::onOutage(Time)
{
    // Throttle through the drain window; the battery only has to
    // bridge redirectDelaySec.
    for (int i = 0; i < cluster->size(); ++i) {
        Server &srv = cluster->server(i);
        if (srv.state() == ServerState::Active && p.drainPState > 0)
            srv.setPState(p.drainPState);
    }
    const auto e = epoch;
    sim->schedule(fromSeconds(p.redirectDelaySec),
                  [this, e] {
                      if (e != epoch)
                          return;
                      completeRedirect();
                  },
                  "geo-redirect-complete");
}

void
GeoFailover::completeRedirect()
{
    redirected = true;
    // Traffic now lands at the remote site; local machines power off
    // gracefully (no state worth saving: the replica owns the truth).
    for (int i = 0; i < cluster->size(); ++i)
        cluster->app(i).setRemoteService(p.remotePerf);
    for (int i = 0; i < cluster->size(); ++i) {
        Server &srv = cluster->server(i);
        if (srv.state() == ServerState::Active)
            srv.shutdown();
    }
}

void
GeoFailover::onRestore(Time)
{
    const auto &model = cluster->serverModel();
    for (int i = 0; i < cluster->size(); ++i) {
        Server &srv = cluster->server(i);
        if (srv.state() == ServerState::Active) {
            srv.setPState(0);
        } else if (srv.state() == ServerState::Off && redirected) {
            srv.boot(fromSeconds(model.params().bootTimeSec));
        }
    }
    if (!redirected)
        return;
    redirected = false;
    // Traffic shifts home once the local fleet is warm again; the
    // remote site keeps serving until then, so there is no gap.
    const auto e = epoch;
    double slowest = 0.0;
    for (int i = 0; i < cluster->size(); ++i) {
        const auto &prof = cluster->profileOf(i);
        slowest = std::max(slowest, prof.processStartSec +
                                        prof.statePreloadSec +
                                        prof.warmupSec);
    }
    const double home_sec = model.params().bootTimeSec + slowest + 5.0;
    sim->schedule(fromSeconds(home_sec),
                  [this, e] {
                      if (e != epoch)
                          return;
                      for (int i = 0; i < cluster->size(); ++i)
                          cluster->app(i).setRemoteService(0.0);
                  },
                  "geo-traffic-home");
}

void
GeoFailover::onPowerLost(Time)
{
    // Power loss during the drain window: the redirect still happens
    // (the load balancer is remote), just without a graceful drain.
    if (!redirected) {
        redirected = true;
        for (int i = 0; i < cluster->size(); ++i)
            cluster->app(i).setRemoteService(p.remotePerf);
    }
}

} // namespace bpsim
