#include "workload/profile.hh"

#include "sim/logging.hh"

namespace bpsim
{

double
WorkloadProfile::throttledPerf(const ServerModel &model, int pstate,
                               int tstate) const
{
    const double freq = model.freqRatio(pstate);
    const double duty = model.dutyRatio(tstate);
    return duty * ((1.0 - cpuBoundness) + cpuBoundness * freq);
}

DirtyPageModel::Params
WorkloadProfile::dirtyParams() const
{
    DirtyPageModel::Params dp;
    dp.totalStateBytes = gbToBytes(memoryGb);
    dp.hotSetBytes = gbToBytes(hotSetGb);
    dp.dirtyRateBytesPerSec = dirtyRateMBps * 1e6;
    return dp;
}

double
WorkloadProfile::hibernateImageBytes() const
{
    const double gb = hibernateImageGb < 0.0 ? memoryGb : hibernateImageGb;
    return gbToBytes(gb);
}

Time
WorkloadProfile::hibernateSaveTime(const ServerModel &model) const
{
    BPSIM_ASSERT(hibernateWriteEff > 0.0, "non-positive hibernate write eff");
    const double bw = model.diskWriteBytesPerSec() * hibernateWriteEff;
    return fromSeconds(hibernateImageBytes() / bw);
}

Time
WorkloadProfile::hibernateResumeTime(const ServerModel &model) const
{
    BPSIM_ASSERT(hibernateReadEff > 0.0, "non-positive hibernate read eff");
    const double bw = model.diskReadBytesPerSec() * hibernateReadEff;
    return fromSeconds(hibernateImageBytes() / bw);
}

Time
WorkloadProfile::crashRestartTime() const
{
    return fromSeconds(processStartSec + statePreloadSec);
}

WorkloadProfile
specJbbProfile()
{
    WorkloadProfile w;
    w.name = "specjbb";
    w.metric = PerfMetric::LatencyConstrainedThroughput;
    w.memoryGb = 18.0;
    // The three-tier Java stack is compute heavy; DVFS bites hard.
    w.cpuBoundness = 0.85;
    // JVM heap churn: large hot set redirtied fast. Calibrated so that
    // proactive techniques retain the 18 GB -> ~10-14 GB residuals the
    // paper reports.
    w.hotSetGb = 14.0;
    w.dirtyRateMBps = 250.0;
    // MinCost, 30 s outage: ~400 s downtime = 120 s boot + 60 s process
    // creation + throughput catch-up (Section 6.2).
    w.processStartSec = 60.0;
    w.statePreloadSec = 0.0;
    w.warmupSec = 220.0;
    w.warmupPerf = 0.5;
    // Table 8: save 230 s / resume 157 s for the 18 GB image.
    w.hibernateImageGb = 18.0;
    w.hibernateWriteEff = 1.0;
    w.hibernateReadEff = 1.0;
    w.sleepSaveSec = 6.0;
    w.sleepResumeSec = 8.0;
    return w;
}

WorkloadProfile
webSearchProfile()
{
    WorkloadProfile w;
    w.name = "web-search";
    w.metric = PerfMetric::LatencyConstrainedThroughput;
    w.memoryGb = 40.0;
    // Query serving mixes scoring compute with index lookups.
    w.cpuBoundness = 0.6;
    // The index cache is read-only; only bookkeeping state is dirtied.
    w.hotSetGb = 1.0;
    w.dirtyRateMBps = 20.0;
    // MinCost, 30 s outage: ~600 s = 120 s boot + 30 s restart + 3.5 min
    // index pre-population + 4-5 min warm-up at 30-50% reduced
    // throughput, which the paper counts as additional downtime.
    w.processStartSec = 30.0;
    w.statePreloadSec = 180.0;
    w.warmupSec = 270.0;
    w.warmupPerf = 0.6;
    // Hibernation drops the clean 34 GB page-cache portion of the
    // image and re-warms it lazily after resume; that is why the paper
    // measures *less* downtime for Hibernation (400 s) than MinCost
    // (600 s) on this workload.
    w.hibernateImageGb = 6.0;
    w.hibernateWriteEff = 1.0;
    w.hibernateReadEff = 1.0;
    w.resumeWarmupSec = 270.0;
    w.sleepSaveSec = 6.0;
    w.sleepResumeSec = 8.0;
    return w;
}

WorkloadProfile
memcachedProfile()
{
    WorkloadProfile w;
    w.name = "memcached";
    w.metric = PerfMetric::Throughput;
    w.memoryGb = 20.0;
    // Random-access memory stalls dominate; throttling is cheap
    // (Section 6.2 credits memory-related CPU stalls).
    w.cpuBoundness = 0.35;
    w.hotSetGb = 0.5;
    w.dirtyRateMBps = 5.0;
    // MinCost, 30 s outage: ~480 s = boot + restart + re-populating the
    // 20 GB data set from disk (small random objects keep the reload
    // well below sequential disk speed).
    w.processStartSec = 60.0;
    w.statePreloadSec = 300.0;
    w.warmupSec = 40.0;
    w.warmupPerf = 0.7;
    // Hibernating the scattered slab heap writes pathologically slowly
    // (the paper measures 1140 s of downtime vs 480 s for simply
    // reloading): calibrated efficiency factors reproduce that.
    w.hibernateImageGb = 20.0;
    w.hibernateWriteEff = 0.33;
    w.hibernateReadEff = 0.45;
    w.sleepSaveSec = 6.0;
    w.sleepResumeSec = 8.0;
    return w;
}

WorkloadProfile
specCpuMcfProfile()
{
    WorkloadProfile w;
    w.name = "speccpu-mcf8";
    w.metric = PerfMetric::CompletionTime;
    w.memoryGb = 16.0;
    // mcf is memory-latency bound.
    w.cpuBoundness = 0.55;
    w.hotSetGb = 8.0;
    w.dirtyRateMBps = 150.0;
    w.processStartSec = 10.0;
    w.statePreloadSec = 0.0;
    w.warmupSec = 0.0;
    // Un-checkpointed batch jobs recompute everything since the last
    // start: the impact depends on when in the (hours-long) run the
    // outage lands, hence the wide min/max band in Figure 9.
    w.recomputeMinSec = 60.0;
    w.recomputeMaxSec = 3600.0;
    w.hibernateImageGb = 16.0;
    w.hibernateWriteEff = 1.0;
    w.hibernateReadEff = 1.0;
    w.sleepSaveSec = 6.0;
    w.sleepResumeSec = 8.0;
    return w;
}

std::vector<WorkloadProfile>
allPaperWorkloads()
{
    return {specJbbProfile(), webSearchProfile(), memcachedProfile(),
            specCpuMcfProfile()};
}

} // namespace bpsim
