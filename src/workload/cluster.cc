#include "workload/cluster.hh"

#include "obs/obs.hh"
#include "sim/logging.hh"

namespace bpsim
{

namespace
{

std::vector<WorkloadProfile>
replicate(const WorkloadProfile &profile, int n)
{
    BPSIM_ASSERT(n >= 1, "cluster needs at least one server");
    return std::vector<WorkloadProfile>(static_cast<std::size_t>(n),
                                        profile);
}

} // namespace

Cluster::Cluster(Simulator &sim, PowerHierarchy &hierarchy,
                 const ServerModel &model, const WorkloadProfile &profile,
                 int n_servers)
    : Cluster(sim, hierarchy, model, replicate(profile, n_servers))
{
}

Cluster::Cluster(Simulator &sim, PowerHierarchy &hierarchy,
                 const ServerModel &model,
                 const std::vector<WorkloadProfile> &profiles)
    : sim(sim), hierarchy(hierarchy), model_(model), profiles_(profiles)
{
    const int n_servers = static_cast<int>(profiles_.size());
    BPSIM_ASSERT(n_servers >= 1, "cluster needs at least one server");
    servers_.reserve(n_servers);
    apps_.reserve(n_servers);
    for (int i = 0; i < n_servers; ++i) {
        servers_.push_back(std::make_unique<Server>(sim, model_, i));
        apps_.push_back(std::make_unique<Application>(
            sim, profiles_[static_cast<std::size_t>(i)],
            *servers_.back()));
    }
    for (int i = 0; i < n_servers; ++i) {
        Server *srv = servers_[i].get();
        srv->onChange([this, srv] {
            for (auto &app : apps_) {
                if (app->host() == srv)
                    app->noteHostState();
            }
            recompute();
        });
        apps_[i]->onChange([this] { recompute(); });
    }
    hierarchy.addListener(this);
}

void
Cluster::primeSteadyState()
{
    for (auto &srv : servers_)
        srv->primeActive();
    for (auto &app : apps_)
        app->primeServing();
    recompute();
}

Watts
Cluster::totalPowerW() const
{
    Watts total = 0.0;
    for (const auto &srv : servers_)
        total += srv->powerW();
    return total;
}

double
Cluster::availability() const
{
    double up = 0.0;
    for (const auto &app : apps_) {
        if (app->available())
            up += 1.0;
    }
    return up / static_cast<double>(apps_.size());
}

int
Cluster::activeServers() const
{
    int n = 0;
    for (const auto &s : servers_) {
        if (s->state() == ServerState::Active)
            ++n;
    }
    return n;
}

double
Cluster::aggregatePerf() const
{
    double total = 0.0;
    for (const auto &app : apps_)
        total += app->perf();
    return total / static_cast<double>(apps_.size());
}

Watts
Cluster::peakPowerW() const
{
    return model_.params().peakPowerW * static_cast<double>(size());
}

double
Cluster::extraDowntimeSec() const
{
    double total = 0.0;
    for (const auto &app : apps_)
        total += app->extraDowntimeSec();
    return total / static_cast<double>(apps_.size());
}

void
Cluster::recompute()
{
    if (inRecompute) {
        dirty = true;
        return;
    }
    inRecompute = true;
    do {
        dirty = false;
        hierarchy.setLoad(totalPowerW());
        perfTl.record(sim.now(), aggregatePerf());
        availTl.record(sim.now(), availability());
    } while (dirty);
    inRecompute = false;
    if (BPSIM_OBS_ON()) {
        // Availability steps and recompute-debt charges are what the
        // incident engine integrates into attributed downtime; emit
        // only on change so quiet periods cost nothing.
        const double avail = availability();
        if (avail != lastTracedAvail_) {
            lastTracedAvail_ = avail;
            BPSIM_TRACE(obs::EventKind::Availability, sim.now(),
                        "availability", nullptr, avail);
        }
        const double extra = extraDowntimeSec();
        if (extra != lastTracedExtra_) {
            BPSIM_TRACE(obs::EventKind::Recompute, sim.now(),
                        "recompute-debt", nullptr,
                        extra - lastTracedExtra_);
            lastTracedExtra_ = extra;
        }
    }
}

void
Cluster::powerLost(Time)
{
    for (auto &srv : servers_)
        srv->crash();
    recompute();
}

void
Cluster::restartDarkServers()
{
    for (std::size_t i = 0; i < servers_.size(); ++i) {
        Server &srv = *servers_[i];
        if (srv.state() == ServerState::Crashed) {
            srv.boot(fromSeconds(model_.params().bootTimeSec));
        } else if (model_.params().nvdimm &&
                   srv.state() == ServerState::Hibernated) {
            // NVDIMM machines persisted through the loss; restoring
            // DRAM from on-DIMM flash is far faster than a reboot.
            srv.resumeFromDisk(
                nvdimmRestoreTime(static_cast<int>(i)));
        }
    }
    recompute();
}

Time
Cluster::nvdimmRestoreTime(int i) const
{
    const double bytes = gbToBytes(profileOf(i).memoryGb);
    const double bw = model_.params().nvdimmRestoreMBps * 1e6;
    // Flash read-back plus a short kernel resume.
    return fromSeconds(bytes / bw + 5.0);
}

bool
Cluster::homogeneous() const
{
    for (const auto &p : profiles_) {
        if (p.name != profiles_.front().name)
            return false;
    }
    return true;
}

void
Cluster::utilityRestored(Time)
{
    if (!autoReboot)
        return;
    restartDarkServers();
}

void
Cluster::dgCarrying(Time)
{
    // Machines that crashed (e.g., in a NoUPS configuration) can
    // reboot once the generator carries the load.
    if (!autoReboot)
        return;
    restartDarkServers();
}

} // namespace bpsim
