/**
 * @file
 * Diurnal utilization driver.
 *
 * Datacenter load is not flat: the day/night swing is what makes
 * battery peak shaving (and normal power under-provisioning) possible
 * at all. This driver modulates every active server's utilization on
 * a sinusoidal day, so studies can combine time-varying load with
 * outages — e.g., "does an outage at peak hour find the shaving
 * battery drained?".
 */

#ifndef BPSIM_WORKLOAD_LOAD_PROFILE_HH
#define BPSIM_WORKLOAD_LOAD_PROFILE_HH

#include "sim/simulator.hh"
#include "workload/cluster.hh"

namespace bpsim
{

/** Sinusoidal day/night utilization pattern applied to a cluster. */
class DiurnalLoadDriver
{
  public:
    /** Shape parameters. */
    struct Params
    {
        /** Trough utilization (night). */
        double minUtil = 0.4;
        /** Peak utilization (afternoon). */
        double maxUtil = 1.0;
        /** Length of one cycle. */
        Time period = 24 * kHour;
        /** Phase: when within the cycle the peak occurs. */
        Time peakAt = 14 * kHour;
        /** How often utilization is re-applied. */
        Time updateEvery = 5 * kMinute;
    };

    DiurnalLoadDriver(Simulator &sim, Cluster &cluster,
                      const Params &params);

    /** The shape parameters. */
    const Params &params() const { return p; }

    /** Utilization dictated by the curve at absolute time @p t. */
    double utilizationAt(Time t) const;

    /** Begin driving the cluster (applies immediately, then periodic). */
    void start();

    /** Stop driving (pending updates are cancelled). */
    void stop();

  private:
    void apply();

    Simulator &sim;
    Cluster &cluster;
    Params p;
    EventHandle pending;
    bool running = false;
};

} // namespace bpsim

#endif // BPSIM_WORKLOAD_LOAD_PROFILE_HH
