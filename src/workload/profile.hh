/**
 * @file
 * Workload characterization profiles.
 *
 * Each profile captures the application characteristics that the paper
 * identifies as decisive for performability under backup
 * underprovisioning: volatile-state size, dirty-page behaviour,
 * sensitivity of throughput to CPU throttling, the post-crash recovery
 * pipeline (restart / data preload / warm-up), and how efficiently the
 * state can be persisted. Factory functions return the four evaluated
 * workloads (Table 7), calibrated to the measurements reported in
 * Sections 6.1-6.2 and Table 8.
 */

#ifndef BPSIM_WORKLOAD_PROFILE_HH
#define BPSIM_WORKLOAD_PROFILE_HH

#include <string>
#include <vector>

#include "server/dirty_pages.hh"
#include "server/server_model.hh"
#include "sim/types.hh"

namespace bpsim
{

/** How a workload's headline performance metric is expressed. */
enum class PerfMetric
{
    /** Latency-constrained queries/operations per second. */
    LatencyConstrainedThroughput,
    /** Raw queries per second. */
    Throughput,
    /** Batch completion time (HPC). */
    CompletionTime,
};

/** Static characterization of one application (Table 7 plus §6.2). */
struct WorkloadProfile
{
    std::string name;
    PerfMetric metric = PerfMetric::Throughput;

    /** Volatile memory footprint (GB). */
    double memoryGb = 16.0;
    /**
     * Fraction of throughput that scales with core frequency; the rest
     * is memory/IO stall time that throttling does not hurt
     * (Memcached's random-access stalls make it throttle-friendly).
     */
    double cpuBoundness = 0.7;
    /** Hot (re-dirtied) working set (GB). */
    double hotSetGb = 2.0;
    /** Dirty rate into the hot set (MB/s). */
    double dirtyRateMBps = 50.0;

    /** @name Post-crash recovery pipeline (state lost) */
    ///@{
    /** Process creation + app init after OS boot (seconds). */
    double processStartSec = 60.0;
    /** Re-reading persistent data into memory (seconds). */
    double statePreloadSec = 0.0;
    /** Warm-up window with degraded service after start (seconds). */
    double warmupSec = 0.0;
    /** Normalized service level during warm-up. */
    double warmupPerf = 0.5;
    ///@}

    /** @name State-save behaviour */
    ///@{
    /**
     * Size of the hibernation image (GB). Clean page-cache data is
     * dropped rather than written (Web-search's read-only index), so
     * this can be far below memoryGb.
     */
    double hibernateImageGb = -1.0; // -1 -> memoryGb
    /** Effective fraction of disk write bandwidth for the image. */
    double hibernateWriteEff = 1.0;
    /** Effective fraction of disk read bandwidth for image restore. */
    double hibernateReadEff = 1.0;
    /** Suspend-to-RAM save time at full speed (seconds). */
    double sleepSaveSec = 6.0;
    /** Resume-from-RAM time (seconds). */
    double sleepResumeSec = 8.0;
    /**
     * Warm-up needed after a hibernate resume when the image dropped
     * cached data (seconds at warmupPerf); 0 when the image is
     * complete.
     */
    double resumeWarmupSec = 0.0;
    ///@}

    /** @name Batch (HPC) recompute penalty */
    ///@{
    /** Best-case lost work on a crash (seconds to recompute). */
    double recomputeMinSec = 0.0;
    /** Worst-case lost work on a crash (seconds to recompute). */
    double recomputeMaxSec = 0.0;
    /**
     * Application-level checkpoint interval (seconds); 0 disables.
     * The paper notes HPC recompute "can be alleviated by
     * checkpointing partial results": with checkpoints, the lost work
     * is bounded by the interval instead of the whole run.
     */
    double checkpointIntervalSec = 0.0;
    ///@}

    /** Service level while being live-migrated. */
    double migrationDegradation = 0.9;

    /**
     * Normalized throughput at the given throttle settings: duty
     * cycling gates everything; frequency only hurts the CPU-bound
     * fraction.
     */
    double throttledPerf(const ServerModel &model, int pstate,
                         int tstate) const;

    /** Dirty-page model parameters derived from this profile. */
    DirtyPageModel::Params dirtyParams() const;

    /** Hibernation image size in bytes. */
    double hibernateImageBytes() const;

    /** Image write time at full speed (simulated Time). */
    Time hibernateSaveTime(const ServerModel &model) const;

    /** Image read-back time (simulated Time). */
    Time hibernateResumeTime(const ServerModel &model) const;

    /**
     * Process restart + persistent-data preload after a crash (Time);
     * excludes the OS boot and the degraded warm-up window.
     */
    Time crashRestartTime() const;
};

/** @name The paper's four evaluated workloads (Table 7) */
///@{
/** Specjbb: 3-tier retailer emulation, 18 GB in-memory database. */
WorkloadProfile specJbbProfile();
/** Web-search: 40 GB in-memory index cache over persistent storage. */
WorkloadProfile webSearchProfile();
/** Memcached: 20 GB in-memory key-value store, read-only clients. */
WorkloadProfile memcachedProfile();
/** SpecCPU mcf x 8: memory-intensive HPC batch, 16 GB. */
WorkloadProfile specCpuMcfProfile();
/** All four, in the paper's order. */
std::vector<WorkloadProfile> allPaperWorkloads();
///@}

} // namespace bpsim

#endif // BPSIM_WORKLOAD_PROFILE_HH
