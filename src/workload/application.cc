#include "workload/application.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bpsim
{

const char *
appPhaseName(AppPhase p)
{
    switch (p) {
      case AppPhase::Stopped: return "Stopped";
      case AppPhase::Starting: return "Starting";
      case AppPhase::Preloading: return "Preloading";
      case AppPhase::Warmup: return "Warmup";
      case AppPhase::Serving: return "Serving";
      case AppPhase::Paused: return "Paused";
      case AppPhase::Lost: return "Lost";
    }
    return "?";
}

Application::Application(Simulator &sim, const WorkloadProfile &profile,
                         Server &home)
    : sim(sim), prof(profile), home_(&home), host_(&home),
      prevHostState(home.state())
{
}

void
Application::notify()
{
    if (changeFn)
        changeFn();
}

double
Application::perf() const
{
    if (remotePerf > 0.0)
        return remotePerf;
    if (host_->state() != ServerState::Active)
        return 0.0;
    if (blackout)
        return 0.0;
    double base;
    switch (ph) {
      case AppPhase::Serving:
        base = 1.0;
        break;
      case AppPhase::Warmup:
        base = prof.warmupPerf;
        break;
      default:
        return 0.0;
    }
    const double throttle =
        prof.throttledPerf(host_->model(), host_->pstate(),
                           host_->tstate());
    const double mig = migrating_ ? prof.migrationDegradation : 1.0;
    return base * share * throttle * mig;
}

bool
Application::available() const
{
    if (remotePerf > 0.0) {
        if (prof.metric == PerfMetric::LatencyConstrainedThroughput)
            return remotePerf >= 0.7;
        return true;
    }
    if (host_->state() != ServerState::Active || blackout)
        return false;
    switch (ph) {
      case AppPhase::Serving:
        return true;
      case AppPhase::Warmup:
        // A latency-constrained service below its SLO during warm-up
        // is charged as performance-induced downtime.
        if (prof.metric == PerfMetric::LatencyConstrainedThroughput)
            return prof.warmupPerf >= 0.7;
        return true;
      default:
        return false;
    }
}

void
Application::primeServing()
{
    BPSIM_ASSERT(host_->state() == ServerState::Active,
                 "priming %s on a host in state %s", prof.name.c_str(),
                 serverStateName(host_->state()));
    prevHostState = host_->state();
    enterPhase(AppPhase::Serving);
}

void
Application::enterPhase(AppPhase next)
{
    pendingPhase.cancel();
    ++phaseToken;
    ph = next;
    notify();
}

void
Application::startRecovery()
{
    ph = AppPhase::Starting;
    notify();
    const auto token = ++phaseToken;
    pendingPhase = sim.schedule(
        fromSeconds(prof.processStartSec),
        [this, token] {
            if (token != phaseToken)
                return;
            if (prof.statePreloadSec > 0.0) {
                ph = AppPhase::Preloading;
                notify();
                const auto t2 = ++phaseToken;
                pendingPhase = sim.schedule(
                    fromSeconds(prof.statePreloadSec),
                    [this, t2] {
                        if (t2 != phaseToken)
                            return;
                        beginWarmup(prof.warmupSec);
                    },
                    "app-preload-done");
            } else {
                beginWarmup(prof.warmupSec);
            }
        },
        "app-start-done");
}

void
Application::noteHostState()
{
    const ServerState hs = host_->state();
    if (hs == prevHostState) {
        notify();
        return;
    }
    const ServerState prev = prevHostState;
    prevHostState = hs;

    switch (hs) {
      case ServerState::Crashed:
        if (ph != AppPhase::Lost && ph != AppPhase::Stopped) {
            ++losses;
            if (prof.recomputeMaxSec > 0.0 &&
                (ph == AppPhase::Serving || ph == AppPhase::Warmup ||
                 ph == AppPhase::Paused)) {
                double lost =
                    prof.recomputeMinSec +
                    recomputeFraction *
                        (prof.recomputeMaxSec - prof.recomputeMinSec);
                if (prof.checkpointIntervalSec > 0.0) {
                    // Checkpoints bound the lost work to the position
                    // within the current interval.
                    lost = std::min(
                        lost,
                        recomputeFraction * prof.checkpointIntervalSec);
                }
                extraDowntime += lost;
            }
            enterPhase(AppPhase::Lost);
        }
        break;

      case ServerState::Off:
        // Graceful shutdown is only legitimate when the service moved
        // elsewhere first (geo-failover); consolidation shuts down
        // *empty* sources, so anything else is an orchestration error.
        if (ph == AppPhase::Serving || ph == AppPhase::Warmup) {
            if (remotePerf > 0.0)
                enterPhase(AppPhase::Stopped);
            else
                panic("host of running %s shut down", prof.name.c_str());
        }
        break;

      case ServerState::Active:
        if (ph == AppPhase::Lost || ph == AppPhase::Stopped) {
            startRecovery();
        } else if (ph == AppPhase::Paused) {
            if (prev == ServerState::ResumingFromDisk &&
                prof.resumeWarmupSec > 0.0 &&
                !host_->model().params().nvdimm) {
                // The hibernation image dropped cached data; re-warm.
                // (NVDIMM restores are complete DRAM images: no
                // re-warm needed.)
                beginWarmup(prof.resumeWarmupSec);
            } else {
                enterPhase(AppPhase::Serving);
            }
        } else {
            notify();
        }
        break;

      case ServerState::EnteringSleep:
      case ServerState::Sleeping:
      case ServerState::Waking:
      case ServerState::SavingToDisk:
      case ServerState::Hibernated:
      case ServerState::ResumingFromDisk:
        if (ph == AppPhase::Serving || ph == AppPhase::Warmup ||
            ph == AppPhase::Paused) {
            enterPhase(AppPhase::Paused);
        } else {
            notify();
        }
        break;

      case ServerState::Booting:
        notify();
        break;
    }
}

void
Application::beginWarmup(double warmup_sec)
{
    if (warmup_sec <= 0.0) {
        enterPhase(AppPhase::Serving);
        return;
    }
    pendingPhase.cancel();
    ph = AppPhase::Warmup;
    notify();
    const auto token = ++phaseToken;
    pendingPhase = sim.schedule(
        fromSeconds(warmup_sec),
        [this, token] {
            if (token != phaseToken)
                return;
            ph = AppPhase::Serving;
            notify();
        },
        "app-warmup-done");
}

void
Application::beginMigration()
{
    BPSIM_ASSERT(!migrating_, "%s already migrating", prof.name.c_str());
    migrating_ = true;
    notify();
}

void
Application::setMigrationBlackout(bool on)
{
    blackout = on;
    notify();
}

void
Application::abortMigration()
{
    migrating_ = false;
    blackout = false;
    notify();
}

void
Application::completeMigration(Server *new_host, double new_share)
{
    BPSIM_ASSERT(new_host != nullptr, "migration to a null host");
    BPSIM_ASSERT(new_share > 0.0 && new_share <= 1.0,
                 "host share %g out of (0, 1]", new_share);
    migrating_ = false;
    blackout = false;
    host_ = new_host;
    prevHostState = new_host->state();
    share = new_share;
    notify();
}

void
Application::setShare(double new_share)
{
    BPSIM_ASSERT(new_share > 0.0 && new_share <= 1.0,
                 "host share %g out of (0, 1]", new_share);
    share = new_share;
    notify();
}

void
Application::setRemoteService(double perf_level)
{
    BPSIM_ASSERT(perf_level >= 0.0 && perf_level <= 1.0,
                 "remote service level %g out of [0, 1]", perf_level);
    remotePerf = perf_level;
    notify();
}

void
Application::setRecomputeFraction(double f)
{
    BPSIM_ASSERT(f >= 0.0 && f <= 1.0, "recompute fraction %g", f);
    recomputeFraction = f;
}

} // namespace bpsim
