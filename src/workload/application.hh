/**
 * @file
 * A running application instance and its service-level phase machine.
 *
 * The application tracks which server currently hosts it (consolidation
 * can move it), pauses while the host saves/sleeps, loses state when the
 * host crashes, and then walks the paper's recovery pipeline: process
 * restart, persistent-data preload, degraded warm-up, full service.
 * Its instantaneous normalized performance feeds the cluster timeline
 * from which downtime and outage-window performance are computed.
 */

#ifndef BPSIM_WORKLOAD_APPLICATION_HH
#define BPSIM_WORKLOAD_APPLICATION_HH

#include <functional>

#include "server/server.hh"
#include "sim/simulator.hh"
#include "workload/profile.hh"

namespace bpsim
{

/** Service-level phase of one application instance. */
enum class AppPhase
{
    /** Not yet started. */
    Stopped,
    /** Process creation / initialization (no service). */
    Starting,
    /** Re-reading persistent data into memory (no service). */
    Preloading,
    /** Serving at a degraded level while caches warm. */
    Warmup,
    /** Full service (subject to throttling/consolidation). */
    Serving,
    /** State preserved but host not executing (sleep/hibernate). */
    Paused,
    /** Volatile state lost; waiting for the host to come back. */
    Lost,
};

/** Human-readable phase name. */
const char *appPhaseName(AppPhase p);

/** One application instance bound to a (possibly changing) host. */
class Application
{
  public:
    Application(Simulator &sim, const WorkloadProfile &profile,
                Server &home);

    /** The workload profile. */
    const WorkloadProfile &profile() const { return prof; }

    /** Current phase. */
    AppPhase phase() const { return ph; }

    /** Server currently hosting this instance. */
    Server *host() const { return host_; }

    /** The instance's original (home) server. */
    Server *home() const { return home_; }

    /** Fraction of the host's capacity allotted (1 = whole machine). */
    double hostShare() const { return share; }

    /** True while live migration is in flight. */
    bool migrating() const { return migrating_; }

    /**
     * Instantaneous normalized performance in [0, 1]: 1 means the
     * steady-state service level on an unthrottled dedicated server.
     */
    double perf() const;

    /**
     * Is the application "up" in the paper's downtime sense? Serving
     * counts (even throttled/consolidated); being dark does not; and a
     * latency-constrained service in a deep warm-up (30-50 % throughput
     * reduction) is reported as performance-induced downtime, exactly
     * as the paper does for Web-search.
     */
    bool available() const;

    /** Register the change hook (cluster re-aggregation). */
    void onChange(std::function<void()> fn) { changeFn = std::move(fn); }

    /** Begin at full service on an Active host (steady-state init). */
    void primeServing();

    /**
     * Re-evaluate after the host server changed state. The cluster
     * calls this for every application whose host just transitioned.
     */
    void noteHostState();

    /** @name Consolidation / migration (driven by the techniques) */
    ///@{
    /** Live migration started (service degrades slightly). */
    void beginMigration();
    /**
     * Stop-and-copy blackout: the guest is paused while the final
     * dirty set moves; performance is zero while set.
     */
    void setMigrationBlackout(bool on);
    /** True while in the stop-and-copy blackout. */
    bool migrationBlackout() const { return blackout; }
    /** Migration finished: now running on @p new_host at @p new_share. */
    void completeMigration(Server *new_host, double new_share);
    /** Migration cancelled (e.g., utility returned mid-copy). */
    void abortMigration();
    /** Adjust the capacity share without moving (re-balancing). */
    void setShare(double new_share);
    ///@}

    /** @name Geo-failover (requests served by a remote site) */
    ///@{
    /**
     * Serve from a geo-replicated site at the given normalized level
     * (0 disables). While remote service is active the local host's
     * state is irrelevant to the offered performance.
     */
    void setRemoteService(double perf_level);
    /** True while requests are redirected to a remote site. */
    bool remoteService() const { return remotePerf > 0.0; }
    ///@}

    /**
     * Extra downtime charged outside the service timeline: recompute
     * time for batch work lost in crashes (Figure 9's MinCost band).
     */
    double extraDowntimeSec() const { return extraDowntime; }

    /**
     * Where in [0,1] between the profile's recompute min/max each
     * crash's lost work lands (0.5 = midpoint; benches sweep 0 and 1
     * for the paper's (min,max) bars).
     */
    void setRecomputeFraction(double f);

    /** Number of times this instance lost its volatile state. */
    int stateLosses() const { return losses; }

  private:
    void enterPhase(AppPhase next);
    void beginWarmup(double warmup_sec);
    void startRecovery();
    void notify();

    Simulator &sim;
    WorkloadProfile prof;
    Server *home_;
    Server *host_;
    ServerState prevHostState;
    AppPhase ph = AppPhase::Stopped;
    double share = 1.0;
    bool migrating_ = false;
    bool blackout = false;
    double remotePerf = 0.0;
    double extraDowntime = 0.0;
    double recomputeFraction = 0.5;
    int losses = 0;
    EventHandle pendingPhase;
    std::uint64_t phaseToken = 0;
    std::function<void()> changeFn;
};

} // namespace bpsim

#endif // BPSIM_WORKLOAD_APPLICATION_HH
