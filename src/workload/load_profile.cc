#include "workload/load_profile.hh"

#include <cmath>

#include "sim/logging.hh"

namespace bpsim
{

DiurnalLoadDriver::DiurnalLoadDriver(Simulator &sim, Cluster &cluster,
                                     const Params &params)
    : sim(sim), cluster(cluster), p(params)
{
    BPSIM_ASSERT(p.minUtil >= 0.0 && p.minUtil <= p.maxUtil &&
                     p.maxUtil <= 1.0,
                 "utilization band [%g, %g] invalid", p.minUtil,
                 p.maxUtil);
    BPSIM_ASSERT(p.period > 0, "non-positive period");
    BPSIM_ASSERT(p.updateEvery > 0, "non-positive update interval");
}

double
DiurnalLoadDriver::utilizationAt(Time t) const
{
    const double phase =
        2.0 * M_PI *
        static_cast<double>((t - p.peakAt) % p.period) /
        static_cast<double>(p.period);
    const double mid = 0.5 * (p.minUtil + p.maxUtil);
    const double amp = 0.5 * (p.maxUtil - p.minUtil);
    return mid + amp * std::cos(phase);
}

void
DiurnalLoadDriver::start()
{
    running = true;
    apply();
}

void
DiurnalLoadDriver::stop()
{
    running = false;
    pending.cancel();
}

void
DiurnalLoadDriver::apply()
{
    if (!running)
        return;
    const double u = utilizationAt(sim.now());
    for (int i = 0; i < cluster.size(); ++i) {
        Server &srv = cluster.server(i);
        if (srv.state() == ServerState::Active)
            srv.setUtilization(u);
    }
    pending = sim.schedule(p.updateEvery, [this] { apply(); },
                           "diurnal-update");
}

} // namespace bpsim
