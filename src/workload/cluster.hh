/**
 * @file
 * A rack/cluster of servers running one application each, wired to the
 * power hierarchy.
 *
 * The cluster aggregates per-server power into the hierarchy's load,
 * aggregates per-application performance into a normalized service
 * timeline, crashes everything on abrupt power loss, and auto-reboots
 * crashed machines when the utility returns (the MinCost baseline
 * behaviour; deliberate shutdowns by a technique are left alone).
 */

#ifndef BPSIM_WORKLOAD_CLUSTER_HH
#define BPSIM_WORKLOAD_CLUSTER_HH

#include <memory>
#include <vector>

#include "power/power_hierarchy.hh"
#include "sim/simulator.hh"
#include "sim/timeline.hh"
#include "workload/application.hh"

namespace bpsim
{

/** Servers + applications + power/performance aggregation. */
class Cluster : public PowerHierarchy::Listener
{
  public:
    /**
     * Build @p n_servers servers of @p model, each hosting one
     * instance of @p profile, and attach to @p hierarchy.
     */
    Cluster(Simulator &sim, PowerHierarchy &hierarchy,
            const ServerModel &model, const WorkloadProfile &profile,
            int n_servers);

    /**
     * Heterogeneous cluster (the Section 7 provisioning challenge):
     * one server per entry of @p profiles, each hosting that profile.
     */
    Cluster(Simulator &sim, PowerHierarchy &hierarchy,
            const ServerModel &model,
            const std::vector<WorkloadProfile> &profiles);

    /** Number of servers (== number of applications). */
    int size() const { return static_cast<int>(servers_.size()); }

    /** Server @p i. */
    Server &server(int i) { return *servers_.at(i); }
    /** Application @p i (homed on server i). */
    Application &app(int i) { return *apps_.at(i); }

    /**
     * The first server's workload profile. For homogeneous clusters
     * (the paper's experiments) this is *the* profile; heterogeneous
     * techniques should consult profileOf() per server.
     */
    const WorkloadProfile &profile() const { return profiles_.front(); }

    /** Workload profile hosted on server @p i. */
    const WorkloadProfile &
    profileOf(int i) const
    {
        return profiles_.at(static_cast<std::size_t>(i));
    }

    /** True when every server runs the same workload. */
    bool homogeneous() const;

    /** The server SKU. */
    const ServerModel &serverModel() const { return model_; }

    /**
     * Initialize to steady state: all servers Active at full speed,
     * all applications Serving. Call once at t = 0.
     */
    void primeSteadyState();

    /** Aggregate electrical draw right now (watts). */
    Watts totalPowerW() const;

    /**
     * Normalized cluster performance in [0, 1]: mean of application
     * performance (1 = every instance at steady-state full service).
     */
    double aggregatePerf() const;

    /** History of aggregate normalized performance. */
    const Timeline &perfTimeline() const { return perfTl; }

    /** Fraction of applications currently available. */
    double availability() const;

    /** Servers currently in the Active state (the obs time-series
     *  "servers_active" signal). */
    int activeServers() const;

    /** History of the available fraction (downtime accounting). */
    const Timeline &availabilityTimeline() const { return availTl; }

    /** Peak electrical draw the cluster can present (sizing basis). */
    Watts peakPowerW() const;

    /** Sum of per-application extra (recompute) downtime, seconds. */
    double extraDowntimeSec() const;

    /** Re-aggregate power and performance (idempotent). */
    void recompute();

    /** @name PowerHierarchy::Listener */
    ///@{
    void powerLost(Time now) override;
    void utilityRestored(Time now) override;
    /** DG now carrying the load: crashed machines can reboot on it. */
    void dgCarrying(Time now) override;
    ///@}

    /** Disable auto-reboot of crashed servers on restore. */
    void setAutoReboot(bool v) { autoReboot = v; }

    /** DRAM restore time from on-DIMM flash for server @p i. */
    Time nvdimmRestoreTime(int i) const;

  private:
    void restartDarkServers();

    Simulator &sim;
    PowerHierarchy &hierarchy;
    ServerModel model_;
    std::vector<WorkloadProfile> profiles_;
    std::vector<std::unique_ptr<Server>> servers_;
    std::vector<std::unique_ptr<Application>> apps_;
    Timeline perfTl{0.0};
    Timeline availTl{0.0};
    bool autoReboot = true;
    bool inRecompute = false;
    bool dirty = false;
    /** Last traced availability / recompute debt (change detection;
     *  -1 forces an initial Availability event at prime time). */
    double lastTracedAvail_ = -1.0;
    double lastTracedExtra_ = 0.0;
};

} // namespace bpsim

#endif // BPSIM_WORKLOAD_CLUSTER_HH
