#include "power/utility.hh"

#include "sim/logging.hh"

namespace bpsim
{

void
Utility::scheduleOutage(Time start, Time duration)
{
    BPSIM_ASSERT(duration > 0, "outage duration must be positive");
    BPSIM_ASSERT(start >= sim.now(), "outage scheduled in the past");
    BPSIM_ASSERT(start >= lastScheduledEnd,
                 "outage at %lld overlaps one ending at %lld",
                 static_cast<long long>(start),
                 static_cast<long long>(lastScheduledEnd));
    lastScheduledEnd = start + duration;
    sim.at(start, [this] { fail(); }, "utility-fail", EventPriority::Power);
    sim.at(start + duration, [this] { restore(); }, "utility-restore",
           EventPriority::Power);
}

void
Utility::fail()
{
    BPSIM_ASSERT(up, "utility failed while already down");
    up = false;
    ++outages;
    for (auto &fn : failFns)
        fn();
}

void
Utility::restore()
{
    BPSIM_ASSERT(!up, "utility restored while already up");
    up = true;
    for (auto &fn : restoreFns)
        fn();
}

} // namespace bpsim
