/**
 * @file
 * Power metering: the simulated stand-in for the paper's external
 * Yokogawa meter.
 *
 * Records piecewise-constant timelines of the total load and of each
 * source's contribution (utility / battery / diesel), from which the
 * analyzers derive peak power and energy over arbitrary windows.
 */

#ifndef BPSIM_POWER_METER_HH
#define BPSIM_POWER_METER_HH

#include "sim/timeline.hh"
#include "sim/types.hh"

namespace bpsim
{

/** Per-source power accounting over simulated time. */
class PowerMeter
{
  public:
    /** Record the instantaneous supply mix at time @p t. */
    void
    record(Time t, Watts load, Watts from_utility, Watts from_battery,
           Watts from_dg)
    {
        load_.record(t, load);
        utility_.record(t, from_utility);
        battery_.record(t, from_battery);
        dg_.record(t, from_dg);
    }

    /** Total load timeline (watts). */
    const Timeline &load() const { return load_; }
    /** Utility contribution timeline (watts). */
    const Timeline &fromUtility() const { return utility_; }
    /** Battery contribution timeline (watts). */
    const Timeline &fromBattery() const { return battery_; }
    /** Diesel contribution timeline (watts). */
    const Timeline &fromDg() const { return dg_; }

    /** Peak total load within [from, to). */
    Watts peakLoadW(Time from, Time to) const
    {
        return load_.maxOver(from, to);
    }

    /** Energy sourced from the battery within [from, to), joules. */
    Joules batteryEnergyJ(Time from, Time to) const
    {
        return battery_.integrate(from, to);
    }

    /** Energy sourced from the DG within [from, to), joules. */
    Joules dgEnergyJ(Time from, Time to) const
    {
        return dg_.integrate(from, to);
    }

  private:
    Timeline load_{0.0};
    Timeline utility_{0.0};
    Timeline battery_{0.0};
    Timeline dg_{0.0};
};

} // namespace bpsim

#endif // BPSIM_POWER_METER_HH
