/**
 * @file
 * Diesel generator (DG) model.
 *
 * Per Section 3 of the paper: a DG takes 20-30 seconds to start and
 * produce stable power, and the load is then transferred from the UPS in
 * gradual load steps, making the overall transition ~2-3 minutes. Its
 * capital cost is dominated by peak power capacity; fuel (energy) is
 * comparatively cheap, so the tank defaults to a generous reserve.
 */

#ifndef BPSIM_POWER_DIESEL_GENERATOR_HH
#define BPSIM_POWER_DIESEL_GENERATOR_HH

#include "sim/simulator.hh"
#include "sim/types.hh"

namespace bpsim
{

/** Start-up/ramp/fuel model of a diesel generator set. */
class DieselGenerator
{
  public:
    /** Static parameters of the generator set. */
    struct Params
    {
        /** Peak electrical output (watts). */
        Watts powerCapacityW = 250e3;
        /** Delay from start command to stable output (seconds). */
        double startupDelaySec = 25.0;
        /** Number of gradual load steps when taking over from UPS. */
        int rampSteps = 4;
        /**
         * Time from stable output to carrying the full load
         * (seconds). startupDelaySec + rampDurationSec matches the
         * paper's ~2-3 minute overall transition.
         */
        double rampDurationSec = 120.0;
        /** Usable fuel, as deliverable electrical energy (joules). */
        Joules fuelCapacityJ = 0.0; // 0 -> 24 h at rated power
    };

    /** Operating state. */
    enum class State
    {
        Off,
        Starting,
        Online,
    };

    DieselGenerator(Simulator &sim, const Params &params);

    /** Static parameters. */
    const Params &params() const { return p; }

    /** Current operating state. */
    State state() const { return st; }

    /** True once producing stable output. */
    bool online() const { return st == State::Online; }

    /**
     * Fraction of the datacenter load this DG may carry right now:
     * 0 while off/starting, then stepping up to 1 across the ramp.
     */
    double transferFraction() const { return fraction; }

    /** Issue the start command; no-op if already starting/online. */
    void start();

    /** Shut down (utility restored); resets the transfer ramp. */
    void stop();

    /** Deliverable power right now, given the transfer ramp and fuel. */
    Watts availablePowerW(Watts load) const;

    /** Record @p load carried for @p dt; draws down fuel. */
    void consume(Watts load, Time dt);

    /** Remaining fuel as deliverable electrical energy. */
    Joules fuelRemainingJ() const { return fuel; }

    /** True once the tank is dry. */
    bool fuelExhausted() const { return fuel <= 0.0; }

    /** Register a callback for when the ramp fraction changes. */
    void onRampChange(std::function<void()> fn) { rampFn = std::move(fn); }

    /** When the last start command was issued (-1 = never started);
     *  feeds the dg.start_to_carrying_s histogram. */
    Time startedAt() const { return startedAt_; }

  private:
    void becomeOnline();
    void advanceRamp();

    Simulator &sim;
    Params p;
    State st = State::Off;
    double fraction = 0.0;
    int stepsDone = 0;
    Time startedAt_ = -1;
    Joules fuel;
    EventHandle pendingEvent;
    std::function<void()> rampFn;
};

} // namespace bpsim

#endif // BPSIM_POWER_DIESEL_GENERATOR_HH
