/**
 * @file
 * Peukert-law battery model fitted to the paper's Figure 3.
 *
 * The paper's UPS energy analysis hinges on one empirical property of
 * lead-acid strings: runtime is disproportionately longer at lower load.
 * The APC 4 kW unit in Figure 3 lasts 60 minutes at 25 % load (1 kWh
 * delivered) but only 10 minutes at 100 % load (0.66 kWh delivered).
 * Both anchor points are reproduced by the classic Peukert form
 *
 *     runtime(f) = T_rated * f^(-k),   f = load / rated power
 *
 * with k = log(6)/log(4) ~= 1.2925. State of charge under a varying load
 * is integrated as d(soc)/dt = -1 / runtime(f(t)), the standard
 * "runtime chart" interpretation, which reduces to the chart exactly for
 * constant loads.
 */

#ifndef BPSIM_POWER_BATTERY_HH
#define BPSIM_POWER_BATTERY_HH

#include "sim/types.hh"

namespace bpsim
{

/** Peukert exponent fitted from Figure 3 (60 min @ 25 %, 10 min @ 100 %). */
double figure3PeukertExponent();

/**
 * Peukert exponent for Li-ion strings (Section 7's "newer battery
 * technologies"): their rate capability is far flatter than lead-acid,
 * so runtime scales almost inversely with load.
 */
constexpr double kLiIonPeukertExponent = 1.05;

/** Battery string with Peukert-law load/runtime behaviour. */
class PeukertBattery
{
  public:
    /** Static electrical parameters of a battery string. */
    struct Params
    {
        /** Maximum continuous discharge power (watts). */
        Watts ratedPowerW = 4000.0;
        /** Runtime at 100 % of rated power, fully charged (seconds). */
        double runtimeAtRatedSec = 600.0;
        /** Peukert exponent; defaults to the Figure 3 fit. */
        double peukertExponent = 0.0; // 0 -> figure3PeukertExponent()
        /** Time to recharge from empty to full on utility (seconds). */
        double rechargeTimeSec = 4.0 * 3600.0;
    };

    explicit PeukertBattery(const Params &params);

    /** Electrical parameters. */
    const Params &params() const { return p; }

    /**
     * Nameplate energy capacity using the paper's convention
     * (rated power x runtime at rated power), in joules.
     */
    Joules nominalEnergyJ() const;

    /** Same capacity expressed in kilowatt-hours. */
    double nominalEnergyKwh() const { return joulesToKwh(nominalEnergyJ()); }

    /** State of charge in [0, 1]. */
    double soc() const { return soc_; }

    /** True when the string can no longer source any load. */
    bool empty() const { return soc_ <= 0.0; }

    /** Total energy sourced from the string since construction. */
    Joules energyDeliveredJ() const { return delivered; }

    /**
     * Fraction of the string's cycle life consumed so far.
     *
     * Lead-acid cycle life falls steeply with depth of discharge
     * (~180 full cycles, ~500 at 50 % DoD, ~1900 at 20 %); the model
     * integrates Miner's-rule damage along every discharge:
     * a discharge to depth d costs d^1.45 / 180 of the string's life,
     * accrued incrementally, so arbitrary partial cycles compose. The
     * paper's Section 2 argues wear is negligible for *backup-only*
     * use (outages are rare) — this counter lets that claim be
     * checked, and quantifies the cost of dual-use (peak shaving).
     */
    double lifeFractionUsed() const { return lifeUsed; }

    /** Deepest depth of discharge reached (0 = never discharged). */
    double deepestDischarge() const { return deepestDod; }

    /**
     * Full-charge runtime sustaining a constant @p load, per the
     * runtime chart. kTimeNever for a non-positive load. The load must
     * not exceed the rated power.
     */
    Time runtimeAtLoad(Watts load) const;

    /** Remaining runtime at the current state of charge. */
    Time timeToEmpty(Watts load) const;

    /**
     * Source @p load for @p dt. The caller is responsible for not
     * discharging past empty (use timeToEmpty() to bound dt); small
     * floating-point overshoots are clamped.
     */
    void discharge(Watts load, Time dt);

    /** Recharge at the nominal rate for @p dt (state of charge caps at 1). */
    void recharge(Time dt);

    /** Reset to fully charged (new string / maintenance swap). */
    void resetFull() { soc_ = 1.0; }

    /**
     * @name Pure state math (SoA batch kernels)
     * Stateless forms of the charge arithmetic, shared between the
     * member mutators above and the batched trial kernel
     * (`campaign/batch_kernel`). Having one implementation is what
     * makes the batched path bit-identical to the scalar one by
     * construction: both sides execute the same floating-point
     * expressions in the same order.
     */
    ///@{
    /** runtimeAtLoad() as a pure function of @p params (a zero or
     *  negative Peukert exponent selects the Figure 3 fit, as the
     *  constructor does). */
    static Time runtimeAtLoadFor(const Params &params, Watts load);

    /** timeToEmpty() given the state of charge and the full-charge
     *  runtime at the prevailing load. */
    static Time timeToEmptyFrom(double soc, Time full_runtime);

    /** State of charge after sourcing the load behind @p full_runtime
     *  for @p dt (clamped at empty). */
    static double dischargedSoc(double soc, Time dt, Time full_runtime);

    /** State of charge after recharging for @p dt (capped at full). */
    static double rechargedSoc(const Params &params, double soc, Time dt);
    ///@}

  private:
    Params p;
    double soc_ = 1.0;
    Joules delivered = 0.0;
    double lifeUsed = 0.0;
    double deepestDod = 0.0;
};

/** Lead-acid cycle life at a given depth of discharge (cycles). */
double leadAcidCycleLife(double depth_of_discharge);

} // namespace bpsim

#endif // BPSIM_POWER_BATTERY_HH
