#include "power/ups.hh"

#include "sim/logging.hh"

namespace bpsim
{

namespace
{

PeukertBattery::Params
batteryParamsFor(const Ups::Params &p)
{
    PeukertBattery::Params bp;
    bp.ratedPowerW = p.powerCapacityW;
    bp.runtimeAtRatedSec = p.runtimeAtRatedSec;
    bp.peukertExponent = p.peukertExponent;
    bp.rechargeTimeSec = p.rechargeTimeSec;
    return bp;
}

} // namespace

Ups::Ups(const Params &params) : p(params), bat(batteryParamsFor(params))
{
    BPSIM_ASSERT(p.powerCapacityW > 0.0, "non-positive UPS capacity");
    BPSIM_ASSERT(p.transferDelaySec >= 0.0, "negative transfer delay");
    BPSIM_ASSERT(p.onlineEfficiency > 0.0 && p.onlineEfficiency <= 1.0,
                 "online efficiency %g out of (0, 1]", p.onlineEfficiency);
}

Time
Ups::transferDelay() const
{
    return p.placement == Placement::Online
               ? 0
               : fromSeconds(p.transferDelaySec);
}

bool
Ups::canCarry(Watts load) const
{
    return load <= p.powerCapacityW * (1.0 + 1e-9);
}

} // namespace bpsim
