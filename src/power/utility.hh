/**
 * @file
 * The utility feed: a primary power source interrupted by scheduled
 * outages.
 *
 * The paper assumes a single utility connection (its footnote 1), so the
 * model is a boolean availability signal driven by an outage schedule.
 * Consumers register callbacks that fire inside the simulation when the
 * feed fails or returns.
 */

#ifndef BPSIM_POWER_UTILITY_HH
#define BPSIM_POWER_UTILITY_HH

#include <functional>
#include <vector>

#include "sim/simulator.hh"
#include "sim/types.hh"

namespace bpsim
{

/** Single-feed utility supply with a scheduled outage list. */
class Utility
{
  public:
    explicit Utility(Simulator &sim) : sim(sim) {}

    /** True while the feed is energized. */
    bool available() const { return up; }

    /**
     * Schedule an outage beginning at absolute time @p start lasting
     * @p duration. Outages must not overlap; both callbacks fire inside
     * the simulation. A zero duration is rejected.
     */
    void scheduleOutage(Time start, Time duration);

    /** Register the failure callback (utility lost). */
    void onFail(std::function<void()> fn) { failFns.push_back(fn); }

    /** Register the restore callback (utility back). */
    void onRestore(std::function<void()> fn) { restoreFns.push_back(fn); }

    /** Number of outages that have begun so far. */
    int outagesSeen() const { return outages; }

  private:
    void fail();
    void restore();

    Simulator &sim;
    bool up = true;
    Time lastScheduledEnd = 0;
    int outages = 0;
    std::vector<std::function<void()>> failFns;
    std::vector<std::function<void()>> restoreFns;
};

} // namespace bpsim

#endif // BPSIM_POWER_UTILITY_HH
