#include "power/battery.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace bpsim
{

double
figure3PeukertExponent()
{
    // Fit of runtime(f) = T * f^-k through the two Figure 3 anchors:
    // 10 min at f = 1.0 and 60 min at f = 0.25 give 4^k = 6.
    static const double k = std::log(6.0) / std::log(4.0);
    return k;
}

PeukertBattery::PeukertBattery(const Params &params) : p(params)
{
    if (p.peukertExponent <= 0.0)
        p.peukertExponent = figure3PeukertExponent();
    BPSIM_ASSERT(p.ratedPowerW > 0.0, "non-positive rated power %g",
                 p.ratedPowerW);
    BPSIM_ASSERT(p.runtimeAtRatedSec > 0.0, "non-positive rated runtime %g",
                 p.runtimeAtRatedSec);
    BPSIM_ASSERT(p.rechargeTimeSec > 0.0, "non-positive recharge time %g",
                 p.rechargeTimeSec);
}

Joules
PeukertBattery::nominalEnergyJ() const
{
    return p.ratedPowerW * p.runtimeAtRatedSec;
}

Time
PeukertBattery::runtimeAtLoadFor(const Params &params, Watts load)
{
    if (load <= 0.0)
        return kTimeNever;
    BPSIM_ASSERT(load <= params.ratedPowerW * (1.0 + 1e-9),
                 "load %g W exceeds rated power %g W", load,
                 params.ratedPowerW);
    const double k = params.peukertExponent > 0.0
                         ? params.peukertExponent
                         : figure3PeukertExponent();
    const double f = std::min(load / params.ratedPowerW, 1.0);
    const double t = params.runtimeAtRatedSec * std::pow(f, -k);
    return fromSeconds(t);
}

Time
PeukertBattery::timeToEmptyFrom(double soc, Time full_runtime)
{
    if (soc <= 0.0)
        return 0;
    if (full_runtime == kTimeNever)
        return kTimeNever;
    return static_cast<Time>(static_cast<double>(full_runtime) * soc);
}

double
PeukertBattery::dischargedSoc(double soc, Time dt, Time full_runtime)
{
    if (dt == 0)
        return soc;
    const double used = toSeconds(dt) / toSeconds(full_runtime);
    return std::max(0.0, soc - used);
}

double
PeukertBattery::rechargedSoc(const Params &params, double soc, Time dt)
{
    return std::min(1.0, soc + toSeconds(dt) / params.rechargeTimeSec);
}

Time
PeukertBattery::runtimeAtLoad(Watts load) const
{
    return runtimeAtLoadFor(p, load);
}

Time
PeukertBattery::timeToEmpty(Watts load) const
{
    if (load <= 0.0)
        return kTimeNever;
    if (soc_ <= 0.0)
        return 0;
    return timeToEmptyFrom(soc_, runtimeAtLoad(load));
}

namespace
{

/** Exponent of the lead-acid cycle-life curve. */
constexpr double kWearExponent = 1.45;
/** Cycles to end-of-life at 100 % depth of discharge. */
constexpr double kFullCycles = 180.0;

} // namespace

double
leadAcidCycleLife(double depth_of_discharge)
{
    BPSIM_ASSERT(depth_of_discharge > 0.0 && depth_of_discharge <= 1.0,
                 "depth of discharge %g out of (0, 1]",
                 depth_of_discharge);
    return kFullCycles * std::pow(depth_of_discharge, -kWearExponent);
}

void
PeukertBattery::discharge(Watts load, Time dt)
{
    BPSIM_ASSERT(dt >= 0, "negative discharge interval");
    if (load <= 0.0 || dt == 0)
        return;
    const Time full = runtimeAtLoad(load);
    const double used = toSeconds(dt) / toSeconds(full);
    BPSIM_ASSERT(soc_ - used >= -1e-6,
                 "battery over-discharged: soc %.9f, draw %.9f", soc_, used);
    // Miner's-rule wear: d(damage) = (k / C_full) * d^(k-1) dd, so a
    // single discharge to depth D integrates to D^k / C_full = 1 /
    // cycleLife(D), and partial cycles compose.
    const double d0 = 1.0 - soc_;
    soc_ = dischargedSoc(soc_, dt, full);
    const double d1 = 1.0 - soc_;
    lifeUsed += (std::pow(d1, kWearExponent) -
                 std::pow(d0, kWearExponent)) /
                kFullCycles;
    deepestDod = std::max(deepestDod, d1);
    delivered += energyOver(load, dt);
}

void
PeukertBattery::recharge(Time dt)
{
    BPSIM_ASSERT(dt >= 0, "negative recharge interval");
    soc_ = rechargedSoc(p, soc_, dt);
}

} // namespace bpsim
