/**
 * @file
 * The datacenter power-delivery path (Figure 2 of the paper):
 *
 *     utility substation -> ATS -> PDU -> racks
 *                            |
 *                     diesel generator
 *     rack-level UPS (offline) bridging transfers
 *
 * PowerHierarchy arbitrates which source carries the IT load at every
 * instant, integrates battery/fuel consumption analytically between
 * events, and notifies listeners of the power events that drive the
 * outage-handling techniques: outage start, abrupt power loss, DG
 * takeover, backup depletion, and utility restoration.
 */

#ifndef BPSIM_POWER_POWER_HIERARCHY_HH
#define BPSIM_POWER_POWER_HIERARCHY_HH

#include <memory>
#include <vector>

#include "power/ats.hh"
#include "power/diesel_generator.hh"
#include "power/meter.hh"
#include "power/ups.hh"
#include "power/utility.hh"
#include "sim/simulator.hh"
#include "sim/types.hh"

namespace bpsim
{

/** Arbiter of utility / UPS battery / diesel supply for the IT load. */
class PowerHierarchy
{
  public:
    /** Which source(s) carry the load right now. */
    enum class Mode
    {
        /** Utility energized and carrying everything. */
        OnUtility,
        /** Utility just failed; PSU capacitance riding through. */
        RideThrough,
        /** UPS battery carrying the load (DG may be ramping). */
        OnBattery,
        /** DG fully carrying the load. */
        OnDg,
        /** No source can carry the load: servers are dark. */
        Dead,
    };

    /** Physical composition of the backup infrastructure. */
    struct Config
    {
        /** UPS present? (NoUPS / MinCost configurations omit it.) */
        bool hasUps = true;
        /** UPS electrical parameters. */
        Ups::Params ups;
        /** DG present? (NoDG-style configurations omit it.) */
        bool hasDg = true;
        /** DG parameters. */
        DieselGenerator::Params dg;
        /** ATS parameters. */
        Ats::Params ats;
        /** Server PSU capacitance ride-through (seconds, ~30 ms). */
        double psuRideThroughSec = 0.030;
        /**
         * Peak-shaving threshold (watts; 0 disables): during *normal*
         * operation, load above this is sourced from the UPS battery —
         * the "normal under-provisioning" dual use the paper contrasts
         * with backup under-provisioning (its Section 2: batteries used
         * for peak suppression are called on far more often, and an
         * outage can arrive with a partially drained string).
         */
        Watts peakShaveThresholdW = 0.0;
    };

    /** Observer of power-delivery events. */
    class Listener
    {
      public:
        virtual ~Listener() = default;
        /** Utility lost; backup path (if any) engaging. */
        virtual void outageStarted(Time) {}
        /** The IT load abruptly lost power (volatile state gone). */
        virtual void powerLost(Time) {}
        /** The DG is now fully carrying the load. */
        virtual void dgCarrying(Time) {}
        /** UPS battery ran dry while it was needed. */
        virtual void backupDepleted(Time) {}
        /** Utility back; everything supplied normally again. */
        virtual void utilityRestored(Time) {}
    };

    PowerHierarchy(Simulator &sim, Utility &utility, const Config &config);

    /** Register an observer (not owned). */
    void addListener(Listener *l) { listeners.push_back(l); }

    /** Update the aggregate IT power demand (watts). */
    void setLoad(Watts w);

    /** Current aggregate IT power demand. */
    Watts load() const { return load_; }

    /** Current supply mode. */
    Mode mode() const { return mode_; }

    /** True while the IT load is actually being supplied. */
    bool powered() const;

    /** The UPS, or nullptr when not provisioned. */
    Ups *ups() { return ups_.get(); }
    const Ups *ups() const { return ups_.get(); }

    /** The DG, or nullptr when not provisioned. */
    DieselGenerator *dg() { return dg_.get(); }
    const DieselGenerator *dg() const { return dg_.get(); }

    /** Metered supply history. */
    const PowerMeter &meter() const { return meter_; }

    /** @name Instantaneous source mix (the obs time-series signals) */
    ///@{
    /** Watts currently served from the UPS battery. */
    Watts batteryShareW() const { return batteryShare; }
    /** Watts currently served from the DG. */
    Watts dgShareW() const { return dgShare; }
    /** Watts currently served from utility (matches the meter's
     *  convention: the non-shaved remainder while on utility, 0 in
     *  every other mode). */
    Watts utilityShareW() const
    {
        return mode_ == Mode::OnUtility ? load_ - batteryShare : 0.0;
    }
    /** Battery state of charge in [0, 1]; 0 when no UPS fitted. */
    double batterySoc() const;
    ///@}

    /** Remaining battery time at the present mix; kTimeNever if idle. */
    Time timeToBatteryEmpty() const;

    /** Number of abrupt power-loss events so far. */
    int powerLossCount() const { return losses; }

    /** Static configuration. */
    const Config &config() const { return cfg; }

  private:
    void utilityFailed();
    void utilityRestored();
    void afterRideThrough();
    void onBatteryEmpty();
    void onDgRampChange();
    void onFuelExhausted();

    /** Integrate battery/fuel flows since the last sync at the old mix. */
    void sync();

    /** Recompute the source mix for the current state; reschedule. */
    void recomputeMix();

    /** Transition to Dead and tell everyone the load lost power. */
    void losePower();

    void notifyOutage();
    void notifyRestored();
    /** Trace the DG takeover and tell every listener. */
    void notifyDgCarrying();
    /** Trace battery state-of-charge decile crossings (tracing only). */
    void noteBatterySoc();

    Simulator &sim;
    Utility &utility;
    Config cfg;
    std::unique_ptr<Ups> ups_;
    std::unique_ptr<DieselGenerator> dg_;
    Ats ats;
    PowerMeter meter_;
    std::vector<Listener *> listeners;

    Mode mode_ = Mode::OnUtility;
    Watts load_ = 0.0;
    Watts batteryShare = 0.0;
    Watts dgShare = 0.0;
    Time lastSync = 0;
    int losses = 0;
    /** Last battery SoC decile seen by noteBatterySoc (-1 = unseen). */
    int socDecile_ = -1;
    /** When the current outage began (-1 = no outage yet); feeds the
     *  power.outage_duration_s histogram. */
    Time outageStartedAt_ = -1;
    EventHandle rideThroughEv;
    EventHandle depletionEv;
    EventHandle fuelEv;
};

} // namespace bpsim

#endif // BPSIM_POWER_POWER_HIERARCHY_HH
