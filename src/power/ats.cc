#include "power/ats.hh"

namespace bpsim
{

void
Ats::utilityFailed()
{
    pendingStart = sim.schedule(
        fromSeconds(p.detectionDelaySec),
        [this] {
            ++transfers_;
            if (startFn)
                startFn();
        },
        "ats-start-dg", EventPriority::Power);
}

void
Ats::utilityRestored()
{
    pendingStart.cancel();
    if (returnFn)
        returnFn();
}

} // namespace bpsim
