#include "power/power_hierarchy.hh"

#include <algorithm>

#include "obs/obs.hh"
#include "sim/logging.hh"

namespace bpsim
{

PowerHierarchy::PowerHierarchy(Simulator &sim, Utility &utility,
                               const Config &config)
    : sim(sim), utility(utility), cfg(config), ats(sim, config.ats)
{
    if (cfg.hasUps)
        ups_ = std::make_unique<Ups>(cfg.ups);
    if (cfg.hasDg) {
        dg_ = std::make_unique<DieselGenerator>(sim, cfg.dg);
        dg_->onRampChange([this] { onDgRampChange(); });
        ats.onStartGenerator([this] {
            if (dg_)
                dg_->start();
        });
    }
    utility.onFail([this] { utilityFailed(); });
    utility.onRestore([this] { utilityRestored(); });
}

bool
PowerHierarchy::powered() const
{
    return mode_ != Mode::Dead;
}

double
PowerHierarchy::batterySoc() const
{
    if (!ups_)
        return 0.0;
    // The battery is only integrated at power events (sync()); for a
    // between-events read project the drain forward under the current
    // constant mix. Under constant power the Peukert model drains soc
    // linearly, so the projection soc * (1 - dt/tte) is exact.
    // Read-only: sampling must never perturb simulation state.
    double soc = ups_->battery().soc();
    if (batteryShare > 0.0 && sim.now() > lastSync) {
        const Time tte = ups_->timeToEmpty(batteryShare);
        if (tte != kTimeNever && tte > 0) {
            const double dt =
                static_cast<double>(sim.now() - lastSync);
            soc = std::max(
                0.0, soc * (1.0 - dt / static_cast<double>(tte)));
        }
    }
    return soc;
}

void
PowerHierarchy::setLoad(Watts w)
{
    BPSIM_ASSERT(w >= 0.0, "negative load %g W", w);
    sync();
    load_ = w;
    recomputeMix();
}

Time
PowerHierarchy::timeToBatteryEmpty() const
{
    if (!ups_ || batteryShare <= 0.0)
        return kTimeNever;
    return ups_->timeToEmpty(batteryShare);
}

void
PowerHierarchy::sync()
{
    const Time now = sim.now();
    const Time dt = now - lastSync;
    BPSIM_ASSERT(dt >= 0, "power sync went backwards");
    if (dt == 0)
        return;
    switch (mode_) {
      case Mode::OnUtility:
        if (ups_) {
            if (batteryShare > 0.0)
                ups_->discharge(batteryShare, dt); // peak shaving
            else
                ups_->recharge(dt);
        }
        break;
      case Mode::RideThrough:
        // Capacitive ride-through: no battery draw.
        break;
      case Mode::OnBattery:
        if (ups_ && batteryShare > 0.0)
            ups_->discharge(batteryShare, dt);
        if (dg_ && dgShare > 0.0)
            dg_->consume(dgShare, dt);
        break;
      case Mode::OnDg:
        if (dg_)
            dg_->consume(load_, dt);
        if (ups_)
            ups_->recharge(dt);
        break;
      case Mode::Dead:
        break;
    }
    if (ups_ && BPSIM_OBS_ON())
        noteBatterySoc();
    lastSync = now;
}

void
PowerHierarchy::recomputeMix()
{
    depletionEv.cancel();
    fuelEv.cancel();
    batteryShare = 0.0;
    dgShare = 0.0;

    Watts from_utility = 0.0;

    switch (mode_) {
      case Mode::OnUtility: {
        from_utility = load_;
        const Watts threshold = cfg.peakShaveThresholdW;
        if (threshold > 0.0 && ups_ && load_ > threshold) {
            const Watts excess = load_ - threshold;
            // Require a millisecond of genuine runtime so a string
            // rounding to empty cannot re-arm a zero-delay cycle.
            const Time tte = ups_->timeToEmpty(excess);
            if (ups_->canCarry(excess) && tte >= kMillisecond) {
                batteryShare = excess;
                from_utility = threshold;
                if (tte != kTimeNever) {
                    depletionEv = sim.schedule(
                        tte, [this] { onBatteryEmpty(); },
                        "shave-battery-empty", EventPriority::Power);
                }
            }
        }
        break;
      }
      case Mode::RideThrough:
        break;
      case Mode::OnBattery: {
        BPSIM_ASSERT(ups_ != nullptr, "OnBattery without a UPS");
        Watts dg_part = 0.0;
        if (dg_ && dg_->online())
            dg_part = dg_->availablePowerW(load_);
        Watts bat_part = std::max(0.0, load_ - dg_part);
        if (!ups_->canCarry(bat_part) || ups_->battery().empty()) {
            losePower();
            return;
        }
        batteryShare = bat_part;
        dgShare = dg_part;
        if (batteryShare > 0.0) {
            const Time tte = ups_->timeToEmpty(batteryShare);
            if (tte != kTimeNever) {
                depletionEv = sim.schedule(
                    tte, [this] { onBatteryEmpty(); }, "battery-empty",
                    EventPriority::Power);
            }
        }
        break;
      }
      case Mode::OnDg: {
        BPSIM_ASSERT(dg_ != nullptr, "OnDg without a DG");
        if (load_ > dg_->params().powerCapacityW * (1.0 + 1e-9) ||
            dg_->fuelExhausted()) {
            losePower();
            return;
        }
        dgShare = load_;
        if (load_ > 0.0) {
            const double tank_sec = dg_->fuelRemainingJ() / load_;
            fuelEv = sim.schedule(fromSeconds(tank_sec),
                                  [this] { onFuelExhausted(); },
                                  "dg-fuel-out", EventPriority::Power);
        }
        break;
      }
      case Mode::Dead:
        break;
    }

    meter_.record(sim.now(), load_, from_utility, batteryShare,
                  mode_ == Mode::OnDg ? load_ : dgShare);
}

void
PowerHierarchy::losePower()
{
    depletionEv.cancel();
    rideThroughEv.cancel();
    fuelEv.cancel();
    mode_ = Mode::Dead;
    batteryShare = 0.0;
    dgShare = 0.0;
    ++losses;
    BPSIM_TRACE(obs::EventKind::PowerLost, sim.now(), "power-lost",
                nullptr, load_);
    BPSIM_OBS_COUNTER_ADD("power.losses", 1);
    meter_.record(sim.now(), load_, 0.0, 0.0, 0.0);
    for (auto *l : listeners)
        l->powerLost(sim.now());
}

void
PowerHierarchy::utilityFailed()
{
    sync();
    // One grid-outage episode = one causal incident: every event until
    // restoration (UPS discharge, DG attempts, phases) carries the id.
    if (BPSIM_OBS_ON())
        obs::beginIncident();
    BPSIM_TRACE(obs::EventKind::OutageStart, sim.now(), "outage",
                nullptr, load_);
    BPSIM_OBS_COUNTER_ADD("power.outages", 1);
    outageStartedAt_ = sim.now();
    mode_ = Mode::RideThrough;
    recomputeMix();
    ats.utilityFailed();
    notifyOutage();
    const double gap_sec = ups_ ? std::min(cfg.psuRideThroughSec,
                                           toSeconds(ups_->transferDelay()))
                                : cfg.psuRideThroughSec;
    rideThroughEv = sim.schedule(fromSeconds(gap_sec),
                                 [this] { afterRideThrough(); },
                                 "ride-through-end", EventPriority::Power);
}

void
PowerHierarchy::afterRideThrough()
{
    sync();
    if (mode_ != Mode::RideThrough)
        return;
    if (!ups_) {
        losePower();
        return;
    }
    mode_ = Mode::OnBattery;
    recomputeMix();
    if (mode_ == Mode::OnBattery) {
        BPSIM_TRACE(obs::EventKind::UpsDischarge, sim.now(),
                    "ups-discharge", nullptr, batteryShare);
        BPSIM_OBS_COUNTER_ADD("ups.discharges", 1);
    }
}

void
PowerHierarchy::onBatteryEmpty()
{
    sync();
    if (mode_ == Mode::OnUtility) {
        // The peak-shaving string ran dry; the utility absorbs the
        // peak (the provisioned distribution limit is the operator's
        // problem, not this model's) and the battery stops shaving.
        recomputeMix();
        return;
    }
    if (mode_ != Mode::OnBattery)
        return;
    BPSIM_TRACE(obs::EventKind::BackupDepleted, sim.now(),
                "backup-depleted", "battery");
    BPSIM_OBS_COUNTER_ADD("power.backup_depleted", 1);
    for (auto *l : listeners)
        l->backupDepleted(sim.now());
    // The DG may be able to pick up the whole load even before the ramp
    // nominally completes; a hard battery cutoff forces the transfer.
    if (dg_ && dg_->online() &&
        load_ <= dg_->params().powerCapacityW * (1.0 + 1e-9) &&
        !dg_->fuelExhausted()) {
        mode_ = Mode::OnDg;
        recomputeMix();
        notifyDgCarrying();
        return;
    }
    losePower();
}

void
PowerHierarchy::onFuelExhausted()
{
    sync();
    if (mode_ != Mode::OnDg)
        return;
    BPSIM_TRACE(obs::EventKind::BackupDepleted, sim.now(),
                "backup-depleted", "fuel");
    BPSIM_OBS_COUNTER_ADD("power.backup_depleted", 1);
    for (auto *l : listeners)
        l->backupDepleted(sim.now());
    // The battery (if any charge remains) is the only source left.
    if (ups_ && !ups_->battery().empty() && ups_->canCarry(load_)) {
        mode_ = Mode::OnBattery;
        recomputeMix();
        return;
    }
    losePower();
}

void
PowerHierarchy::onDgRampChange()
{
    sync();
    if (mode_ == Mode::OnBattery) {
        if (dg_->transferFraction() >= 1.0 &&
            load_ <= dg_->params().powerCapacityW * (1.0 + 1e-9)) {
            mode_ = Mode::OnDg;
            recomputeMix();
            notifyDgCarrying();
        } else {
            recomputeMix();
        }
    } else if (mode_ == Mode::Dead) {
        // No UPS (or battery ran out before the DG was ready): the DG
        // re-energizes the (crashed) load once it can carry it alone.
        if (dg_->transferFraction() >= 1.0 && !dg_->fuelExhausted()) {
            mode_ = Mode::OnDg;
            recomputeMix();
            notifyDgCarrying();
        }
    }
}

void
PowerHierarchy::utilityRestored()
{
    sync();
    BPSIM_TRACE(obs::EventKind::OutageEnd, sim.now(), "outage");
    if (BPSIM_OBS_ON() && outageStartedAt_ >= 0) {
        BPSIM_OBS_HISTOGRAM_RECORD(
            "power.outage_duration_s",
            toSeconds(sim.now() - outageStartedAt_));
        if (ups_)
            BPSIM_OBS_HISTOGRAM_RECORD("battery.soc_at_restore",
                                       ups_->battery().soc());
    }
    rideThroughEv.cancel();
    depletionEv.cancel();
    if (dg_)
        dg_->stop();
    ats.utilityRestored();
    mode_ = Mode::OnUtility;
    recomputeMix();
    notifyRestored();
    // Close after notifyRestored() so after-restoration phase events
    // still thread into the incident's span tree.
    if (BPSIM_OBS_ON())
        obs::endIncident();
}

void
PowerHierarchy::notifyOutage()
{
    for (auto *l : listeners)
        l->outageStarted(sim.now());
}

void
PowerHierarchy::notifyRestored()
{
    for (auto *l : listeners)
        l->utilityRestored(sim.now());
}

void
PowerHierarchy::notifyDgCarrying()
{
    BPSIM_TRACE(obs::EventKind::DgCarrying, sim.now(), "dg-carrying",
                nullptr, load_);
    BPSIM_OBS_COUNTER_ADD("dg.carrying", 1);
    if (BPSIM_OBS_ON() && dg_ && dg_->startedAt() >= 0)
        BPSIM_OBS_HISTOGRAM_RECORD(
            "dg.start_to_carrying_s",
            toSeconds(sim.now() - dg_->startedAt()));
    for (auto *l : listeners)
        l->dgCarrying(sim.now());
}

void
PowerHierarchy::noteBatterySoc()
{
    const double soc = ups_->battery().soc();
    // Decile 9 covers [0.9, 1.0] so a full battery does not flap.
    const int decile = std::min(9, static_cast<int>(soc * 10.0));
    if (decile == socDecile_)
        return;
    // The first sync only latches the starting decile; crossings are
    // what the trace reports.
    if (socDecile_ >= 0)
        BPSIM_TRACE(obs::EventKind::BatterySoc, sim.now(), "battery-soc",
                    nullptr, soc, static_cast<double>(decile) / 10.0);
    socDecile_ = decile;
}

} // namespace bpsim
