/**
 * @file
 * UPS unit: power electronics wrapping a battery string.
 *
 * Today's datacenters (Facebook/Microsoft rack-level designs cited by the
 * paper) prefer *offline* UPS placement: the unit is bypassed in normal
 * operation and switches the load onto its battery within ~10 ms of
 * detecting a utility failure — comfortably inside the ~30 ms of PSU
 * capacitance ride-through, so the switch is seamless. An *online*
 * (double-conversion) configuration is also modelled for completeness;
 * it transfers instantly but pays a conversion-efficiency tax during
 * normal operation.
 */

#ifndef BPSIM_POWER_UPS_HH
#define BPSIM_POWER_UPS_HH

#include "power/battery.hh"
#include "sim/types.hh"

namespace bpsim
{

/** UPS unit: transfer behaviour plus a Peukert battery string. */
class Ups
{
  public:
    /** Electrical placement of the UPS relative to the load path. */
    enum class Placement
    {
        /** In parallel; switches in on failure (preferred, ~10 ms). */
        Offline,
        /** In series (double conversion); zero-delay transfer. */
        Online,
    };

    /** Static parameters of the UPS unit. */
    struct Params
    {
        /** Peak deliverable power (watts). */
        Watts powerCapacityW = 250e3;
        /**
         * Battery runtime at full rated load (seconds). The paper's
         * FreeRunTime base capacity is 2 minutes; larger values model
         * added battery modules (the LargeEUPS-style configurations).
         */
        double runtimeAtRatedSec = 120.0;
        /** Peukert exponent; 0 selects the Figure 3 fit. */
        double peukertExponent = 0.0;
        /** Placement (offline by default, as in the paper). */
        Placement placement = Placement::Offline;
        /** Failure-detection + switch-in delay for offline units (s). */
        double transferDelaySec = 0.010;
        /** Double-conversion efficiency for online units. */
        double onlineEfficiency = 0.94;
        /** Battery recharge time from empty (seconds). */
        double rechargeTimeSec = 4.0 * 3600.0;
    };

    explicit Ups(const Params &params);

    /** Static parameters. */
    const Params &params() const { return p; }

    /** The battery string. */
    PeukertBattery &battery() { return bat; }
    const PeukertBattery &battery() const { return bat; }

    /** Delay between utility failure and the UPS carrying the load. */
    Time transferDelay() const;

    /** True if @p load is within the unit's power rating. */
    bool canCarry(Watts load) const;

    /** Remaining battery runtime sustaining @p load. */
    Time timeToEmpty(Watts load) const { return bat.timeToEmpty(load); }

    /** Source @p load from the battery for @p dt. */
    void discharge(Watts load, Time dt) { bat.discharge(load, dt); }

    /** Recharge the battery for @p dt (utility active). */
    void recharge(Time dt) { bat.recharge(dt); }

    /** Nameplate battery energy (paper convention), kWh. */
    double energyCapacityKwh() const { return bat.nominalEnergyKwh(); }

  private:
    Params p;
    PeukertBattery bat;
};

} // namespace bpsim

#endif // BPSIM_POWER_UPS_HH
