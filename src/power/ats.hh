/**
 * @file
 * Automatic Transfer Switch (ATS).
 *
 * Detects utility failure and commands the diesel generator to start,
 * then transfers back when the utility returns. The paper treats its
 * cost as negligible; the model keeps only its functional role: a small
 * detection delay before the DG start command, and bookkeeping of
 * transfer counts for availability analysis.
 */

#ifndef BPSIM_POWER_ATS_HH
#define BPSIM_POWER_ATS_HH

#include <functional>

#include "sim/simulator.hh"
#include "sim/types.hh"

namespace bpsim
{

/** Automatic transfer switch between utility and generator feeds. */
class Ats
{
  public:
    /** Static parameters. */
    struct Params
    {
        /** Time to detect loss of the primary feed (seconds). */
        double detectionDelaySec = 0.5;
    };

    Ats(Simulator &sim, const Params &params) : sim(sim), p(params) {}

    /** Static parameters. */
    const Params &params() const { return p; }

    /** Hook invoked (after the detection delay) to start the DG. */
    void onStartGenerator(std::function<void()> fn) { startFn = fn; }

    /** Hook invoked when switching back to utility. */
    void onReturnToUtility(std::function<void()> fn) { returnFn = fn; }

    /** Primary feed lost: arm the generator-start command. */
    void utilityFailed();

    /** Primary feed back: cancel/stop and switch back. */
    void utilityRestored();

    /** Number of completed utility->generator transfers commanded. */
    int transfers() const { return transfers_; }

  private:
    Simulator &sim;
    Params p;
    std::function<void()> startFn;
    std::function<void()> returnFn;
    EventHandle pendingStart;
    int transfers_ = 0;
};

} // namespace bpsim

#endif // BPSIM_POWER_ATS_HH
