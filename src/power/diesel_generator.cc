#include "power/diesel_generator.hh"

#include <algorithm>

#include "obs/obs.hh"
#include "sim/logging.hh"

namespace bpsim
{

DieselGenerator::DieselGenerator(Simulator &sim, const Params &params)
    : sim(sim), p(params)
{
    BPSIM_ASSERT(p.powerCapacityW > 0.0, "non-positive DG capacity");
    BPSIM_ASSERT(p.startupDelaySec >= 0.0, "negative DG startup delay");
    BPSIM_ASSERT(p.rampSteps >= 1, "DG needs at least one ramp step");
    BPSIM_ASSERT(p.rampDurationSec >= 0.0, "negative DG ramp duration");
    fuel = p.fuelCapacityJ > 0.0 ? p.fuelCapacityJ
                                 : p.powerCapacityW * 24.0 * 3600.0;
}

void
DieselGenerator::start()
{
    if (st != State::Off)
        return;
    if (fuelExhausted()) {
        warn("DG start requested with an empty tank");
        BPSIM_TRACE(obs::EventKind::DgStartFailed, sim.now(),
                    "dg-start-failed", "empty-tank");
        BPSIM_OBS_COUNTER_ADD("dg.starts_failed", 1);
        return;
    }
    BPSIM_TRACE(obs::EventKind::DgStart, sim.now(), "dg-start", nullptr,
                p.startupDelaySec);
    BPSIM_OBS_COUNTER_ADD("dg.starts", 1);
    startedAt_ = sim.now();
    st = State::Starting;
    pendingEvent = sim.schedule(fromSeconds(p.startupDelaySec),
                                [this] { becomeOnline(); }, "dg-online",
                                EventPriority::Power);
}

void
DieselGenerator::stop()
{
    pendingEvent.cancel();
    st = State::Off;
    fraction = 0.0;
    stepsDone = 0;
}

void
DieselGenerator::becomeOnline()
{
    BPSIM_ASSERT(st == State::Starting, "DG came online from state %d",
                 static_cast<int>(st));
    BPSIM_TRACE(obs::EventKind::DgOnline, sim.now(), "dg-online");
    st = State::Online;
    stepsDone = 0;
    advanceRamp();
}

void
DieselGenerator::advanceRamp()
{
    if (st != State::Online)
        return;
    ++stepsDone;
    fraction = std::min(
        1.0, static_cast<double>(stepsDone) /
                 static_cast<double>(p.rampSteps));
    if (rampFn)
        rampFn();
    if (stepsDone < p.rampSteps) {
        const double step_sec =
            p.rampDurationSec / static_cast<double>(p.rampSteps);
        pendingEvent = sim.schedule(fromSeconds(step_sec),
                                    [this] { advanceRamp(); }, "dg-ramp",
                                    EventPriority::Power);
    }
}

Watts
DieselGenerator::availablePowerW(Watts load) const
{
    if (st != State::Online || fuelExhausted())
        return 0.0;
    return std::min(p.powerCapacityW, load * fraction);
}

void
DieselGenerator::consume(Watts load, Time dt)
{
    BPSIM_ASSERT(dt >= 0, "negative DG consume interval");
    if (load <= 0.0 || dt == 0)
        return;
    BPSIM_ASSERT(st == State::Online, "consuming from a DG that is not on");
    fuel = std::max(0.0, fuel - energyOver(load, dt));
}

} // namespace bpsim
