#include "service/http.hh"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "sim/logging.hh"

namespace bpsim
{
namespace service
{

namespace
{

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string_view
trim(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
        s.remove_suffix(1);
    return s;
}

bool
setFail(std::string *error, const char *why)
{
    if (error)
        *error = why;
    return false;
}

/** Write all of @p data to @p fd, absorbing EINTR / partial writes. */
bool
writeAll(int fd, std::string_view data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

std::string
targetPath(const std::string &target)
{
    const std::size_t qm = target.find('?');
    return qm == std::string::npos ? target : target.substr(0, qm);
}

namespace
{

/** %XX / '+' decoding of one query-string token. */
std::string
urlDecode(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '+') {
            out += ' ';
        } else if (c == '%' && i + 2 < s.size() &&
                   std::isxdigit(static_cast<unsigned char>(s[i + 1])) &&
                   std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
            const auto hex = [](char h) {
                if (h >= '0' && h <= '9')
                    return h - '0';
                if (h >= 'a' && h <= 'f')
                    return h - 'a' + 10;
                return h - 'A' + 10;
            };
            out += static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2]));
            i += 2;
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace

bool
queryParam(const std::string &target, std::string_view name,
           std::string *value)
{
    const std::size_t qm = target.find('?');
    if (qm == std::string::npos)
        return false;
    std::string_view query(target);
    query.remove_prefix(qm + 1);
    while (!query.empty()) {
        std::size_t amp = query.find('&');
        const std::string_view pair =
            query.substr(0, amp == std::string_view::npos ? query.size()
                                                          : amp);
        query.remove_prefix(amp == std::string_view::npos ? query.size()
                                                          : amp + 1);
        const std::size_t eq = pair.find('=');
        const std::string_view key =
            pair.substr(0, eq == std::string_view::npos ? pair.size()
                                                        : eq);
        if (key != name)
            continue;
        if (value != nullptr)
            *value = eq == std::string_view::npos
                         ? std::string()
                         : urlDecode(pair.substr(eq + 1));
        return true;
    }
    return false;
}

const std::string *
HttpRequest::header(std::string_view name) const
{
    const std::string key = toLower(name);
    for (const auto &[k, v] : headers)
        if (k == key)
            return &v;
    return nullptr;
}

const char *
httpStatusText(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 400:
        return "Bad Request";
    case 404:
        return "Not Found";
    case 405:
        return "Method Not Allowed";
    case 413:
        return "Payload Too Large";
    case 500:
        return "Internal Server Error";
    case 503:
        return "Service Unavailable";
    default:
        return "Unknown";
    }
}

HttpResponse
httpError(int status, const std::string &reason)
{
    HttpResponse r;
    r.status = status;
    // Hand-escape nothing: reasons are our own fixed strings plus
    // parse errors, which never contain quotes or control bytes, but
    // escape defensively anyway via a tiny local pass.
    std::string body = "{\"error\":\"";
    for (const char c : reason) {
        if (c == '"' || c == '\\')
            body += '\\';
        if (static_cast<unsigned char>(c) >= 0x20)
            body += c;
    }
    body += "\"}\n";
    r.body = std::move(body);
    return r;
}

bool
parseHttpRequest(std::string_view text, HttpRequest &out,
                 std::string *error)
{
    const std::size_t head_end = text.find("\r\n\r\n");
    if (head_end == std::string_view::npos)
        return setFail(error, "incomplete request head");
    const std::string_view head = text.substr(0, head_end);

    // Start line: METHOD SP TARGET SP VERSION.
    const std::size_t line_end = head.find("\r\n");
    const std::string_view start =
        head.substr(0, line_end == std::string_view::npos ? head.size()
                                                          : line_end);
    const std::size_t sp1 = start.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : start.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos)
        return setFail(error, "malformed request line");
    out.method = std::string(start.substr(0, sp1));
    out.target = std::string(start.substr(sp1 + 1, sp2 - sp1 - 1));
    out.version = std::string(trim(start.substr(sp2 + 1)));
    if (out.method.empty() || out.target.empty() ||
        out.version.rfind("HTTP/", 0) != 0)
        return setFail(error, "malformed request line");

    // Header fields.
    out.headers.clear();
    std::size_t pos = line_end == std::string_view::npos
                          ? head.size()
                          : line_end + 2;
    while (pos < head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        if (eol == std::string_view::npos)
            eol = head.size();
        const std::string_view line = head.substr(pos, eol - pos);
        pos = eol + 2;
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos)
            return setFail(error, "malformed header field");
        out.headers.emplace_back(toLower(trim(line.substr(0, colon))),
                                 std::string(trim(line.substr(colon + 1))));
    }

    out.body = std::string(text.substr(head_end + 4));
    return true;
}

std::string
renderHttpResponse(const HttpResponse &r)
{
    std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " +
                      httpStatusText(r.status) + "\r\n";
    out += "Content-Type: " + r.contentType + "\r\n";
    out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
    for (const auto &[k, v] : r.headers)
        out += k + ": " + v + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += r.body;
    return out;
}

HttpServer::HttpServer(Handler handler, HttpServerOptions opts)
    : handler_([h = std::move(handler)](const HttpRequest &req,
                                        HttpConnectionIo &) {
          return h(req);
      }),
      opts_(std::move(opts))
{
}

HttpServer::HttpServer(TimedHandler handler, HttpServerOptions opts)
    : handler_(std::move(handler)), opts_(std::move(opts))
{
}

HttpServer::~HttpServer()
{
    stop();
}

bool
HttpServer::start(std::string *error)
{
    if (running_.load())
        return true;

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts_.port);
    if (::inet_pton(AF_INET, opts_.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        if (error)
            *error = "bad bind address: " + opts_.bindAddress;
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listenFd_, opts_.backlog) != 0) {
        if (error)
            *error = std::string("bind/listen: ") + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }

    // Resolve port 0 to the kernel's pick.
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        port_ = ntohs(bound.sin_port);

    stopRequested_.store(false);
    running_.store(true);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
HttpServer::requestStop()
{
    stopRequested_.store(true);
}

void
HttpServer::stop()
{
    requestStop();
    waitUntilStopped();
}

void
HttpServer::waitUntilStopped()
{
    if (acceptThread_.joinable())
        acceptThread_.join();
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [this] { return activeConnections_ == 0; });
}

bool
HttpServer::running() const
{
    return running_.load();
}

void
HttpServer::acceptLoop()
{
    // Poll with a short timeout so requestStop() is honored without
    // signal machinery: the cost is one spurious wakeup per 50 ms of
    // idleness, which is nothing for an operator-facing service.
    while (!stopRequested_.load()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 50);
        if (rc < 0 && errno != EINTR)
            break;
        if (rc <= 0 || !(pfd.revents & POLLIN))
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        {
            std::lock_guard<std::mutex> lk(m_);
            ++activeConnections_;
        }
        std::thread([this, fd] {
            serveConnection(fd);
            connectionDone();
        }).detach();
    }
    ::close(listenFd_);
    listenFd_ = -1;
    running_.store(false);
}

void
HttpServer::connectionDone()
{
    std::lock_guard<std::mutex> lk(m_);
    --activeConnections_;
    cv_.notify_all();
}

void
HttpServer::serveConnection(int fd)
{
    const auto read_begin = std::chrono::steady_clock::now();
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    // Read the head (until CRLFCRLF), then exactly Content-Length
    // body bytes. Everything is bounded; a peer that exceeds a bound
    // gets a 4xx and the connection closed.
    std::string data;
    std::size_t head_end = std::string::npos;
    char buf[4096];
    while (true) {
        head_end = data.find("\r\n\r\n");
        if (head_end != std::string::npos)
            break;
        if (data.size() > opts_.maxHeaderBytes) {
            writeAll(fd, renderHttpResponse(
                             httpError(413, "request head too large")));
            ::close(fd);
            return;
        }
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            ::close(fd); // peer went away mid-request
            return;
        }
        data.append(buf, static_cast<std::size_t>(n));
    }

    HttpRequest req;
    std::string perr;
    if (!parseHttpRequest(data.substr(0, head_end + 4) , req, &perr)) {
        writeAll(fd, renderHttpResponse(httpError(400, perr)));
        ::close(fd);
        return;
    }

    std::size_t content_length = 0;
    if (const std::string *cl = req.header("content-length")) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
        if (end == cl->c_str() || *end != '\0') {
            writeAll(fd, renderHttpResponse(
                             httpError(400, "bad content-length")));
            ::close(fd);
            return;
        }
        content_length = static_cast<std::size_t>(v);
    }
    if (content_length > opts_.maxBodyBytes) {
        writeAll(fd,
                 renderHttpResponse(httpError(413, "body too large")));
        ::close(fd);
        return;
    }

    req.body = data.substr(head_end + 4);
    while (req.body.size() < content_length) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            ::close(fd);
            return;
        }
        req.body.append(buf, static_cast<std::size_t>(n));
    }
    const std::uint64_t body_extra = req.body.size() - content_length;
    req.body.resize(content_length);

    HttpConnectionIo io;
    io.readNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - read_begin)
            .count());
    io.bytesIn = head_end + 4 + content_length + body_extra;

    HttpResponse resp;
    try {
        resp = handler_(req, io);
    } catch (const std::exception &e) {
        resp = httpError(500, e.what());
    } catch (...) {
        resp = httpError(500, "unhandled exception");
    }
    const std::string rendered = renderHttpResponse(resp);
    const auto write_begin = std::chrono::steady_clock::now();
    writeAll(fd, rendered);
    if (io.onWritten) {
        const std::uint64_t write_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - write_begin)
                .count());
        io.onWritten(write_ns, rendered.size());
    }
    ::shutdown(fd, SHUT_WR);
    // Drain until the peer closes so its final ACKed read never races
    // our RST; bounded by the peer's Connection: close behavior.
    while (::recv(fd, buf, sizeof buf, 0) > 0) {
    }
    ::close(fd);
}

} // namespace service
} // namespace bpsim
