#include "service/cache.hh"

#include <utility>

namespace bpsim
{
namespace service
{

std::uint64_t
fnv1a64(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

ResultCache::ResultCache(std::size_t maxEntries, obs::Registry *registry,
                         std::string prefix)
    : maxEntries_(maxEntries == 0 ? 1 : maxEntries),
      registry_(registry != nullptr ? registry : &obs::Registry::global()),
      prefix_(std::move(prefix))
{
}

std::optional<std::string>
ResultCache::get(const std::string &key)
{
    const std::uint64_t h = fnv1a64(key);
    std::lock_guard<std::mutex> lk(m_);
    const auto it = index_.find(h);
    if (it == index_.end() || it->second->key != key) {
        ++stats_.misses;
        registry_->counter(prefix_ + ".misses").add(1);
        return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    registry_->counter(prefix_ + ".hits").add(1);
    return it->second->value;
}

void
ResultCache::put(const std::string &key, std::string value)
{
    const std::uint64_t h = fnv1a64(key);
    std::lock_guard<std::mutex> lk(m_);
    const auto it = index_.find(h);
    if (it != index_.end()) {
        // Overwrite (also the hash-collision path: the colliding old
        // entry is replaced, keeping at most one entry per address).
        stats_.valueBytes -= it->second->value.size();
        stats_.valueBytes += value.size();
        it->second->key = key;
        it->second->value = std::move(value);
        lru_.splice(lru_.begin(), lru_, it->second);
        touchCounters();
        return;
    }
    while (lru_.size() >= maxEntries_) {
        const Entry &victim = lru_.back();
        stats_.valueBytes -= victim.value.size();
        index_.erase(victim.hash);
        lru_.pop_back();
        ++stats_.evictions;
        registry_->counter(prefix_ + ".evictions").add(1);
    }
    stats_.valueBytes += value.size();
    lru_.push_front(Entry{h, key, std::move(value)});
    index_[h] = lru_.begin();
    ++stats_.insertions;
    registry_->counter(prefix_ + ".insertions").add(1);
    touchCounters();
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lk(m_);
    lru_.clear();
    index_.clear();
    stats_.valueBytes = 0;
    touchCounters();
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lk(m_);
    CacheStats s = stats_;
    s.entries = lru_.size();
    return s;
}

void
ResultCache::touchCounters()
{
    registry_->gauge(prefix_ + ".entries")
        .set(static_cast<double>(lru_.size()));
    registry_->gauge(prefix_ + ".value_bytes")
        .set(static_cast<double>(stats_.valueBytes));
}

} // namespace service
} // namespace bpsim
