/**
 * @file
 * The resident campaign service: what-if queries, result cache,
 * live metrics and alert rules behind the HTTP front end.
 *
 * Endpoints (see docs/SERVICE.md for the full contract):
 *
 *   POST /v1/whatif    scenario JSON in, deterministic campaign
 *                      summary JSON out. Responses are served from
 *                      the content-addressed cache when the
 *                      (config, seed, trials, buildId) tuple has
 *                      been computed before; the X-Bpsim-Cache
 *                      header says "hit" or "miss".
 *   GET  /v1/alerts    current alert-rule states as JSON.
 *   GET  /metrics      OpenMetrics exposition of the process-wide
 *                      registry, including the ALERTS-style
 *                      alert.<rule>.state gauges.
 *   GET  /healthz      liveness probe.
 *   GET  /v1/series    tiered metrics history (sampler-fed; window,
 *                      max-points and tier query parameters).
 *   GET  /v1/alerts/history
 *                      retained alert transition log.
 *   GET  /dashboard    self-contained live HTML dashboard.
 *   POST /v1/shutdown  graceful stop (used by the CI smoke test).
 *
 * Campaign execution is serialized: one what-if runs at a time (the
 * campaign itself already fans out across every core via the shared
 * WorkStealingPool, so concurrent campaigns would only fight over
 * the same cores — and serializing keeps the drain of the
 * trace/sample sinks, which must not race in-flight trials, trivially
 * correct). Cache lookups share that lock, so each request counts
 * exactly one hit or miss; metrics scrapes, alert reads and health
 * probes never wait on a running campaign.
 *
 * Three layers sit in front of the campaign (docs/SERVICE.md):
 *
 *   - Single-flight coalescing: identical concurrent what-ifs share
 *     one execution. The first request leads; the rest park on the
 *     flight and copy its response ("X-Bpsim-Cache: coalesced",
 *     counter service.coalesced).
 *   - Incremental trial reuse: every campaign leaves a serialized
 *     CampaignCheckpoint behind, keyed by the budget-wildcarded base
 *     key. A later request for the same scenario with a larger budget
 *     resumes from it, simulating only the remaining trials —
 *     bit-identical to a fresh run (campaign/checkpoint.hh).
 *   - Persistent cache: results and checkpoints spill to --cache-dir
 *     (DiskStore) and are lazily reloaded after a restart; any
 *     corruption degrades to a miss.
 */

#ifndef BPSIM_SERVICE_SERVICE_HH
#define BPSIM_SERVICE_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "obs/history.hh"
#include "service/alerts.hh"
#include "service/cache.hh"
#include "service/disk_store.hh"
#include "service/http.hh"
#include "service/reqobs.hh"
#include "service/whatif.hh"

namespace bpsim
{
namespace service
{

/**
 * Metrics-history configuration: the tiered store behind
 * GET /v1/series plus the background sampler that feeds it. Like
 * reqobs, the whole layer is strictly out of band — every existing
 * endpoint's response body is byte-identical with it on, off or
 * compiled out (BPSIM_OBS=OFF), which the history tests pin.
 */
struct HistoryOptions
{
    /** Master switch (--history on|off). */
    bool enabled = true;
    /** Sampler tick period = raw-tier bucket width. */
    std::uint64_t cadenceNs = 1000000000ull;
    /** Raw-tier span; rollup tiers span 10x / 60x this. */
    std::uint64_t retentionNs = 600ull * 1000000000ull;
    /** Hard cap on distinct stored series. */
    std::size_t maxSeries = 256;
    /**
     * Spawn the background sampler thread on start(). Tests set this
     * false and drive sampleHistoryOnce() by hand so every sample
     * lands at a stepping-fake-clock timestamp and /v1/series bytes
     * are pinned exactly.
     */
    bool samplerThread = true;
    /** Alert transitions retained for GET /v1/alerts/history; older
     *  entries are dropped (and counted). */
    std::size_t alertEventCapacity = 1024;
    /** Metric source to sample; null = obs::Registry::global(). */
    obs::Registry *registry = nullptr;
};

/** One retained alert transition (GET /v1/alerts/history). */
struct AlertHistoryEntry
{
    /** Service clock value (ns) of the request whose campaign fired
     *  the transition. */
    std::uint64_t tsNs = 0;
    AlertEvent event;
};

/** Service configuration. */
struct ServiceOptions
{
    HttpServerOptions http;
    /** Result-cache bound (entries). */
    std::size_t cacheEntries = 256;
    /** Request sizing guard-rails. */
    WhatIfLimits limits;
    /**
     * Evaluate the alert rule book after every uncached what-if.
     * Requires obs to be enabled; when the sample cadence is zero it
     * is set to hourly so Signal rules have data.
     */
    bool evaluateAlerts = true;
    /** Trials per campaign whose signals feed the alert engine (the
     *  sink records every trial; this caps memory, like the sweep's
     *  sampled-trial filter). */
    std::uint64_t alertSampleTrials = 4;
    /** Coalesce identical in-flight what-ifs into one execution. */
    bool coalesce = true;
    /** Spill results and checkpoints here; empty = memory only. */
    std::string cacheDir;
    /** Checkpoints whose serialized form exceeds this are not stored
     *  (the campaign still runs; only reuse is forfeited). */
    std::size_t checkpointMaxBytes = 1u << 20;
    /**
     * Test hook: invoked by a coalescing leader after it has claimed
     * the flight and before it executes. Lets the concurrency test
     * hold the leader until every follower is parked. Never set in
     * production.
     */
    std::function<void()> testBeforeCampaign;
    /** Request-level observability (ids, spans, access log, status). */
    RequestObsOptions reqobs;
    /** Metrics history (tiered store + sampler + /v1/series). */
    HistoryOptions history;
};

/** The resident server (construct, start(), waitUntilStopped()). */
class CampaignService
{
  public:
    explicit CampaignService(ServiceOptions opts = {});
    ~CampaignService();

    /** Start listening (and the history sampler thread when armed);
     *  false (with @p error) on socket failure. */
    bool start(std::string *error = nullptr);

    /** Graceful stop: finish in-flight requests, then return. */
    void stop();

    /** Block until a shutdown request (or stop()) lands. */
    void waitUntilStopped();

    bool running() const { return http_.running(); }
    std::uint16_t port() const { return http_.port(); }

    /**
     * Route one request (the HTTP handler; public so tests can
     * exercise the full service without a socket). The @p io overload
     * is what the socket layer calls: it carries read timing/bytes in
     * and receives the post-write completion hook, so the access-log
     * line includes the read and write phases.
     */
    HttpResponse handle(const HttpRequest &req);
    HttpResponse handle(const HttpRequest &req, HttpConnectionIo *io);

    ResultCache &cache() { return cache_; }
    ResultCache &checkpointCache() { return ckptCache_; }
    const DiskStore &disk() const { return disk_; }
    AlertEngine &alerts() { return alerts_; }
    RequestObserver &requestObserver() { return reqobs_; }
    obs::HistoryStore &history() { return history_; }

    /** True when the history layer serves /v1/series (enabled and the
     *  obs layer compiled in — the reqobs kCompiledIn contract). */
    bool historyActive() const
    {
        return RequestObserver::kCompiledIn && opts_.history.enabled;
    }

    /**
     * Take one history sample: read the shared clock once, then fold
     * the registry (counters as rates, gauges raw, request-histogram
     * family quantiles), cache/flight depths and alert states into the
     * tiered store. The sampler thread calls this every cadence; tests
     * with samplerThread = false call it directly so sample
     * timestamps follow the injected stepping clock.
     */
    void sampleHistoryOnce();

    /** Milliseconds the last sampler tick ran behind its cadence. */
    std::uint64_t historyLagMs() const
    {
        return historyLagMs_.load(std::memory_order_relaxed);
    }

    /** Followers currently parked on in-flight executions (the
     *  coalescing test uses this to sequence leader vs. followers). */
    std::uint64_t coalesceWaiters() const
    {
        return coalesceWaiters_.load(std::memory_order_acquire);
    }

  private:
    /** One coalesced execution in flight for a canonical key. */
    struct Flight
    {
        bool done = false;
        int status = 200;
        std::string contentType;
        std::string body;
        /** The leading request's id (followers log it). */
        std::uint64_t leaderId = 0;
    };

    /** Dispatch to the endpoint handlers (handle() minus the
     *  per-request bookkeeping that wraps every response). */
    HttpResponse route(const HttpRequest &req, RequestTrack &track);
    HttpResponse handleWhatIf(const HttpRequest &req,
                              RequestTrack &track);
    /** Cache lookup + (possibly resumed) campaign for a valid,
     *  already-parsed request; the coalescing leader's work. */
    HttpResponse computeWhatIf(const WhatIfRequest &request,
                               const std::string &key,
                               const char *keyhex,
                               RequestTrack &track);
    HttpResponse handleAlerts() const;
    HttpResponse handleMetrics() const;
    HttpResponse handleHealthz();
    HttpResponse handleStatus();
    HttpResponse handleShutdown();
    HttpResponse handleSeries(const HttpRequest &req);
    HttpResponse handleAlertHistory();
    HttpResponse handleDashboard() const;

    /** The sampler's metric source (override or the global). */
    obs::Registry &historyRegistry() const;
    /** Retain this round's alert transitions for /v1/alerts/history
     *  (bounded; @p tsNs is the leading request's admission time). */
    void appendAlertHistory(std::uint64_t tsNs,
                            const std::vector<AlertEvent> &fired);
    void startSampler();
    void stopSampler();
    void samplerLoop();

    ServiceOptions opts_;
    ResultCache cache_;
    /** Serialized CampaignCheckpoints keyed by "ckpt|" + base key. */
    ResultCache ckptCache_;
    DiskStore disk_;
    AlertEngine alerts_;
    /** Serializes campaign execution + sink drains. */
    std::mutex campaign_m_;
    /** Guards inflight_; inflight_cv_ wakes parked followers. */
    std::mutex inflight_m_;
    std::condition_variable inflight_cv_;
    std::unordered_map<std::string, std::shared_ptr<Flight>> inflight_;
    std::atomic<std::uint64_t> coalesceWaiters_{0};
    std::atomic<std::uint64_t> requestsServed_{0};
    RequestObserver reqobs_;
    /** Clock value at construction (uptime = now - boot). */
    std::uint64_t bootNs_ = 0;

    /** The tiered metrics history (bounded; see obs/history.hh). */
    obs::HistoryStore history_;
    /** Serializes sampler ticks (thread vs. test-driven calls). */
    std::mutex sample_m_;
    /** Clock value of the previous tick (0 = none yet); rates and
     *  lag are computed against it. Guarded by sample_m_. */
    std::uint64_t lastSampleNs_ = 0;
    /** Counter-like values at the previous tick (registry counters,
     *  cache hit/miss totals, histogram counts). Guarded by
     *  sample_m_. */
    std::map<std::string, double> prevSamples_;
    std::atomic<std::uint64_t> historyLagMs_{0};

    /** Guards alertLog_/alertLogDropped_. */
    mutable std::mutex alert_log_m_;
    std::deque<AlertHistoryEntry> alertLog_;
    std::uint64_t alertLogDropped_ = 0;

    /** The background sampler (started by start(), joined by stop()
     *  and the destructor). */
    std::thread sampler_;
    std::mutex sampler_m_;
    std::condition_variable sampler_cv_;
    bool samplerStop_ = false;

    HttpServer http_;
};

} // namespace service
} // namespace bpsim

#endif // BPSIM_SERVICE_SERVICE_HH
