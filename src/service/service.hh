/**
 * @file
 * The resident campaign service: what-if queries, result cache,
 * live metrics and alert rules behind the HTTP front end.
 *
 * Endpoints (see docs/SERVICE.md for the full contract):
 *
 *   POST /v1/whatif    scenario JSON in, deterministic campaign
 *                      summary JSON out. Responses are served from
 *                      the content-addressed cache when the
 *                      (config, seed, trials, buildId) tuple has
 *                      been computed before; the X-Bpsim-Cache
 *                      header says "hit" or "miss".
 *   GET  /v1/alerts    current alert-rule states as JSON.
 *   GET  /metrics      OpenMetrics exposition of the process-wide
 *                      registry, including the ALERTS-style
 *                      alert.<rule>.state gauges.
 *   GET  /healthz      liveness probe.
 *   POST /v1/shutdown  graceful stop (used by the CI smoke test).
 *
 * Campaign execution is serialized: one what-if runs at a time (the
 * campaign itself already fans out across every core via the shared
 * WorkStealingPool, so concurrent campaigns would only fight over
 * the same cores — and serializing keeps the drain of the
 * trace/sample sinks, which must not race in-flight trials, trivially
 * correct). Cache lookups share that lock, so each request counts
 * exactly one hit or miss; metrics scrapes, alert reads and health
 * probes never wait on a running campaign.
 */

#ifndef BPSIM_SERVICE_SERVICE_HH
#define BPSIM_SERVICE_SERVICE_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "service/alerts.hh"
#include "service/cache.hh"
#include "service/http.hh"
#include "service/whatif.hh"

namespace bpsim
{
namespace service
{

/** Service configuration. */
struct ServiceOptions
{
    HttpServerOptions http;
    /** Result-cache bound (entries). */
    std::size_t cacheEntries = 256;
    /** Request sizing guard-rails. */
    WhatIfLimits limits;
    /**
     * Evaluate the alert rule book after every uncached what-if.
     * Requires obs to be enabled; when the sample cadence is zero it
     * is set to hourly so Signal rules have data.
     */
    bool evaluateAlerts = true;
    /** Trials per campaign whose signals feed the alert engine (the
     *  sink records every trial; this caps memory, like the sweep's
     *  sampled-trial filter). */
    std::uint64_t alertSampleTrials = 4;
};

/** The resident server (construct, start(), waitUntilStopped()). */
class CampaignService
{
  public:
    explicit CampaignService(ServiceOptions opts = {});

    /** Start listening; false (with @p error) on socket failure. */
    bool start(std::string *error = nullptr);

    /** Graceful stop: finish in-flight requests, then return. */
    void stop();

    /** Block until a shutdown request (or stop()) lands. */
    void waitUntilStopped();

    bool running() const { return http_.running(); }
    std::uint16_t port() const { return http_.port(); }

    /**
     * Route one request (the HTTP handler; public so tests can
     * exercise the full service without a socket).
     */
    HttpResponse handle(const HttpRequest &req);

    ResultCache &cache() { return cache_; }
    AlertEngine &alerts() { return alerts_; }

  private:
    HttpResponse handleWhatIf(const HttpRequest &req);
    HttpResponse handleAlerts() const;
    HttpResponse handleMetrics() const;
    HttpResponse handleHealthz() const;
    HttpResponse handleShutdown();

    ServiceOptions opts_;
    ResultCache cache_;
    AlertEngine alerts_;
    /** Serializes campaign execution + sink drains. */
    std::mutex campaign_m_;
    std::atomic<std::uint64_t> requestsServed_{0};
    HttpServer http_;
};

} // namespace service
} // namespace bpsim

#endif // BPSIM_SERVICE_SERVICE_HH
