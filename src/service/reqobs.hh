/**
 * @file
 * Request-level observability for the resident what-if service: a
 * monotonic request id per request (echoed as X-Bpsim-Request-Id,
 * client-supplied ids accepted), span timing of every lifecycle phase
 * (read, parse, cache tiers, checkpoint, campaign, alerts, serialize,
 * write), per-endpoint/per-phase/per-status latency histograms in the
 * obs::Registry, a structured JSON-lines access log with a
 * slow-request threshold, a bounded ring of completed requests
 * exportable as Chrome-trace spans (obs::writeSpanTrace), and the
 * in-flight table behind GET /v1/status.
 *
 * Determinism contract: the layer is strictly out-of-band. Response
 * bodies are never touched — a what-if reply is byte-identical with
 * the layer enabled, disabled, or compiled out (BPSIM_OBS=OFF), which
 * the service regression tests pin across the cache-hit, miss,
 * coalesced and resumed paths. All timing rides in headers, the
 * access log, /metrics and /v1/status.
 *
 * Clock injection: every timestamp comes from one injectable
 * monotonic nanosecond clock (RequestObsOptions::clock), so tests pin
 * the access-log and span-trace *bytes* with a stepping fake clock
 * without pinning wall times. The default clock is steady_clock
 * nanoseconds relative to observer construction.
 *
 * Metric naming: request histograms use label-encoded registry names
 * (`service.request.seconds|endpoint=whatif,phase=campaign,status=200`);
 * obs::writeOpenMetrics() renders the `|k=v,...` suffix as a proper
 * OpenMetrics label set, so /metrics exposes
 * `bpsim_service_request_seconds_bucket{endpoint="whatif",...,le="..."}`
 * in the PR-4 cumulative-bucket form.
 *
 * Cost contract: with the layer disabled (or BPSIM_OBS=OFF) a request
 * costs one id fetch_add, one in-flight table insert/erase and a
 * single clock read at admission (so /v1/status can still report
 * request ages) — no span timing, no histogram records, no log I/O.
 * bench/micro_service gates the enabled-path overhead against a
 * committed baseline.
 */

#ifndef BPSIM_SERVICE_REQOBS_HH
#define BPSIM_SERVICE_REQOBS_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/obs.hh"

namespace bpsim
{
namespace service
{

/** One lifecycle phase of a served request (the span vocabulary). */
enum class RequestPhase : std::uint8_t
{
    /** Socket accept + head/body read (timed by the HTTP layer). */
    Read,
    /** JSON parse + request validation. */
    Parse,
    /** Parked on a coalescing leader's flight. */
    Wait,
    /** Memory result-cache lookup. */
    CacheMem,
    /** Disk-tier lookup (DiskStore load + promotion). */
    CacheDisk,
    /** Checkpoint lookup/parse before, and persist after, the run. */
    Checkpoint,
    /** Campaign execution (executeWhatIf). */
    Campaign,
    /** Alert-rule evaluation over the run's drained signals. */
    Alerts,
    /** Response-body/cache serialization (and GET-endpoint render). */
    Serialize,
    /** Response write to the socket (timed by the HTTP layer). */
    Write,
};

/** Number of RequestPhase enumerators (Write is last). */
constexpr std::size_t kRequestPhaseCount =
    static_cast<std::size_t>(RequestPhase::Write) + 1;

/** Stable lowercase identifier of @p phase ("cache_mem", ...). */
const char *requestPhaseName(RequestPhase phase);

/** The served endpoint (the histogram/label vocabulary). */
enum class Endpoint : std::uint8_t
{
    WhatIf,
    Alerts,
    Metrics,
    Healthz,
    Status,
    Shutdown,
    /** GET /v1/series (metrics-history query). */
    Series,
    /** GET /v1/alerts/history (alert transition log). */
    AlertHistory,
    /** GET /dashboard (the self-contained live page). */
    Dashboard,
    /** Unrouted targets (404s). */
    Other,
};

/** Number of Endpoint enumerators (Other is last). */
constexpr std::size_t kEndpointCount =
    static_cast<std::size_t>(Endpoint::Other) + 1;

/** Stable lowercase identifier of @p ep ("whatif", "status", ...). */
const char *endpointName(Endpoint ep);

/** Map a request target to its endpoint (Other for 404 targets).
 *  The query string, if any, is ignored. */
Endpoint endpointOf(const std::string &target);

/**
 * The label-encoded registry name of one request-latency histogram:
 * `service.request.seconds|endpoint=<ep>,phase=<phase>,status=<status>`.
 * @p phase is a requestPhaseName() or the synthetic "total".
 */
std::string requestMetricName(Endpoint ep, const char *phase,
                              int status);

/** Request-observability configuration (ServiceOptions::reqobs). */
struct RequestObsOptions
{
    /** Master switch for span timing, histograms, log and trace ring
     *  (request ids and the in-flight table stay on regardless). */
    bool enabled = true;
    /** Append one JSON line per request here; empty = no file log. */
    std::string accessLogPath;
    /** Test hook: log lines additionally go to this stream. */
    std::ostream *accessLogStream = nullptr;
    /** Requests at or above this total latency additionally log their
     *  full phase spans ("slow":true); 0 marks every request slow. */
    std::uint64_t slowMs = 1000;
    /** Completed requests retained for the Chrome span export. */
    std::size_t traceCapacity = 1024;
    /** Injectable monotonic nanosecond clock (tests pass a stepping
     *  fake so log/trace bytes are pinned); null = steady_clock. */
    std::function<std::uint64_t()> clock;
    /** Metric sink; null = obs::Registry::global(). */
    obs::Registry *registry = nullptr;
};

/** One timed span within a request. */
struct RequestSpan
{
    RequestPhase phase = RequestPhase::Read;
    /** Clock values (ns) at span begin/end. */
    std::uint64_t beginNs = 0;
    std::uint64_t endNs = 0;
};

/** Everything recorded about one completed request. */
struct RequestRecord
{
    /** Monotonic server-assigned id (1-based). */
    std::uint64_t id = 0;
    /** Validated client-supplied X-Bpsim-Request-Id ("" when none). */
    std::string clientId;
    Endpoint endpoint = Endpoint::Other;
    std::string method;
    int status = 0;
    /** "hit", "miss" or "coalesced" ("" for non-whatif requests). */
    std::string cache;
    /** "memory" or "disk" ("" when the result was computed). */
    std::string tier;
    /** The leader id a coalesced follower parked on (0 = led). */
    std::uint64_t coalescedInto = 0;
    /** First trial of an incremental resume (-1 = not resumed). */
    std::int64_t resumedFrom = -1;
    std::uint64_t bytesIn = 0;
    std::uint64_t bytesOut = 0;
    /** Milliseconds the history sampler was behind its cadence when
     *  this request was served (0 = on schedule; omitted from the
     *  log line when 0). */
    std::uint64_t historyLagMs = 0;
    /** Clock values (ns) bracketing the whole request. */
    std::uint64_t startNs = 0;
    std::uint64_t endNs = 0;
    /** Individual spans in begin order (slow log + trace export). */
    std::vector<RequestSpan> spans;
    /** Accumulated nanoseconds per phase (indexed by RequestPhase). */
    std::uint64_t phaseNs[kRequestPhaseCount] = {};
    /** Whether the phase was entered at all (a 0 ns span still
     *  logs; an untouched phase is omitted from the log line). */
    bool phaseSeen[kRequestPhaseCount] = {};

    /** Append a finished span and fold it into the phase totals. */
    void addSpan(RequestPhase p, std::uint64_t beginNs,
                 std::uint64_t endNs);
};

/** One in-flight request as reported by GET /v1/status. */
struct InflightRequest
{
    std::uint64_t id = 0;
    std::string clientId;
    Endpoint endpoint = Endpoint::Other;
    /** The most recently entered phase. */
    RequestPhase phase = RequestPhase::Read;
    /** Clock value (ns) when the request was admitted. */
    std::uint64_t startNs = 0;
};

class RequestTrack;

/**
 * The per-service observer: owns the id counter, the in-flight table,
 * the histograms, the access log and the completed-request ring.
 * Thread-safe; one instance per CampaignService.
 */
class RequestObserver
{
  public:
    /** True when the obs layer is compiled in (BPSIM_OBS=ON); with it
     *  compiled out the observer is inert beyond ids + in-flight. */
    static constexpr bool kCompiledIn = BPSIM_OBS_ENABLED != 0;

    explicit RequestObserver(RequestObsOptions opts = {});

    /** Span timing / histograms / log / trace ring armed? */
    bool active() const { return kCompiledIn && opts_.enabled; }

    /** Current clock value (ns); 0-based at observer construction for
     *  the default clock. */
    std::uint64_t nowNs() const;

    /** Snapshot of the in-flight table, sorted by id. */
    std::vector<InflightRequest> inflight() const;

    /** @name Lifetime totals */
    ///@{
    std::uint64_t completedRequests() const;
    std::uint64_t slowRequests() const;
    std::uint64_t accessLogLines() const;
    ///@}

    /** True when --access-log opened (or a test stream is set). */
    bool logOpen() const;

    /**
     * Export the retained completed requests as Chrome-trace spans
     * (one track per request id, a "request" span with one child span
     * per phase) via obs::writeSpanTrace. Deterministic given a
     * deterministic clock.
     */
    void writeTrace(std::ostream &os) const;

    const RequestObsOptions &options() const { return opts_; }

  private:
    friend class RequestTrack;

    struct Inflight
    {
        std::uint64_t id = 0;
        std::string clientId;
        Endpoint endpoint = Endpoint::Other;
        std::atomic<std::uint8_t> phase{
            static_cast<std::uint8_t>(RequestPhase::Read)};
        std::uint64_t startNs = 0;
    };

    std::uint64_t nextId() { return nextId_.fetch_add(1) + 1; }
    std::shared_ptr<Inflight> admit(std::uint64_t id,
                                    std::string clientId, Endpoint ep,
                                    std::uint64_t startNs);
    void retire(std::uint64_t id);
    /** Record histograms, write the log line, retain the record. */
    void complete(RequestRecord &&rec);

    void writeLogLine(const RequestRecord &rec);

    RequestObsOptions opts_;
    obs::Registry *registry_;
    std::ofstream logFile_;
    std::atomic<std::uint64_t> nextId_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> slow_{0};
    std::atomic<std::uint64_t> logLines_{0};
    /** Guards inflightTable_ and ring_. */
    mutable std::mutex m_;
    std::vector<std::shared_ptr<Inflight>> inflightTable_;
    std::deque<RequestRecord> ring_;
    /** Guards log emission (one line at a time, whole lines only). */
    std::mutex log_m_;
};

/**
 * RAII per-request handle living on the handler's stack: admits the
 * request on construction, collects spans and annotations, and
 * completes the record on destruction — or, when the HTTP layer will
 * report write timing, via the closure returned by deferFinish().
 */
class RequestTrack
{
  public:
    /**
     * Admit a request. @p clientId is the raw X-Bpsim-Request-Id
     * header value (empty = none); it is validated (<= 64 chars of
     * [A-Za-z0-9._-]) and ignored when malformed. @p bytesIn counts
     * the raw request bytes; @p readNs is the HTTP layer's measured
     * read duration (0 when handled without a socket).
     */
    RequestTrack(RequestObserver *obs, Endpoint ep, std::string method,
                 const std::string &clientId, std::uint64_t bytesIn,
                 std::uint64_t readNs);
    ~RequestTrack();

    RequestTrack(const RequestTrack &) = delete;
    RequestTrack &operator=(const RequestTrack &) = delete;

    /** The echoed id: the validated client id, else the numeric id. */
    std::string publicId() const;
    std::uint64_t id() const { return rec_.id; }

    /** RAII phase span (ends when it leaves scope). */
    class Span
    {
      public:
        Span(RequestTrack *track, RequestPhase phase);
        Span(Span &&other) noexcept;
        ~Span();
        Span(const Span &) = delete;
        Span &operator=(const Span &) = delete;
        Span &operator=(Span &&) = delete;

      private:
        RequestTrack *track_;
        RequestPhase phase_;
        std::uint64_t beginNs_;
    };

    /** Enter @p phase: updates the in-flight table (always) and times
     *  the span (when the observer is active). */
    Span span(RequestPhase phase);

    /** @name Annotations (plain stores into the record) */
    ///@{
    void setStatus(int status) { rec_.status = status; }
    void setCache(const char *c) { rec_.cache = c; }
    void setTier(const char *t) { rec_.tier = t; }
    void setCoalescedInto(std::uint64_t leader)
    {
        rec_.coalescedInto = leader;
    }
    void setResumedFrom(std::uint64_t trial)
    {
        rec_.resumedFrom = static_cast<std::int64_t>(trial);
    }
    void setBytesOut(std::uint64_t n) { rec_.bytesOut = n; }
    void setHistoryLagMs(std::uint64_t ms) { rec_.historyLagMs = ms; }
    ///@}

    /** Clock value (ns) when the request was admitted (already read
     *  at admission — using it costs no extra clock call, which is
     *  what lets alert-history timestamps stay byte-deterministic). */
    std::uint64_t startNs() const { return rec_.startNs; }

    /**
     * Hand completion to the HTTP layer: returns a closure to invoke
     * once after the response bytes are written (with the write
     * duration and rendered byte count); the destructor then no-ops.
     * The closure appends the Write span and completes the record.
     */
    std::function<void(std::uint64_t writeNs, std::uint64_t bytesOut)>
    deferFinish();

  private:
    friend class Span;

    void finish();

    RequestObserver *obs_;
    std::shared_ptr<RequestObserver::Inflight> info_;
    RequestRecord rec_;
    bool deferred_ = false;
    bool finished_ = false;
};

} // namespace service
} // namespace bpsim

#endif // BPSIM_SERVICE_REQOBS_HH
