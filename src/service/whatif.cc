#include "service/whatif.hh"

#include <cmath>
#include <sstream>

#include "core/backup_config.hh"
#include "sim/logging.hh"
#include "workload/profile.hh"

namespace bpsim
{
namespace service
{

namespace
{

bool
setError(std::string *error, const std::string &why)
{
    if (error)
        *error = why;
    return false;
}

/**
 * @name Checked JSON field accessors
 * JsonValue's as*() accessors assert (abort) on kind mismatch; the
 * request body is untrusted, so everything goes through these
 * instead. A missing member leaves @p out untouched and succeeds —
 * schema fields are optional unless the caller checks presence.
 */
///@{
bool
readNumber(const JsonValue &obj, const char *key, double &out,
           std::string *error)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        return true;
    if (v->kind() != JsonValue::Kind::Number)
        return setError(error, std::string(key) + " must be a number");
    out = v->asDouble();
    if (!std::isfinite(out))
        return setError(error, std::string(key) + " must be finite");
    return true;
}

bool
readUint(const JsonValue &obj, const char *key, std::uint64_t &out,
         std::string *error)
{
    double d = static_cast<double>(out);
    if (!readNumber(obj, key, d, error))
        return false;
    if (d < 0 || d != std::floor(d) || d > 9e15)
        return setError(error, std::string(key) +
                                   " must be a non-negative integer");
    out = static_cast<std::uint64_t>(d);
    return true;
}

bool
readInt(const JsonValue &obj, const char *key, int &out,
        std::string *error)
{
    double d = static_cast<double>(out);
    if (!readNumber(obj, key, d, error))
        return false;
    if (d != std::floor(d) || d < -2e9 || d > 2e9)
        return setError(error, std::string(key) + " must be an integer");
    out = static_cast<int>(d);
    return true;
}

bool
readBool(const JsonValue &obj, const char *key, bool &out,
         std::string *error)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        return true;
    if (v->kind() != JsonValue::Kind::Bool)
        return setError(error, std::string(key) + " must be a boolean");
    out = v->asBool();
    return true;
}
///@}

bool
parseConfig(const JsonValue &v, BackupConfigSpec &out, std::string *error)
{
    if (v.kind() == JsonValue::Kind::String) {
        for (const auto &c : table3Configs()) {
            if (c.name == v.asString()) {
                out = c;
                return true;
            }
        }
        return setError(error,
                        "unknown config \"" + v.asString() +
                            "\" (expected a Table 3 name, e.g. "
                            "\"LargeEUPS\", or an object)");
    }
    if (v.kind() != JsonValue::Kind::Object)
        return setError(error, "config must be a name or an object");

    out = BackupConfigSpec{};
    if (const JsonValue *n = v.find("name")) {
        if (n->kind() != JsonValue::Kind::String)
            return setError(error, "config.name must be a string");
        out.name = n->asString();
    } else {
        out.name = "custom";
    }
    if (!readBool(v, "has_dg", out.hasDg, error) ||
        !readNumber(v, "dg_power_frac", out.dgPowerFrac, error) ||
        !readBool(v, "has_ups", out.hasUps, error) ||
        !readNumber(v, "ups_power_frac", out.upsPowerFrac, error) ||
        !readNumber(v, "ups_runtime_sec", out.upsRuntimeSec, error))
        return false;
    if (out.dgPowerFrac < 0 || out.upsPowerFrac < 0 ||
        out.upsRuntimeSec < 0)
        return setError(error, "config fractions must be non-negative");
    return true;
}

bool
parseTechnique(const JsonValue &v, TechniqueSpec &out, std::string *error)
{
    if (v.kind() != JsonValue::Kind::Object)
        return setError(error, "technique must be an object");
    if (const JsonValue *k = v.find("kind")) {
        if (k->kind() != JsonValue::Kind::String)
            return setError(error, "technique.kind must be a string");
        const auto kind = techniqueKindFromName(k->asString());
        if (!kind)
            return setError(error, "unknown technique kind \"" +
                                       k->asString() + "\"");
        out.kind = *kind;
    }
    double serve_for_min = toMinutes(out.serveFor);
    if (!readInt(v, "pstate", out.pstate, error) ||
        !readInt(v, "tstate", out.tstate, error) ||
        !readNumber(v, "serve_for_min", serve_for_min, error) ||
        !readBool(v, "low_power", out.lowPower, error) ||
        !readInt(v, "host_pstate", out.hostPState, error) ||
        !readNumber(v, "remote_perf", out.remotePerf, error) ||
        !readNumber(v, "risk", out.risk, error))
        return false;
    if (serve_for_min < 0)
        return setError(error, "serve_for_min must be non-negative");
    out.serveFor = fromMinutes(serve_for_min);
    return true;
}

} // namespace

const char *
techniqueKindName(TechniqueKind kind)
{
    switch (kind) {
    case TechniqueKind::None:
        return "none";
    case TechniqueKind::Throttle:
        return "throttle";
    case TechniqueKind::Sleep:
        return "sleep";
    case TechniqueKind::Hibernate:
        return "hibernate";
    case TechniqueKind::ProactiveHibernate:
        return "proactive_hibernate";
    case TechniqueKind::Migration:
        return "migration";
    case TechniqueKind::ProactiveMigration:
        return "proactive_migration";
    case TechniqueKind::MigrationSleep:
        return "migration_sleep";
    case TechniqueKind::ThrottleSleep:
        return "throttle_sleep";
    case TechniqueKind::ThrottleHibernate:
        return "throttle_hibernate";
    case TechniqueKind::GeoFailover:
        return "geo_failover";
    case TechniqueKind::Adaptive:
        return "adaptive";
    }
    return "?";
}

std::optional<TechniqueKind>
techniqueKindFromName(const std::string &name)
{
    static const TechniqueKind kinds[] = {
        TechniqueKind::None,
        TechniqueKind::Throttle,
        TechniqueKind::Sleep,
        TechniqueKind::Hibernate,
        TechniqueKind::ProactiveHibernate,
        TechniqueKind::Migration,
        TechniqueKind::ProactiveMigration,
        TechniqueKind::MigrationSleep,
        TechniqueKind::ThrottleSleep,
        TechniqueKind::ThrottleHibernate,
        TechniqueKind::GeoFailover,
        TechniqueKind::Adaptive,
    };
    for (const TechniqueKind k : kinds)
        if (name == techniqueKindName(k))
            return k;
    return std::nullopt;
}

std::optional<WhatIfRequest>
parseWhatIfRequest(const JsonValue &body, std::string *error,
                   const WhatIfLimits &limits)
{
    if (body.kind() != JsonValue::Kind::Object) {
        setError(error, "request body must be a JSON object");
        return std::nullopt;
    }

    WhatIfRequest req;
    req.spec.profile = specJbbProfile();
    req.spec.nServers = 8;
    req.opts.maxTrials = 200;
    req.opts.seed = 2014;
    // Early stop off by default: a deterministic fixed-budget run is
    // the cache-friendly default; clients opt into the CI rule.
    req.opts.minTrials = 64;
    req.opts.ciRelTol = 0.0;
    req.opts.ciAbsTolMin = 0.0;

    const JsonValue *config = body.find("config");
    if (config == nullptr) {
        setError(error, "missing required field \"config\"");
        return std::nullopt;
    }
    if (!parseConfig(*config, req.spec.config, error))
        return std::nullopt;

    if (const JsonValue *t = body.find("technique")) {
        if (!parseTechnique(*t, req.spec.technique, error))
            return std::nullopt;
    }

    if (!readInt(body, "servers", req.spec.nServers, error) ||
        !readUint(body, "trials", req.opts.maxTrials, error) ||
        !readUint(body, "seed", req.opts.seed, error) ||
        !readUint(body, "min_trials", req.opts.minTrials, error) ||
        !readNumber(body, "ci_rel_tol", req.opts.ciRelTol, error) ||
        !readNumber(body, "ci_abs_tol_min", req.opts.ciAbsTolMin, error))
        return std::nullopt;

    if (req.spec.nServers < 1 || req.spec.nServers > limits.maxServers) {
        setError(error, formatString("servers must be in [1, %d]",
                                     limits.maxServers));
        return std::nullopt;
    }
    if (req.opts.maxTrials < 1 ||
        req.opts.maxTrials > limits.maxTrials) {
        setError(error,
                 formatString("trials must be in [1, %llu]",
                              static_cast<unsigned long long>(
                                  limits.maxTrials)));
        return std::nullopt;
    }
    if (req.opts.ciRelTol < 0 || req.opts.ciAbsTolMin < 0) {
        setError(error, "early-stop tolerances must be non-negative");
        return std::nullopt;
    }
    return req;
}

namespace
{

/** Shared body of canonicalCacheKey()/canonicalBaseKey(): the trial
 *  budget is the only field the two spell differently. */
std::string
canonicalKeyWithTrials(const WhatIfRequest &req, const std::string &trials)
{
    // Fixed field order, %.17g doubles (the same print precision the
    // JSON layer round-trips), '|' separators. Any field that can
    // change the result must appear here; buildId last so a rebuilt
    // binary never serves a stale entry.
    const BackupConfigSpec &c = req.spec.config;
    const TechniqueSpec &t = req.spec.technique;
    std::ostringstream os;
    os << "whatif.v1|profile=specjbb|config=" << c.name << '|'
       << c.hasDg << '|';
    char buf[32];
    const auto num = [&os, &buf](double v) {
        std::snprintf(buf, sizeof buf, "%.17g", v);
        os << buf << '|';
    };
    num(c.dgPowerFrac);
    os << c.hasUps << '|';
    num(c.upsPowerFrac);
    num(c.upsRuntimeSec);
    os << "tech=" << techniqueKindName(t.kind) << '|' << t.pstate << '|'
       << t.tstate << '|' << t.serveFor << '|' << t.lowPower << '|'
       << t.hostPState << '|';
    num(t.remotePerf);
    num(t.risk);
    os << "servers=" << req.spec.nServers << '|'
       << "trials=" << trials << '|'
       << "seed=" << req.opts.seed << '|'
       << "min_trials=" << req.opts.minTrials << '|';
    os << "ci=";
    num(req.opts.ciRelTol);
    num(req.opts.ciAbsTolMin);
    num(req.opts.ciZ);
    os << "build=" << buildId();
    return os.str();
}

} // namespace

std::string
canonicalCacheKey(const WhatIfRequest &req)
{
    return canonicalKeyWithTrials(
        req, std::to_string(req.opts.maxTrials));
}

std::string
canonicalBaseKey(const WhatIfRequest &req)
{
    return canonicalKeyWithTrials(req, "*");
}

std::string
runWhatIf(const WhatIfRequest &req)
{
    return executeWhatIf(req).body;
}

WhatIfExecution
executeWhatIf(const WhatIfRequest &req, const CampaignCheckpoint *from)
{
    // A checkpoint only seeds the run when resuming from it is
    // guaranteed bit-identical to running fresh: same seed (the RNG
    // stream family), a trial count within this request's budget, and
    // the same binary. Anything else is silently ignored — resume is
    // an accelerator, never a behavior change.
    const bool compatible = from != nullptr &&
                            from->summary.seed == req.opts.seed &&
                            from->summary.trials >= 1 &&
                            from->summary.trials <= req.opts.maxTrials &&
                            from->build == buildId();

    WhatIfExecution out;
    out.resumed = compatible;
    out.startTrial = compatible ? from->summary.trials : 0;
    const ResumableOutcome run = runResumableCampaign(
        req.spec, req.opts, compatible ? from : nullptr);
    out.executedTrials = run.executedTrials;
    out.checkpoint = run.checkpoint;
    std::ostringstream os;
    CampaignJsonOptions jopts;
    jopts.includeTiming = false;
    writeCampaignJson(os, run.summary, jopts);
    out.body = os.str();
    return out;
}

} // namespace service
} // namespace bpsim
