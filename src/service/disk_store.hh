/**
 * @file
 * Content-addressed disk spill for the what-if server's caches.
 *
 * One file per canonical key, named by the key's FNV-1a 64-bit hash,
 * written atomically (tmp file + rename) so a crashed or killed server
 * never leaves a half-written entry behind. Each file carries a small
 * validated header — magic, format version, the producing buildId,
 * key/value lengths and FNV checksums — followed by the raw key and
 * value bytes. load() re-verifies all of it: a truncated file, a
 * flipped bit, a checksum mismatch, a foreign build, or a hash
 * collision (stored key != requested key) all degrade to a miss,
 * never to a wrong or crashing answer. That is the whole durability
 * contract: the disk is a best-effort warm-start accelerator, and the
 * server must behave identically (minus latency) with an empty, a
 * corrupt, or a missing cache directory. See docs/SERVICE.md
 * "Persistent cache".
 */

#ifndef BPSIM_SERVICE_DISK_STORE_HH
#define BPSIM_SERVICE_DISK_STORE_HH

#include <optional>
#include <string>

#include "obs/registry.hh"

namespace bpsim
{
namespace service
{

/** Content-addressed one-file-per-key store under one directory. */
class DiskStore
{
  public:
    /**
     * @p dir empty disables the store (every load misses, every store
     * is a no-op). The directory is created if absent; on failure the
     * store disables itself and counts `service.disk.errors`.
     * @p registry receives the `service.disk.*` counters; defaults to
     * the process-wide registry.
     */
    explicit DiskStore(std::string dir,
                       obs::Registry *registry = nullptr);

    /** False when constructed with an empty/uncreatable directory. */
    bool enabled() const { return !dir_.empty(); }

    /** The backing directory ("" when disabled). */
    const std::string &dir() const { return dir_; }

    /**
     * Read the value stored for @p key. nullopt when absent — or on
     * any validation failure (truncation, checksum mismatch, foreign
     * buildId, key collision), which also counts
     * `service.disk.corrupt`.
     */
    std::optional<std::string> load(const std::string &key) const;

    /**
     * Atomically persist @p value for @p key, overwriting any previous
     * entry. Returns false (counting `service.disk.errors`) on I/O
     * failure; the caller treats that as "no disk", not an error.
     */
    bool store(const std::string &key, const std::string &value) const;

    /** The file a key lives in (for tests and forensics). */
    std::string pathFor(const std::string &key) const;

    /** Number of `*.bpsim` entries on disk right now (0 when
     *  disabled). A directory scan — /v1/status cost, not hot-path. */
    std::size_t fileCount() const;

  private:
    std::string dir_;
    obs::Registry *const registry_;
};

} // namespace service
} // namespace bpsim

#endif // BPSIM_SERVICE_DISK_STORE_HH
