#include "service/service.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/obs.hh"
#include "service/dashboard.hh"

namespace bpsim
{
namespace service
{

namespace
{

obs::HistoryConfig
historyConfig(const HistoryOptions &h)
{
    obs::HistoryConfig cfg;
    cfg.cadenceNs = h.cadenceNs;
    cfg.retentionNs = h.retentionNs;
    cfg.maxSeries = h.maxSeries;
    return cfg;
}

} // namespace

CampaignService::CampaignService(ServiceOptions opts)
    : opts_(opts),
      cache_(opts.cacheEntries),
      ckptCache_(opts.cacheEntries, nullptr, "service.ckpt.cache"),
      disk_(opts.cacheDir),
      alerts_(defaultAlertRules()),
      reqobs_(opts.reqobs),
      bootNs_(reqobs_.nowNs()),
      history_(historyConfig(opts.history)),
      http_(HttpServer::TimedHandler(
                [this](const HttpRequest &req, HttpConnectionIo &io) {
                    return handle(req, &io);
                }),
            opts.http)
{
    if (opts_.evaluateAlerts) {
        // Signal rules need sampled signals: arm the runtime gate and
        // default the cadence to hourly when nothing set one (a year
        // at hourly cadence is ~8.8k samples per signal per trial).
        obs::setEnabled(true);
        if (obs::sampleCadence() == 0)
            obs::setSampleCadence(fromHours(1.0));
    }
}

CampaignService::~CampaignService()
{
    stopSampler();
}

bool
CampaignService::start(std::string *error)
{
    if (!http_.start(error))
        return false;
    startSampler();
    return true;
}

void
CampaignService::stop()
{
    stopSampler();
    http_.stop();
}

void
CampaignService::waitUntilStopped()
{
    http_.waitUntilStopped();
}

HttpResponse
CampaignService::handle(const HttpRequest &req)
{
    return handle(req, nullptr);
}

HttpResponse
CampaignService::handle(const HttpRequest &req, HttpConnectionIo *io)
{
    requestsServed_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global().counter("service.requests").add(1);

    const std::string *cid = req.header("x-bpsim-request-id");
    RequestTrack track(&reqobs_, endpointOf(req.target), req.method,
                       cid != nullptr ? *cid : std::string(),
                       io != nullptr ? io->bytesIn : req.body.size(),
                       io != nullptr ? io->readNs : 0);

    HttpResponse resp = route(req, track);
    resp.headers.emplace_back("X-Bpsim-Request-Id", track.publicId());
    // Snapshots must never be cached stale by a scraper or the
    // dashboard poller; one header on every response keeps the
    // contract uniform (pinned by the header-contract test).
    resp.headers.emplace_back("Cache-Control", "no-store");
    track.setStatus(resp.status);
    track.setHistoryLagMs(
        historyLagMs_.load(std::memory_order_relaxed));
    if (io != nullptr) {
        // The socket layer completes the record after the response
        // write, so the log line carries the write span + bytes out.
        io->onWritten = track.deferFinish();
    } else {
        track.setBytesOut(resp.body.size());
    }
    return resp;
}

HttpResponse
CampaignService::route(const HttpRequest &req, RequestTrack &track)
{
    // Dispatch on the path alone: /v1/series carries its query in the
    // target ("/v1/series?name=...").
    const std::string path = targetPath(req.target);
    if (path == "/v1/whatif") {
        if (req.method != "POST")
            return httpError(405, "use POST for /v1/whatif");
        return handleWhatIf(req, track);
    }
    if (path == "/v1/alerts") {
        if (req.method != "GET")
            return httpError(405, "use GET for /v1/alerts");
        const auto s = track.span(RequestPhase::Serialize);
        return handleAlerts();
    }
    if (path == "/metrics") {
        if (req.method != "GET")
            return httpError(405, "use GET for /metrics");
        const auto s = track.span(RequestPhase::Serialize);
        return handleMetrics();
    }
    if (path == "/healthz") {
        if (req.method != "GET")
            return httpError(405, "use GET for /healthz");
        const auto s = track.span(RequestPhase::Serialize);
        return handleHealthz();
    }
    if (path == "/v1/status") {
        if (req.method != "GET")
            return httpError(405, "use GET for /v1/status");
        const auto s = track.span(RequestPhase::Serialize);
        return handleStatus();
    }
    if (path == "/v1/series") {
        if (req.method != "GET")
            return httpError(405, "use GET for /v1/series");
        const auto s = track.span(RequestPhase::Serialize);
        return handleSeries(req);
    }
    if (path == "/v1/alerts/history") {
        if (req.method != "GET")
            return httpError(405, "use GET for /v1/alerts/history");
        const auto s = track.span(RequestPhase::Serialize);
        return handleAlertHistory();
    }
    if (path == "/dashboard") {
        if (req.method != "GET")
            return httpError(405, "use GET for /dashboard");
        const auto s = track.span(RequestPhase::Serialize);
        return handleDashboard();
    }
    if (path == "/v1/shutdown") {
        if (req.method != "POST")
            return httpError(405, "use POST for /v1/shutdown");
        return handleShutdown();
    }
    obs::Registry::global().counter("service.errors").add(1);
    return httpError(404, "no such endpoint: " + req.target);
}

HttpResponse
CampaignService::handleWhatIf(const HttpRequest &req,
                              RequestTrack &track)
{
    std::optional<WhatIfRequest> request;
    std::string key;
    char keyhex[24];
    {
        const auto s = track.span(RequestPhase::Parse);
        std::string err;
        const auto body = parseJson(req.body, &err);
        if (!body) {
            obs::Registry::global().counter("service.errors").add(1);
            return httpError(400, "malformed JSON: " + err);
        }
        request = parseWhatIfRequest(*body, &err, opts_.limits);
        if (!request) {
            obs::Registry::global().counter("service.errors").add(1);
            return httpError(400, err);
        }
        key = canonicalCacheKey(*request);
        std::snprintf(keyhex, sizeof keyhex, "%016llx",
                      static_cast<unsigned long long>(fnv1a64(key)));
    }

    if (!opts_.coalesce)
        return computeWhatIf(*request, key, keyhex, track);

    // Single-flight: the first request for a key leads and executes;
    // identical concurrent requests park on the flight and copy its
    // response. Parse errors never get here (no key, nothing to
    // share), so every flight publishes a well-formed response.
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
        std::lock_guard<std::mutex> lk(inflight_m_);
        auto it = inflight_.find(key);
        if (it == inflight_.end()) {
            flight = std::make_shared<Flight>();
            flight->leaderId = track.id();
            inflight_.emplace(key, flight);
            leader = true;
        } else {
            flight = it->second;
        }
    }

    if (!leader) {
        obs::Registry::global().counter("service.coalesced").add(1);
        track.setCache("coalesced");
        track.setCoalescedInto(flight->leaderId);
        std::unique_lock<std::mutex> lk(inflight_m_);
        {
            const auto s = track.span(RequestPhase::Wait);
            coalesceWaiters_.fetch_add(1, std::memory_order_acq_rel);
            inflight_cv_.wait(lk, [&flight] { return flight->done; });
            coalesceWaiters_.fetch_sub(1, std::memory_order_acq_rel);
        }
        HttpResponse resp;
        resp.status = flight->status;
        if (!flight->contentType.empty())
            resp.contentType = flight->contentType;
        resp.headers.emplace_back("X-Bpsim-Key", keyhex);
        resp.headers.emplace_back("X-Bpsim-Cache", "coalesced");
        resp.body = flight->body;
        return resp;
    }

    if (opts_.testBeforeCampaign)
        opts_.testBeforeCampaign();
    const HttpResponse resp = computeWhatIf(*request, key, keyhex, track);
    {
        std::lock_guard<std::mutex> lk(inflight_m_);
        flight->status = resp.status;
        flight->contentType = resp.contentType;
        flight->body = resp.body;
        flight->done = true;
        inflight_.erase(key);
    }
    inflight_cv_.notify_all();
    return resp;
}

HttpResponse
CampaignService::computeWhatIf(const WhatIfRequest &request,
                               const std::string &key,
                               const char *keyhex,
                               RequestTrack &track)
{
    HttpResponse resp;
    resp.headers.emplace_back("X-Bpsim-Key", keyhex);

    std::lock_guard<std::mutex> lk(campaign_m_);
    {
        const auto s = track.span(RequestPhase::CacheMem);
        if (auto hit = cache_.get(key)) {
            track.setCache("hit");
            track.setTier("memory");
            resp.headers.emplace_back("X-Bpsim-Cache", "hit");
            resp.headers.emplace_back("X-Bpsim-Cache-Tier", "memory");
            resp.body = std::move(*hit);
            return resp;
        }
    }
    {
        const auto s = track.span(RequestPhase::CacheDisk);
        if (auto spilled = disk_.load(key)) {
            // Warm restart: promote the spilled result so the next
            // hit is a map lookup again.
            cache_.put(key, *spilled);
            track.setCache("hit");
            track.setTier("disk");
            resp.headers.emplace_back("X-Bpsim-Cache", "hit");
            resp.headers.emplace_back("X-Bpsim-Cache-Tier", "disk");
            resp.body = std::move(*spilled);
            return resp;
        }
    }
    track.setCache("miss");

    // A full miss still need not simulate from trial 0: a checkpoint
    // stored under the budget-wildcarded base key covers any earlier
    // budget for this exact scenario.
    const std::string ckpt_key = "ckpt|" + canonicalBaseKey(request);
    std::optional<CampaignCheckpoint> from;
    {
        const auto s = track.span(RequestPhase::Checkpoint);
        if (auto text = ckptCache_.get(ckpt_key)) {
            from = readCheckpointJson(*text);
        } else if (auto spilled = disk_.load(ckpt_key)) {
            if ((from = readCheckpointJson(*spilled)))
                ckptCache_.put(ckpt_key, *spilled);
        }
    }

    const bool with_alerts = opts_.evaluateAlerts && BPSIM_OBS_ON();
    std::map<std::string, std::uint64_t> counters_before;
    if (with_alerts) {
        // Discard sink residue so the alert evidence is exactly this
        // campaign's; safe here because campaign_m_ guarantees no
        // trials are in flight.
        obs::TraceSink::instance().clear();
        obs::TimeSeriesSink::instance().clear();
        counters_before = obs::Registry::global().counterSnapshot();
    }

    std::optional<WhatIfExecution> run;
    {
        const auto s = track.span(RequestPhase::Campaign);
        run = executeWhatIf(request, from ? &*from : nullptr);
    }
    const WhatIfExecution &ex = *run;
    obs::Registry::global().counter("service.whatif.campaigns").add(1);
    resp.headers.emplace_back("X-Bpsim-Cache", "miss");
    if (ex.resumed) {
        obs::Registry::global().counter("service.whatif.resumed").add(1);
        track.setResumedFrom(ex.startTrial);
        resp.headers.emplace_back("X-Bpsim-Resumed-From",
                                  std::to_string(ex.startTrial));
    }

    {
        const auto s = track.span(RequestPhase::Serialize);
        cache_.put(key, ex.body);
        disk_.store(key, ex.body);
        resp.body = ex.body;

        // Persist the checkpoint only when it extends what is already
        // stored — a smaller-budget request must never clobber a
        // deeper trajectory another request paid for.
        if (!from ||
            ex.checkpoint.summary.trials > from->summary.trials) {
            std::ostringstream ck;
            writeCheckpointJson(ck, ex.checkpoint);
            std::string text = ck.str();
            if (text.size() <= opts_.checkpointMaxBytes) {
                disk_.store(ckpt_key, text);
                ckptCache_.put(ckpt_key, std::move(text));
            } else {
                obs::Registry::global()
                    .counter("service.ckpt.oversize")
                    .add(1);
            }
        }
    }

    if (with_alerts) {
        const auto sp = track.span(RequestPhase::Alerts);
        const auto events = obs::TraceSink::instance().drain();
        auto samples = obs::TimeSeriesSink::instance().drain();
        // The warm-up sample window is relative to the trials this
        // call simulated: a resumed campaign's first fresh trial is
        // ex.startTrial, not 0.
        const std::uint64_t start = ex.startTrial;
        samples.erase(
            std::remove_if(samples.begin(), samples.end(),
                           [this, start](const obs::SignalSample &s) {
                               return s.trial < start ||
                                      s.trial - start >=
                                          opts_.alertSampleTrials;
                           }),
            samples.end());
        const auto store =
            obs::TimeSeriesStore::fromSamples(std::move(samples));
        const auto incidents = obs::buildIncidentReport(events);
        const auto counters_delta = obs::subtractCounters(
            obs::Registry::global().counterSnapshot(), counters_before);
        const auto fired =
            alerts_.evaluate(&store, &counters_delta, &incidents);
        alerts_.exportTo(obs::Registry::global());
        if (!fired.empty()) {
            obs::Registry::global()
                .counter("service.alerts.transitions")
                .add(fired.size());
            // Timestamp with the leading request's admission time —
            // already read at admission, so retaining history costs
            // no clock call and stays byte-deterministic under the
            // stepping fake clock.
            if (historyActive())
                appendAlertHistory(track.startNs(), fired);
        }
    }
    return resp;
}

void
CampaignService::appendAlertHistory(
    std::uint64_t tsNs, const std::vector<AlertEvent> &fired)
{
    std::lock_guard<std::mutex> lk(alert_log_m_);
    for (const AlertEvent &e : fired)
        alertLog_.push_back({tsNs, e});
    while (alertLog_.size() > opts_.history.alertEventCapacity) {
        alertLog_.pop_front();
        ++alertLogDropped_;
    }
}

HttpResponse
CampaignService::handleAlerts() const
{
    HttpResponse resp;
    resp.body = alerts_.toJson();
    return resp;
}

HttpResponse
CampaignService::handleMetrics() const
{
    // Refresh the ALERTS-style gauges so a scrape always sees the
    // current rule states, then render the whole registry.
    alerts_.exportTo(obs::Registry::global());
    std::ostringstream os;
    writeOpenMetrics(os, obs::Registry::global(),
                     {{"build", buildId()}});
    HttpResponse resp;
    resp.contentType =
        "application/openmetrics-text; version=1.0.0; charset=utf-8";
    resp.body = os.str();
    return resp;
}

HttpResponse
CampaignService::handleHealthz()
{
    const std::uint64_t now = reqobs_.nowNs();
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("status", "ok");
    w.field("build", buildId());
    w.field("buildId", buildId());
    w.field("uptime_seconds",
            static_cast<double>(now - bootNs_) * 1e-9);
    w.field("requests",
            requestsServed_.load(std::memory_order_relaxed));
    w.field("cache_entries",
            static_cast<std::uint64_t>(cache_.stats().entries));
    w.endObject();
    os << '\n';
    HttpResponse resp;
    resp.body = os.str();
    return resp;
}

HttpResponse
CampaignService::handleStatus()
{
    const std::uint64_t now = reqobs_.nowNs();
    std::size_t flight_depth = 0;
    {
        std::lock_guard<std::mutex> lk(inflight_m_);
        flight_depth = inflight_.size();
    }
    const CacheStats results = cache_.stats();
    const CacheStats ckpts = ckptCache_.stats();

    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("status", "ok");
    w.field("buildId", buildId());
    w.field("uptime_seconds",
            static_cast<double>(now - bootNs_) * 1e-9);
    w.field("requests_total",
            requestsServed_.load(std::memory_order_relaxed));
    w.field("flight_depth",
            static_cast<std::uint64_t>(flight_depth));
    w.field("coalesce_waiters", coalesceWaiters());

    w.key("requests");
    w.beginObject();
    w.field("observed", reqobs_.completedRequests());
    w.field("slow", reqobs_.slowRequests());
    w.field("access_log_lines", reqobs_.accessLogLines());
    w.field("access_log_open", reqobs_.logOpen());
    w.field("observability_active", reqobs_.active());
    w.endObject();

    // The in-flight table includes this /v1/status request itself.
    w.key("inflight");
    w.beginArray();
    for (const InflightRequest &r : reqobs_.inflight()) {
        w.beginObject();
        w.field("id", r.id);
        if (!r.clientId.empty())
            w.field("client_id", r.clientId);
        w.field("endpoint", endpointName(r.endpoint));
        w.field("phase", requestPhaseName(r.phase));
        w.field("age_seconds",
                static_cast<double>(now >= r.startNs
                                        ? now - r.startNs
                                        : 0) *
                    1e-9);
        w.endObject();
    }
    w.endArray();

    w.key("cache");
    w.beginObject();
    w.key("results");
    w.beginObject();
    w.field("entries", static_cast<std::uint64_t>(results.entries));
    w.field("value_bytes",
            static_cast<std::uint64_t>(results.valueBytes));
    w.field("hits", results.hits);
    w.field("misses", results.misses);
    w.field("evictions", results.evictions);
    w.endObject();
    w.key("checkpoints");
    w.beginObject();
    w.field("entries", static_cast<std::uint64_t>(ckpts.entries));
    w.field("value_bytes",
            static_cast<std::uint64_t>(ckpts.valueBytes));
    w.field("hits", ckpts.hits);
    w.field("misses", ckpts.misses);
    w.field("evictions", ckpts.evictions);
    w.endObject();
    w.key("disk");
    w.beginObject();
    w.field("enabled", disk_.enabled());
    if (disk_.enabled()) {
        w.field("dir", disk_.dir());
        w.field("files",
                static_cast<std::uint64_t>(disk_.fileCount()));
    }
    w.endObject();
    w.endObject();

    // The history block only exists while the layer is armed, so a
    // --history off (or BPSIM_OBS=OFF) status body is byte-identical
    // to the pre-history contract.
    if (historyActive()) {
        const obs::HistoryStats hs = history_.stats();
        std::size_t alert_events = 0;
        std::uint64_t alert_dropped = 0;
        {
            std::lock_guard<std::mutex> lk(alert_log_m_);
            alert_events = alertLog_.size();
            alert_dropped = alertLogDropped_;
        }
        w.key("history");
        w.beginObject();
        w.field("enabled", true);
        w.field("cadence_ns", opts_.history.cadenceNs);
        w.field("retention_ns", opts_.history.retentionNs);
        w.field("series", static_cast<std::uint64_t>(hs.series));
        w.field("samples", hs.samples);
        w.field("dropped_series", hs.droppedSeries);
        w.field("dropped_stale", hs.droppedStale);
        w.field("evicted_buckets", hs.evictedBuckets);
        w.field("bytes", static_cast<std::uint64_t>(hs.bytes));
        w.field("lag_ms", historyLagMs());
        w.key("tiers");
        w.beginArray();
        for (const obs::HistoryStats::Tier &t : hs.tiers) {
            w.beginObject();
            w.field("width_ns", t.widthNs);
            w.field("capacity",
                    static_cast<std::uint64_t>(t.capacity));
            w.field("buckets",
                    static_cast<std::uint64_t>(t.buckets));
            w.endObject();
        }
        w.endArray();
        w.field("alert_events",
                static_cast<std::uint64_t>(alert_events));
        w.field("alert_events_dropped", alert_dropped);
        w.endObject();
    }

    w.endObject();
    os << '\n';
    HttpResponse resp;
    resp.body = os.str();
    return resp;
}

HttpResponse
CampaignService::handleShutdown()
{
    http_.requestStop();
    HttpResponse resp;
    resp.body = "{\"status\":\"shutting down\"}\n";
    return resp;
}

namespace
{

/** Strict non-negative integer parse for query parameters. */
bool
parseU64(const std::string &s, std::uint64_t *out)
{
    if (s.empty() || s[0] == '-')
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    *out = v;
    return true;
}

} // namespace

HttpResponse
CampaignService::handleSeries(const HttpRequest &req)
{
    if (!historyActive())
        return httpError(
            404, "metrics history disabled (start with --history on)");

    obs::HistoryStore::Query q;
    std::string v;
    std::uint64_t n = 0;
    if (queryParam(req.target, "after", &v)) {
        if (!parseU64(v, &q.afterNs))
            return httpError(400, "bad after: " + v);
    }
    if (queryParam(req.target, "before", &v)) {
        if (!parseU64(v, &q.beforeNs))
            return httpError(400, "bad before: " + v);
    }
    if (queryParam(req.target, "max", &v)) {
        if (!parseU64(v, &n))
            return httpError(400, "bad max: " + v);
        q.maxPoints = static_cast<std::size_t>(n);
    }
    if (queryParam(req.target, "tier", &v)) {
        if (!parseU64(v, &n) || n >= history_.tierCount())
            return httpError(400, "bad tier: " + v);
        q.tier = static_cast<int>(n);
    }

    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("enabled", true);
    w.field("cadence_ns", opts_.history.cadenceNs);
    w.field("retention_ns", opts_.history.retentionNs);
    w.key("tiers");
    w.beginArray();
    for (std::size_t k = 0; k < history_.tierCount(); ++k) {
        w.beginObject();
        w.field("tier", static_cast<std::uint64_t>(k));
        w.field("width_ns", history_.tierWidthNs(k));
        w.field("capacity",
                static_cast<std::uint64_t>(history_.tierCapacity(k)));
        w.endObject();
    }
    w.endArray();

    std::string names;
    if (!queryParam(req.target, "name", &names) || names.empty()) {
        // No name asked: list what the store has (the dashboard and
        // the smoke test discover series this way).
        w.key("names");
        w.beginArray();
        for (const std::string &name : history_.names())
            w.value(name);
        w.endArray();
    } else {
        w.key("series");
        w.beginArray();
        std::size_t pos = 0;
        while (pos <= names.size()) {
            std::size_t comma = names.find(',', pos);
            if (comma == std::string::npos)
                comma = names.size();
            const std::string name = names.substr(pos, comma - pos);
            pos = comma + 1;
            if (name.empty())
                continue;
            const obs::HistoryStore::Series s =
                history_.query(name, q);
            w.beginObject();
            w.field("name", name);
            w.field("found", s.tier >= 0);
            if (s.tier >= 0) {
                w.field("tier", s.tier);
                w.field("width_ns", s.widthNs);
                w.field("capacity",
                        static_cast<std::uint64_t>(s.capacity));
                w.field("downsampled", s.downsampled);
                // Compact point form: [start_ns, count, min, max, sum]
                // (mean = sum/count; rates already divide by count 1).
                w.key("points");
                w.beginArray();
                for (const obs::HistoryBucket &b : s.points) {
                    w.beginArray();
                    w.value(b.startNs);
                    w.value(b.count);
                    w.value(b.min);
                    w.value(b.max);
                    w.value(b.sum);
                    w.endArray();
                }
                w.endArray();
            }
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
    os << '\n';
    HttpResponse resp;
    resp.body = os.str();
    return resp;
}

HttpResponse
CampaignService::handleAlertHistory()
{
    if (!historyActive())
        return httpError(
            404, "metrics history disabled (start with --history on)");

    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("events");
    w.beginArray();
    {
        std::lock_guard<std::mutex> lk(alert_log_m_);
        for (const AlertHistoryEntry &e : alertLog_) {
            w.beginObject();
            w.field("ts_ns", e.tsNs);
            w.field("rule", e.event.rule);
            w.field("trial", e.event.trial);
            w.field("t_us",
                    static_cast<std::uint64_t>(
                        e.event.t >= 0 ? e.event.t : 0));
            w.field("from", alertStateName(e.event.from));
            w.field("to", alertStateName(e.event.to));
            w.field("value", e.event.value);
            w.endObject();
        }
        w.endArray();
        w.field("dropped", alertLogDropped_);
    }
    w.endObject();
    os << '\n';
    HttpResponse resp;
    resp.body = os.str();
    return resp;
}

HttpResponse
CampaignService::handleDashboard() const
{
    // Served even with history off: the page itself explains the 404
    // its /v1/series poll gets, which beats a bare server-side 404.
    HttpResponse resp;
    resp.contentType = "text/html; charset=utf-8";
    resp.body = renderDashboardHtml();
    return resp;
}

obs::Registry &
CampaignService::historyRegistry() const
{
    return opts_.history.registry != nullptr
               ? *opts_.history.registry
               : obs::Registry::global();
}

void
CampaignService::sampleHistoryOnce()
{
    if (!historyActive())
        return;
    // One clock read per tick; every record of this tick shares it,
    // so a whole sample lands in one raw bucket.
    const std::uint64_t now = reqobs_.nowNs();

    std::lock_guard<std::mutex> lk(sample_m_);
    const bool first = lastSampleNs_ == 0;
    const double dt_sec =
        first ? 0.0
              : static_cast<double>(now - lastSampleNs_) * 1e-9;
    if (!first) {
        const std::uint64_t due =
            lastSampleNs_ + opts_.history.cadenceNs;
        historyLagMs_.store(now > due ? (now - due) / 1000000ull : 0,
                            std::memory_order_relaxed);
    }
    lastSampleNs_ = now;

    // Counter-like values become rates against the previous tick
    // (nothing is recorded on the first tick — there is no interval
    // to rate over yet).
    const auto rate = [&](const std::string &base, double value) {
        const auto it = prevSamples_.find(base);
        const bool have_prev = it != prevSamples_.end();
        const double prev = have_prev ? it->second : 0.0;
        prevSamples_[base] = value;
        if (!have_prev || dt_sec <= 0.0)
            return;
        const double r = value >= prev ? (value - prev) / dt_sec : 0.0;
        history_.record(base + ":rate", now, r);
    };

    obs::Registry &reg = historyRegistry();
    // Refresh the ALERTS-style gauges first so the alert panel tracks
    // rule state at sample resolution, not scrape resolution.
    alerts_.exportTo(reg);

    for (const auto &[name, value] : reg.counterSnapshot())
        rate(name, static_cast<double>(value));
    for (const auto &[name, value] : reg.gaugeSnapshot())
        history_.record(name, now, value);

    // Request histograms are label-encoded per endpoint/phase/status;
    // the history tracks the merged family (bucket-wise addition is
    // exact) as quantiles plus a completion rate.
    std::map<std::string, obs::HistogramSnapshot> families;
    for (const auto &[name, snap] : reg.histogramSnapshot()) {
        const std::size_t bar = name.find('|');
        std::map<std::string, obs::HistogramSnapshot> one;
        one.emplace(bar == std::string::npos ? name
                                             : name.substr(0, bar),
                    snap);
        obs::mergeHistograms(families, one);
    }
    for (const auto &[family, snap] : families) {
        history_.record(family + ":p50", now, snap.quantile(0.5));
        history_.record(family + ":p99", now, snap.quantile(0.99));
        rate(family + ":count", static_cast<double>(snap.count()));
    }

    // Service depths (cache/flight/in-flight tables): gauges the
    // registry does not carry.
    const CacheStats results = cache_.stats();
    const CacheStats ckpts = ckptCache_.stats();
    history_.record("service.cache.results.entries", now,
                    static_cast<double>(results.entries));
    history_.record("service.cache.results.value_bytes", now,
                    static_cast<double>(results.valueBytes));
    rate("service.cache.results.hits",
         static_cast<double>(results.hits));
    rate("service.cache.results.misses",
         static_cast<double>(results.misses));
    history_.record("service.cache.ckpt.entries", now,
                    static_cast<double>(ckpts.entries));
    history_.record("service.cache.ckpt.value_bytes", now,
                    static_cast<double>(ckpts.valueBytes));
    std::size_t flight_depth = 0;
    {
        std::lock_guard<std::mutex> flk(inflight_m_);
        flight_depth = inflight_.size();
    }
    history_.record("service.flight.depth", now,
                    static_cast<double>(flight_depth));
    history_.record("service.coalesce.waiters", now,
                    static_cast<double>(coalesceWaiters()));
    history_.record("service.inflight.requests", now,
                    static_cast<double>(reqobs_.inflight().size()));
}

void
CampaignService::startSampler()
{
    if (!historyActive() || !opts_.history.samplerThread ||
        sampler_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lk(sampler_m_);
        samplerStop_ = false;
    }
    sampler_ = std::thread([this] { samplerLoop(); });
}

void
CampaignService::stopSampler()
{
    {
        std::lock_guard<std::mutex> lk(sampler_m_);
        samplerStop_ = true;
    }
    sampler_cv_.notify_all();
    if (sampler_.joinable())
        sampler_.join();
}

void
CampaignService::samplerLoop()
{
    std::unique_lock<std::mutex> lk(sampler_m_);
    while (!samplerStop_) {
        lk.unlock();
        sampleHistoryOnce();
        lk.lock();
        sampler_cv_.wait_for(
            lk, std::chrono::nanoseconds(opts_.history.cadenceNs),
            [this] { return samplerStop_; });
    }
}

} // namespace service
} // namespace bpsim
