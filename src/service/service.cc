#include "service/service.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/obs.hh"

namespace bpsim
{
namespace service
{

CampaignService::CampaignService(ServiceOptions opts)
    : opts_(opts),
      cache_(opts.cacheEntries),
      alerts_(defaultAlertRules()),
      http_([this](const HttpRequest &req) { return handle(req); },
            opts.http)
{
    if (opts_.evaluateAlerts) {
        // Signal rules need sampled signals: arm the runtime gate and
        // default the cadence to hourly when nothing set one (a year
        // at hourly cadence is ~8.8k samples per signal per trial).
        obs::setEnabled(true);
        if (obs::sampleCadence() == 0)
            obs::setSampleCadence(fromHours(1.0));
    }
}

bool
CampaignService::start(std::string *error)
{
    return http_.start(error);
}

void
CampaignService::stop()
{
    http_.stop();
}

void
CampaignService::waitUntilStopped()
{
    http_.waitUntilStopped();
}

HttpResponse
CampaignService::handle(const HttpRequest &req)
{
    requestsServed_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global().counter("service.requests").add(1);

    if (req.target == "/v1/whatif") {
        if (req.method != "POST")
            return httpError(405, "use POST for /v1/whatif");
        return handleWhatIf(req);
    }
    if (req.target == "/v1/alerts") {
        if (req.method != "GET")
            return httpError(405, "use GET for /v1/alerts");
        return handleAlerts();
    }
    if (req.target == "/metrics") {
        if (req.method != "GET")
            return httpError(405, "use GET for /metrics");
        return handleMetrics();
    }
    if (req.target == "/healthz") {
        if (req.method != "GET")
            return httpError(405, "use GET for /healthz");
        return handleHealthz();
    }
    if (req.target == "/v1/shutdown") {
        if (req.method != "POST")
            return httpError(405, "use POST for /v1/shutdown");
        return handleShutdown();
    }
    obs::Registry::global().counter("service.errors").add(1);
    return httpError(404, "no such endpoint: " + req.target);
}

HttpResponse
CampaignService::handleWhatIf(const HttpRequest &req)
{
    std::string err;
    const auto body = parseJson(req.body, &err);
    if (!body) {
        obs::Registry::global().counter("service.errors").add(1);
        return httpError(400, "malformed JSON: " + err);
    }
    const auto request = parseWhatIfRequest(*body, &err, opts_.limits);
    if (!request) {
        obs::Registry::global().counter("service.errors").add(1);
        return httpError(400, err);
    }

    const std::string key = canonicalCacheKey(*request);
    char keyhex[24];
    std::snprintf(keyhex, sizeof keyhex, "%016llx",
                  static_cast<unsigned long long>(fnv1a64(key)));

    HttpResponse resp;
    resp.headers.emplace_back("X-Bpsim-Key", keyhex);

    std::lock_guard<std::mutex> lk(campaign_m_);
    if (auto hit = cache_.get(key)) {
        resp.headers.emplace_back("X-Bpsim-Cache", "hit");
        resp.body = std::move(*hit);
        return resp;
    }

    const bool with_alerts = opts_.evaluateAlerts && BPSIM_OBS_ON();
    std::map<std::string, std::uint64_t> counters_before;
    if (with_alerts) {
        // Discard sink residue so the alert evidence is exactly this
        // campaign's; safe here because campaign_m_ guarantees no
        // trials are in flight.
        obs::TraceSink::instance().clear();
        obs::TimeSeriesSink::instance().clear();
        counters_before = obs::Registry::global().counterSnapshot();
    }

    resp.body = runWhatIf(*request);
    cache_.put(key, resp.body);
    resp.headers.emplace_back("X-Bpsim-Cache", "miss");

    if (with_alerts) {
        const auto events = obs::TraceSink::instance().drain();
        auto samples = obs::TimeSeriesSink::instance().drain();
        samples.erase(
            std::remove_if(samples.begin(), samples.end(),
                           [this](const obs::SignalSample &s) {
                               return s.trial >=
                                      opts_.alertSampleTrials;
                           }),
            samples.end());
        const auto store =
            obs::TimeSeriesStore::fromSamples(std::move(samples));
        const auto incidents = obs::buildIncidentReport(events);
        const auto counters_delta = obs::subtractCounters(
            obs::Registry::global().counterSnapshot(), counters_before);
        const auto fired =
            alerts_.evaluate(&store, &counters_delta, &incidents);
        alerts_.exportTo(obs::Registry::global());
        if (!fired.empty())
            obs::Registry::global()
                .counter("service.alerts.transitions")
                .add(fired.size());
    }
    return resp;
}

HttpResponse
CampaignService::handleAlerts() const
{
    HttpResponse resp;
    resp.body = alerts_.toJson();
    return resp;
}

HttpResponse
CampaignService::handleMetrics() const
{
    // Refresh the ALERTS-style gauges so a scrape always sees the
    // current rule states, then render the whole registry.
    alerts_.exportTo(obs::Registry::global());
    std::ostringstream os;
    writeOpenMetrics(os, obs::Registry::global(),
                     {{"build", buildId()}});
    HttpResponse resp;
    resp.contentType =
        "application/openmetrics-text; version=1.0.0; charset=utf-8";
    resp.body = os.str();
    return resp;
}

HttpResponse
CampaignService::handleHealthz() const
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("status", "ok");
    w.field("build", buildId());
    w.field("requests",
            requestsServed_.load(std::memory_order_relaxed));
    w.field("cache_entries",
            static_cast<std::uint64_t>(cache_.stats().entries));
    w.endObject();
    os << '\n';
    HttpResponse resp;
    resp.body = os.str();
    return resp;
}

HttpResponse
CampaignService::handleShutdown()
{
    http_.requestStop();
    HttpResponse resp;
    resp.body = "{\"status\":\"shutting down\"}\n";
    return resp;
}

} // namespace service
} // namespace bpsim
