#include "service/service.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/obs.hh"

namespace bpsim
{
namespace service
{

CampaignService::CampaignService(ServiceOptions opts)
    : opts_(opts),
      cache_(opts.cacheEntries),
      ckptCache_(opts.cacheEntries, nullptr, "service.ckpt.cache"),
      disk_(opts.cacheDir),
      alerts_(defaultAlertRules()),
      http_([this](const HttpRequest &req) { return handle(req); },
            opts.http)
{
    if (opts_.evaluateAlerts) {
        // Signal rules need sampled signals: arm the runtime gate and
        // default the cadence to hourly when nothing set one (a year
        // at hourly cadence is ~8.8k samples per signal per trial).
        obs::setEnabled(true);
        if (obs::sampleCadence() == 0)
            obs::setSampleCadence(fromHours(1.0));
    }
}

bool
CampaignService::start(std::string *error)
{
    return http_.start(error);
}

void
CampaignService::stop()
{
    http_.stop();
}

void
CampaignService::waitUntilStopped()
{
    http_.waitUntilStopped();
}

HttpResponse
CampaignService::handle(const HttpRequest &req)
{
    requestsServed_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global().counter("service.requests").add(1);

    if (req.target == "/v1/whatif") {
        if (req.method != "POST")
            return httpError(405, "use POST for /v1/whatif");
        return handleWhatIf(req);
    }
    if (req.target == "/v1/alerts") {
        if (req.method != "GET")
            return httpError(405, "use GET for /v1/alerts");
        return handleAlerts();
    }
    if (req.target == "/metrics") {
        if (req.method != "GET")
            return httpError(405, "use GET for /metrics");
        return handleMetrics();
    }
    if (req.target == "/healthz") {
        if (req.method != "GET")
            return httpError(405, "use GET for /healthz");
        return handleHealthz();
    }
    if (req.target == "/v1/shutdown") {
        if (req.method != "POST")
            return httpError(405, "use POST for /v1/shutdown");
        return handleShutdown();
    }
    obs::Registry::global().counter("service.errors").add(1);
    return httpError(404, "no such endpoint: " + req.target);
}

HttpResponse
CampaignService::handleWhatIf(const HttpRequest &req)
{
    std::string err;
    const auto body = parseJson(req.body, &err);
    if (!body) {
        obs::Registry::global().counter("service.errors").add(1);
        return httpError(400, "malformed JSON: " + err);
    }
    const auto request = parseWhatIfRequest(*body, &err, opts_.limits);
    if (!request) {
        obs::Registry::global().counter("service.errors").add(1);
        return httpError(400, err);
    }

    const std::string key = canonicalCacheKey(*request);
    char keyhex[24];
    std::snprintf(keyhex, sizeof keyhex, "%016llx",
                  static_cast<unsigned long long>(fnv1a64(key)));

    if (!opts_.coalesce)
        return computeWhatIf(*request, key, keyhex);

    // Single-flight: the first request for a key leads and executes;
    // identical concurrent requests park on the flight and copy its
    // response. Parse errors never get here (no key, nothing to
    // share), so every flight publishes a well-formed response.
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
        std::lock_guard<std::mutex> lk(inflight_m_);
        auto it = inflight_.find(key);
        if (it == inflight_.end()) {
            flight = std::make_shared<Flight>();
            inflight_.emplace(key, flight);
            leader = true;
        } else {
            flight = it->second;
        }
    }

    if (!leader) {
        obs::Registry::global().counter("service.coalesced").add(1);
        std::unique_lock<std::mutex> lk(inflight_m_);
        coalesceWaiters_.fetch_add(1, std::memory_order_acq_rel);
        inflight_cv_.wait(lk, [&flight] { return flight->done; });
        coalesceWaiters_.fetch_sub(1, std::memory_order_acq_rel);
        HttpResponse resp;
        resp.status = flight->status;
        if (!flight->contentType.empty())
            resp.contentType = flight->contentType;
        resp.headers.emplace_back("X-Bpsim-Key", keyhex);
        resp.headers.emplace_back("X-Bpsim-Cache", "coalesced");
        resp.body = flight->body;
        return resp;
    }

    if (opts_.testBeforeCampaign)
        opts_.testBeforeCampaign();
    const HttpResponse resp = computeWhatIf(*request, key, keyhex);
    {
        std::lock_guard<std::mutex> lk(inflight_m_);
        flight->status = resp.status;
        flight->contentType = resp.contentType;
        flight->body = resp.body;
        flight->done = true;
        inflight_.erase(key);
    }
    inflight_cv_.notify_all();
    return resp;
}

HttpResponse
CampaignService::computeWhatIf(const WhatIfRequest &request,
                               const std::string &key,
                               const char *keyhex)
{
    HttpResponse resp;
    resp.headers.emplace_back("X-Bpsim-Key", keyhex);

    std::lock_guard<std::mutex> lk(campaign_m_);
    if (auto hit = cache_.get(key)) {
        resp.headers.emplace_back("X-Bpsim-Cache", "hit");
        resp.headers.emplace_back("X-Bpsim-Cache-Tier", "memory");
        resp.body = std::move(*hit);
        return resp;
    }
    if (auto spilled = disk_.load(key)) {
        // Warm restart: promote the spilled result so the next hit is
        // a map lookup again.
        cache_.put(key, *spilled);
        resp.headers.emplace_back("X-Bpsim-Cache", "hit");
        resp.headers.emplace_back("X-Bpsim-Cache-Tier", "disk");
        resp.body = std::move(*spilled);
        return resp;
    }

    // A full miss still need not simulate from trial 0: a checkpoint
    // stored under the budget-wildcarded base key covers any earlier
    // budget for this exact scenario.
    const std::string ckpt_key = "ckpt|" + canonicalBaseKey(request);
    std::optional<CampaignCheckpoint> from;
    if (auto text = ckptCache_.get(ckpt_key)) {
        from = readCheckpointJson(*text);
    } else if (auto spilled = disk_.load(ckpt_key)) {
        if ((from = readCheckpointJson(*spilled)))
            ckptCache_.put(ckpt_key, *spilled);
    }

    const bool with_alerts = opts_.evaluateAlerts && BPSIM_OBS_ON();
    std::map<std::string, std::uint64_t> counters_before;
    if (with_alerts) {
        // Discard sink residue so the alert evidence is exactly this
        // campaign's; safe here because campaign_m_ guarantees no
        // trials are in flight.
        obs::TraceSink::instance().clear();
        obs::TimeSeriesSink::instance().clear();
        counters_before = obs::Registry::global().counterSnapshot();
    }

    const WhatIfExecution ex =
        executeWhatIf(request, from ? &*from : nullptr);
    obs::Registry::global().counter("service.whatif.campaigns").add(1);
    cache_.put(key, ex.body);
    disk_.store(key, ex.body);
    resp.headers.emplace_back("X-Bpsim-Cache", "miss");
    if (ex.resumed) {
        obs::Registry::global().counter("service.whatif.resumed").add(1);
        resp.headers.emplace_back("X-Bpsim-Resumed-From",
                                  std::to_string(ex.startTrial));
    }
    resp.body = ex.body;

    // Persist the checkpoint only when it extends what is already
    // stored — a smaller-budget request must never clobber a deeper
    // trajectory another request paid for.
    if (!from || ex.checkpoint.summary.trials > from->summary.trials) {
        std::ostringstream ck;
        writeCheckpointJson(ck, ex.checkpoint);
        std::string text = ck.str();
        if (text.size() <= opts_.checkpointMaxBytes) {
            disk_.store(ckpt_key, text);
            ckptCache_.put(ckpt_key, std::move(text));
        } else {
            obs::Registry::global()
                .counter("service.ckpt.oversize")
                .add(1);
        }
    }

    if (with_alerts) {
        const auto events = obs::TraceSink::instance().drain();
        auto samples = obs::TimeSeriesSink::instance().drain();
        // The warm-up sample window is relative to the trials this
        // call simulated: a resumed campaign's first fresh trial is
        // ex.startTrial, not 0.
        const std::uint64_t start = ex.startTrial;
        samples.erase(
            std::remove_if(samples.begin(), samples.end(),
                           [this, start](const obs::SignalSample &s) {
                               return s.trial < start ||
                                      s.trial - start >=
                                          opts_.alertSampleTrials;
                           }),
            samples.end());
        const auto store =
            obs::TimeSeriesStore::fromSamples(std::move(samples));
        const auto incidents = obs::buildIncidentReport(events);
        const auto counters_delta = obs::subtractCounters(
            obs::Registry::global().counterSnapshot(), counters_before);
        const auto fired =
            alerts_.evaluate(&store, &counters_delta, &incidents);
        alerts_.exportTo(obs::Registry::global());
        if (!fired.empty())
            obs::Registry::global()
                .counter("service.alerts.transitions")
                .add(fired.size());
    }
    return resp;
}

HttpResponse
CampaignService::handleAlerts() const
{
    HttpResponse resp;
    resp.body = alerts_.toJson();
    return resp;
}

HttpResponse
CampaignService::handleMetrics() const
{
    // Refresh the ALERTS-style gauges so a scrape always sees the
    // current rule states, then render the whole registry.
    alerts_.exportTo(obs::Registry::global());
    std::ostringstream os;
    writeOpenMetrics(os, obs::Registry::global(),
                     {{"build", buildId()}});
    HttpResponse resp;
    resp.contentType =
        "application/openmetrics-text; version=1.0.0; charset=utf-8";
    resp.body = os.str();
    return resp;
}

HttpResponse
CampaignService::handleHealthz() const
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("status", "ok");
    w.field("build", buildId());
    w.field("requests",
            requestsServed_.load(std::memory_order_relaxed));
    w.field("cache_entries",
            static_cast<std::uint64_t>(cache_.stats().entries));
    w.endObject();
    os << '\n';
    HttpResponse resp;
    resp.body = os.str();
    return resp;
}

HttpResponse
CampaignService::handleShutdown()
{
    http_.requestStop();
    HttpResponse resp;
    resp.body = "{\"status\":\"shutting down\"}\n";
    return resp;
}

} // namespace service
} // namespace bpsim
