#include "service/service.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/obs.hh"

namespace bpsim
{
namespace service
{

CampaignService::CampaignService(ServiceOptions opts)
    : opts_(opts),
      cache_(opts.cacheEntries),
      ckptCache_(opts.cacheEntries, nullptr, "service.ckpt.cache"),
      disk_(opts.cacheDir),
      alerts_(defaultAlertRules()),
      reqobs_(opts.reqobs),
      bootNs_(reqobs_.nowNs()),
      http_(HttpServer::TimedHandler(
                [this](const HttpRequest &req, HttpConnectionIo &io) {
                    return handle(req, &io);
                }),
            opts.http)
{
    if (opts_.evaluateAlerts) {
        // Signal rules need sampled signals: arm the runtime gate and
        // default the cadence to hourly when nothing set one (a year
        // at hourly cadence is ~8.8k samples per signal per trial).
        obs::setEnabled(true);
        if (obs::sampleCadence() == 0)
            obs::setSampleCadence(fromHours(1.0));
    }
}

bool
CampaignService::start(std::string *error)
{
    return http_.start(error);
}

void
CampaignService::stop()
{
    http_.stop();
}

void
CampaignService::waitUntilStopped()
{
    http_.waitUntilStopped();
}

HttpResponse
CampaignService::handle(const HttpRequest &req)
{
    return handle(req, nullptr);
}

HttpResponse
CampaignService::handle(const HttpRequest &req, HttpConnectionIo *io)
{
    requestsServed_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global().counter("service.requests").add(1);

    const std::string *cid = req.header("x-bpsim-request-id");
    RequestTrack track(&reqobs_, endpointOf(req.target), req.method,
                       cid != nullptr ? *cid : std::string(),
                       io != nullptr ? io->bytesIn : req.body.size(),
                       io != nullptr ? io->readNs : 0);

    HttpResponse resp = route(req, track);
    resp.headers.emplace_back("X-Bpsim-Request-Id", track.publicId());
    track.setStatus(resp.status);
    if (io != nullptr) {
        // The socket layer completes the record after the response
        // write, so the log line carries the write span + bytes out.
        io->onWritten = track.deferFinish();
    } else {
        track.setBytesOut(resp.body.size());
    }
    return resp;
}

HttpResponse
CampaignService::route(const HttpRequest &req, RequestTrack &track)
{
    if (req.target == "/v1/whatif") {
        if (req.method != "POST")
            return httpError(405, "use POST for /v1/whatif");
        return handleWhatIf(req, track);
    }
    if (req.target == "/v1/alerts") {
        if (req.method != "GET")
            return httpError(405, "use GET for /v1/alerts");
        const auto s = track.span(RequestPhase::Serialize);
        return handleAlerts();
    }
    if (req.target == "/metrics") {
        if (req.method != "GET")
            return httpError(405, "use GET for /metrics");
        const auto s = track.span(RequestPhase::Serialize);
        return handleMetrics();
    }
    if (req.target == "/healthz") {
        if (req.method != "GET")
            return httpError(405, "use GET for /healthz");
        const auto s = track.span(RequestPhase::Serialize);
        return handleHealthz();
    }
    if (req.target == "/v1/status") {
        if (req.method != "GET")
            return httpError(405, "use GET for /v1/status");
        const auto s = track.span(RequestPhase::Serialize);
        return handleStatus();
    }
    if (req.target == "/v1/shutdown") {
        if (req.method != "POST")
            return httpError(405, "use POST for /v1/shutdown");
        return handleShutdown();
    }
    obs::Registry::global().counter("service.errors").add(1);
    return httpError(404, "no such endpoint: " + req.target);
}

HttpResponse
CampaignService::handleWhatIf(const HttpRequest &req,
                              RequestTrack &track)
{
    std::optional<WhatIfRequest> request;
    std::string key;
    char keyhex[24];
    {
        const auto s = track.span(RequestPhase::Parse);
        std::string err;
        const auto body = parseJson(req.body, &err);
        if (!body) {
            obs::Registry::global().counter("service.errors").add(1);
            return httpError(400, "malformed JSON: " + err);
        }
        request = parseWhatIfRequest(*body, &err, opts_.limits);
        if (!request) {
            obs::Registry::global().counter("service.errors").add(1);
            return httpError(400, err);
        }
        key = canonicalCacheKey(*request);
        std::snprintf(keyhex, sizeof keyhex, "%016llx",
                      static_cast<unsigned long long>(fnv1a64(key)));
    }

    if (!opts_.coalesce)
        return computeWhatIf(*request, key, keyhex, track);

    // Single-flight: the first request for a key leads and executes;
    // identical concurrent requests park on the flight and copy its
    // response. Parse errors never get here (no key, nothing to
    // share), so every flight publishes a well-formed response.
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
        std::lock_guard<std::mutex> lk(inflight_m_);
        auto it = inflight_.find(key);
        if (it == inflight_.end()) {
            flight = std::make_shared<Flight>();
            flight->leaderId = track.id();
            inflight_.emplace(key, flight);
            leader = true;
        } else {
            flight = it->second;
        }
    }

    if (!leader) {
        obs::Registry::global().counter("service.coalesced").add(1);
        track.setCache("coalesced");
        track.setCoalescedInto(flight->leaderId);
        std::unique_lock<std::mutex> lk(inflight_m_);
        {
            const auto s = track.span(RequestPhase::Wait);
            coalesceWaiters_.fetch_add(1, std::memory_order_acq_rel);
            inflight_cv_.wait(lk, [&flight] { return flight->done; });
            coalesceWaiters_.fetch_sub(1, std::memory_order_acq_rel);
        }
        HttpResponse resp;
        resp.status = flight->status;
        if (!flight->contentType.empty())
            resp.contentType = flight->contentType;
        resp.headers.emplace_back("X-Bpsim-Key", keyhex);
        resp.headers.emplace_back("X-Bpsim-Cache", "coalesced");
        resp.body = flight->body;
        return resp;
    }

    if (opts_.testBeforeCampaign)
        opts_.testBeforeCampaign();
    const HttpResponse resp = computeWhatIf(*request, key, keyhex, track);
    {
        std::lock_guard<std::mutex> lk(inflight_m_);
        flight->status = resp.status;
        flight->contentType = resp.contentType;
        flight->body = resp.body;
        flight->done = true;
        inflight_.erase(key);
    }
    inflight_cv_.notify_all();
    return resp;
}

HttpResponse
CampaignService::computeWhatIf(const WhatIfRequest &request,
                               const std::string &key,
                               const char *keyhex,
                               RequestTrack &track)
{
    HttpResponse resp;
    resp.headers.emplace_back("X-Bpsim-Key", keyhex);

    std::lock_guard<std::mutex> lk(campaign_m_);
    {
        const auto s = track.span(RequestPhase::CacheMem);
        if (auto hit = cache_.get(key)) {
            track.setCache("hit");
            track.setTier("memory");
            resp.headers.emplace_back("X-Bpsim-Cache", "hit");
            resp.headers.emplace_back("X-Bpsim-Cache-Tier", "memory");
            resp.body = std::move(*hit);
            return resp;
        }
    }
    {
        const auto s = track.span(RequestPhase::CacheDisk);
        if (auto spilled = disk_.load(key)) {
            // Warm restart: promote the spilled result so the next
            // hit is a map lookup again.
            cache_.put(key, *spilled);
            track.setCache("hit");
            track.setTier("disk");
            resp.headers.emplace_back("X-Bpsim-Cache", "hit");
            resp.headers.emplace_back("X-Bpsim-Cache-Tier", "disk");
            resp.body = std::move(*spilled);
            return resp;
        }
    }
    track.setCache("miss");

    // A full miss still need not simulate from trial 0: a checkpoint
    // stored under the budget-wildcarded base key covers any earlier
    // budget for this exact scenario.
    const std::string ckpt_key = "ckpt|" + canonicalBaseKey(request);
    std::optional<CampaignCheckpoint> from;
    {
        const auto s = track.span(RequestPhase::Checkpoint);
        if (auto text = ckptCache_.get(ckpt_key)) {
            from = readCheckpointJson(*text);
        } else if (auto spilled = disk_.load(ckpt_key)) {
            if ((from = readCheckpointJson(*spilled)))
                ckptCache_.put(ckpt_key, *spilled);
        }
    }

    const bool with_alerts = opts_.evaluateAlerts && BPSIM_OBS_ON();
    std::map<std::string, std::uint64_t> counters_before;
    if (with_alerts) {
        // Discard sink residue so the alert evidence is exactly this
        // campaign's; safe here because campaign_m_ guarantees no
        // trials are in flight.
        obs::TraceSink::instance().clear();
        obs::TimeSeriesSink::instance().clear();
        counters_before = obs::Registry::global().counterSnapshot();
    }

    std::optional<WhatIfExecution> run;
    {
        const auto s = track.span(RequestPhase::Campaign);
        run = executeWhatIf(request, from ? &*from : nullptr);
    }
    const WhatIfExecution &ex = *run;
    obs::Registry::global().counter("service.whatif.campaigns").add(1);
    resp.headers.emplace_back("X-Bpsim-Cache", "miss");
    if (ex.resumed) {
        obs::Registry::global().counter("service.whatif.resumed").add(1);
        track.setResumedFrom(ex.startTrial);
        resp.headers.emplace_back("X-Bpsim-Resumed-From",
                                  std::to_string(ex.startTrial));
    }

    {
        const auto s = track.span(RequestPhase::Serialize);
        cache_.put(key, ex.body);
        disk_.store(key, ex.body);
        resp.body = ex.body;

        // Persist the checkpoint only when it extends what is already
        // stored — a smaller-budget request must never clobber a
        // deeper trajectory another request paid for.
        if (!from ||
            ex.checkpoint.summary.trials > from->summary.trials) {
            std::ostringstream ck;
            writeCheckpointJson(ck, ex.checkpoint);
            std::string text = ck.str();
            if (text.size() <= opts_.checkpointMaxBytes) {
                disk_.store(ckpt_key, text);
                ckptCache_.put(ckpt_key, std::move(text));
            } else {
                obs::Registry::global()
                    .counter("service.ckpt.oversize")
                    .add(1);
            }
        }
    }

    if (with_alerts) {
        const auto sp = track.span(RequestPhase::Alerts);
        const auto events = obs::TraceSink::instance().drain();
        auto samples = obs::TimeSeriesSink::instance().drain();
        // The warm-up sample window is relative to the trials this
        // call simulated: a resumed campaign's first fresh trial is
        // ex.startTrial, not 0.
        const std::uint64_t start = ex.startTrial;
        samples.erase(
            std::remove_if(samples.begin(), samples.end(),
                           [this, start](const obs::SignalSample &s) {
                               return s.trial < start ||
                                      s.trial - start >=
                                          opts_.alertSampleTrials;
                           }),
            samples.end());
        const auto store =
            obs::TimeSeriesStore::fromSamples(std::move(samples));
        const auto incidents = obs::buildIncidentReport(events);
        const auto counters_delta = obs::subtractCounters(
            obs::Registry::global().counterSnapshot(), counters_before);
        const auto fired =
            alerts_.evaluate(&store, &counters_delta, &incidents);
        alerts_.exportTo(obs::Registry::global());
        if (!fired.empty())
            obs::Registry::global()
                .counter("service.alerts.transitions")
                .add(fired.size());
    }
    return resp;
}

HttpResponse
CampaignService::handleAlerts() const
{
    HttpResponse resp;
    resp.body = alerts_.toJson();
    return resp;
}

HttpResponse
CampaignService::handleMetrics() const
{
    // Refresh the ALERTS-style gauges so a scrape always sees the
    // current rule states, then render the whole registry.
    alerts_.exportTo(obs::Registry::global());
    std::ostringstream os;
    writeOpenMetrics(os, obs::Registry::global(),
                     {{"build", buildId()}});
    HttpResponse resp;
    resp.contentType =
        "application/openmetrics-text; version=1.0.0; charset=utf-8";
    resp.body = os.str();
    return resp;
}

HttpResponse
CampaignService::handleHealthz()
{
    const std::uint64_t now = reqobs_.nowNs();
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("status", "ok");
    w.field("build", buildId());
    w.field("buildId", buildId());
    w.field("uptime_seconds",
            static_cast<double>(now - bootNs_) * 1e-9);
    w.field("requests",
            requestsServed_.load(std::memory_order_relaxed));
    w.field("cache_entries",
            static_cast<std::uint64_t>(cache_.stats().entries));
    w.endObject();
    os << '\n';
    HttpResponse resp;
    resp.body = os.str();
    return resp;
}

HttpResponse
CampaignService::handleStatus()
{
    const std::uint64_t now = reqobs_.nowNs();
    std::size_t flight_depth = 0;
    {
        std::lock_guard<std::mutex> lk(inflight_m_);
        flight_depth = inflight_.size();
    }
    const CacheStats results = cache_.stats();
    const CacheStats ckpts = ckptCache_.stats();

    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("status", "ok");
    w.field("buildId", buildId());
    w.field("uptime_seconds",
            static_cast<double>(now - bootNs_) * 1e-9);
    w.field("requests_total",
            requestsServed_.load(std::memory_order_relaxed));
    w.field("flight_depth",
            static_cast<std::uint64_t>(flight_depth));
    w.field("coalesce_waiters", coalesceWaiters());

    w.key("requests");
    w.beginObject();
    w.field("observed", reqobs_.completedRequests());
    w.field("slow", reqobs_.slowRequests());
    w.field("access_log_lines", reqobs_.accessLogLines());
    w.field("access_log_open", reqobs_.logOpen());
    w.field("observability_active", reqobs_.active());
    w.endObject();

    // The in-flight table includes this /v1/status request itself.
    w.key("inflight");
    w.beginArray();
    for (const InflightRequest &r : reqobs_.inflight()) {
        w.beginObject();
        w.field("id", r.id);
        if (!r.clientId.empty())
            w.field("client_id", r.clientId);
        w.field("endpoint", endpointName(r.endpoint));
        w.field("phase", requestPhaseName(r.phase));
        w.field("age_seconds",
                static_cast<double>(now >= r.startNs
                                        ? now - r.startNs
                                        : 0) *
                    1e-9);
        w.endObject();
    }
    w.endArray();

    w.key("cache");
    w.beginObject();
    w.key("results");
    w.beginObject();
    w.field("entries", static_cast<std::uint64_t>(results.entries));
    w.field("value_bytes",
            static_cast<std::uint64_t>(results.valueBytes));
    w.field("hits", results.hits);
    w.field("misses", results.misses);
    w.field("evictions", results.evictions);
    w.endObject();
    w.key("checkpoints");
    w.beginObject();
    w.field("entries", static_cast<std::uint64_t>(ckpts.entries));
    w.field("value_bytes",
            static_cast<std::uint64_t>(ckpts.valueBytes));
    w.field("hits", ckpts.hits);
    w.field("misses", ckpts.misses);
    w.field("evictions", ckpts.evictions);
    w.endObject();
    w.key("disk");
    w.beginObject();
    w.field("enabled", disk_.enabled());
    if (disk_.enabled()) {
        w.field("dir", disk_.dir());
        w.field("files",
                static_cast<std::uint64_t>(disk_.fileCount()));
    }
    w.endObject();
    w.endObject();

    w.endObject();
    os << '\n';
    HttpResponse resp;
    resp.body = os.str();
    return resp;
}

HttpResponse
CampaignService::handleShutdown()
{
    http_.requestStop();
    HttpResponse resp;
    resp.body = "{\"status\":\"shutting down\"}\n";
    return resp;
}

} // namespace service
} // namespace bpsim
