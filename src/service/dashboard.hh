/**
 * @file
 * The live dashboard page behind GET /dashboard: one self-contained
 * HTML document (inline CSS/JS/SVG, zero external references — it
 * must render on an air-gapped operator box and the smoke test greps
 * for accidental http(s) links). The page polls GET /v1/series for
 * the sampler-fed metrics history and draws request-rate, latency,
 * cache and alert-state panels as inline SVG sparklines in the
 * report.cc visual style.
 *
 * The renderer is a pure function of nothing — the page carries no
 * server state; everything live arrives through the JSON endpoints it
 * polls, so serving it never touches a lock or the clock and the
 * response bytes are trivially deterministic.
 */

#ifndef BPSIM_SERVICE_DASHBOARD_HH
#define BPSIM_SERVICE_DASHBOARD_HH

#include <string>

namespace bpsim
{
namespace service
{

/** The complete /dashboard HTML document. */
std::string renderDashboardHtml();

} // namespace service
} // namespace bpsim

#endif // BPSIM_SERVICE_DASHBOARD_HH
