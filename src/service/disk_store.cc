#include "service/disk_store.hh"

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "campaign/json.hh"
#include "service/cache.hh"

namespace bpsim
{
namespace service
{

namespace
{

/**
 * On-disk entry layout (format "bpsim.store.v1"): a line-oriented
 * header terminated by one blank line, then the raw key bytes
 * immediately followed by the raw value bytes. Lengths and FNV-1a
 * checksums in the header authenticate both payloads; the buildId
 * line scopes every entry to the binary that wrote it.
 */
constexpr const char *kMagic = "bpsim.store.v1";

std::string
hex16(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** One "name=value\n" header line; false on any deviation. */
bool
readHeaderLine(std::istringstream &is, const char *name,
               std::string &value)
{
    std::string line;
    if (!std::getline(is, line))
        return false;
    const std::string prefix = std::string(name) + "=";
    if (line.rfind(prefix, 0) != 0)
        return false;
    value = line.substr(prefix.size());
    return true;
}

bool
parseLen(const std::string &s, std::size_t &out)
{
    if (s.empty() || s.size() > 15)
        return false;
    std::size_t v = 0;
    for (const char c : s) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<std::size_t>(c - '0');
    }
    out = v;
    return true;
}

} // namespace

DiskStore::DiskStore(std::string dir, obs::Registry *registry)
    : dir_(std::move(dir)),
      registry_(registry != nullptr ? registry : &obs::Registry::global())
{
    if (dir_.empty())
        return;
    if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
        registry_->counter("service.disk.errors").add(1);
        dir_.clear(); // degrade to a memory-only server
    }
}

std::string
DiskStore::pathFor(const std::string &key) const
{
    return dir_ + "/" + hex16(fnv1a64(key)) + ".bpsim";
}

std::size_t
DiskStore::fileCount() const
{
    if (!enabled())
        return 0;
    DIR *d = ::opendir(dir_.c_str());
    if (d == nullptr)
        return 0;
    std::size_t n = 0;
    constexpr const char *kExt = ".bpsim";
    constexpr std::size_t kExtLen = 6;
    while (const dirent *e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name.size() > kExtLen &&
            name.compare(name.size() - kExtLen, kExtLen, kExt) == 0)
            ++n;
    }
    ::closedir(d);
    return n;
}

std::optional<std::string>
DiskStore::load(const std::string &key) const
{
    if (!enabled())
        return std::nullopt;
    std::ifstream is(pathFor(key), std::ios::binary);
    if (!is) {
        registry_->counter("service.disk.misses").add(1);
        return std::nullopt;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    const std::string file = ss.str();

    // Validate the header line by line; everything after the blank
    // line is payload. Any deviation at all is a corrupt entry.
    const auto corrupt = [this]() -> std::optional<std::string> {
        registry_->counter("service.disk.corrupt").add(1);
        return std::nullopt;
    };
    const std::size_t header_end = file.find("\n\n");
    if (header_end == std::string::npos)
        return corrupt();
    std::istringstream header(file.substr(0, header_end + 1));
    std::string magic, build, key_len_s, value_len_s, key_fnv, value_fnv;
    if (!readHeaderLine(header, "magic", magic) || magic != kMagic)
        return corrupt();
    if (!readHeaderLine(header, "build", build) || build != buildId())
        return corrupt(); // foreign binary: trajectories not comparable
    std::size_t key_len = 0, value_len = 0;
    if (!readHeaderLine(header, "key_len", key_len_s) ||
        !parseLen(key_len_s, key_len) ||
        !readHeaderLine(header, "value_len", value_len_s) ||
        !parseLen(value_len_s, value_len) ||
        !readHeaderLine(header, "key_fnv", key_fnv) ||
        !readHeaderLine(header, "value_fnv", value_fnv))
        return corrupt();

    const std::size_t payload = header_end + 2;
    if (file.size() != payload + key_len + value_len)
        return corrupt(); // truncated (or padded) payload
    const std::string stored_key = file.substr(payload, key_len);
    std::string value = file.substr(payload + key_len, value_len);
    if (hex16(fnv1a64(stored_key)) != key_fnv ||
        hex16(fnv1a64(value)) != value_fnv)
        return corrupt();
    if (stored_key != key) {
        // 64-bit address collision: the file is healthy but belongs
        // to a different key. A miss, not corruption.
        registry_->counter("service.disk.misses").add(1);
        return std::nullopt;
    }
    registry_->counter("service.disk.loads").add(1);
    return value;
}

bool
DiskStore::store(const std::string &key, const std::string &value) const
{
    if (!enabled())
        return false;
    const std::string path = pathFor(key);
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            registry_->counter("service.disk.errors").add(1);
            return false;
        }
        os << "magic=" << kMagic << '\n'
           << "build=" << buildId() << '\n'
           << "key_len=" << key.size() << '\n'
           << "value_len=" << value.size() << '\n'
           << "key_fnv=" << hex16(fnv1a64(key)) << '\n'
           << "value_fnv=" << hex16(fnv1a64(value)) << '\n'
           << '\n'
           << key << value;
        os.flush();
        if (!os) {
            registry_->counter("service.disk.errors").add(1);
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        registry_->counter("service.disk.errors").add(1);
        std::remove(tmp.c_str());
        return false;
    }
    registry_->counter("service.disk.stores").add(1);
    return true;
}

} // namespace service
} // namespace bpsim
