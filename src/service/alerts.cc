#include "service/alerts.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace bpsim
{
namespace service
{

namespace
{

/** Does @p v breach @p threshold in the rule's direction? */
bool
breaches(const AlertRule &rule, double v, double threshold)
{
    return rule.op == AlertOp::Below ? v < threshold : v > threshold;
}

/** Has @p v recovered past @p threshold by the hysteresis margin? */
bool
recovered(const AlertRule &rule, double v, double threshold)
{
    return rule.op == AlertOp::Below
               ? v >= threshold + rule.clearMargin
               : v <= threshold - rule.clearMargin;
}

/**
 * Instantaneous (dwell-free) state machine step shared by the
 * registry-backed sources: escalate on breach, demote only past the
 * hysteresis margin.
 */
AlertState
stepInstant(const AlertRule &rule, AlertState state, double v)
{
    if (breaches(rule, v, rule.crit))
        return AlertState::Critical;
    if (state == AlertState::Critical && !recovered(rule, v, rule.crit))
        return AlertState::Critical;
    if (breaches(rule, v, rule.warn))
        return AlertState::Warning;
    if (state != AlertState::Clear && !recovered(rule, v, rule.warn))
        return AlertState::Warning;
    return AlertState::Clear;
}

} // namespace

const char *
alertStateName(AlertState s)
{
    switch (s) {
    case AlertState::Clear:
        return "clear";
    case AlertState::Warning:
        return "warning";
    case AlertState::Critical:
        return "critical";
    }
    return "?";
}

std::vector<AlertEvent>
evaluateSignalRule(const AlertRule &rule, std::uint64_t trial,
                   const std::vector<obs::SeriesPoint> &points,
                   AlertState *final_state)
{
    std::vector<AlertEvent> events;
    AlertState state = AlertState::Clear;
    const Time dwell = fromSeconds(rule.lookbackSec);
    // Time each threshold has been continuously breached since, or -1.
    Time warn_since = -1, crit_since = -1;

    const auto transition = [&](Time t, AlertState to, double v) {
        events.push_back({rule.name, trial, t, state, to, v});
        state = to;
    };

    for (const auto &p : points) {
        const double v = p.value;
        // Dwell clocks.
        if (breaches(rule, v, rule.crit)) {
            if (crit_since < 0)
                crit_since = p.t;
        } else {
            crit_since = -1;
        }
        if (breaches(rule, v, rule.warn)) {
            if (warn_since < 0)
                warn_since = p.t;
        } else {
            warn_since = -1;
        }

        // Escalation (dwell-gated).
        if (state != AlertState::Critical && crit_since >= 0 &&
            p.t - crit_since >= dwell) {
            transition(p.t, AlertState::Critical, v);
            continue;
        }
        if (state == AlertState::Clear && warn_since >= 0 &&
            p.t - warn_since >= dwell) {
            transition(p.t, AlertState::Warning, v);
            continue;
        }

        // Demotion (hysteresis-gated, immediate).
        if (state == AlertState::Critical &&
            recovered(rule, v, rule.crit)) {
            if (breaches(rule, v, rule.warn) ||
                !recovered(rule, v, rule.warn))
                transition(p.t, AlertState::Warning, v);
            else
                transition(p.t, AlertState::Clear, v);
            continue;
        }
        if (state == AlertState::Warning &&
            recovered(rule, v, rule.warn))
            transition(p.t, AlertState::Clear, v);
    }
    if (final_state != nullptr)
        *final_state = state;
    return events;
}

AlertEngine::AlertEngine(std::vector<AlertRule> rules)
    : rules_(std::move(rules))
{
    for (const auto &r : rules_)
        status_[r.name] = AlertStatus{};
}

std::vector<AlertEvent>
AlertEngine::evaluate(const obs::TimeSeriesStore *series,
                      const std::map<std::string, std::uint64_t> *counters,
                      const obs::IncidentReport *incidents)
{
    std::vector<AlertEvent> round;
    std::lock_guard<std::mutex> lk(m_);

    for (const auto &rule : rules_) {
        AlertStatus &st = status_[rule.name];
        switch (rule.source) {
        case AlertSource::Signal: {
            if (series == nullptr)
                break;
            // Each campaign run re-evaluates from scratch: the run's
            // channels are independent simulated years, so the
            // rule's post-run state is the worst channel-final state.
            AlertState worst = AlertState::Clear;
            double last_value = st.value;
            bool saw_channel = false;
            for (const auto &ch : series->channels()) {
                if (ch.signal != rule.signal || ch.begin == ch.end)
                    continue;
                saw_channel = true;
                std::vector<obs::SeriesPoint> pts;
                pts.reserve(ch.end - ch.begin);
                for (std::size_t i = ch.begin; i < ch.end; ++i)
                    pts.push_back({series->times()[i],
                                   series->values()[i]});
                AlertState fin = AlertState::Clear;
                auto ev =
                    evaluateSignalRule(rule, ch.trial, pts, &fin);
                round.insert(round.end(), ev.begin(), ev.end());
                st.transitions += ev.size();
                worst = std::max(worst, fin);
                last_value = pts.back().value;
            }
            if (saw_channel) {
                st.state = worst;
                st.value = last_value;
            }
            break;
        }
        case AlertSource::CounterRatio: {
            if (counters == nullptr)
                break;
            const auto get = [counters](const std::string &name) {
                const auto it = counters->find(name);
                return it == counters->end() ? std::uint64_t{0}
                                             : it->second;
            };
            const std::uint64_t den = get(rule.denominator);
            const double v =
                den >= rule.minDenominator
                    ? static_cast<double>(get(rule.numerator)) /
                          static_cast<double>(den)
                    : 0.0;
            const AlertState next = stepInstant(rule, st.state, v);
            if (next != st.state) {
                round.push_back(
                    {rule.name, 0, 0, st.state, next, v});
                ++st.transitions;
                st.state = next;
            }
            st.value = v;
            break;
        }
        case AlertSource::IncidentResidual: {
            if (incidents == nullptr)
                break;
            double v = 0.0;
            for (const auto &t : incidents->trials)
                v = std::max(v, std::abs(t.residualMin()));
            const AlertState next = stepInstant(rule, st.state, v);
            if (next != st.state) {
                round.push_back(
                    {rule.name, 0, 0, st.state, next, v});
                ++st.transitions;
                st.state = next;
            }
            st.value = v;
            break;
        }
        }
    }

    log_.insert(log_.end(), round.begin(), round.end());
    return round;
}

std::optional<AlertStatus>
AlertEngine::status(const std::string &rule) const
{
    std::lock_guard<std::mutex> lk(m_);
    const auto it = status_.find(rule);
    if (it == status_.end())
        return std::nullopt;
    return it->second;
}

std::vector<AlertEvent>
AlertEngine::eventLog() const
{
    std::lock_guard<std::mutex> lk(m_);
    return log_;
}

void
AlertEngine::exportTo(obs::Registry &reg) const
{
    std::lock_guard<std::mutex> lk(m_);
    for (const auto &rule : rules_) {
        const AlertStatus &st = status_.at(rule.name);
        const std::string base = "alert." + rule.name;
        reg.gauge(base + ".state")
            .set(static_cast<double>(
                static_cast<std::uint8_t>(st.state)));
        reg.gauge(base + ".value").set(st.value);
        reg.gauge(base + ".transitions")
            .set(static_cast<double>(st.transitions));
    }
}

std::string
AlertEngine::toJson() const
{
    std::lock_guard<std::mutex> lk(m_);
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("alerts").beginArray();
    for (const auto &rule : rules_) {
        const AlertStatus &st = status_.at(rule.name);
        w.beginObject();
        w.field("rule", rule.name);
        w.field("state", alertStateName(st.state));
        w.field("value", st.value);
        w.field("transitions", st.transitions);
        w.field("warn", rule.warn);
        w.field("crit", rule.crit);
        w.field("info", rule.info);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
    return os.str();
}

std::string
formatAlertEvents(const std::vector<AlertEvent> &events)
{
    std::ostringstream os;
    for (const auto &e : events) {
        char value[32];
        std::snprintf(value, sizeof value, "%.17g", e.value);
        os << e.rule << " trial=" << e.trial << " t=" << e.t << ' '
           << alertStateName(e.from) << "->" << alertStateName(e.to)
           << " value=" << value << '\n';
    }
    return os.str();
}

std::vector<AlertRule>
defaultAlertRules()
{
    std::vector<AlertRule> rules;

    // The netdata apcupsd_ups_charge idiom: warn while the battery
    // is visibly draining, critical when it nears exhaustion. The
    // one-minute dwell matches netdata's lookback average.
    AlertRule ups;
    ups.name = "ups_charge_low";
    ups.source = AlertSource::Signal;
    ups.signal = obs::SignalId::BatterySoc;
    ups.op = AlertOp::Below;
    ups.warn = 0.60;
    ups.crit = 0.25;
    ups.lookbackSec = 60.0;
    ups.clearMargin = 0.05;
    ups.info = "UPS battery state of charge low; the cluster will "
               "lose power if the outage outlasts the battery";
    rules.push_back(ups);

    // DG reliability: the paper's availability arithmetic assumes a
    // ~0.75%-per-start failure rate; an elevated rate breaks it.
    AlertRule dg;
    dg.name = "dg_start_failures";
    dg.source = AlertSource::CounterRatio;
    dg.numerator = "dg.starts_failed";
    dg.denominator = "dg.starts";
    dg.minDenominator = 10;
    dg.op = AlertOp::Above;
    dg.warn = 0.05;
    dg.crit = 0.25;
    dg.clearMargin = 0.01;
    dg.info = "diesel generator start-failure rate above the "
              "provisioning model's assumption";
    rules.push_back(dg);

    // Backup exhaustion: outages that outlast every backup layer.
    AlertRule depleted;
    depleted.name = "backup_depleted";
    depleted.source = AlertSource::CounterRatio;
    depleted.numerator = "power.backup_depleted";
    depleted.denominator = "power.outages";
    depleted.minDenominator = 10;
    depleted.op = AlertOp::Above;
    depleted.warn = 0.02;
    depleted.crit = 0.10;
    depleted.clearMargin = 0.005;
    depleted.info = "fraction of utility outages that exhausted the "
                    "backup chain";
    rules.push_back(depleted);

    // Forensic self-check: the incident engine must attribute every
    // second of downtime; a residual means the books do not balance.
    AlertRule residual;
    residual.name = "unattributed_downtime";
    residual.source = AlertSource::IncidentResidual;
    residual.op = AlertOp::Above;
    residual.warn = 1e-3;
    residual.crit = 1.0;
    residual.clearMargin = 0.0;
    residual.info = "minutes of downtime the incident engine could "
                    "not attribute to a root cause";
    rules.push_back(residual);

    return rules;
}

} // namespace service
} // namespace bpsim
