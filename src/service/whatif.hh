/**
 * @file
 * What-if queries: the JSON request schema of POST /v1/whatif, its
 * validation into an AnnualCampaignSpec + AnnualCampaignOptions, the
 * canonical cache key, and the deterministic runner.
 *
 * Request schema (every field except "config" optional):
 *
 *     {
 *       "config": "LargeEUPS"            // Table 3 name, or object:
 *                 {"name": "...", "has_dg": ..., "dg_power_frac": ...,
 *                  "has_ups": ..., "ups_power_frac": ...,
 *                  "ups_runtime_sec": ...},
 *       "technique": {"kind": "throttle_sleep", "pstate": 5,
 *                     "tstate": 0, "serve_for_min": 10.0,
 *                     "low_power": true, "host_pstate": 0,
 *                     "remote_perf": 0.7, "risk": 0.3},
 *       "servers": 8,
 *       "trials": 200, "seed": 2014,
 *       "min_trials": 64, "ci_rel_tol": 0.10, "ci_abs_tol_min": 1.0
 *     }
 *
 * Parsing is defensive: the body is untrusted network input, so every
 * field is type- and range-checked and errors are returned, never
 * asserted (JsonValue's checked accessors abort on mismatch and are
 * not used here).
 *
 * Determinism: the response of a what-if is a pure function of
 * (spec, seed, trial budget, early-stop rule, buildId) — that tuple,
 * serialized canonically by canonicalCacheKey(), is the cache's
 * content address, and runWhatIf() serializes the campaign summary
 * without wall-clock fields so a cached reply is byte-identical to a
 * fresh run (and to `campaign_sweep --deterministic` batch output).
 */

#ifndef BPSIM_SERVICE_WHATIF_HH
#define BPSIM_SERVICE_WHATIF_HH

#include <cstdint>
#include <optional>
#include <string>

#include "campaign/annual_campaign.hh"
#include "campaign/checkpoint.hh"
#include "campaign/json.hh"

namespace bpsim
{
namespace service
{

/** One validated what-if query. */
struct WhatIfRequest
{
    AnnualCampaignSpec spec;
    AnnualCampaignOptions opts;
};

/** Sizing guard-rails applied during parsing. */
struct WhatIfLimits
{
    /** Reject trial budgets beyond this (one resident server should
     *  not be wedged for hours by one query). */
    std::uint64_t maxTrials = 100000;
    /** Reject server counts beyond this. */
    int maxServers = 4096;
};

/**
 * Validate one parsed request body. Returns nullopt with a
 * human-readable reason in @p error on any schema violation.
 */
std::optional<WhatIfRequest> parseWhatIfRequest(
    const JsonValue &body, std::string *error = nullptr,
    const WhatIfLimits &limits = {});

/**
 * The canonical cache key: every result-determining field in fixed
 * order, terminated by buildId (a new binary never serves a stale
 * cache line, even across identical configs).
 */
std::string canonicalCacheKey(const WhatIfRequest &req);

/**
 * The *base* key: canonicalCacheKey() with the trial budget
 * wildcarded (`trials=*`). Two requests that differ only in budget
 * share a base key, which is exactly the condition under which a
 * stored campaign checkpoint for one can seed the other — same
 * scenario, same seed, same early-stop rule, same build.
 */
std::string canonicalBaseKey(const WhatIfRequest &req);

/**
 * Run the campaign and serialize its summary as the deterministic
 * (timing-free) campaign JSON document — the /v1/whatif response
 * body, and byte-for-byte the `campaign_sweep --deterministic`
 * export for the same scenario.
 */
std::string runWhatIf(const WhatIfRequest &req);

/** Everything one what-if execution produced. */
struct WhatIfExecution
{
    /** The deterministic response body (timing-free campaign JSON). */
    std::string body;
    /** Exact aggregation state after the run, resumable to a larger
     *  budget later. */
    CampaignCheckpoint checkpoint;
    /** Trials actually simulated by this call (0 for a pure replay of
     *  an early-stopped checkpoint). */
    std::uint64_t executedTrials = 0;
    /** True when @p from was compatible and seeded the run. */
    bool resumed = false;
    /** First trial id simulated this call (the checkpoint's trial
     *  count when resuming, else 0). Alert evaluation uses it to keep
     *  warm-up sample filtering relative to this call's work. */
    std::uint64_t startTrial = 0;
};

/**
 * Run (or resume) the campaign for @p req. When @p from is non-null
 * and compatible — same seed, trials <= the request's budget, same
 * buildId — the campaign resumes from it, simulating only the
 * remaining trials; the result is bit-identical to a fresh run (see
 * campaign/checkpoint.hh). An incompatible checkpoint is ignored and
 * the campaign runs fresh.
 */
WhatIfExecution executeWhatIf(const WhatIfRequest &req,
                              const CampaignCheckpoint *from = nullptr);

/** Stable lowercase name of @p kind ("throttle_sleep", ...). */
const char *techniqueKindName(TechniqueKind kind);

/** Inverse of techniqueKindName(); nullopt for unknown names. */
std::optional<TechniqueKind> techniqueKindFromName(
    const std::string &name);

} // namespace service
} // namespace bpsim

#endif // BPSIM_SERVICE_WHATIF_HH
