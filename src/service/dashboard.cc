#include "service/dashboard.hh"

namespace bpsim
{
namespace service
{

std::string
renderDashboardHtml()
{
    // R"html(...)" segments keep the page readable as what it is:
    // one static document. The palette and sparkline geometry mirror
    // obs/report.cc so the live view and the post-mortem report read
    // as one family.
    return R"html(<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width,initial-scale=1">
<title>bpsim what-if server &mdash; live</title>
<style>
body{font:14px/1.45 -apple-system,'Segoe UI',Roboto,sans-serif;color:#24292f;margin:2rem auto;max-width:70rem;padding:0 1rem;background:#fff}
h1{font-size:1.5rem;border-bottom:2px solid #d0d7de;padding-bottom:.4rem}
h2{font-size:1.05rem;margin:0 0 .3rem 0;color:#57606a;font-weight:600}
.prov{color:#57606a;font-size:.85rem}
.prov span{margin-right:1.2rem}
.grid{display:flex;flex-wrap:wrap;gap:1rem;margin-top:1rem}
.panel{border:1px solid #d0d7de;border-radius:6px;padding:.7rem .9rem;background:#f6f8fa;min-width:21rem;flex:1}
.panel svg{display:block;background:#fff;border:1px solid #d0d7de}
.val{font-size:1.25rem;font-weight:600;font-variant-numeric:tabular-nums}
.legend{color:#57606a;font-size:.8rem;margin-top:.25rem}
.legend b{font-weight:600}
.s0{color:#3d6f9e}.s1{color:#b5493b}
.alerts{display:flex;flex-wrap:wrap;gap:.5rem}
.alert{border:1px solid #d0d7de;border-radius:4px;padding:.25rem .6rem;font-size:.85rem;background:#fff}
.alert.clear{border-color:#2b7a3d;color:#2b7a3d}
.alert.warning{border-color:#d08a2e;color:#d08a2e;font-weight:600}
.alert.critical{border-color:#b5493b;color:#b5493b;font-weight:600}
#err{color:#b5493b;font-weight:600;margin-top:.8rem;display:none}
.foot{margin-top:2rem;color:#57606a;font-size:.85rem;border-top:1px solid #d0d7de;padding-top:.5rem}
</style>
</head>
<body>
<h1>bpsim what-if server</h1>
<p class="prov"><span id="meta">connecting&hellip;</span><span>poll: 2s</span></p>
<div class="grid">
<div class="panel"><h2>Request rate</h2><div class="val" id="v-rate">&ndash;</div>
<svg id="c-rate" width="300" height="60" viewBox="0 0 300 60" role="img"></svg>
<div class="legend"><b class="s0">&#9644;</b> service.requests:rate (req/s)</div></div>
<div class="panel"><h2>Request latency</h2><div class="val" id="v-lat">&ndash;</div>
<svg id="c-lat" width="300" height="60" viewBox="0 0 300 60" role="img"></svg>
<div class="legend"><b class="s0">&#9644;</b> p50 &nbsp;<b class="s1">&#9644;</b> p99 (service.request.seconds, ms)</div></div>
<div class="panel"><h2>Result cache</h2><div class="val" id="v-cache">&ndash;</div>
<svg id="c-cache" width="300" height="60" viewBox="0 0 300 60" role="img"></svg>
<div class="legend"><b class="s0">&#9644;</b> entries &nbsp;<b class="s1">&#9644;</b> hits/s</div></div>
<div class="panel"><h2>Alerts</h2><div class="alerts" id="alerts"></div>
<svg id="c-alerts" width="300" height="60" viewBox="0 0 300 60" role="img"></svg>
<div class="legend">worst alert.&lt;rule&gt;.state over time (0 clear / 1 warning / 2 critical)</div></div>
</div>
<p id="err"></p>
<p class="foot">Self-contained page; polls <code>/v1/series</code> (tier 0, LTTB-capped). See docs/SERVICE.md.</p>
<script>
"use strict";
var RULES=["ups_charge_low","dg_start_failures","backup_depleted","unattributed_downtime"];
var NAMES=["service.requests:rate",
           "service.request.seconds:p50","service.request.seconds:p99",
           "service.cache.results.entries","service.cache.results.hits:rate"]
          .concat(RULES.map(function(r){return "alert."+r+".state";}));
function pts(s){ // [[t,count,min,max,sum],...] -> [{t,v}] using bucket means
  if(!s||!s.found)return[];
  return s.points.map(function(p){return {t:p[0],v:p[1]>0?p[4]/p[1]:0};});
}
function line(svg,series,colors){
  var w=300,h=60,pad=3,html='<rect x="0" y="0" width="'+w+'" height="'+h+'" fill="#fff"/>';
  var lo=Infinity,hi=-Infinity,t0=Infinity,t1=-Infinity;
  series.forEach(function(ps){ps.forEach(function(p){
    if(p.v<lo)lo=p.v; if(p.v>hi)hi=p.v; if(p.t<t0)t0=p.t; if(p.t>t1)t1=p.t;});});
  if(!isFinite(lo)){svg.innerHTML=html;return;}
  if(hi-lo<1e-12){hi=lo+1;}
  if(t1-t0<1)t1=t0+1;
  series.forEach(function(ps,i){
    if(!ps.length)return;
    var d=ps.map(function(p){
      var x=pad+(w-2*pad)*(p.t-t0)/(t1-t0);
      var y=h-pad-(h-2*pad)*(p.v-lo)/(hi-lo);
      return x.toFixed(1)+","+y.toFixed(1);}).join(" ");
    html+='<polyline fill="none" stroke="'+colors[i]+'" stroke-width="1.2" points="'+d+'"/>';
  });
  svg.innerHTML=html;
}
function fmt(v,digits){return v>=100?v.toFixed(0):v.toFixed(digits===undefined?2:digits);}
function byName(doc){
  var m={};
  (doc.series||[]).forEach(function(s){m[s.name]=s;});
  return m;
}
function refresh(){
  var q="/v1/series?tier=0&max=240&name="+encodeURIComponent(NAMES.join(","));
  fetch(q,{cache:"no-store"}).then(function(r){
    if(!r.ok)throw new Error("/v1/series -> HTTP "+r.status+(r.status===404?" (history disabled? start with --history on)":""));
    return r.json();
  }).then(function(doc){
    document.getElementById("err").style.display="none";
    var m=byName(doc);
    document.getElementById("meta").textContent=
      "cadence "+(doc.cadence_ns/1e9)+"s, retention "+(doc.retention_ns/1e9)+"s";
    var rate=pts(m["service.requests:rate"]);
    line(document.getElementById("c-rate"),[rate],["#3d6f9e"]);
    document.getElementById("v-rate").textContent=
      rate.length?fmt(rate[rate.length-1].v)+" req/s":"–";
    var p50=pts(m["service.request.seconds:p50"]).map(function(p){return{t:p.t,v:p.v*1e3};});
    var p99=pts(m["service.request.seconds:p99"]).map(function(p){return{t:p.t,v:p.v*1e3};});
    line(document.getElementById("c-lat"),[p50,p99],["#3d6f9e","#b5493b"]);
    document.getElementById("v-lat").textContent=
      p99.length?fmt(p50.length?p50[p50.length-1].v:0)+" / "+fmt(p99[p99.length-1].v)+" ms":"–";
    var ent=pts(m["service.cache.results.entries"]);
    var hits=pts(m["service.cache.results.hits:rate"]);
    line(document.getElementById("c-cache"),[ent,hits],["#3d6f9e","#b5493b"]);
    document.getElementById("v-cache").textContent=
      ent.length?fmt(ent[ent.length-1].v,0)+" entries":"–";
    var names=["clear","warning","critical"];
    var worst=[];
    var badges=RULES.map(function(r){
      var ps=pts(m["alert."+r+".state"]);
      ps.forEach(function(p,i){
        if(!worst[i]||p.v>worst[i].v)worst[i]={t:p.t,v:p.v};});
      var st=ps.length?Math.min(2,Math.max(0,Math.round(ps[ps.length-1].v))):0;
      return '<span class="alert '+names[st]+'">'+r+": "+names[st]+"</span>";
    });
    document.getElementById("alerts").innerHTML=badges.join("");
    line(document.getElementById("c-alerts"),[worst.filter(Boolean)],["#d08a2e"]);
  }).catch(function(e){
    var el=document.getElementById("err");
    el.textContent=String(e.message||e);
    el.style.display="block";
  });
}
refresh();
setInterval(refresh,2000);
</script>
</body>
</html>
)html";
}

} // namespace service
} // namespace bpsim
