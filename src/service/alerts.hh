/**
 * @file
 * Declarative alert rules over live observability signals, in the
 * style of netdata's health guides (the apcupsd UPS-charge alert is
 * the template): each rule names a signal source, warn/crit
 * thresholds, a dwell (lookback) the breach must sustain, and a
 * hysteresis margin the value must recover past before the alert
 * clears — so a signal hovering at a threshold cannot flap.
 *
 * Three source kinds cover the service's signals:
 *  - Signal: a sampled simulation time series (obs::TimeSeriesSink),
 *    e.g. battery state of charge. Evaluated per (trial, signal)
 *    channel in simulated time; the dwell is simulated seconds.
 *  - CounterRatio: numerator/denominator over an obs::Registry
 *    counter snapshot, e.g. DG start failures per start attempt.
 *  - IncidentResidual: the unattributed-downtime residual of an
 *    obs::IncidentReport (forensic attribution must reconcile with
 *    the simulator's own downtime accounting).
 *
 * The engine is deterministic: evaluation is a pure function of its
 * inputs, channels are walked in the store's (trial, signal) order,
 * and the fired/cleared event log renders to a byte-stable text form
 * that golden tests pin. State is exported two ways: ALERTS-style
 * gauges in a Registry (`alert.<rule>.state`, 0 clear / 1 warning /
 * 2 critical, picked up by the /metrics OpenMetrics exposition) and
 * a JSON document served by GET /v1/alerts.
 */

#ifndef BPSIM_SERVICE_ALERTS_HH
#define BPSIM_SERVICE_ALERTS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "campaign/json.hh"
#include "obs/incident.hh"
#include "obs/registry.hh"
#include "obs/timeseries.hh"

namespace bpsim
{
namespace service
{

/** Alert severity ladder (netdata's CLEAR / WARNING / CRITICAL). */
enum class AlertState : std::uint8_t
{
    Clear = 0,
    Warning = 1,
    Critical = 2,
};

/** Stable lowercase name ("clear", "warning", "critical"). */
const char *alertStateName(AlertState s);

/** Where a rule reads its value from. */
enum class AlertSource : std::uint8_t
{
    /** A sampled simulation signal (per-channel time walk). */
    Signal,
    /** numerator / denominator over a counter snapshot. */
    CounterRatio,
    /** max |per-trial attribution residual| of an IncidentReport. */
    IncidentResidual,
};

/** Breach direction. */
enum class AlertOp : std::uint8_t
{
    /** Fires while value < threshold (e.g. UPS charge low). */
    Below,
    /** Fires while value > threshold (e.g. failure rate high). */
    Above,
};

/** One declared rule. */
struct AlertRule
{
    /** Stable identifier ("ups_charge_low", ...). */
    std::string name;
    AlertSource source = AlertSource::Signal;

    /** @name Signal source */
    ///@{
    obs::SignalId signal = obs::SignalId::BatterySoc;
    /** Simulated seconds a breach must sustain before firing. */
    double lookbackSec = 0.0;
    ///@}

    /** @name CounterRatio source */
    ///@{
    std::string numerator;
    std::string denominator;
    /** Ratio is 0 while the denominator is below this. */
    std::uint64_t minDenominator = 1;
    ///@}

    AlertOp op = AlertOp::Below;
    /** Warn/crit thresholds in the rule's value domain. */
    double warn = 0.0;
    double crit = 0.0;
    /**
     * Hysteresis: to leave a state the value must recover past the
     * state's threshold by this margin (same unit as the value), so
     * hovering at the threshold cannot flap the alert.
     */
    double clearMargin = 0.0;
    /** One-line human description (the health-guide text). */
    std::string info;
};

/** One fired/cleared transition. */
struct AlertEvent
{
    std::string rule;
    /** Trial of the evidence (0 for registry/incident rules). */
    std::uint64_t trial = 0;
    /** Simulated time of the transition (0 for non-signal rules). */
    Time t = 0;
    AlertState from = AlertState::Clear;
    AlertState to = AlertState::Clear;
    /** The evaluated value at the transition. */
    double value = 0.0;
};

/** Point-in-time state of one rule. */
struct AlertStatus
{
    AlertState state = AlertState::Clear;
    /** Last evaluated value (rule-domain units). */
    double value = 0.0;
    /** Transitions recorded for this rule so far. */
    std::uint64_t transitions = 0;
};

/**
 * Walk one channel's points through the rule's threshold state
 * machine (pure function; the unit the golden tests pin). Returns
 * the transitions in time order; @p final_state receives the state
 * after the last sample when provided.
 */
std::vector<AlertEvent> evaluateSignalRule(
    const AlertRule &rule, std::uint64_t trial,
    const std::vector<obs::SeriesPoint> &points,
    AlertState *final_state = nullptr);

/** The engine: rule book + per-rule state + event log. */
class AlertEngine
{
  public:
    explicit AlertEngine(std::vector<AlertRule> rules);

    const std::vector<AlertRule> &rules() const { return rules_; }

    /**
     * Evaluate every rule against the evidence of one campaign run:
     * @p series for Signal rules (may be null), @p counters for
     * CounterRatio rules (may be null), @p incidents for
     * IncidentResidual rules (may be null). Returns this round's
     * transitions (also appended to the internal log) and updates
     * per-rule states.
     */
    std::vector<AlertEvent> evaluate(
        const obs::TimeSeriesStore *series,
        const std::map<std::string, std::uint64_t> *counters,
        const obs::IncidentReport *incidents);

    /** Current status of @p rule (nullopt for unknown names). */
    std::optional<AlertStatus> status(const std::string &rule) const;

    /** Every transition recorded since construction. */
    std::vector<AlertEvent> eventLog() const;

    /**
     * Export ALERTS-style gauges into @p reg: `alert.<rule>.state`
     * (0/1/2), `alert.<rule>.value` and `alert.<rule>.transitions`
     * per rule. The /metrics exposition then carries them as
     * `bpsim_alert_<rule>_state` etc.
     */
    void exportTo(obs::Registry &reg) const;

    /** JSON document: {"alerts": [{rule, state, value, info}...]}. */
    std::string toJson() const;

  private:
    std::vector<AlertRule> rules_;

    mutable std::mutex m_;
    std::map<std::string, AlertStatus> status_;
    std::vector<AlertEvent> log_;
};

/**
 * Render @p events one per line as
 * `<rule> trial=<trial> t=<sim_us> <from>-><to> value=<value>` —
 * the byte-stable form the golden transition tests pin.
 */
std::string formatAlertEvents(const std::vector<AlertEvent> &events);

/**
 * The default rule book (the netdata-style health guide this service
 * ships with): UPS charge low, DG start-failure rate, backup
 * exhaustion rate, unattributed-downtime residual. Documented in
 * docs/SERVICE.md.
 */
std::vector<AlertRule> defaultAlertRules();

} // namespace service
} // namespace bpsim

#endif // BPSIM_SERVICE_ALERTS_HH
