/**
 * @file
 * Minimal dependency-free HTTP/1.1 front end for the resident
 * campaign service: blocking POSIX sockets, one detached worker
 * thread per accepted connection, `Connection: close` semantics.
 *
 * Scope: exactly what the what-if server needs — request-line +
 * headers + Content-Length body parsing, bounded input sizes (the
 * body reaches parseJson, which is why both layers cap untrusted
 * input), and deterministic response rendering. Chunked encoding,
 * keep-alive, TLS and HTTP/2 are deliberately out of scope; a real
 * deployment would sit this behind a reverse proxy.
 *
 * Threading model: the accept loop runs on one thread and polls the
 * listener with a short timeout so stop() needs no signal tricks.
 * Each connection is served on its own thread (requests are
 * independent; the expensive part — the campaign itself — fans out
 * over the shared WorkStealingPool inside the handler, so connection
 * threads spend their time blocked, not computing). stop() closes the
 * listener and waits for in-flight connections to drain.
 */

#ifndef BPSIM_SERVICE_HTTP_HH
#define BPSIM_SERVICE_HTTP_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace bpsim
{
namespace service
{

/** One parsed request. */
struct HttpRequest
{
    std::string method;  // "GET", "POST", ...
    std::string target;  // request target, e.g. "/v1/whatif"
    std::string version; // "HTTP/1.1"
    /** Headers in arrival order (names lowercased). */
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Case-insensitive header lookup; nullptr when absent. */
    const std::string *header(std::string_view name) const;
};

/** One response to render. */
struct HttpResponse
{
    int status = 200;
    /** The charset is explicit so scrapers and the dashboard poller
     *  never have to sniff (the header-contract test pins it). */
    std::string contentType = "application/json; charset=utf-8";
    /** Extra headers (e.g. X-Bpsim-Cache) rendered verbatim. */
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
};

/**
 * Per-connection I/O measurements for a TimedHandler. The socket
 * layer fills readNs/bytesIn before invoking the handler; a handler
 * that wants to observe the response write (duration + bytes) sets
 * onWritten, which fires exactly once after the response bytes have
 * been sent (or the send failed — the duration still covers the
 * attempt). All values are wall-clock and never influence response
 * bytes, preserving the determinism contract.
 */
struct HttpConnectionIo
{
    /** Wall nanoseconds spent reading the request (head + body). */
    std::uint64_t readNs = 0;
    /** Bytes received for this request (head + body). */
    std::uint64_t bytesIn = 0;
    /** Completion hook: (writeNs, bytesOut) after the response write. */
    std::function<void(std::uint64_t, std::uint64_t)> onWritten;
};

/** The standard reason phrase for @p status ("OK", "Not Found"...). */
const char *httpStatusText(int status);

/** The path component of @p target (everything before '?'). */
std::string targetPath(const std::string &target);

/**
 * Look up query parameter @p name in @p target's query string.
 * Returns false when absent; otherwise stores the value (with %XX
 * and '+' decoded) in @p value. A bare `?name` yields "".
 */
bool queryParam(const std::string &target, std::string_view name,
                std::string *value);

/** Convenience: a JSON error document {"error": reason}. */
HttpResponse httpError(int status, const std::string &reason);

/**
 * Parse one complete request (start line, headers, body already
 * joined). Returns false with a reason in @p error on malformed
 * input. Exposed separately from the socket loop so the parser is
 * testable without a network.
 */
bool parseHttpRequest(std::string_view text, HttpRequest &out,
                      std::string *error = nullptr);

/** Render @p r as an HTTP/1.1 response (Connection: close). */
std::string renderHttpResponse(const HttpResponse &r);

/** Listener configuration. */
struct HttpServerOptions
{
    /** Bind address (loopback by default: this is an operator tool,
     *  not an internet-facing daemon). */
    std::string bindAddress = "127.0.0.1";
    /** TCP port; 0 picks an ephemeral port (see HttpServer::port()). */
    std::uint16_t port = 0;
    /** Reject request heads (start line + headers) beyond this. */
    std::size_t maxHeaderBytes = 64 * 1024;
    /** Reject bodies beyond this (the body reaches parseJson). */
    std::size_t maxBodyBytes = 1 << 20;
    /** listen(2) backlog. */
    int backlog = 16;
};

/**
 * The server: start() binds + listens + spawns the accept loop;
 * handler runs once per request on the connection's thread.
 */
class HttpServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;
    /** Handler variant that also receives the connection's I/O
     *  timings (and may register a post-write completion hook). */
    using TimedHandler =
        std::function<HttpResponse(const HttpRequest &,
                                   HttpConnectionIo &)>;

    explicit HttpServer(Handler handler, HttpServerOptions opts = {});
    explicit HttpServer(TimedHandler handler, HttpServerOptions opts = {});
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Bind, listen and start accepting. False (with @p error) on
     *  socket failure; idempotent once running. */
    bool start(std::string *error = nullptr);

    /**
     * Ask the accept loop to wind down without blocking — safe to
     * call from inside a handler (a POST /v1/shutdown body cannot
     * wait for its own connection to finish).
     */
    void requestStop();

    /** requestStop() + wait for the loop and every connection. */
    void stop();

    /** Block until the accept loop has exited and connections have
     *  drained (pair with requestStop()). */
    void waitUntilStopped();

    /** True from successful start() until the accept loop exits. */
    bool running() const;

    /** The bound port (resolves port 0 to the kernel's choice). */
    std::uint16_t port() const { return port_; }

  private:
    void acceptLoop();
    void serveConnection(int fd);
    void connectionDone();

    TimedHandler handler_;
    HttpServerOptions opts_;
    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::thread acceptThread_;
    std::atomic<bool> stopRequested_{false};
    std::atomic<bool> running_{false};

    /** Guards activeConnections_ / wakes stop(). */
    std::mutex m_;
    std::condition_variable cv_;
    int activeConnections_ = 0;
};

} // namespace service
} // namespace bpsim

#endif // BPSIM_SERVICE_HTTP_HH
