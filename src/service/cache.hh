/**
 * @file
 * Content-addressed campaign result cache for the what-if server.
 *
 * Entries are addressed by the FNV-1a 64-bit hash of a *canonical
 * key* — the deterministic serialization of everything the result is
 * a pure function of: scenario config, seed, trial budget and
 * buildId (see whatif.hh canonicalCacheKey()). Because campaign
 * results are bit-identical for any thread count, a cache hit can
 * return the stored response bytes verbatim and the reply is
 * indistinguishable from re-simulating — which is the whole point: a
 * repeated or merged what-if costs a map lookup, not a Monte Carlo
 * campaign.
 *
 * Eviction is LRU over a bounded entry count. Hits, misses,
 * insertions and evictions are counted in an obs::Registry so the
 * /metrics exposition (and the CI smoke test) can watch hit rates.
 * The full key is stored and compared on lookup, so a 64-bit hash
 * collision degrades to a miss, never to a wrong answer.
 */

#ifndef BPSIM_SERVICE_CACHE_HH
#define BPSIM_SERVICE_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "obs/registry.hh"

namespace bpsim
{
namespace service
{

/** FNV-1a 64-bit hash (the content address of a canonical key). */
std::uint64_t fnv1a64(std::string_view bytes);

/** Point-in-time cache statistics. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    /** Total cached value bytes. */
    std::size_t valueBytes = 0;
};

/** Bounded, thread-safe, content-addressed LRU cache. */
class ResultCache
{
  public:
    /**
     * @p maxEntries bounds the cache (>= 1). @p registry receives the
     * `<prefix>.*` counters/gauges; defaults to the process-wide
     * registry, tests pass a local one. @p prefix names this
     * instance's metrics — the what-if result cache keeps the
     * historical "service.cache", the checkpoint cache uses
     * "service.ckpt.cache" so the two hit rates stay separable.
     */
    explicit ResultCache(std::size_t maxEntries = 256,
                         obs::Registry *registry = nullptr,
                         std::string prefix = "service.cache");

    /** Look up the canonical @p key; copies the stored value out and
     *  marks the entry most-recently used. */
    std::optional<std::string> get(const std::string &key);

    /** Insert/overwrite the value for @p key, evicting the LRU tail
     *  when the entry bound is exceeded. */
    void put(const std::string &key, std::string value);

    /** Drop every entry (counters are not reset). */
    void clear();

    CacheStats stats() const;

  private:
    struct Entry
    {
        std::uint64_t hash = 0;
        std::string key;
        std::string value;
    };

    void touchCounters();

    const std::size_t maxEntries_;
    obs::Registry *const registry_;
    const std::string prefix_;

    mutable std::mutex m_;
    /** Front = most recently used. */
    std::list<Entry> lru_;
    /** Content address -> entry. Full keys verified on lookup. */
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
    CacheStats stats_;
};

} // namespace service
} // namespace bpsim

#endif // BPSIM_SERVICE_CACHE_HH
