#include "service/reqobs.hh"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string_view>

#include "campaign/json.hh"

namespace bpsim
{
namespace service
{

namespace
{

/** Monotonic nanoseconds since the first call (the default clock). */
std::uint64_t
steadyNs(std::chrono::steady_clock::time_point epoch)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

/** A client-supplied request id is accepted only when it is short and
 *  header/log-safe; anything else is silently ignored. */
bool
validClientId(const std::string &id)
{
    if (id.empty() || id.size() > 64)
        return false;
    for (const char c : id) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                        c == '-';
        if (!ok)
            return false;
    }
    return true;
}

} // namespace

const char *
requestPhaseName(RequestPhase phase)
{
    switch (phase) {
    case RequestPhase::Read:
        return "read";
    case RequestPhase::Parse:
        return "parse";
    case RequestPhase::Wait:
        return "wait";
    case RequestPhase::CacheMem:
        return "cache_mem";
    case RequestPhase::CacheDisk:
        return "cache_disk";
    case RequestPhase::Checkpoint:
        return "checkpoint";
    case RequestPhase::Campaign:
        return "campaign";
    case RequestPhase::Alerts:
        return "alerts";
    case RequestPhase::Serialize:
        return "serialize";
    case RequestPhase::Write:
        return "write";
    }
    return "?";
}

const char *
endpointName(Endpoint ep)
{
    switch (ep) {
    case Endpoint::WhatIf:
        return "whatif";
    case Endpoint::Alerts:
        return "alerts";
    case Endpoint::Metrics:
        return "metrics";
    case Endpoint::Healthz:
        return "healthz";
    case Endpoint::Status:
        return "status";
    case Endpoint::Shutdown:
        return "shutdown";
    case Endpoint::Series:
        return "series";
    case Endpoint::AlertHistory:
        return "alert_history";
    case Endpoint::Dashboard:
        return "dashboard";
    case Endpoint::Other:
        return "other";
    }
    return "?";
}

Endpoint
endpointOf(const std::string &target)
{
    // Series queries carry parameters ("/v1/series?name=..."); the
    // endpoint identity is the path alone.
    const std::size_t qm = target.find('?');
    const std::string_view path(
        target.data(), qm == std::string::npos ? target.size() : qm);
    if (path == "/v1/whatif")
        return Endpoint::WhatIf;
    if (path == "/v1/alerts")
        return Endpoint::Alerts;
    if (path == "/metrics")
        return Endpoint::Metrics;
    if (path == "/healthz")
        return Endpoint::Healthz;
    if (path == "/v1/status")
        return Endpoint::Status;
    if (path == "/v1/shutdown")
        return Endpoint::Shutdown;
    if (path == "/v1/series")
        return Endpoint::Series;
    if (path == "/v1/alerts/history")
        return Endpoint::AlertHistory;
    if (path == "/dashboard")
        return Endpoint::Dashboard;
    return Endpoint::Other;
}

std::string
requestMetricName(Endpoint ep, const char *phase, int status)
{
    std::string name = "service.request.seconds|endpoint=";
    name += endpointName(ep);
    name += ",phase=";
    name += phase;
    name += ",status=";
    name += std::to_string(status);
    return name;
}

void
RequestRecord::addSpan(RequestPhase p, std::uint64_t beginNs,
                       std::uint64_t endNs)
{
    spans.push_back({p, beginNs, endNs});
    const auto i = static_cast<std::size_t>(p);
    phaseNs[i] += endNs - beginNs;
    phaseSeen[i] = true;
}

RequestObserver::RequestObserver(RequestObsOptions opts)
    : opts_(std::move(opts)),
      registry_(opts_.registry != nullptr ? opts_.registry
                                          : &obs::Registry::global())
{
    if (!opts_.clock) {
        const auto epoch = std::chrono::steady_clock::now();
        opts_.clock = [epoch] { return steadyNs(epoch); };
    }
    if (active() && !opts_.accessLogPath.empty()) {
        logFile_.open(opts_.accessLogPath,
                      std::ios::out | std::ios::app);
        if (!logFile_.good())
            registry_->counter("service.reqobs.log_errors").add(1);
    }
}

std::uint64_t
RequestObserver::nowNs() const
{
    return opts_.clock();
}

std::vector<InflightRequest>
RequestObserver::inflight() const
{
    std::vector<InflightRequest> out;
    {
        std::lock_guard<std::mutex> lk(m_);
        out.reserve(inflightTable_.size());
        for (const auto &e : inflightTable_)
            out.push_back({e->id, e->clientId, e->endpoint,
                           static_cast<RequestPhase>(
                               e->phase.load(std::memory_order_relaxed)),
                           e->startNs});
    }
    std::sort(out.begin(), out.end(),
              [](const InflightRequest &a, const InflightRequest &b) {
                  return a.id < b.id;
              });
    return out;
}

std::uint64_t
RequestObserver::completedRequests() const
{
    return completed_.load(std::memory_order_relaxed);
}

std::uint64_t
RequestObserver::slowRequests() const
{
    return slow_.load(std::memory_order_relaxed);
}

std::uint64_t
RequestObserver::accessLogLines() const
{
    return logLines_.load(std::memory_order_relaxed);
}

bool
RequestObserver::logOpen() const
{
    return opts_.accessLogStream != nullptr || logFile_.is_open();
}

std::shared_ptr<RequestObserver::Inflight>
RequestObserver::admit(std::uint64_t id, std::string clientId,
                       Endpoint ep, std::uint64_t startNs)
{
    auto info = std::make_shared<Inflight>();
    info->id = id;
    info->clientId = std::move(clientId);
    info->endpoint = ep;
    info->startNs = startNs;
    std::lock_guard<std::mutex> lk(m_);
    inflightTable_.push_back(info);
    return info;
}

void
RequestObserver::retire(std::uint64_t id)
{
    std::lock_guard<std::mutex> lk(m_);
    for (auto it = inflightTable_.begin(); it != inflightTable_.end();
         ++it) {
        if ((*it)->id == id) {
            inflightTable_.erase(it);
            return;
        }
    }
}

void
RequestObserver::complete(RequestRecord &&rec)
{
    const std::uint64_t total = rec.endNs - rec.startNs;
    for (std::size_t i = 0; i < kRequestPhaseCount; ++i) {
        if (!rec.phaseSeen[i])
            continue;
        registry_
            ->histogram(requestMetricName(
                rec.endpoint,
                requestPhaseName(static_cast<RequestPhase>(i)),
                rec.status))
            .record(static_cast<double>(rec.phaseNs[i]) * 1e-9);
    }
    registry_->histogram(requestMetricName(rec.endpoint, "total",
                                           rec.status))
        .record(static_cast<double>(total) * 1e-9);
    completed_.fetch_add(1, std::memory_order_relaxed);

    const bool slow =
        total >= opts_.slowMs * 1000000ull; // slowMs == 0: all slow
    if (slow)
        slow_.fetch_add(1, std::memory_order_relaxed);
    if (logOpen())
        writeLogLine(rec);

    std::lock_guard<std::mutex> lk(m_);
    ring_.push_back(std::move(rec));
    while (ring_.size() > opts_.traceCapacity)
        ring_.pop_front();
}

void
RequestObserver::writeLogLine(const RequestRecord &rec)
{
    const std::uint64_t total = rec.endNs - rec.startNs;
    const bool slow = total >= opts_.slowMs * 1000000ull;

    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("ts_us", rec.startNs / 1000);
    w.field("id", rec.id);
    if (!rec.clientId.empty())
        w.field("client_id", rec.clientId);
    w.field("endpoint", endpointName(rec.endpoint));
    w.field("method", rec.method);
    w.field("status", rec.status);
    if (!rec.cache.empty())
        w.field("cache", rec.cache);
    if (!rec.tier.empty())
        w.field("tier", rec.tier);
    if (rec.coalescedInto != 0)
        w.field("coalesced_into", rec.coalescedInto);
    if (rec.resumedFrom >= 0)
        w.field("resumed_from",
                static_cast<std::uint64_t>(rec.resumedFrom));
    w.field("bytes_in", rec.bytesIn);
    w.field("bytes_out", rec.bytesOut);
    if (rec.historyLagMs != 0)
        w.field("history_lag_ms", rec.historyLagMs);
    w.field("total_us", total / 1000);
    w.key("phases");
    w.beginObject();
    for (std::size_t i = 0; i < kRequestPhaseCount; ++i)
        if (rec.phaseSeen[i])
            w.field(requestPhaseName(static_cast<RequestPhase>(i)),
                    rec.phaseNs[i] / 1000);
    w.endObject();
    if (slow) {
        // The slow threshold promotes the request from one summary
        // line to a full span timeline (begin/end offsets from the
        // request start), so a tail-latency request explains itself.
        w.field("slow", true);
        w.key("spans");
        w.beginArray();
        for (const RequestSpan &s : rec.spans) {
            w.beginObject();
            w.field("phase", requestPhaseName(s.phase));
            w.field("begin_us", (s.beginNs - rec.startNs) / 1000);
            w.field("end_us", (s.endNs - rec.startNs) / 1000);
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();

    std::lock_guard<std::mutex> lk(log_m_);
    if (opts_.accessLogStream != nullptr)
        *opts_.accessLogStream << os.str() << '\n';
    if (logFile_.is_open()) {
        logFile_ << os.str() << '\n';
        logFile_.flush(); // whole lines survive a SIGKILL
    }
    logLines_.fetch_add(1, std::memory_order_relaxed);
}

void
RequestObserver::writeTrace(std::ostream &os) const
{
    std::vector<obs::SpanEvent> spans;
    {
        std::lock_guard<std::mutex> lk(m_);
        for (const RequestRecord &r : ring_) {
            obs::SpanEvent req;
            req.name = endpointName(r.endpoint);
            req.category = "request";
            req.track = r.id;
            req.startUs = static_cast<std::int64_t>(r.startNs / 1000);
            req.durUs =
                static_cast<std::int64_t>((r.endNs - r.startNs) / 1000);
            req.args.emplace_back("id", std::to_string(r.id));
            req.args.emplace_back("status", std::to_string(r.status));
            if (!r.cache.empty())
                req.args.emplace_back("cache", '"' + r.cache + '"');
            if (!r.tier.empty())
                req.args.emplace_back("tier", '"' + r.tier + '"');
            if (r.coalescedInto != 0)
                req.args.emplace_back("coalesced_into",
                                      std::to_string(r.coalescedInto));
            if (r.resumedFrom >= 0)
                req.args.emplace_back("resumed_from",
                                      std::to_string(r.resumedFrom));
            req.args.emplace_back("bytes_in",
                                  std::to_string(r.bytesIn));
            req.args.emplace_back("bytes_out",
                                  std::to_string(r.bytesOut));
            spans.push_back(std::move(req));
            for (const RequestSpan &s : r.spans) {
                obs::SpanEvent ph;
                ph.name = requestPhaseName(s.phase);
                ph.category = "phase";
                ph.track = r.id;
                ph.startUs =
                    static_cast<std::int64_t>(s.beginNs / 1000);
                ph.durUs = static_cast<std::int64_t>(
                    (s.endNs - s.beginNs) / 1000);
                spans.push_back(std::move(ph));
            }
        }
    }
    obs::TraceExportOptions opts;
    opts.metadata = {{"build", buildId()}};
    obs::writeSpanTrace(os, spans, opts);
}

RequestTrack::RequestTrack(RequestObserver *obs, Endpoint ep,
                           std::string method,
                           const std::string &clientId,
                           std::uint64_t bytesIn, std::uint64_t readNs)
    : obs_(obs)
{
    rec_.id = obs_->nextId();
    if (validClientId(clientId))
        rec_.clientId = clientId;
    rec_.endpoint = ep;
    rec_.method = std::move(method);
    rec_.bytesIn = bytesIn;
    rec_.startNs = obs_->nowNs();
    if (obs_->active() && readNs != 0) {
        // The HTTP layer read the request before this track existed;
        // back-date the request start so the read span is part of it.
        const std::uint64_t begin =
            rec_.startNs >= readNs ? rec_.startNs - readNs : 0;
        rec_.addSpan(RequestPhase::Read, begin, rec_.startNs);
        rec_.startNs = begin;
    }
    info_ = obs_->admit(rec_.id, rec_.clientId, ep, rec_.startNs);
}

RequestTrack::~RequestTrack()
{
    finish();
}

std::string
RequestTrack::publicId() const
{
    return rec_.clientId.empty() ? std::to_string(rec_.id)
                                 : rec_.clientId;
}

RequestTrack::Span::Span(RequestTrack *track, RequestPhase phase)
    : track_(track), phase_(phase),
      beginNs_(track != nullptr && track->obs_->active()
                   ? track->obs_->nowNs()
                   : 0)
{
    if (track_ != nullptr)
        track_->info_->phase.store(static_cast<std::uint8_t>(phase),
                                   std::memory_order_relaxed);
}

RequestTrack::Span::Span(Span &&other) noexcept
    : track_(other.track_), phase_(other.phase_),
      beginNs_(other.beginNs_)
{
    other.track_ = nullptr;
}

RequestTrack::Span::~Span()
{
    if (track_ == nullptr || !track_->obs_->active())
        return;
    track_->rec_.addSpan(phase_, beginNs_, track_->obs_->nowNs());
}

RequestTrack::Span
RequestTrack::span(RequestPhase phase)
{
    return Span(this, phase);
}

std::function<void(std::uint64_t, std::uint64_t)>
RequestTrack::deferFinish()
{
    deferred_ = true;
    RequestObserver *obs = obs_;
    auto rec = std::make_shared<RequestRecord>(std::move(rec_));
    return [obs, rec](std::uint64_t writeNs, std::uint64_t bytesOut) {
        rec->bytesOut = bytesOut;
        obs->retire(rec->id);
        if (!obs->active())
            return;
        const std::uint64_t now = obs->nowNs();
        if (writeNs != 0)
            rec->addSpan(RequestPhase::Write,
                         now >= writeNs ? now - writeNs : 0, now);
        rec->endNs = now;
        obs->complete(std::move(*rec));
    };
}

void
RequestTrack::finish()
{
    if (finished_ || deferred_)
        return;
    finished_ = true;
    obs_->retire(rec_.id);
    if (!obs_->active())
        return;
    rec_.endNs = obs_->nowNs();
    obs_->complete(std::move(rec_));
}

} // namespace service
} // namespace bpsim
