/**
 * @file
 * Online outage-duration prediction (the Section 7 challenge: "how do
 * we deal with unknown outage duration?").
 *
 * The predictor conditions the empirical duration distribution on the
 * outage's elapsed time — exactly the Markov-chain-over-duration-states
 * construction the paper sketches — and an escalation policy uses it to
 * decide, at each check, whether the backup energy on hand justifies
 * continuing to serve (and at what level) or whether state should be
 * saved while there is still energy to do so.
 */

#ifndef BPSIM_OUTAGE_PREDICTOR_HH
#define BPSIM_OUTAGE_PREDICTOR_HH

#include <vector>

#include "outage/distribution.hh"
#include "sim/types.hh"

namespace bpsim
{

/** Conditional-duration predictor built from historic outage data. */
class OutagePredictor
{
  public:
    explicit OutagePredictor(OutageDurationDistribution dist)
        : dist(std::move(dist))
    {}

    /** The underlying distribution. */
    const OutageDurationDistribution &distribution() const { return dist; }

    /** P(outage still on at elapsed + horizon | on at elapsed). */
    double probOutlasts(Time elapsed, Time horizon) const
    {
        return dist.conditionalSurvival(elapsed, elapsed + horizon);
    }

    /** Expected remaining outage time given it has lasted @p elapsed. */
    Time expectedRemaining(Time elapsed) const
    {
        return dist.expectedRemaining(elapsed);
    }

    /**
     * Markov transition matrix over duration states with the given
     * edges: entry (i, j) is the probability that an outage which has
     * survived past edges[i] ends within (edges[j], edges[j+1]]
     * (j == edges.size()-1 aggregates everything beyond the last
     * edge). Row i is the conditional distribution of the final state
     * given state i — the paper's "online Markov chain based
     * transition matrix of different duration".
     */
    std::vector<std::vector<double>>
    transitionMatrix(const std::vector<Time> &edges) const;

  private:
    OutageDurationDistribution dist;
};

/**
 * Risk-bounded escalation policy: among candidate operating levels
 * (full speed, throttle depths, ...), pick the highest-performance one
 * whose battery runway will, with sufficient confidence, cover the rest
 * of the outage plus the reserve needed to save state afterwards.
 */
class AdaptiveEscalationPolicy
{
  public:
    /**
     * @param predictor       Duration predictor.
     * @param risk_tolerance  Acceptable probability of the outage
     *                        outlasting the chosen level's runway.
     */
    AdaptiveEscalationPolicy(OutagePredictor predictor,
                             double risk_tolerance);

    /**
     * Choose an operating level.
     *
     * @param elapsed         Outage time so far.
     * @param sustainable_for Battery runway from now at each level.
     * @param perf_at_level   Normalized performance of each level.
     * @param save_reserve    Time that must remain to save state.
     * @return Index of the chosen level, or -1 if no level is safe
     *         enough and state should be saved immediately.
     */
    int choose(Time elapsed, const std::vector<Time> &sustainable_for,
               const std::vector<double> &perf_at_level,
               Time save_reserve) const;

    /** The predictor in use. */
    const OutagePredictor &predictor() const { return pred; }

  private:
    OutagePredictor pred;
    double risk;
};

} // namespace bpsim

#endif // BPSIM_OUTAGE_PREDICTOR_HH
